"""Parser for Datalog programs, sharing the CQ tokenizer conventions.

A program is a sequence of rules separated by periods; ``%`` starts a
line comment.  Facts are rules without a body.  Nullary atoms may be
written with or without parentheses (``Q`` or ``Q()``).

>>> program = parse_program('''
...     P(X, Y) :- E(X, Y).
...     P(X, Y) :- P(X, Z), E(Z, W), E(W, Y).
...     Q :- P(X, X).
... ''', goal="Q")
>>> program.width()
4
"""

from __future__ import annotations

import re

from repro.cq.parser import _Cursor, _tokenize, parse_term
from repro.cq.query import Atom
from repro.datalog.syntax import Program, Rule
from repro.errors import ParseError

__all__ = ["parse_program", "parse_rule"]

_COMMENT = re.compile(r"%[^\n]*")


def _parse_atom_maybe_nullary(cur: _Cursor) -> Atom:
    kind, name = cur.next()
    if kind != "name":
        raise ParseError(f"expected a predicate name, got {name!r}")
    tok = cur.peek()
    if tok is None or tok[1] != "(":
        return Atom(name, ())
    cur.next()
    terms = []
    tok = cur.peek()
    if tok and tok[1] == ")":
        cur.next()
        return Atom(name, terms)
    while True:
        terms.append(parse_term(cur.next()))
        kind, value = cur.next()
        if value == ")":
            return Atom(name, terms)
        if value != ",":
            raise ParseError(f"expected ',' or ')', got {value!r}")


def _parse_rule(cur: _Cursor) -> Rule:
    head = _parse_atom_maybe_nullary(cur)
    tok = cur.peek()
    if tok is None or tok[1] == ".":
        if tok is not None:
            cur.next()
        return Rule(head, ())
    if tok[1] != ":-":
        raise ParseError(f"expected ':-' or '.', got {tok[1]!r}")
    cur.next()
    body = [_parse_atom_maybe_nullary(cur)]
    while True:
        tok = cur.peek()
        if tok is None:
            return Rule(head, body)
        if tok[1] == ",":
            cur.next()
            body.append(_parse_atom_maybe_nullary(cur))
        elif tok[1] == ".":
            cur.next()
            return Rule(head, body)
        else:
            raise ParseError(f"expected ',' or '.', got {tok[1]!r}")


def parse_rule(text: str) -> Rule:
    """Parse a single rule (or fact)."""
    cur = _Cursor(_tokenize(_COMMENT.sub("", text)))
    rule = _parse_rule(cur)
    if cur.peek() is not None:
        raise ParseError("trailing input after rule")
    return rule


def parse_program(text: str, goal: str) -> Program:
    """Parse a whole program; ``goal`` designates the goal predicate."""
    cur = _Cursor(_tokenize(_COMMENT.sub("", text)))
    rules = []
    while cur.peek() is not None:
        rules.append(_parse_rule(cur))
    return Program(rules, goal)
