"""Datalog: syntax, parser, bottom-up engines, canonical programs (Section 4)."""

from repro.datalog.canonical import (
    DOMAIN_PREDICATE,
    CanonicalProgram,
    canonical_program,
    spoiler_wins_via_datalog,
)
from repro.datalog.engine import (
    evaluate,
    evaluate_naive,
    evaluate_seminaive,
    goal_holds,
    goal_relation,
    seminaive_closure,
)
from repro.datalog.incremental import (
    DELETION_MODES,
    IncrementalEvaluation,
    UpdateReport,
)
from repro.datalog.library import (
    non_two_colorability_program,
    transitive_closure_program,
)
from repro.datalog.parser import parse_program, parse_rule
from repro.datalog.syntax import Program, Rule

__all__ = [
    "Rule",
    "Program",
    "parse_program",
    "parse_rule",
    "evaluate",
    "evaluate_naive",
    "evaluate_seminaive",
    "seminaive_closure",
    "goal_holds",
    "goal_relation",
    "IncrementalEvaluation",
    "UpdateReport",
    "DELETION_MODES",
    "canonical_program",
    "CanonicalProgram",
    "spoiler_wins_via_datalog",
    "DOMAIN_PREDICATE",
    "non_two_colorability_program",
    "transitive_closure_program",
]
