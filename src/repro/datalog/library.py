"""Classic Datalog programs used in the tutorial and the test suite."""

from __future__ import annotations

from repro.datalog.parser import parse_program
from repro.datalog.syntax import Program

__all__ = [
    "non_two_colorability_program",
    "transitive_closure_program",
    "unreachability_is_not_expressible_note",
]


def non_two_colorability_program() -> Program:
    """The paper's Section 4 example: Non-2-Colorability in 4-Datalog.

    The program asserts that a cycle of odd length exists::

        P(X,Y) :- E(X,Y)
        P(X,Y) :- P(X,Z), E(Z,W), E(W,Y)
        Q      :- P(X,X)

    ``P(X, Y)`` derives all pairs connected by an odd-length walk; ``Q``
    holds iff some vertex reaches itself by an odd walk, i.e. iff the graph
    has an odd cycle, i.e. iff it is not 2-colorable.  The body of the
    second rule has 4 distinct variables, so this is 4-Datalog.
    """
    return parse_program(
        """
        P(X, Y) :- E(X, Y).
        P(X, Y) :- P(X, Z), E(Z, W), E(W, Y).
        Q :- P(X, X).
        """,
        goal="Q",
    )


def transitive_closure_program() -> Program:
    """Transitive closure of a binary EDB ``E`` — the canonical 3-Datalog
    (here even linear) recursion."""
    return parse_program(
        """
        T(X, Y) :- E(X, Y).
        T(X, Y) :- T(X, Z), E(Z, Y).
        """,
        goal="T",
    )


def unreachability_is_not_expressible_note() -> str:
    """A docstring-level reminder of why ``CSP(B)`` itself (rather than its
    complement) is never expressible in Datalog: Datalog queries are
    monotone, while solvability is destroyed by adding tuples to ``A``."""
    return (
        "Datalog defines monotone queries only; CSP(B) is not monotone in A "
        "(adding constraints can destroy solvability), so only ¬CSP(B) can be "
        "Datalog-expressible — see Section 3 of the tutorial."
    )
