"""Datalog syntax: rules and programs (Section 4 of the tutorial).

A Datalog program is a finite set of rules ``t0 :- t1, …, tm`` of atomic
formulas; predicates occurring in heads are the *intensional* (IDB)
predicates, all others *extensional* (EDB).  One IDB is designated the goal.
Atoms and variables are shared with the conjunctive-query package
(:class:`repro.cq.query.Atom`).
"""

from __future__ import annotations

from typing import Iterable

from repro.cq.query import Atom, Var
from repro.errors import ParseError

__all__ = ["Rule", "Program"]


class Rule:
    """A Datalog rule ``head :- body``; facts have an empty body.

    Safety: every variable of the head must occur in the body (facts must be
    ground).
    """

    __slots__ = ("_head", "_body")

    def __init__(self, head: Atom, body: Iterable[Atom] = ()):
        self._head = head
        self._body = tuple(body)
        body_vars = {v for atom in self._body for v in atom.variables()}
        for v in head.variables():
            if v not in body_vars:
                raise ParseError(f"unsafe rule: head variable {v!r} not in body: {self}")

    @property
    def head(self) -> Atom:
        return self._head

    @property
    def body(self) -> tuple[Atom, ...]:
        return self._body

    def variables(self) -> frozenset[Var]:
        """All variables of the rule."""
        out = set(self._head.variables())
        for atom in self._body:
            out.update(atom.variables())
        return frozenset(out)

    def body_variables(self) -> frozenset[Var]:
        return frozenset(v for atom in self._body for v in atom.variables())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rule):
            return NotImplemented
        return self._head == other._head and self._body == other._body

    def __hash__(self) -> int:
        return hash((self._head, self._body))

    def __repr__(self) -> str:
        if not self._body:
            return f"{self._head!r}."
        return f"{self._head!r} :- {', '.join(repr(a) for a in self._body)}."


class Program:
    """A Datalog program: rules plus a designated goal predicate."""

    __slots__ = ("_rules", "_goal")

    def __init__(self, rules: Iterable[Rule], goal: str):
        self._rules = tuple(rules)
        self._goal = goal
        if goal not in self.idb_predicates():
            raise ParseError(f"goal {goal!r} is not an IDB predicate of the program")
        self._check_arities()

    def _check_arities(self) -> None:
        arities: dict[str, int] = {}
        for rule in self._rules:
            for atom in (rule.head, *rule.body):
                if atom.predicate in arities:
                    if arities[atom.predicate] != atom.arity:
                        raise ParseError(
                            f"predicate {atom.predicate!r} used with two arities"
                        )
                else:
                    arities[atom.predicate] = atom.arity

    @property
    def rules(self) -> tuple[Rule, ...]:
        return self._rules

    @property
    def goal(self) -> str:
        return self._goal

    def idb_predicates(self) -> frozenset[str]:
        """Predicates defined by rule heads."""
        return frozenset(rule.head.predicate for rule in self._rules)

    def edb_predicates(self) -> frozenset[str]:
        """Predicates used in bodies but never defined."""
        idbs = self.idb_predicates()
        return frozenset(
            atom.predicate
            for rule in self._rules
            for atom in rule.body
            if atom.predicate not in idbs
        )

    def arities(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for rule in self._rules:
            for atom in (rule.head, *rule.body):
                out[atom.predicate] = atom.arity
        return out

    def max_body_variables(self) -> int:
        """The largest number of distinct variables in any rule body."""
        return max((len(r.body_variables()) for r in self._rules), default=0)

    def max_head_variables(self) -> int:
        return max((len(r.head.variables()) for r in self._rules), default=0)

    def is_k_datalog(self, k: int) -> bool:
        """Section 4's k-Datalog: every body has at most k distinct variables
        and every head has at most k variables."""
        return self.max_body_variables() <= k and self.max_head_variables() <= k

    def dependency_graph(self) -> dict[str, frozenset[str]]:
        """IDB dependency edges: ``P → Q`` when some rule defining ``P``
        mentions IDB ``Q`` in its body."""
        idbs = self.idb_predicates()
        deps: dict[str, set[str]] = {p: set() for p in idbs}
        for rule in self._rules:
            for atom in rule.body:
                if atom.predicate in idbs:
                    deps[rule.head.predicate].add(atom.predicate)
        return {p: frozenset(q) for p, q in deps.items()}

    def is_recursive(self) -> bool:
        """Whether some IDB transitively depends on itself."""
        deps = self.dependency_graph()

        def reaches(start: str, target: str, seen: set[str]) -> bool:
            for nxt in deps[start]:
                if nxt == target:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    if reaches(nxt, target, seen):
                        return True
            return False

        return any(reaches(p, p, set()) for p in deps)

    def is_linear(self) -> bool:
        """Linear Datalog: every rule body contains at most one IDB atom —
        the fragment where semi-naive evaluation needs no delta cross terms.
        """
        idbs = self.idb_predicates()
        return all(
            sum(1 for atom in rule.body if atom.predicate in idbs) <= 1
            for rule in self._rules
        )

    def width(self) -> int:
        """The least ``k`` for which the program is k-Datalog."""
        return max(self.max_body_variables(), self.max_head_variables())

    def __repr__(self) -> str:
        return f"Program({len(self._rules)} rules, goal={self._goal!r})"
