"""The canonical k-Datalog program ρ_B (Theorem 4.5(3)).

For every finite structure **B** and every ``k`` there is a k-Datalog program
that, given a structure **A** (as EDB facts, plus its active domain), derives
its goal iff the Spoiler wins the existential k-pebble game on (A, B).

The construction used here is the *obstruction-set* program.  For each arity
``i ≤ k`` and each set ``S ⊆ B^i`` an IDB predicate ``O_{i,S}(x̄)`` asserts:

    every member of every Duplicator winning strategy that is defined on
    ``x̄`` maps ``x̄`` into ``S``

(so deriving ``O_{i,∅}`` anywhere certifies that the Spoiler wins).  The
rules mirror the greatest-fixpoint pruning that computes the largest winning
strategy:

* **base** — an A-fact ``R(x̄)`` constrains the images of ``x̄`` to ``R^B``;
* **substitution** — for any pattern map σ, an obstruction on the σ-selected
  subtuple transports (equality-aware) to the full tuple, because winning
  families are closed under restriction;
* **intersection** — obstructions on the same tuple intersect;
* **forth/projection** — if the images of ``(x̄, y)`` are confined to ``T``
  for *some* ``y``, the k-forth property confines the images of ``x̄`` to the
  projection of ``T``.

All sets ``S`` appearing in the program are computed in advance as the
closure of the base sets under these operators — a property of **B** and
``k`` alone — so program size stays proportional to what the structure can
actually express rather than ``2^{|B|^k}``.  Equivalence with the direct
game algorithm is verified in ``tests/datalog/test_canonical.py`` and
benchmark E3.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Any, Callable, Iterable, Mapping

from repro.cq.query import Atom, Var
from repro.datalog.engine import goal_holds
from repro.datalog.syntax import Program, Rule
from repro.errors import DomainError, SolverError
from repro.relational.structure import Structure

__all__ = [
    "CanonicalProgram",
    "canonical_program",
    "spoiler_wins_via_datalog",
    "DOMAIN_PREDICATE",
]

#: EDB predicate holding the active domain of the input structure A.
DOMAIN_PREDICATE = "Dom"

_SetKey = tuple[int, frozenset]  # (arity, frozenset of tuples over B)


def _substitute(
    s: frozenset, sigma: tuple[int, ...], head_arity: int, b_tuples: list[tuple]
) -> frozenset:
    """``T_σ(S) = {b̄ ∈ B^j : (b_{σ(1)}, …, b_{σ(i)}) ∈ S}``."""
    return frozenset(
        b for b in b_tuples if tuple(b[m] for m in sigma) in s
    )


def _project_last(s: frozenset) -> frozenset:
    """``∃-projection`` dropping the last coordinate."""
    return frozenset(t[:-1] for t in s)


@dataclass
class CanonicalProgram:
    """ρ_B together with the bookkeeping needed to run it on structures."""

    b: Structure
    k: int
    program: Program
    set_names: dict[_SetKey, str]

    def edb_facts(self, a: Structure) -> dict[str, frozenset]:
        """The EDB database encoding ``A``: its relations plus ``Dom``."""
        facts: dict[str, frozenset] = {
            symbol: a.relation(symbol) for symbol in a.vocabulary
        }
        facts[DOMAIN_PREDICATE] = frozenset((x,) for x in a.domain)
        return facts

    def spoiler_wins(self, a: Structure) -> bool:
        """Run ρ_B on ``A``: goal derived iff the Spoiler wins the game."""
        if a.vocabulary != self.b.vocabulary:
            raise DomainError("input structure has a different vocabulary than B")
        if not self.b.domain and a.domain:
            return True  # no Duplicator responses exist at all
        return goal_holds(self.program, self.edb_facts(a))


def canonical_program(b: Structure, k: int, max_sets: int = 4000) -> CanonicalProgram:
    """Construct the canonical k-Datalog program ρ_B for a structure ``B``.

    Raises :class:`SolverError` when the closure of obstruction sets exceeds
    ``max_sets`` (the construction is intended for small templates — K2, K3,
    Boolean templates — where it stays tiny).

    The vocabulary of ``B`` must be k-ary (every relation of arity ≤ k), the
    standing assumption of Sections 4–5.
    """
    if k < 1:
        raise DomainError(f"need k >= 1, got {k}")
    if b.vocabulary.max_arity() > k:
        raise DomainError(
            f"vocabulary has arity {b.vocabulary.max_arity()} > k={k}; "
            "the pebble-game machinery assumes a k-ary vocabulary"
        )

    b_elems = sorted(b.domain, key=repr)
    b_tuples: dict[int, list[tuple]] = {
        i: list(product(b_elems, repeat=i)) for i in range(1, k + 1)
    }

    # ---- closure of obstruction sets (depends only on B and k) ----------
    sets: set[_SetKey] = set()
    frontier: list[_SetKey] = []

    def add(key: _SetKey) -> None:
        if key not in sets:
            if len(sets) >= max_sets:
                raise SolverError(
                    f"obstruction-set closure exceeded max_sets={max_sets}; "
                    "use a smaller template or raise the limit"
                )
            sets.add(key)
            frontier.append(key)

    for symbol in b.vocabulary:
        arity = b.vocabulary.arity(symbol)
        if arity >= 1:
            add((arity, frozenset(b.relation(symbol))))

    sigmas: dict[tuple[int, int], list[tuple[int, ...]]] = {
        (i, j): list(product(range(j), repeat=i))
        for i in range(1, k + 1)
        for j in range(1, k + 1)
    }

    while frontier:
        i, s = frontier.pop()
        # substitution images
        for j in range(1, k + 1):
            for sigma in sigmas[(i, j)]:
                add((j, _substitute(s, sigma, j, b_tuples[j])))
        # projection image
        if i > 1:
            add((i - 1, _project_last(s)))
        # intersections with already-known same-arity sets
        for i2, s2 in list(sets):
            if i2 == i and s2 != s:
                add((i, s & s2))

    # ---- emit the program ------------------------------------------------
    set_names: dict[_SetKey, str] = {}
    for index, key in enumerate(sorted(sets, key=lambda key_: (key_[0], repr(sorted(key_[1])))) ):
        set_names[key] = f"O{key[0]}_{index}"

    xs = [Var(f"X{m}") for m in range(k + 1)]
    rules: list[Rule] = []

    def head_atom(key: _SetKey, variables: Iterable[Var]) -> Atom:
        return Atom(set_names[key], tuple(variables))

    # base rules
    for symbol in b.vocabulary:
        arity = b.vocabulary.arity(symbol)
        if arity < 1:
            continue
        key = (arity, frozenset(b.relation(symbol)))
        body = [Atom(symbol, tuple(xs[:arity]))]
        rules.append(Rule(head_atom(key, xs[:arity]), body))

    # substitution rules
    for (i, s) in sets:
        for j in range(1, k + 1):
            for sigma in sigmas[(i, j)]:
                target = (j, _substitute(s, sigma, j, b_tuples[j]))
                if target not in sets:
                    continue
                body = [Atom(set_names[(i, s)], tuple(xs[m] for m in sigma))]
                body += [Atom(DOMAIN_PREDICATE, (xs[m],)) for m in range(j)]
                rules.append(Rule(head_atom(target, xs[:j]), body))

    # intersection rules
    by_arity: dict[int, list[_SetKey]] = {}
    for key in sets:
        by_arity.setdefault(key[0], []).append(key)
    for i, keys in by_arity.items():
        for k1 in keys:
            for k2 in keys:
                if repr(k1) < repr(k2):
                    target = (i, k1[1] & k2[1])
                    if target in sets and target != k1 and target != k2:
                        rules.append(
                            Rule(
                                head_atom(target, xs[:i]),
                                [
                                    Atom(set_names[k1], tuple(xs[:i])),
                                    Atom(set_names[k2], tuple(xs[:i])),
                                ],
                            )
                        )

    # forth / projection rules
    for (i, s) in sets:
        if i > 1:
            target = (i - 1, _project_last(s))
            if target in sets:
                rules.append(
                    Rule(
                        head_atom(target, xs[: i - 1]),
                        [Atom(set_names[(i, s)], tuple(xs[:i]))],
                    )
                )

    # goal: an empty obstruction at arity 1 refutes the empty function.
    goal = "SpoilerWins"
    empty_key = (1, frozenset())
    if empty_key in sets:
        rules.append(
            Rule(
                Atom(goal, ()),
                [Atom(set_names[empty_key], (xs[0],))],
            )
        )
    else:
        # The closure cannot express an empty obstruction: the Spoiler can
        # never win against this B at this k (e.g. B has a total looped
        # element).  Emit an inert goal definition.
        unreachable = "Unreachable__"
        rules.append(Rule(Atom(goal, ()), [Atom(unreachable, (xs[0],))]))

    program = Program(rules, goal)
    return CanonicalProgram(b=b, k=k, program=program, set_names=set_names)


def spoiler_wins_via_datalog(b: Structure, k: int, a: Structure) -> bool:
    """One-shot convenience: build ρ_B and run it on ``A``."""
    return canonical_program(b, k).spoiler_wins(a)
