"""Bottom-up Datalog evaluation: naive and semi-naive fixpoints.

Section 4 notes that every Datalog query "is computable in polynomial time,
since the bottom-up evaluation of the least fixed-point of the program
terminates within a polynomial number of steps".  Both classical evaluators
are implemented — the naive one (re-derive everything each round, kept as a
differential-testing oracle) and the semi-naive one (each round joins at
least one *newly derived* fact), which is the default.

Databases are :class:`~repro.relational.structure.Structure` objects or
plain ``{predicate: set-of-tuples}`` mappings over the EDB predicates.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.cq.query import Atom, Var
from repro.datalog.syntax import Program, Rule
from repro.errors import VocabularyError
from repro.relational.algebra import (
    DEFAULT_EXECUTION,
    DEFAULT_STRATEGY,
    join_all,
    warm_index,
)
from repro.relational.planner import order_relations, parse_strategy
from repro.relational.relation import Relation
from repro.relational.structure import Structure
from repro.telemetry.spans import span

__all__ = [
    "evaluate_naive",
    "evaluate_seminaive",
    "evaluate",
    "goal_holds",
    "goal_relation",
    "seminaive_closure",
]

Facts = dict[str, frozenset[tuple[Any, ...]]]


def _edb_facts(program: Program, database: Structure | Mapping[str, Any]) -> Facts:
    arities = program.arities()
    facts: Facts = {}
    if isinstance(database, Structure):
        items = {s: database.relation(s) for s in database.vocabulary}
    else:
        items = {s: frozenset(map(tuple, rows)) for s, rows in database.items()}
    for predicate in program.edb_predicates():
        rows = items.get(predicate, frozenset())
        for t in rows:
            if len(t) != arities[predicate]:
                raise VocabularyError(
                    f"EDB fact {predicate}{t!r} has the wrong arity"
                )
        facts[predicate] = frozenset(rows)
    return facts


#: Per-evaluation cache of atom relations, keyed by ``(atom, predicate
#: value)``.  EDB predicates never change across fixpoint rounds, so every
#: round after the first gets back the *same* :class:`Relation` object —
#: and with it the memoized hash indexes built by earlier delta joins
#: (``Relation.index_on``), instead of re-deriving and re-indexing the
#: relation each round.
_AtomCache = dict[tuple[Atom, frozenset], Relation]


def _atom_to_relation(
    atom: Atom,
    value: frozenset[tuple[Any, ...]],
    cache: _AtomCache | None = None,
) -> Relation:
    """Filter a predicate's current value through the atom's constants and
    repeated variables; one column per distinct variable."""
    if cache is not None:
        cached = cache.get((atom, value))
        if cached is not None:
            return cached
    variables = atom.variables()
    if len(variables) == len(atom.terms):
        # Every term is a distinct variable (no constants to filter on, no
        # repeats to equate), so the predicate's rows pass through
        # unchanged and in order: share the frozenset instead of
        # re-filtering and re-tupling every row.
        relation = Relation.from_trusted_rows(
            tuple(v.name for v in variables), value
        )
    else:
        first = {v: atom.terms.index(v) for v in variables}

        def matches(row: tuple) -> bool:
            for i, term in enumerate(atom.terms):
                if isinstance(term, Var):
                    if row[i] != row[first[term]]:
                        return False
                elif row[i] != term:
                    return False
            return True

        relation = Relation(
            tuple(v.name for v in variables),
            (tuple(row[first[v]] for v in variables) for row in value if matches(row)),
        )
    if cache is not None:
        cache[(atom, value)] = relation
    return relation


def _warm_static_indexes(
    relations: list[Relation],
    static_positions: list[int],
    order: str,
    execution: str = "indexed",
) -> None:
    """Pre-build the structures the coming rule-body join will probe on
    the *static* relations (those that persist across fixpoint rounds).

    ``join_all`` folds the planner's order left to right, so the join key
    of each relation is its attributes shared with everything ordered
    before it.  Warming a static relation's index makes
    ``choose_build_side`` pick it as build side even when the fresh delta
    relation is smaller — the build then amortizes across every remaining
    round instead of being repaid per round.  Under ``"columnar"``
    execution the warmed structures are the column store plus the
    radix-packed code index (:func:`warm_columns`); under ``"indexed"``,
    the tuple-keyed hash index.  Either build is charged to EvalStats by
    its warmer, so the accounting stays honest.
    """
    static_ids = {id(relations[i]) for i in static_positions}
    seen: set[str] = set()
    for rel in order_relations(relations, order):
        key = set(rel.attributes) & seen
        if key and id(rel) in static_ids:
            if execution == "columnar":
                from repro.relational.columnar import warm_columns

                warm_columns(rel, key)
            else:
                warm_index(rel, key)
        seen.update(rel.attributes)


def _apply_rule(
    rule: Rule,
    values: Facts,
    delta_atom_index: int | None = None,
    delta: Facts | None = None,
    strategy: str | None = None,
    cache: _AtomCache | None = None,
    static: frozenset[str] = frozenset(),
) -> set[tuple[Any, ...]]:
    """Evaluate one rule under the current predicate values.

    In semi-naive mode (``delta_atom_index`` set) the designated body atom
    reads the *delta* value of its predicate instead of the full value.
    ``strategy`` picks the rule body's join order and execution
    (``"textbook"`` keeps the order the body was written in; ``"scan"``
    forces nested loops; the default is the cost-guided plan over the
    hash-indexed operators).  ``static`` names the predicates whose
    relations persist across rounds (the EDBs): their join-key indexes are
    warmed up front so every round after the first probes them for free.
    """
    relations = []
    static_positions = []
    for i, atom in enumerate(rule.body):
        if delta_atom_index is not None and i == delta_atom_index:
            # Delta values are fresh every round and never read again, so
            # caching their relations would only evict the persistent
            # snapshots (the bounded per-atom cache is FIFO).
            value = (delta or {}).get(atom.predicate, frozenset())
            relations.append(_atom_to_relation(atom, value, None))
            continue
        value = values.get(atom.predicate, frozenset())
        # In a semi-naive round every non-delta relation is stable: it
        # reads a snapshot that persists across rounds (and, under
        # incremental maintenance, across update batches) through the
        # atom cache, so a warmed index amortizes.  The delta relation
        # is fresh every round and must stay the probe side.
        if atom.predicate in static or delta_atom_index is not None:
            static_positions.append(i)
        relations.append(_atom_to_relation(atom, value, cache))
    order, execution = parse_strategy(
        strategy, default_order=DEFAULT_STRATEGY, default_execution=DEFAULT_EXECUTION
    )
    if (
        static_positions
        and execution in ("indexed", "columnar")
        and len(relations) > 1
    ):
        _warm_static_indexes(relations, static_positions, order, execution)
    joined = join_all(relations, strategy=strategy) if relations else Relation.unit()
    derived: set[tuple[Any, ...]] = set()
    head = rule.head
    for row in joined:
        env = dict(zip(joined.attributes, row))
        derived.add(
            tuple(
                env[t.name] if isinstance(t, Var) else t for t in head.terms
            )
        )
    return derived


def seminaive_closure(
    program: Program,
    values: Facts,
    delta: Facts,
    strategy: str | None = None,
    cache: Any = None,
    static: frozenset[str] = frozenset(),
    first_round: int = 1,
) -> int:
    """Run semi-naive delta rounds until no rule derives a new fact.

    ``values`` maps every predicate (EDB and IDB) to its current value and
    is updated **in place**; ``delta`` maps predicates to the facts that are
    *new* relative to the previous state — in a from-scratch evaluation
    these are the round-0 IDB derivations, in incremental maintenance
    (:mod:`repro.datalog.incremental`) they are freshly inserted EDB facts
    and rederivation seeds.  Per round, each rule is instantiated once per
    body atom whose predicate has a delta, with that atom reading the delta
    value only — the classical "at least one new fact per derivation"
    argument, which is what lets an update batch touch only the affected
    part of the fixpoint.  Returns the number of delta rounds run.
    """
    idbs = program.idb_predicates()
    rounds = 0
    delta = {p: frozenset(v) for p, v in delta.items()}
    while any(delta.values()):
        with span("datalog.round", round=first_round + rounds) as sp:
            next_delta: dict[str, set[tuple[Any, ...]]] = {idb: set() for idb in idbs}
            for rule in program.rules:
                delta_positions = [
                    i for i, atom in enumerate(rule.body) if atom.predicate in delta
                ]
                for pos in delta_positions:
                    derived = _apply_rule(
                        rule,
                        values,
                        delta_atom_index=pos,
                        delta=delta,
                        strategy=strategy,
                        cache=cache,
                        static=static,
                    )
                    next_delta[rule.head.predicate] |= derived
            delta = {
                idb: frozenset(next_delta[idb] - values[idb]) for idb in idbs
            }
            for idb in idbs:
                values[idb] = values[idb] | delta[idb]
            if sp:
                sp.note(rows=sum(len(d) for d in delta.values()))
        rounds += 1
    return rounds


def evaluate_naive(
    program: Program,
    database: Structure | Mapping[str, Any],
    strategy: str | None = None,
) -> Facts:
    """Naive bottom-up evaluation: recompute every rule until no IDB grows."""
    with span("datalog.naive") as root:
        values = _edb_facts(program, database)
        for idb in program.idb_predicates():
            values[idb] = frozenset()
        static = frozenset(program.edb_predicates())
        cache: _AtomCache = {}
        changed = True
        rounds = 0
        while changed:
            changed = False
            with span("datalog.round", round=rounds):
                for rule in program.rules:
                    new = _apply_rule(
                        rule, values, strategy=strategy, cache=cache, static=static
                    )
                    merged = values[rule.head.predicate] | new
                    if merged != values[rule.head.predicate]:
                        values[rule.head.predicate] = frozenset(merged)
                        changed = True
            rounds += 1
        result = {p: values[p] for p in program.idb_predicates()}
        if root:
            root.note(rounds=rounds, rows=sum(len(v) for v in result.values()))
        return result


def evaluate_seminaive(
    program: Program,
    database: Structure | Mapping[str, Any],
    strategy: str | None = None,
) -> Facts:
    """Semi-naive evaluation: per round, each rule is instantiated once per
    IDB body atom with that atom reading only the facts newly derived in the
    previous round."""
    with span("datalog.seminaive") as root:
        values = _edb_facts(program, database)
        idbs = program.idb_predicates()
        for idb in idbs:
            values[idb] = frozenset()
        static = frozenset(program.edb_predicates())
        cache: _AtomCache = {}

        # Round 0: rules evaluated on EDBs alone (IDB atoms are empty, so only
        # rules whose bodies are EDB-only can fire).
        delta: Facts = {idb: frozenset() for idb in idbs}
        with span("datalog.round", round=0) as sp:
            for rule in program.rules:
                new = _apply_rule(
                    rule, values, strategy=strategy, cache=cache, static=static
                )
                delta[rule.head.predicate] = delta[rule.head.predicate] | frozenset(new)
            for idb in idbs:
                values[idb] = delta[idb]
            if sp:
                sp.note(rows=sum(len(d) for d in delta.values()))

        rounds = 1 + seminaive_closure(
            program,
            values,
            delta,
            strategy=strategy,
            cache=cache,
            static=static,
            first_round=1,
        )
        result = {p: values[p] for p in idbs}
        if root:
            root.note(rounds=rounds, rows=sum(len(v) for v in result.values()))
        return result


def evaluate(
    program: Program,
    database: Structure | Mapping[str, Any],
    strategy: str | None = None,
) -> Facts:
    """Evaluate the program (semi-naive) and return all IDB values."""
    return evaluate_seminaive(program, database, strategy=strategy)


def goal_relation(
    program: Program, database: Structure | Mapping[str, Any]
) -> frozenset[tuple[Any, ...]]:
    """The value of the goal predicate on the given database."""
    return evaluate(program, database)[program.goal]


def goal_holds(program: Program, database: Structure | Mapping[str, Any]) -> bool:
    """For a 0-ary (Boolean) goal: whether the goal is derived.  For an
    n-ary goal: whether the goal relation is nonempty."""
    return bool(goal_relation(program, database))
