"""Incremental view maintenance: semi-naive insertion deltas, DRed and
counting deletion.

A :class:`IncrementalEvaluation` keeps the least fixpoint of a Datalog
program *materialized* while the EDB changes underneath it — the
"millions of users, heavy traffic" regime where refixpointing from scratch
per update is the dominant cost.  Three classical algorithms cooperate:

* **Insertions** run the semi-naive delta closure
  (:func:`repro.datalog.engine.seminaive_closure`) seeded with the freshly
  inserted EDB facts: every new derivation uses at least one new fact, so
  an update batch touches only the affected part of the fixpoint, and the
  persistent atom-relation cache keeps the warmed hash indexes of the
  unchanged predicates alive across batches.
* **Deletions** under ``deletion="dred"`` use *delete-and-rederive*
  (Gupta–Mumick–Subrahmanian): first an over-deletion pass propagates the
  deleted facts through the rules against the pre-update state (anything
  with a derivation using a deleted fact is provisionally removed), then a
  rederivation pass re-proves the over-deleted facts that still have
  support in the surviving state, and the insertion closure cascades the
  rescues.  Facts whose only remaining "support" is a derivation cycle
  through other deleted facts correctly stay dead.
* **Deletions** under ``deletion="counting"`` maintain per-fact derivation
  counts for non-recursive programs: each update batch is telescoped into
  signed per-position delta joins, counts are adjusted, and a fact dies
  exactly when its count reaches zero.  Counting is rejected for recursive
  programs (a fact can participate in its own count — the classical
  restriction), where DRed remains the safe default.

Every batch is traced: the ``datalog.update`` span carries the deletion
mode and per-batch row deltas, and all joins charge the ambient
:class:`~repro.relational.stats.EvalStats` exactly as the from-scratch
evaluators do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.cq.query import Atom, Var
from repro.datalog.engine import (
    DEFAULT_EXECUTION,
    DEFAULT_STRATEGY,
    Facts,
    _apply_rule,
    _atom_to_relation,
    _edb_facts,
    _warm_static_indexes,
    seminaive_closure,
)
from repro.datalog.syntax import Program, Rule
from repro.errors import DomainError, VocabularyError
from repro.relational.algebra import join_all
from repro.relational.planner import RelationProfile, parse_strategy
from repro.relational.relation import Relation
from repro.relational.structure import Structure, Vocabulary
from repro.telemetry.spans import span

__all__ = ["DELETION_MODES", "IncrementalEvaluation", "UpdateReport"]

#: The deletion algorithms :class:`IncrementalEvaluation` accepts.
DELETION_MODES = ("dred", "counting")


@dataclass(frozen=True)
class UpdateReport:
    """What one :meth:`IncrementalEvaluation.apply` batch changed.

    ``edb_added``/``edb_removed`` are the base-fact changes that actually
    took effect (inserting a present fact or deleting an absent one is a
    no-op); ``idb_added``/``idb_removed`` the induced changes to the
    materialized views.  ``dirty`` names every predicate whose value
    changed — the invalidation signal the :mod:`repro.service` result
    cache consumes.  ``rounds`` counts the delta rounds the batch ran
    (over-deletion, rederivation, and insertion rounds combined).
    """

    edb_added: dict[str, frozenset] = field(default_factory=dict)
    edb_removed: dict[str, frozenset] = field(default_factory=dict)
    idb_added: dict[str, frozenset] = field(default_factory=dict)
    idb_removed: dict[str, frozenset] = field(default_factory=dict)
    rounds: int = 0

    @property
    def dirty(self) -> frozenset[str]:
        """Predicates whose value changed in this batch."""
        return frozenset(
            p
            for changes in (
                self.edb_added,
                self.edb_removed,
                self.idb_added,
                self.idb_removed,
            )
            for p, rows in changes.items()
            if rows
        )

    @property
    def rows_added(self) -> int:
        return sum(len(r) for r in self.edb_added.values()) + sum(
            len(r) for r in self.idb_added.values()
        )

    @property
    def rows_removed(self) -> int:
        return sum(len(r) for r in self.edb_removed.values()) + sum(
            len(r) for r in self.idb_removed.values()
        )


def _cow_apply(
    index: dict[tuple, list],
    positions: tuple[int, ...],
    added: frozenset,
    removed: frozenset,
) -> dict[tuple, list]:
    """A copy of ``index`` with ``removed`` rows dropped and ``added`` rows
    appended — touched buckets are rebuilt, untouched buckets are shared
    with the original, and the original is never mutated (relations handed
    out against the old state keep seeing the old index)."""
    out = dict(index)
    for row in removed:
        key = tuple(row[i] for i in positions)
        bucket = out.get(key)
        if bucket is None:
            continue
        bucket = [t for t in bucket if t != row]
        if bucket:
            out[key] = bucket
        else:
            del out[key]
    for row in added:
        key = tuple(row[i] for i in positions)
        bucket = out.get(key)
        out[key] = [row] if bucket is None else bucket + [row]
    return out


class _PredicateIndexPool:
    """Join-key hash indexes over one predicate's current value, maintained
    across update batches by copy-on-write deltas.

    The from-scratch engine amortizes index builds within one fixpoint via
    the atom cache; across update batches every predicate value is a *new*
    frozenset, so without the pool each batch pays a full O(rows) rebuild
    of every join-key index on every large relation it touches.  The pool
    keeps the index dicts alive between batches and folds each batch's net
    delta in with :func:`_cow_apply`, so a small update costs O(delta)
    bucket edits plus one pointer-copy of the dict — never a rescan of the
    rows.  Per-position distinct-value counts ride along so the planner's
    :func:`~repro.relational.planner.profile` can be transplanted too.
    """

    __slots__ = ("rows", "indexes", "counters")

    def __init__(self, rows: frozenset) -> None:
        self.rows = rows
        self.indexes: dict[tuple[int, ...], dict[tuple, list]] = {}
        self.counters: list[dict[Any, int]] | None = None

    def _count_from_scratch(self) -> list[dict[Any, int]]:
        arity = len(next(iter(self.rows))) if self.rows else 0
        counters: list[dict[Any, int]] = [{} for _ in range(arity)]
        for row in self.rows:
            for i, v in enumerate(row):
                counters[i][v] = counters[i].get(v, 0) + 1
        return counters

    def adopt(self, attributes: tuple[str, ...], indexes: dict) -> None:
        """Take ownership of indexes a join built against ``self.rows`` on a
        relation with the given (position-ordered) attribute names."""
        for attr_key, index in indexes.items():
            positions = tuple(attributes.index(a) for a in attr_key)
            if positions not in self.indexes:
                self.indexes[positions] = index
                if self.counters is None:
                    self.counters = self._count_from_scratch()

    def sync(self, rows: frozenset) -> None:
        """Fold the delta between the pool's snapshot and ``rows`` into
        every maintained index (and the distinct-value counters)."""
        if rows is self.rows:
            return
        added = rows - self.rows
        removed = self.rows - rows
        if added or removed:
            self.indexes = {
                positions: _cow_apply(index, positions, added, removed)
                for positions, index in self.indexes.items()
            }
            if self.counters is not None:
                if added and not self.counters:
                    # The pool was adopted while empty; size the counters
                    # off the first rows to arrive.
                    self.counters = [{} for _ in range(len(next(iter(added))))]
                for row in removed:
                    for i, v in enumerate(row):
                        counter = self.counters[i]
                        left = counter[v] - 1
                        if left:
                            counter[v] = left
                        else:
                            del counter[v]
                for row in added:
                    for i, v in enumerate(row):
                        counter = self.counters[i]
                        counter[v] = counter.get(v, 0) + 1
        self.rows = rows

    def profile(self, attributes: tuple[str, ...]) -> RelationProfile | None:
        if self.counters is None:
            return None
        return RelationProfile(
            frozenset(attributes),
            float(len(self.rows)),
            {a: float(len(self.counters[i])) for i, a in enumerate(attributes)},
        )


class _BoundedAtomCache:
    """The persistent atom-relation cache of one incremental evaluation.

    Same ``(atom, predicate-value)`` keying as the per-evaluation cache in
    :mod:`repro.datalog.engine`, but bounded to a few entries per atom so a
    long-lived service does not accumulate one relation per atom per update
    batch: an unchanged predicate keeps returning the same cached
    :class:`~repro.relational.relation.Relation` (with its warmed indexes)
    forever, while superseded values age out FIFO.
    """

    PER_ATOM = 4

    __slots__ = ("_store",)

    def __init__(self) -> None:
        self._store: dict[Atom, dict[frozenset, Any]] = {}

    def get(self, key: tuple[Atom, frozenset]) -> Any:
        atom, value = key
        per_atom = self._store.get(atom)
        if per_atom is None:
            return None
        return per_atom.get(value)

    def __setitem__(self, key: tuple[Atom, frozenset], relation: Any) -> None:
        atom, value = key
        per_atom = self._store.setdefault(atom, {})
        if len(per_atom) >= self.PER_ATOM:
            per_atom.pop(next(iter(per_atom)))
        per_atom[value] = relation


class IncrementalEvaluation:
    """A materialized least fixpoint maintained under EDB inserts/deletes.

    >>> from repro.datalog.library import transitive_closure_program
    >>> inc = IncrementalEvaluation(
    ...     transitive_closure_program(), {"E": {(1, 2), (2, 3)}}
    ... )
    >>> sorted(inc.value("T"))
    [(1, 2), (1, 3), (2, 3)]
    >>> report = inc.apply(deletes={"E": {(2, 3)}})
    >>> sorted(inc.value("T"))
    [(1, 2)]
    >>> sorted(report.dirty)
    ['E', 'T']

    Parameters
    ----------
    program:
        The Datalog program whose IDB views to materialize.
    database:
        The initial EDB (a :class:`~repro.relational.structure.Structure`
        or a ``{predicate: rows}`` mapping).
    strategy:
        Join order/execution passed through to the rule-body joins.
    deletion:
        ``"dred"`` (default, any program) or ``"counting"`` (non-recursive
        programs only).
    """

    def __init__(
        self,
        program: Program,
        database: Structure | Mapping[str, Any] | None = None,
        strategy: str | None = None,
        deletion: str = "dred",
    ):
        if deletion not in DELETION_MODES:
            raise DomainError(
                f"unknown deletion mode {deletion!r}; expected one of {DELETION_MODES}"
            )
        if deletion == "counting" and program.is_recursive():
            raise DomainError(
                "counting-based deletion requires a non-recursive program "
                "(a recursive fact can support its own derivation count); "
                "use deletion='dred'"
            )
        self._program = program
        self._strategy = strategy
        self._deletion = deletion
        self._idbs = program.idb_predicates()
        self._static = frozenset(program.edb_predicates())
        self._cache = _BoundedAtomCache()
        self._structure: Structure | None = None
        self._generation = 0
        # Body atoms whose terms are all distinct variables share their
        # predicate's raw rows (the `_atom_to_relation` fast path), so
        # their join-key indexes can be pooled across update batches.
        self._identity_atoms: dict[str, tuple[Atom, ...]] = {}
        shapes: dict[str, dict[Atom, None]] = {}
        for rule in program.rules:
            for atom in rule.body:
                if len(atom.variables()) == len(atom.terms):
                    shapes.setdefault(atom.predicate, {})[atom] = None
        self._identity_atoms = {p: tuple(atoms) for p, atoms in shapes.items()}
        self._pools: dict[str, _PredicateIndexPool] = {}
        with span("datalog.incremental.init", mode=deletion) as sp:
            values = _edb_facts(program, database or {})
            for idb in self._idbs:
                values[idb] = frozenset()
            delta: Facts = {idb: frozenset() for idb in self._idbs}
            with span("datalog.round", round=0):
                for rule in program.rules:
                    new = _apply_rule(
                        rule,
                        values,
                        strategy=strategy,
                        cache=self._cache,
                        static=self._static,
                    )
                    delta[rule.head.predicate] = delta[rule.head.predicate] | frozenset(new)
                for idb in self._idbs:
                    values[idb] = delta[idb]
            rounds = 1 + seminaive_closure(
                program,
                values,
                delta,
                strategy=strategy,
                cache=self._cache,
                static=self._static,
            )
            self._values: Facts = values
            self._sync_pools()
            self._counts: dict[str, dict[tuple, int]] | None = None
            if deletion == "counting":
                self._counts = self._recount()
            if sp:
                sp.note(
                    rounds=rounds,
                    rows=sum(len(values[p]) for p in self._idbs),
                )

    # -- read side ----------------------------------------------------------

    @property
    def program(self) -> Program:
        return self._program

    @property
    def deletion(self) -> str:
        """The deletion algorithm in force (``"dred"`` or ``"counting"``)."""
        return self._deletion

    @property
    def generation(self) -> int:
        """Number of update batches applied so far."""
        return self._generation

    def value(self, predicate: str) -> frozenset:
        """The current value of any predicate (EDB or IDB)."""
        try:
            return self._values[predicate]
        except KeyError:
            raise VocabularyError(
                f"unknown predicate {predicate!r} for this program"
            ) from None

    def idb_values(self) -> Facts:
        """All materialized IDB values (same shape as the evaluators return)."""
        return {p: self._values[p] for p in self._idbs}

    def edb_values(self) -> Facts:
        """The current base facts."""
        return {p: self._values[p] for p in self._program.edb_predicates()}

    def as_structure(self) -> Structure:
        """The full current state (EDB + materialized IDB) as a structure.

        Memoized per update generation, so repeated conjunctive queries
        between updates share one structure — and, through
        :meth:`~repro.relational.structure.Structure.derived`, one set of
        atom relations with warmed indexes.
        """
        if self._structure is None:
            domain = {
                v for rows in self._values.values() for row in rows for v in row
            }
            self._structure = Structure(
                Vocabulary(self._program.arities()), domain, self._values
            )
        return self._structure

    # -- update side ---------------------------------------------------------

    def apply(
        self,
        inserts: Mapping[str, Iterable] | None = None,
        deletes: Mapping[str, Iterable] | None = None,
    ) -> UpdateReport:
        """Apply one batch of EDB changes and restore the fixpoint.

        Deletions are applied before insertions, so a fact appearing in
        both ends up present (the batch's net EDB is
        ``(old − deletes) ∪ inserts``).  Returns an :class:`UpdateReport`
        with the net per-predicate changes.
        """
        ins = self._normalize(inserts)
        dels = self._normalize(deletes)
        with span(
            "datalog.update", mode=self._deletion, batch=self._generation
        ) as sp:
            old = dict(self._values)
            if self._deletion == "counting":
                self._seed_pool_relations()
                rounds = self._apply_counting(ins, dels)
                self._sync_pools()
            else:
                rounds = 0
                if dels:
                    self._seed_pool_relations()
                    rounds += self._apply_dred(dels)
                    self._sync_pools()
                if ins:
                    self._seed_pool_relations()
                    rounds += self._apply_inserts(ins)
                    self._sync_pools()
            report = self._report(old, rounds)
            if report.dirty:
                self._structure = None
                self._generation += 1
            if sp:
                sp.note(
                    rounds=rounds,
                    rows_added=report.rows_added,
                    rows_removed=report.rows_removed,
                    dirty=",".join(sorted(report.dirty)),
                )
        return report

    def insert(self, predicate: str, *rows: tuple) -> UpdateReport:
        """Convenience single-predicate insert batch."""
        return self.apply(inserts={predicate: rows})

    def delete(self, predicate: str, *rows: tuple) -> UpdateReport:
        """Convenience single-predicate delete batch."""
        return self.apply(deletes={predicate: rows})

    # -- internals -----------------------------------------------------------

    def _normalize(self, changes: Mapping[str, Iterable] | None) -> Facts:
        arities = self._program.arities()
        edbs = self._program.edb_predicates()
        out: Facts = {}
        for predicate, rows in (changes or {}).items():
            if predicate not in edbs:
                raise VocabularyError(
                    f"only EDB predicates can be updated; {predicate!r} "
                    f"is {'an IDB' if predicate in self._idbs else 'unknown'}"
                )
            normalized = frozenset(map(tuple, rows))
            for t in normalized:
                if len(t) != arities[predicate]:
                    raise VocabularyError(
                        f"EDB fact {predicate}{t!r} has the wrong arity"
                    )
            if normalized:
                out[predicate] = normalized
        return out

    def _sync_pools(self) -> None:
        """Bring every predicate's index pool up to the current values.

        Before folding the delta in, indexes grown during the last phase on
        the pool-snapshot relations (still resident in the atom cache) are
        adopted, so the pool learns new join keys from whatever the planner
        actually probed — no rule analysis, no speculative builds.
        """
        for predicate, atoms in self._identity_atoms.items():
            rows = self._values.get(predicate)
            if rows is None:
                continue
            pool = self._pools.get(predicate)
            if pool is None:
                self._pools[predicate] = _PredicateIndexPool(rows)
                continue
            for atom in atoms:
                relation = self._cache.get((atom, pool.rows))
                if relation is not None:
                    pool.adopt(relation.attributes, relation._indexes)
            pool.sync(rows)

    def _seed_pool_relations(self) -> None:
        """Inject pool-backed relations for the current snapshot into the
        atom cache: each carries the pool's maintained indexes (and planner
        profile), so the phase's joins probe them instead of rebuilding
        O(rows) structures per update batch."""
        for predicate, atoms in self._identity_atoms.items():
            pool = self._pools.get(predicate)
            if pool is None or not pool.indexes or pool.rows is not self._values.get(predicate):
                continue
            for atom in atoms:
                key = (atom, pool.rows)
                attrs = tuple(v.name for v in atom.variables())
                existing = self._cache.get(key)
                if existing is not None:
                    # A closure round already built this snapshot's relation
                    # (sharing the same frozenset); top up whatever pooled
                    # indexes it lacks rather than shadowing the pool.
                    if existing.tuples is pool.rows:
                        for positions, index in pool.indexes.items():
                            existing._indexes.setdefault(
                                tuple(attrs[i] for i in positions), index
                            )
                        if existing._profile is None:
                            existing._profile = pool.profile(attrs)
                    continue
                relation = Relation.from_trusted_rows(attrs, pool.rows)
                for positions, index in pool.indexes.items():
                    relation._indexes[tuple(attrs[i] for i in positions)] = index
                relation._profile = pool.profile(attrs)
                self._cache[key] = relation

    def _report(self, old: Facts, rounds: int) -> UpdateReport:
        edb_added: dict[str, frozenset] = {}
        edb_removed: dict[str, frozenset] = {}
        idb_added: dict[str, frozenset] = {}
        idb_removed: dict[str, frozenset] = {}
        for p, now in self._values.items():
            added = now - old[p]
            removed = old[p] - now
            target_add = idb_added if p in self._idbs else edb_added
            target_del = idb_removed if p in self._idbs else edb_removed
            if added:
                target_add[p] = added
            if removed:
                target_del[p] = removed
        return UpdateReport(edb_added, edb_removed, idb_added, idb_removed, rounds)

    def _apply_inserts(self, inserts: Facts) -> int:
        """Semi-naive insertion closure seeded with the new EDB facts."""
        delta: Facts = {}
        for predicate, rows in inserts.items():
            new = rows - self._values[predicate]
            if new:
                self._values[predicate] = self._values[predicate] | new
                delta[predicate] = new
        if not delta:
            return 0
        # Fold the new EDB facts into the pools (O(delta)) and seed the
        # post-insert snapshots so every closure round probes maintained
        # indexes instead of rebuilding them.
        self._sync_pools()
        self._seed_pool_relations()
        return seminaive_closure(
            self._program,
            self._values,
            delta,
            strategy=self._strategy,
            cache=self._cache,
            static=self._static,
        )

    def _apply_dred(self, deletes: Facts) -> int:
        """Delete-and-rederive: over-delete against the pre-update state,
        then re-prove what still has support and cascade the rescues."""
        values = self._values
        old = dict(values)
        delta_minus: Facts = {}
        for predicate, rows in deletes.items():
            gone = rows & values[predicate]
            if gone:
                values[predicate] = values[predicate] - gone
                delta_minus[predicate] = gone
        if not delta_minus:
            return 0

        # Phase 1 — over-deletion.  Each rule fires with one body atom
        # reading the deletions and the rest reading the *pre-update*
        # values: every fact with some derivation through a deleted fact is
        # provisionally removed.  The loop is the semi-naive closure run on
        # the deletion deltas.
        over: dict[str, set] = {idb: set() for idb in self._idbs}
        rounds = 0
        while any(delta_minus.values()):
            with span("datalog.overdelete", round=rounds):
                next_minus: dict[str, set] = {idb: set() for idb in self._idbs}
                for rule in self._program.rules:
                    positions = [
                        i
                        for i, atom in enumerate(rule.body)
                        if atom.predicate in delta_minus
                    ]
                    for pos in positions:
                        derived = _apply_rule(
                            rule,
                            old,
                            delta_atom_index=pos,
                            delta=delta_minus,
                            strategy=self._strategy,
                            cache=self._cache,
                            static=self._static,
                        )
                        next_minus[rule.head.predicate] |= derived
                delta_minus = {}
                for idb in self._idbs:
                    newly_gone = next_minus[idb] & values[idb]
                    if newly_gone:
                        values[idb] = values[idb] - newly_gone
                        over[idb] |= newly_gone
                        delta_minus[idb] = frozenset(newly_gone)
            rounds += 1

        # Phase 2 — rederivation.  An over-deleted fact survives if some
        # rule still derives it from the *current* (post-over-deletion)
        # values.  Joining the head pattern over the over-deleted set into
        # the rule body restricts each join to exactly the derivations of
        # candidate facts.  The body relations are the *pre-update*
        # snapshots — already resident in the atom cache with their pooled
        # indexes from phase 1, so no O(rows) rebuild happens here — and
        # since every current value is a subset of its pre-update value,
        # filtering each derivation row for membership in the current
        # values yields exactly the derivations alive right now.
        seeds: dict[str, set] = {}
        for rule in self._program.rules:
            candidates = over.get(rule.head.predicate)
            if not candidates:
                continue
            head_restriction = _atom_to_relation(
                rule.head, frozenset(candidates), None
            )
            body = [
                _atom_to_relation(
                    atom,
                    old.get(atom.predicate, frozenset()),
                    self._cache,
                )
                for atom in rule.body
            ]
            relations = [head_restriction] + body
            order, execution = parse_strategy(
                self._strategy,
                default_order=DEFAULT_STRATEGY,
                default_execution=DEFAULT_EXECUTION,
            )
            if execution in ("indexed", "columnar"):
                _warm_static_indexes(
                    relations, list(range(1, len(relations))), order, execution
                )
            joined = join_all(relations, strategy=self._strategy)
            column = {a: i for i, a in enumerate(joined.attributes)}
            extractors = [
                (
                    atom.predicate,
                    tuple(
                        (column[t.name], None) if isinstance(t, Var) else (None, t)
                        for t in atom.terms
                    ),
                )
                for atom in rule.body
            ]
            head_terms = tuple(
                (column[t.name], None) if isinstance(t, Var) else (None, t)
                for t in rule.head.terms
            )
            rescued = set()
            for row in joined:
                alive = True
                for predicate, terms in extractors:
                    fact = tuple(
                        row[i] if i is not None else c for i, c in terms
                    )
                    if fact not in values.get(predicate, frozenset()):
                        alive = False
                        break
                if alive:
                    rescued.add(
                        tuple(row[i] if i is not None else c for i, c in head_terms)
                    )
            if rescued:
                seeds.setdefault(rule.head.predicate, set()).update(rescued)

        # Phases 1–2 joined against the pre-update snapshots, whose pooled
        # relations are still keyed by ``pool.rows`` — so syncing *now*
        # first adopts every index those joins grew (notably the
        # rederivation keys on the EDBs), then folds the phase's deltas in
        # with O(delta) bucket edits.  Re-seeding hands phase 3's cascade
        # warm post-deletion snapshots.
        self._sync_pools()
        self._seed_pool_relations()

        delta: Facts = {}
        for predicate, rows in seeds.items():
            new = frozenset(rows) - values[predicate]
            if new:
                values[predicate] = values[predicate] | new
                delta[predicate] = new
        if delta:
            # Phase 3 — cascade: a rescued fact can re-prove further
            # over-deleted facts downstream; the ordinary insertion
            # closure finishes the job.
            rounds += seminaive_closure(
                self._program,
                values,
                delta,
                strategy=self._strategy,
                cache=self._cache,
                static=self._static,
                first_round=rounds,
            )
        return rounds

    # -- counting maintenance -------------------------------------------------

    def _recount(self) -> dict[str, dict[tuple, int]]:
        """Derivation counts of every IDB fact under the current values."""
        counts: dict[str, dict[tuple, int]] = {idb: {} for idb in self._idbs}
        for rule in self._program.rules:
            per_head = counts[rule.head.predicate]
            sources = [
                self._values.get(atom.predicate, frozenset()) for atom in rule.body
            ]
            for fact in self._rule_derivations(rule, sources):
                per_head[fact] = per_head.get(fact, 0) + 1
        return counts

    def _rule_derivations(self, rule: Rule, sources: list[frozenset]) -> list[tuple]:
        """Head facts of one rule, one per satisfying valuation of the body
        (one entry per valuation — *not* deduplicated across valuations).
        ``sources[i]`` is the row set body atom ``i`` reads."""
        relations = [
            _atom_to_relation(atom, source, self._cache)
            for atom, source in zip(rule.body, sources)
        ]
        joined = join_all(relations, strategy=self._strategy)
        return _head_facts(rule, joined)

    def _apply_counting(self, inserts: Facts, deletes: Facts) -> int:
        """Counting maintenance for non-recursive programs: telescope the
        batch into signed per-position delta joins and adjust derivation
        counts stratum by stratum."""
        assert self._counts is not None
        values = self._values
        old = dict(values)
        delta_plus: dict[str, frozenset] = {}
        delta_minus: dict[str, frozenset] = {}
        for predicate, rows in deletes.items():
            gone = rows & values[predicate]
            if gone:
                values[predicate] = values[predicate] - gone
                delta_minus[predicate] = gone
        for predicate, rows in inserts.items():
            new = rows - values[predicate]
            if new:
                values[predicate] = values[predicate] | new
                delta_plus[predicate] = new

        for idb in self._topological_idbs():
            per_head = self._counts[idb]
            signed: dict[tuple, int] = {}
            for rule in self._program.rules:
                if rule.head.predicate != idb:
                    continue
                # Δ(A₁ ⋈ … ⋈ Aₙ) = Σᵢ new₁‥newᵢ₋₁ ⋈ ΔAᵢ ⋈ oldᵢ₊₁‥oldₙ —
                # each changed valuation is counted exactly once, at the
                # first position where it reads a changed fact.  Sources
                # are per *position*, so a predicate appearing both before
                # and after position ``i`` reads its new value on the left
                # and its old value on the right, as the identity requires.
                for i, atom in enumerate(rule.body):
                    plus = delta_plus.get(atom.predicate)
                    minus = delta_minus.get(atom.predicate)
                    if not plus and not minus:
                        continue
                    left = [
                        values.get(a.predicate, frozenset())
                        for a in rule.body[:i]
                    ]
                    right = [
                        old.get(a.predicate, frozenset())
                        for a in rule.body[i + 1 :]
                    ]
                    if plus:
                        for fact in self._rule_derivations(
                            rule, left + [plus] + right
                        ):
                            signed[fact] = signed.get(fact, 0) + 1
                    if minus:
                        for fact in self._rule_derivations(
                            rule, left + [minus] + right
                        ):
                            signed[fact] = signed.get(fact, 0) - 1
            added: set[tuple] = set()
            removed: set[tuple] = set()
            for fact, d in signed.items():
                before = per_head.get(fact, 0)
                after = before + d
                if after < 0:
                    raise DomainError(
                        f"negative derivation count for {idb}{fact!r} — "
                        "counting invariant violated"
                    )
                if after == 0:
                    per_head.pop(fact, None)
                else:
                    per_head[fact] = after
                if before == 0 and after > 0:
                    added.add(fact)
                elif before > 0 and after == 0:
                    removed.add(fact)
            if added or removed:
                values[idb] = (values[idb] | added) - removed
                if added:
                    delta_plus[idb] = frozenset(added)
                if removed:
                    delta_minus[idb] = frozenset(removed)
        return 1

    def _topological_idbs(self) -> list[str]:
        """IDB predicates ordered so that every body dependency precedes
        its head (well-defined: counting mode rejects recursion)."""
        deps = self._program.dependency_graph()
        done: set[str] = set()
        order: list[str] = []
        pending = dict(deps)
        while pending:
            ready = sorted(p for p, d in pending.items() if d <= done)
            for p in ready:
                order.append(p)
                done.add(p)
                del pending[p]
        return order


def _head_facts(rule: Rule, joined) -> list[tuple]:
    """Instantiate the rule head once per row of the joined body."""
    attrs = joined.attributes
    out = []
    for row in joined:
        env = dict(zip(attrs, row))
        out.append(
            tuple(env[t.name] if isinstance(t, Var) else t for t in rule.head.terms)
        )
    return out
