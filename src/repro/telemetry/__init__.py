"""Unified telemetry plane: spans, metrics registry, profiler, JSONL export.

The flat counters scattered through the library
(:class:`~repro.relational.stats.EvalStats`,
:class:`~repro.consistency.propagation.PropagationStats`,
:class:`~repro.csp.solvers.backtracking.SearchStats`) answer "how much?";
this package answers "where, when, and how long?".  It has four parts:

* :mod:`repro.telemetry.spans` — a hierarchical span tracer scoped with a
  :class:`contextvars.ContextVar` exactly like ``collect_stats``: every
  instrumented phase (planning, each join/semijoin/wcoj operator, each
  propagation fixpoint, each batch of search nodes) opens a named span
  carrying its wall-clock duration, parent, and the stats deltas charged
  inside it.  Zero-cost when inactive.
* :mod:`repro.telemetry.registry` — one metricset protocol over the three
  stats dataclasses (snapshot/delta/rebuild/merge, namespaced metric
  names) plus log-scale :class:`TimingHistogram` distributions.
* :mod:`repro.telemetry.profile` — :class:`QueryProfile`, an
  EXPLAIN-ANALYZE-style renderer for finished traces.
* :mod:`repro.telemetry.jsonl` — span_open/counter/span_close events, one
  JSON object per line, that parse back and reaggregate to exactly the
  in-process totals.

Typical use::

    from repro.telemetry import tracing, QueryProfile

    with tracing("triangle") as trace:
        rows = evaluate(query, db, strategy="auto")
    print(QueryProfile(trace).render())

On the CLI: ``repro profile <workload>`` and ``repro trace --jsonl``.
"""

from __future__ import annotations

from repro.telemetry.jsonl import (
    dumps,
    parse_jsonl,
    reaggregate,
    reaggregate_histograms,
    trace_events,
    validate_events,
    write_jsonl,
)
from repro.telemetry.profile import QueryProfile, format_seconds
from repro.telemetry.registry import (
    METRICSET_KINDS,
    TimingHistogram,
    counter_delta,
    flatten,
    from_counters,
    kind_of,
    merge_counters,
    metric_names,
    metricset_class,
    payload,
    snapshot,
)
from repro.telemetry.spans import (
    Span,
    Trace,
    current_span,
    current_trace,
    span,
    tracing,
)

__all__ = [
    # spans
    "Span",
    "Trace",
    "tracing",
    "span",
    "current_trace",
    "current_span",
    # registry
    "METRICSET_KINDS",
    "kind_of",
    "metricset_class",
    "payload",
    "snapshot",
    "counter_delta",
    "from_counters",
    "merge_counters",
    "metric_names",
    "flatten",
    "TimingHistogram",
    # profiler
    "QueryProfile",
    "format_seconds",
    # jsonl
    "trace_events",
    "dumps",
    "write_jsonl",
    "parse_jsonl",
    "validate_events",
    "reaggregate",
    "reaggregate_histograms",
]
