"""Hierarchical span tracing: *where* the work happened, not just how much.

The flat counter layers (``EvalStats``, ``PropagationStats``,
``SearchStats``) say how many probes, revisions, and nodes an evaluation
cost — never where in the plan tree, in what order, or how long each part
took.  This module adds that missing dimension: a **span** is one named,
timed phase of an evaluation (a planning call, one join operator, a
propagation fixpoint, a batch of search nodes), spans nest into a tree, and
each span carries the exact stats deltas charged while it was open.

Scoping follows :func:`repro.relational.stats.collect_stats` exactly: the
active :class:`Trace` lives in a :class:`contextvars.ContextVar`, so
concurrent traces (threads, asyncio tasks, nested blocks) never share
state, and when no trace is active the instrumented hot paths pay one
``ContextVar`` lookup plus a no-op context manager per operator — nothing
is allocated and nothing is recorded.

>>> from repro.telemetry import tracing, span
>>> with tracing("demo") as trace:
...     with span("phase", step=1):
...         pass
>>> [s.name for s in trace.spans]
['demo', 'phase']
>>> trace.spans[1].parent_id == trace.spans[0].id
True

Instrumented call sites use the module-level :func:`span` helper::

    with span("natural_join", execution=mode) as sp:
        result = ...
        if sp:                       # False when tracing is off
            sp.note(emitted=len(result))

Counter attribution: while a span is open, the deltas of the ContextVar-
active ``EvalStats``/``PropagationStats`` are captured automatically at
close (inclusive of descendants).  Phases whose stats object is passed
explicitly rather than installed in the ContextVar (propagation fixpoints,
search batches) attach their deltas with :meth:`Span.add_counters`, which
takes precedence over the automatic capture for that metricset.  The JSONL
reaggregator (:mod:`repro.telemetry.jsonl`) counts each metricset at its
*topmost* carrying span only, so inclusive deltas never double count.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from time import perf_counter
from typing import Any, Callable, Iterator

from repro.telemetry.registry import TimingHistogram, counter_delta, snapshot

__all__ = [
    "Span",
    "Trace",
    "tracing",
    "span",
    "current_trace",
    "current_span",
]

# Lazily bound accessors for the two ContextVar-scoped stats layers: the
# modules that define them are themselves instrumented with spans, so this
# module must be importable before either of them.
_stats_accessors: tuple[Callable[[], Any], Callable[[], Any]] | None = None


def _active_stats() -> tuple[Any, Any]:
    global _stats_accessors
    if _stats_accessors is None:
        from repro.consistency.propagation import current_propagation
        from repro.relational.stats import current_stats

        _stats_accessors = (current_stats, current_propagation)
    return _stats_accessors[0](), _stats_accessors[1]()


class _NullSpan:
    """The do-nothing span returned when no trace is active.

    A singleton: entering, exiting, annotating, and closing all cost one
    attribute lookup and nothing else, and it is falsy so call sites can
    guard expensive annotations with ``if sp:``.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False

    def __bool__(self) -> bool:
        return False

    def note(self, **attributes: Any) -> None:
        """No-op."""

    def add_counters(self, kind: str, counters: dict[str, Any]) -> None:
        """No-op."""

    def close(self) -> None:
        """No-op."""


_NULL_SPAN = _NullSpan()


class Span:
    """One named, timed phase of a trace.

    ``t0``/``t1`` are offsets in seconds from the trace start;
    ``attributes`` holds the JSON-able annotations given at open plus any
    :meth:`note` calls; ``counters`` maps metricset kind (``"eval"``,
    ``"propagation"``, ``"search"``) to the counter deltas charged while
    the span was open, descendants included.
    """

    __slots__ = (
        "id",
        "name",
        "parent_id",
        "depth",
        "attributes",
        "t0",
        "t1",
        "counters",
        "children",
        "_trace",
        "_snaps",
        "_explicit",
    )

    def __init__(
        self,
        trace: "Trace",
        span_id: int,
        name: str,
        parent_id: int | None,
        depth: int,
        attributes: dict[str, Any],
    ):
        self.id = span_id
        self.name = name
        self.parent_id = parent_id
        self.depth = depth
        self.attributes = attributes
        self.t0 = 0.0
        self.t1: float | None = None
        self.counters: dict[str, dict[str, Any]] = {}
        self.children: list["Span"] = []
        self._trace = trace
        self._snaps: dict[str, Any] = {}
        self._explicit: set[str] = set()

    def __bool__(self) -> bool:
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.t1 is None else f"{self.duration:.6f}s"
        return f"Span(#{self.id} {self.name!r}, {state})"

    @property
    def duration(self) -> float:
        """Wall-clock seconds between open and close (0.0 while open)."""
        return (self.t1 - self.t0) if self.t1 is not None else 0.0

    def note(self, **attributes: Any) -> None:
        """Attach (or overwrite) JSON-able attributes on the span."""
        self.attributes.update(attributes)

    def add_counters(self, kind: str, counters: dict[str, Any]) -> None:
        """Attach an explicit counter delta for ``kind``.

        Used by phases whose stats accumulator is an argument rather than
        the ContextVar-installed object (propagation fixpoints, search node
        batches).  Explicit counters suppress the automatic ContextVar
        capture for the same kind at close, so nothing is counted twice.
        """
        if not counters:
            return
        self._explicit.add(kind)
        into = self.counters.setdefault(kind, {})
        for key, value in counters.items():
            if isinstance(value, list):
                into.setdefault(key, []).extend(value)
            elif isinstance(value, dict):
                sub = into.setdefault(key, {})
                for k, n in value.items():
                    sub[k] = sub.get(k, 0) + n
            else:
                into[key] = into.get(key, 0) + value

    def close(self) -> None:
        """Close the span (it must be the innermost open one)."""
        self._trace.close_span(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc: Any) -> bool:
        self.close()
        return False


class Trace:
    """A forest of spans plus per-operator timing histograms.

    Spans are held in open order in :attr:`spans`; top-level spans (no
    parent) in :attr:`roots`.  :attr:`histograms` accumulates one log-scale
    :class:`~repro.telemetry.registry.TimingHistogram` per span name as
    spans close.  A finished trace serializes to JSONL events through
    :mod:`repro.telemetry.jsonl` and renders as an EXPLAIN-ANALYZE-style
    tree through :class:`repro.telemetry.profile.QueryProfile`.
    """

    def __init__(self, name: str = "trace"):
        self.name = name
        #: Unix timestamp of trace creation (cross-process alignment).
        self.wall_start = time.time()
        self.spans: list[Span] = []
        self.roots: list[Span] = []
        self.histograms: dict[str, TimingHistogram] = {}
        #: The chronological event log: ("open"|"close", span) pairs.
        self.events: list[tuple[str, Span]] = []
        self._stack: list[Span] = []
        self._t0 = perf_counter()

    # -- span lifecycle ----------------------------------------------------

    def open_span(self, name: str, attributes: dict[str, Any]) -> Span:
        """Open a child of the innermost open span (or a new root)."""
        parent = self._stack[-1] if self._stack else None
        sp = Span(
            self,
            len(self.spans),
            name,
            parent.id if parent is not None else None,
            parent.depth + 1 if parent is not None else 0,
            attributes,
        )
        self.spans.append(sp)
        if parent is not None:
            parent.children.append(sp)
        else:
            self.roots.append(sp)
        eval_stats, prop_stats = _active_stats()
        if eval_stats is not None:
            sp._snaps["eval"] = snapshot(eval_stats)
        if prop_stats is not None:
            sp._snaps["propagation"] = snapshot(prop_stats)
        self._stack.append(sp)
        self.events.append(("open", sp))
        sp.t0 = perf_counter() - self._t0
        return sp

    def close_span(self, sp: Span) -> None:
        """Close ``sp``; it must be the innermost open span."""
        sp.t1 = perf_counter() - self._t0
        if not self._stack or self._stack[-1] is not sp:
            from repro.errors import TelemetryError

            open_name = self._stack[-1].name if self._stack else None
            raise TelemetryError(
                f"span {sp.name!r} closed out of order "
                f"(innermost open span: {open_name!r})"
            )
        self._stack.pop()
        eval_stats, prop_stats = _active_stats()
        for kind, stats in (("eval", eval_stats), ("propagation", prop_stats)):
            if stats is None or kind in sp._explicit:
                continue
            before = sp._snaps.get(kind)
            if before is None:
                continue
            delta = counter_delta(stats, before)
            if delta:
                sp.counters[kind] = delta
        hist = self.histograms.get(sp.name)
        if hist is None:
            hist = self.histograms[sp.name] = TimingHistogram()
        hist.observe(sp.duration)
        self.events.append(("close", sp))

    # -- derived views -----------------------------------------------------

    @property
    def duration(self) -> float:
        """Total wall-clock seconds covered by the top-level spans."""
        return sum(root.duration for root in self.roots)

    def find(self, name: str) -> list[Span]:
        """All spans with the given name, in open order."""
        return [s for s in self.spans if s.name == name]

    def total_counters(self, kind: str) -> Any:
        """The trace-wide totals for one metricset kind, merged from the
        *topmost* spans that carry it (inclusive deltas never double
        count).  Returns a fresh metricset instance.
        """
        from repro.telemetry.registry import merge_counters

        carrying = {s.id for s in self.spans if kind in s.counters}
        by_id = {s.id: s for s in self.spans}
        blocks = []
        for s in self.spans:
            if kind not in s.counters:
                continue
            ancestor = s.parent_id
            shadowed = False
            while ancestor is not None:
                if ancestor in carrying:
                    shadowed = True
                    break
                ancestor = by_id[ancestor].parent_id
            if not shadowed:
                blocks.append(s.counters[kind])
        return merge_counters(kind, blocks)


# The active trace.  A ContextVar (never a module global) keeps concurrent
# traces — threads, asyncio tasks, nested blocks — fully isolated, exactly
# like ``collect_stats`` / ``collect_propagation``.
_TRACE: ContextVar[Trace | None] = ContextVar("repro_trace", default=None)


def current_trace() -> Trace | None:
    """The innermost active trace, or ``None`` when tracing is off."""
    return _TRACE.get()


def current_span() -> Span | None:
    """The innermost open span of the active trace, if any."""
    trace = _TRACE.get()
    if trace is None or not trace._stack:
        return None
    return trace._stack[-1]


def span(name: str, **attributes: Any) -> Any:
    """Open a span on the active trace — or return the no-op singleton.

    This is the call the instrumented hot paths make: when no trace is
    installed the cost is one ``ContextVar`` lookup and the shared
    :class:`_NullSpan` is returned, so tracing-off overhead stays within
    the noise of the operators themselves (guarded in
    ``benchmarks/bench_micro_algebra.py``).
    """
    trace = _TRACE.get()
    if trace is None:
        return _NULL_SPAN
    return trace.open_span(name, attributes)


@contextmanager
def tracing(name: str = "trace", trace: Trace | None = None) -> Iterator[Trace]:
    """Trace every instrumented phase inside the ``with`` block.

    A root span named ``name`` wraps the whole block, so child durations
    and counters always have a total to be measured against.  Nested
    blocks shadow outer ones (work inside the inner block is recorded on
    the inner trace only); pass an existing :class:`Trace` to accumulate
    several blocks into one trace — each block adds one more top-level
    span.

    >>> with tracing() as outer:
    ...     with tracing() as inner:
    ...         _ = span("x").close()
    >>> [s.name for s in inner.spans]
    ['trace', 'x']
    >>> outer.find("x")
    []
    """
    if trace is None:
        trace = Trace(name)
    token = _TRACE.set(trace)
    root = trace.open_span(name, {})
    try:
        yield trace
    finally:
        trace.close_span(root)
        _TRACE.reset(token)
