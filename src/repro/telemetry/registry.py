"""The metrics registry: one protocol over every stats dataclass.

The library grew three observability accumulators — the join backend's
:class:`~repro.relational.stats.EvalStats`, the propagation core's
:class:`~repro.consistency.propagation.PropagationStats`, and the search
layer's :class:`~repro.csp.solvers.backtracking.SearchStats` — each with its
own ``as_dict()``/``merge()``.  This module registers them behind a single
**metricset** protocol so the telemetry plane (spans, JSONL export, the
CLI) can snapshot, diff, serialize, reconstruct, and merge any of them
without knowing which one it holds:

* every metricset has a *kind* (``"eval"``, ``"propagation"``,
  ``"search"``) resolved by :func:`kind_of` / :func:`metricset_class`;
* :func:`payload` is the canonical JSON shape — ``{"metricset": kind,
  **stats.as_dict()}`` — emitted identically by ``repro stats --json`` and
  the JSONL counter events, so the CLI and the telemetry plane cannot
  drift;
* :func:`snapshot` / :func:`counter_delta` turn a live metricset into the
  exact counters charged between two points in time (spans use this);
* :func:`from_counters` / :func:`merge_counters` invert the process:
  counters parsed back from JSONL rebuild a metricset instance and fold
  together with the dataclass's own ``merge()`` — so a reaggregated
  export equals the in-process totals, derived properties included;
* :func:`metric_names` / :func:`flatten` give every counter a namespaced
  name (``eval.tuples_scanned``, ``propagation.support_checks``, …), the
  stable vocabulary cross-process aggregators key on.

:class:`TimingHistogram` adds the piece none of the flat counters carry:
log-scale (power-of-two buckets) wall-clock distributions, mergeable
across traces and worker processes like every other metricset.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Iterable, Mapping

__all__ = [
    "METRICSET_KINDS",
    "kind_of",
    "metricset_class",
    "payload",
    "snapshot",
    "counter_delta",
    "from_counters",
    "merge_counters",
    "metric_names",
    "flatten",
    "TimingHistogram",
]

#: The registered metricset kinds, in registration order.
METRICSET_KINDS = ("eval", "propagation", "search")

# Resolved lazily: the stats classes live in modules that import the
# relational substrate, and the span tracer must stay importable from the
# bottom of the dependency graph.
_CLASSES: dict[str, type] | None = None


def _classes() -> dict[str, type]:
    global _CLASSES
    if _CLASSES is None:
        from repro.consistency.propagation import PropagationStats
        from repro.csp.solvers.backtracking import SearchStats
        from repro.relational.stats import EvalStats

        _CLASSES = {
            "eval": EvalStats,
            "propagation": PropagationStats,
            "search": SearchStats,
        }
    return _CLASSES


def metricset_class(kind: str) -> type:
    """The stats dataclass registered under ``kind``.

    >>> metricset_class("eval").__name__
    'EvalStats'
    """
    classes = _classes()
    if kind not in classes:
        from repro.errors import TelemetryError

        raise TelemetryError(
            f"unknown metricset kind {kind!r}; expected one of {METRICSET_KINDS}"
        )
    return classes[kind]


def kind_of(stats: Any) -> str:
    """The registered kind of a live metricset instance."""
    for kind, cls in _classes().items():
        if isinstance(stats, cls):
            return kind
    from repro.errors import TelemetryError

    raise TelemetryError(
        f"{type(stats).__name__} is not a registered metricset "
        f"(expected one of {METRICSET_KINDS})"
    )


def payload(stats: Any) -> dict[str, Any]:
    """The canonical JSON payload of a metricset: its ``as_dict()`` counters
    tagged with the registered kind.  ``repro stats --json`` and the JSONL
    counter events both emit exactly this shape.
    """
    return {"metricset": kind_of(stats), **stats.as_dict()}


def _counter_fields(stats: Any) -> Iterable[tuple[str, Any]]:
    """The dataclass fields of ``stats`` that are counters: ints, floats,
    numeric dicts, and append-only lists.  Non-counter fields (a solution
    dict, a nested metricset) are skipped — a class opts fields out
    explicitly via a ``_NON_COUNTER_FIELDS`` tuple.
    """
    excluded = getattr(type(stats), "_NON_COUNTER_FIELDS", ())
    for f in dataclasses.fields(stats):
        if f.name in excluded:
            continue
        v = getattr(stats, f.name)
        if isinstance(v, bool):
            continue
        if isinstance(v, (int, float, list, dict)):
            yield f.name, v


def snapshot(stats: Any) -> dict[str, Any]:
    """A cheap point-in-time snapshot for later :func:`counter_delta`.

    Scalars are copied, numeric dicts shallow-copied, and lists recorded by
    *length* only — the delta needs just the suffix appended after the
    snapshot, so a span never pays O(history) to open.
    """
    snap: dict[str, Any] = {}
    for name, v in _counter_fields(stats):
        if isinstance(v, list):
            snap[name] = len(v)
        elif isinstance(v, dict):
            snap[name] = dict(v)
        else:
            snap[name] = v
    return snap


def counter_delta(stats: Any, before: Mapping[str, Any]) -> dict[str, Any]:
    """The counters charged to ``stats`` since ``before`` (a
    :func:`snapshot`).  Zero deltas are omitted, so an idle metricset
    yields ``{}`` — the signal a span uses to skip its counter event.
    """
    delta: dict[str, Any] = {}
    for name, v in _counter_fields(stats):
        prior = before.get(name)
        if isinstance(v, list):
            suffix = v[prior or 0:]
            if suffix:
                delta[name] = list(suffix)
        elif isinstance(v, dict):
            prior = prior or {}
            changed = {
                k: n - prior.get(k, 0)
                for k, n in v.items()
                if n != prior.get(k, 0)
            }
            if changed:
                delta[name] = changed
        else:
            d = v - (prior or 0)
            if d:
                delta[name] = d
    return delta


def from_counters(kind: str, counters: Mapping[str, Any]) -> Any:
    """Rebuild a metricset instance from a counters mapping (a
    :func:`counter_delta`, or the counter block of a JSONL event).

    Unknown keys — including the derived properties ``as_dict()`` adds,
    like ``joins`` or ``hit_rate`` — are ignored: they recompute from the
    real fields.
    """
    cls = metricset_class(kind)
    stats = cls()
    excluded = getattr(cls, "_NON_COUNTER_FIELDS", ())
    for f in dataclasses.fields(cls):
        if f.name not in counters or f.name in excluded:
            continue
        v = counters[f.name]
        current = getattr(stats, f.name)
        if isinstance(current, list):
            setattr(stats, f.name, list(v))
        elif isinstance(current, dict):
            setattr(stats, f.name, dict(v))
        elif isinstance(current, (int, float)) and not isinstance(current, bool):
            setattr(stats, f.name, v)
    return stats


def merge_counters(kind: str, counter_blocks: Iterable[Mapping[str, Any]]) -> Any:
    """Fold many counter blocks into one metricset via the dataclass's own
    ``merge()`` — the reaggregation primitive for JSONL exports and
    cross-process fan-out.
    """
    total = metricset_class(kind)()
    for block in counter_blocks:
        total.merge(from_counters(kind, block))
    return total


def metric_names(kind: str) -> tuple[str, ...]:
    """The namespaced metric names of a kind (``eval.tuples_scanned``, …):
    the keys of a fresh instance's ``as_dict()`` under the kind prefix.
    This is the stable vocabulary the docs' migration table maps the old
    bare counter names onto.
    """
    fresh = metricset_class(kind)()
    return tuple(f"{kind}.{key}" for key in fresh.as_dict())


def flatten(stats: Any) -> dict[str, Any]:
    """One flat ``{namespaced_name: value}`` mapping of a metricset's
    scalar counters — the cross-process aggregation form (nested dicts and
    lists are dropped; they have per-kind structure of their own).
    """
    kind = kind_of(stats)
    return {
        f"{kind}.{key}": v
        for key, v in stats.as_dict().items()
        if isinstance(v, (int, float)) and not isinstance(v, bool)
    }


class TimingHistogram:
    """A log-scale wall-clock histogram: power-of-two buckets of seconds.

    An observation of ``s`` seconds lands in bucket ``e = floor(log2 s)``
    (so bucket ``-10`` holds durations in ``[2^-10, 2^-9)`` ≈ 1–2 ms);
    sub-microsecond observations clamp into the lowest bucket.  Histograms
    carry exact ``count``/``total_seconds``/``min``/``max`` alongside the
    buckets, merge counter-wise like every other metricset, and answer
    quantile queries at bucket resolution — the shape the unified plane
    needs to aggregate timings across spans, traces, and worker processes
    without keeping every sample.

    >>> h = TimingHistogram()
    >>> for s in (0.001, 0.0015, 0.1):
    ...     h.observe(s)
    >>> h.count, round(h.total_seconds, 4)
    (3, 0.1025)
    >>> h.quantile(0.5) <= h.quantile(1.0)
    True
    """

    #: Observations below 2**MIN_EXP seconds (≈ 1 µs) clamp into MIN_EXP.
    MIN_EXP = -20

    __slots__ = ("buckets", "count", "total_seconds", "min_seconds", "max_seconds")

    def __init__(self) -> None:
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.total_seconds = 0.0
        self.min_seconds = math.inf
        self.max_seconds = 0.0

    def observe(self, seconds: float) -> None:
        """Record one duration."""
        exp = (
            max(math.frexp(seconds)[1] - 1, self.MIN_EXP)
            if seconds > 0
            else self.MIN_EXP
        )
        self.buckets[exp] = self.buckets.get(exp, 0) + 1
        self.count += 1
        self.total_seconds += seconds
        if seconds < self.min_seconds:
            self.min_seconds = seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    def merge(self, other: "TimingHistogram") -> "TimingHistogram":
        """Fold ``other`` into this histogram (in place) and return it."""
        for exp, n in other.buckets.items():
            self.buckets[exp] = self.buckets.get(exp, 0) + n
        self.count += other.count
        self.total_seconds += other.total_seconds
        self.min_seconds = min(self.min_seconds, other.min_seconds)
        self.max_seconds = max(self.max_seconds, other.max_seconds)
        return self

    def quantile(self, q: float) -> float:
        """An upper bound on the ``q``-quantile (bucket resolution): the
        top edge of the bucket where the cumulative count crosses
        ``q * count``.  0.0 for an empty histogram."""
        if not self.count:
            return 0.0
        target = q * self.count
        seen = 0
        for exp in sorted(self.buckets):
            seen += self.buckets[exp]
            if seen >= target:
                return min(2.0 ** (exp + 1), self.max_seconds)
        return self.max_seconds

    @property
    def mean_seconds(self) -> float:
        """Arithmetic mean of the observed durations (0.0 when empty)."""
        return self.total_seconds / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, Any]:
        """A JSON-able snapshot: exact aggregates plus the sparse buckets
        (keys stringified for JSON)."""
        return {
            "count": self.count,
            "total_seconds": self.total_seconds,
            "min_seconds": self.min_seconds if self.count else 0.0,
            "max_seconds": self.max_seconds,
            "buckets": {str(exp): n for exp, n in sorted(self.buckets.items())},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TimingHistogram":
        """Inverse of :meth:`as_dict` (for reaggregating exports)."""
        hist = cls()
        hist.count = int(data.get("count", 0))
        hist.total_seconds = float(data.get("total_seconds", 0.0))
        hist.min_seconds = (
            float(data.get("min_seconds", 0.0)) if hist.count else math.inf
        )
        hist.max_seconds = float(data.get("max_seconds", 0.0))
        hist.buckets = {
            int(exp): int(n) for exp, n in dict(data.get("buckets", {})).items()
        }
        return hist
