"""EXPLAIN-ANALYZE-style rendering of a finished trace.

:class:`QueryProfile` turns the span tree a
:class:`~repro.telemetry.spans.Trace` collected into the report a query
engine would print for ``EXPLAIN ANALYZE``: one row per span with its
duration, share of the root span's wall clock, and output cardinality
(the ``rows`` attribute instrumented operators attach), followed by a
per-operator aggregate table (calls, total/mean time from the trace's
timing histograms) and the counter totals of every metricset the trace
touched::

    trace: profile                                   total 1.8ms
    span                                  time      %   rows
    ------------------------------------ --------- ------ -------
    cq.evaluate                             1.8ms  100.0%      12
      plan                                  0.1ms    3.1%
      route                                 0.0ms    0.4%
      leapfrog_join                         1.5ms   86.2%      12
    ...

The renderer is pure formatting: it never touches the live stats
ContextVars, so a profile can be rendered (or re-rendered) long after the
traced evaluation finished, including from a parsed JSONL stream via
:func:`repro.telemetry.jsonl.reaggregate`.
"""

from __future__ import annotations

from typing import Any

from repro.telemetry.registry import flatten
from repro.telemetry.spans import Span, Trace

__all__ = ["QueryProfile", "format_seconds"]


def format_seconds(seconds: float) -> str:
    """A compact human duration: ``1.8ms``, ``12.3s``, ``450us``.

    >>> format_seconds(0.0018)
    '1.8ms'
    >>> format_seconds(2.5)
    '2.50s'
    """
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f}ms"
    if seconds >= 1e-6:
        return f"{seconds * 1e6:.0f}us"
    return "0us" if seconds == 0 else f"{seconds * 1e9:.0f}ns"


#: Span attributes surfaced in the tree's annotation column, in order.
_NOTE_ATTRS = (
    "execution",
    "strategy",
    "route",
    "reason",
    "stratum",
    "round",
    "relation",
    "predicate",
    "engine",
    "nodes",
)


class QueryProfile:
    """A finished trace rendered as per-operator rows with durations,
    cardinalities, and % of total — plus aggregate and counter sections.
    """

    def __init__(self, trace: Trace):
        self.trace = trace

    # -- structured views --------------------------------------------------

    def rows(self) -> list[dict[str, Any]]:
        """One dict per span, in open (pre-)order: ``name``, ``depth``,
        ``duration``, ``percent`` of the root span, ``rows`` (output
        cardinality, when the operator noted one), and ``attrs``.
        """
        total = self.trace.duration or 0.0
        out: list[dict[str, Any]] = []

        def walk(sp: Span) -> None:
            out.append(
                {
                    "name": sp.name,
                    "depth": sp.depth,
                    "duration": sp.duration,
                    "percent": (100.0 * sp.duration / total) if total else 0.0,
                    "rows": sp.attributes.get("rows"),
                    "attrs": dict(sp.attributes),
                }
            )
            for child in sp.children:
                walk(child)

        for root in self.trace.roots:
            walk(root)
        return out

    def operator_table(self) -> list[dict[str, Any]]:
        """Per-span-name aggregates from the trace's timing histograms:
        calls, total/mean/max seconds, sorted by total time descending."""
        table = []
        for name, hist in self.trace.histograms.items():
            table.append(
                {
                    "operator": name,
                    "calls": hist.count,
                    "total_seconds": hist.total_seconds,
                    "mean_seconds": hist.mean_seconds,
                    "max_seconds": hist.max_seconds,
                }
            )
        table.sort(key=lambda r: -r["total_seconds"])
        return table

    def counter_totals(self) -> dict[str, dict[str, Any]]:
        """Trace-wide ``{kind: flattened counters}`` for every metricset
        kind any span charged (topmost-span merge, so nothing double
        counts)."""
        kinds = sorted({k for sp in self.trace.spans for k in sp.counters})
        return {kind: flatten(self.trace.total_counters(kind)) for kind in kinds}

    # -- text rendering ----------------------------------------------------

    def render(self, counters: bool = True) -> str:
        """The full textual report (span tree, operator table, and — unless
        ``counters=False`` — the metricset totals)."""
        lines = [
            f"trace: {self.trace.name}"
            f"{'':<24}total {format_seconds(self.trace.duration)}"
        ]
        name_width = max(
            (2 * r["depth"] + len(r["name"]) for r in self.rows()), default=4
        )
        name_width = max(name_width, 4)
        lines.append(f"{'span':<{name_width}}  {'time':>9} {'%':>6} {'rows':>8}")
        lines.append(f"{'-' * name_width}  {'-' * 9} {'-' * 6} {'-' * 8}")
        for r in self.rows():
            label = "  " * r["depth"] + r["name"]
            rows = "" if r["rows"] is None else str(r["rows"])
            notes = "  ".join(
                f"{k}={r['attrs'][k]}"
                for k in _NOTE_ATTRS
                if k in r["attrs"] and k != "rows"
            )
            line = (
                f"{label:<{name_width}}  {format_seconds(r['duration']):>9} "
                f"{r['percent']:>5.1f}% {rows:>8}"
            )
            if notes:
                line += f"  {notes}"
            lines.append(line)

        table = self.operator_table()
        if table:
            lines.append("")
            lines.append("per-operator totals")
            op_width = max(max(len(r["operator"]) for r in table), 8)
            lines.append(
                f"{'operator':<{op_width}}  {'calls':>6} {'total':>9} "
                f"{'mean':>9} {'max':>9}"
            )
            for r in table:
                lines.append(
                    f"{r['operator']:<{op_width}}  {r['calls']:>6} "
                    f"{format_seconds(r['total_seconds']):>9} "
                    f"{format_seconds(r['mean_seconds']):>9} "
                    f"{format_seconds(r['max_seconds']):>9}"
                )

        if counters:
            totals = self.counter_totals()
            for kind, flat in totals.items():
                interesting = {k: v for k, v in flat.items() if v}
                if not interesting:
                    continue
                lines.append("")
                lines.append(f"{kind} counters")
                width = max(len(k) for k in interesting)
                for key, value in interesting.items():
                    if isinstance(value, float):
                        lines.append(f"  {key:<{width}}  {value:.6g}")
                    else:
                        lines.append(f"  {key:<{width}}  {value}")
        return "\n".join(lines)

    def coverage(self) -> float:
        """The share of the root span's wall clock accounted for by its
        direct children — the acceptance-criterion number (``repro
        profile`` on a triangle workload must exceed 0.9).  1.0 when the
        trace has no root or the root has no duration."""
        if not self.trace.roots:
            return 1.0
        root = self.trace.roots[0]
        if not root.duration:
            return 1.0
        return sum(c.duration for c in root.children) / root.duration
