"""JSONL trace export: spans and counters as a line-per-event stream.

A finished :class:`~repro.telemetry.spans.Trace` flattens into three event
types, one JSON object per line, in chronological order::

    {"type": "span_open",  "id": 3, "parent": 0, "name": "natural_join",
     "t": 0.00012, "attrs": {"execution": "indexed"}}
    {"type": "counter",    "id": 3, "metricset": "eval",
     "counters": {"tuples_scanned": 52, ...}}
    {"type": "span_close", "id": 3, "t": 0.00078, "duration": 0.00066}

``counter`` events carry the same keys as the metricset's ``as_dict()``
payload (see :func:`repro.telemetry.registry.payload`), restricted to the
counters actually charged inside the span, and are emitted immediately
before the span's ``span_close``.  Times are seconds relative to the trace
start; the first ``span_open`` (the root) carries the trace's Unix
``wall_start`` in its attrs, so multi-process streams can be aligned.

The format is designed to **reaggregate**: :func:`reaggregate` folds a
stream back into one metricset instance per kind using the dataclasses'
own ``merge()``, counting each kind at its topmost carrying span only —
so the totals equal the in-process counters exactly (asserted in
``tests/telemetry/test_jsonl.py``).  That is the contract the future
cluster coordinator relies on: per-worker JSONL streams concatenate and
merge into fleet-wide totals with no information loss.

:func:`validate_events` checks the schema (the same checks the checked-in
``tools/validate_trace.py`` script applies standalone in CI).
"""

from __future__ import annotations

import json
from typing import IO, Any, Iterable, Iterator, Mapping

from repro.errors import TelemetryError
from repro.telemetry.registry import (
    METRICSET_KINDS,
    TimingHistogram,
    merge_counters,
)
from repro.telemetry.spans import Trace

__all__ = [
    "trace_events",
    "dumps",
    "write_jsonl",
    "parse_jsonl",
    "validate_events",
    "reaggregate",
    "reaggregate_histograms",
]


def trace_events(trace: Trace) -> Iterator[dict[str, Any]]:
    """The trace as a chronological stream of event dicts."""
    first = True
    for action, sp in trace.events:
        if action == "open":
            attrs = dict(sp.attributes)
            if first:
                attrs.setdefault("trace", trace.name)
                attrs.setdefault("wall_start", trace.wall_start)
                first = False
            yield {
                "type": "span_open",
                "id": sp.id,
                "parent": sp.parent_id,
                "name": sp.name,
                "t": sp.t0,
                "attrs": attrs,
            }
        else:
            for kind in METRICSET_KINDS:
                counters = sp.counters.get(kind)
                if counters:
                    yield {
                        "type": "counter",
                        "id": sp.id,
                        "metricset": kind,
                        "counters": counters,
                    }
            yield {
                "type": "span_close",
                "id": sp.id,
                "t": sp.t1,
                "duration": sp.duration,
            }


def dumps(trace: Trace) -> str:
    """The whole trace as a JSONL string (one event per line)."""
    return "\n".join(json.dumps(e, sort_keys=True) for e in trace_events(trace))


def write_jsonl(trace: Trace, fp: IO[str]) -> int:
    """Write the trace's events to ``fp``, one JSON line each; return the
    number of events written."""
    n = 0
    for event in trace_events(trace):
        fp.write(json.dumps(event, sort_keys=True))
        fp.write("\n")
        n += 1
    return n


def parse_jsonl(lines: Iterable[str]) -> list[dict[str, Any]]:
    """Parse a JSONL stream back into event dicts, validating the schema.

    Blank lines are skipped.  Raises
    :class:`~repro.errors.TelemetryError` on the first malformed line or
    schema violation.
    """
    events: list[dict[str, Any]] = []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TelemetryError(f"line {lineno}: not valid JSON ({exc})") from None
        if not isinstance(event, dict):
            raise TelemetryError(f"line {lineno}: event is not a JSON object")
        events.append(event)
    problems = validate_events(events)
    if problems:
        raise TelemetryError(
            "invalid trace stream: " + "; ".join(problems[:5])
        )
    return events


def validate_events(events: Iterable[Mapping[str, Any]]) -> list[str]:
    """Schema-check an event stream; return a list of problems (empty when
    the stream is well-formed).

    Checks: known event types with the required, correctly-typed keys;
    spans open before they emit counters or close; LIFO (properly nested)
    closes; every opened span closed exactly once; counter metricsets
    drawn from the registered kinds.
    """
    problems: list[str] = []
    opened: dict[int, str] = {}
    closed: set[int] = set()
    stack: list[int] = []

    def bad(i: int, msg: str) -> None:
        problems.append(f"event {i}: {msg}")

    for i, event in enumerate(events):
        etype = event.get("type")
        if etype == "span_open":
            sid, parent = event.get("id"), event.get("parent")
            if not isinstance(sid, int):
                bad(i, "span_open without integer 'id'")
                continue
            if sid in opened:
                bad(i, f"span {sid} opened twice")
            if not isinstance(event.get("name"), str):
                bad(i, f"span {sid} has no string 'name'")
            if not isinstance(event.get("t"), (int, float)):
                bad(i, f"span {sid} has no numeric 't'")
            if not isinstance(event.get("attrs"), dict):
                bad(i, f"span {sid} has no 'attrs' object")
            if parent is not None and parent not in opened:
                bad(i, f"span {sid} has unknown parent {parent}")
            expected = stack[-1] if stack else None
            if parent != expected:
                bad(i, f"span {sid} parent {parent} != innermost open {expected}")
            opened[sid] = str(event.get("name"))
            stack.append(sid)
        elif etype == "counter":
            sid = event.get("id")
            if sid not in opened or sid in closed:
                bad(i, f"counter for span {sid} which is not open")
            if event.get("metricset") not in METRICSET_KINDS:
                bad(i, f"unknown metricset {event.get('metricset')!r}")
            if not isinstance(event.get("counters"), dict):
                bad(i, "counter event without 'counters' object")
        elif etype == "span_close":
            sid = event.get("id")
            if sid not in opened:
                bad(i, f"span_close for unopened span {sid}")
                continue
            if sid in closed:
                bad(i, f"span {sid} closed twice")
                continue
            if not stack or stack[-1] != sid:
                bad(i, f"span {sid} closed out of order")
                if sid in stack:
                    while stack and stack[-1] != sid:
                        stack.pop()
            if stack and stack[-1] == sid:
                stack.pop()
            if not isinstance(event.get("duration"), (int, float)):
                bad(i, f"span {sid} close without numeric 'duration'")
            closed.add(sid)
        else:
            bad(i, f"unknown event type {etype!r}")
    for sid in opened:
        if sid not in closed:
            problems.append(f"span {sid} ({opened[sid]!r}) never closed")
    return problems


def _topmost_counter_events(
    events: Iterable[Mapping[str, Any]],
) -> Iterator[Mapping[str, Any]]:
    """Counter events whose span has no ancestor that also carries the same
    metricset — the double-count-free subset (span counters are inclusive
    of their descendants)."""
    events = list(events)
    parent: dict[int, int | None] = {}
    carrying: dict[str, set[int]] = {}
    for event in events:
        if event.get("type") == "span_open":
            parent[event["id"]] = event.get("parent")
        elif event.get("type") == "counter":
            carrying.setdefault(event["metricset"], set()).add(event["id"])
    for event in events:
        if event.get("type") != "counter":
            continue
        kind_spans = carrying[event["metricset"]]
        ancestor = parent.get(event["id"])
        shadowed = False
        while ancestor is not None:
            if ancestor in kind_spans:
                shadowed = True
                break
            ancestor = parent.get(ancestor)
        if not shadowed:
            yield event


def reaggregate(events: Iterable[Mapping[str, Any]]) -> dict[str, Any]:
    """Fold an event stream back into per-kind metricset totals.

    Returns ``{kind: metricset}`` for every kind that appears.  Each
    metricset is rebuilt with
    :func:`repro.telemetry.registry.from_counters` and folded with the
    dataclass's own ``merge()``; only topmost counter events contribute,
    so the result equals the in-process totals of the traced run — and
    streams from several processes can simply be concatenated first.
    """
    blocks: dict[str, list[Mapping[str, Any]]] = {}
    for event in _topmost_counter_events(events):
        blocks.setdefault(event["metricset"], []).append(event["counters"])
    return {kind: merge_counters(kind, bs) for kind, bs in blocks.items()}


def reaggregate_histograms(
    events: Iterable[Mapping[str, Any]],
) -> dict[str, TimingHistogram]:
    """Rebuild the per-span-name timing histograms from an event stream
    (every ``span_close`` duration observed under its span's name)."""
    names: dict[int, str] = {}
    histograms: dict[str, TimingHistogram] = {}
    for event in events:
        if event.get("type") == "span_open":
            names[event["id"]] = event["name"]
        elif event.get("type") == "span_close":
            name = names.get(event["id"], "?")
            hist = histograms.get(name)
            if hist is None:
                hist = histograms[name] = TimingHistogram()
            hist.observe(event["duration"])
    return histograms
