"""Tree decompositions and treewidth (Section 6 of the tutorial).

A tree decomposition of a structure is a labeled tree whose bags cover every
tuple and whose occurrences of each element form a subtree; its width is the
largest bag size minus one.  This module provides:

* :class:`TreeDecomposition` with full validity checking against the three
  conditions of the definition in Section 6;
* construction from *elimination orders* (the classical equivalence), with
  min-degree and min-fill heuristic orders;
* exact treewidth by memoized branch-and-bound over elimination orders
  (practical for the ≤ 20-vertex graphs of the tests and example scales);
* treewidth of structures and CSP instances via their Gaifman/constraint
  graphs.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.csp.instance import CSPInstance
from repro.errors import DecompositionError
from repro.relational.structure import Structure
from repro.width.gaifman import constraint_graph, gaifman_graph
from repro.width.graph import Graph

__all__ = [
    "TreeDecomposition",
    "from_elimination_order",
    "min_degree_order",
    "min_fill_order",
    "heuristic_decomposition",
    "treewidth_exact",
    "treewidth_upper_bound",
    "treewidth_of_structure",
    "treewidth_of_instance",
    "decomposition_of_instance",
]


class TreeDecomposition:
    """A tree decomposition: bags indexed by node id, plus tree edges.

    Parameters
    ----------
    bags:
        ``{node_id: iterable of vertices}``; bags must be non-empty.
    edges:
        Undirected tree edges between node ids.  A single-node decomposition
        has no edges.
    """

    __slots__ = ("_bags", "_edges", "_tree")

    def __init__(
        self,
        bags: dict[Any, Iterable[Any]],
        edges: Iterable[tuple[Any, Any]] = (),
    ):
        self._bags: dict[Any, frozenset[Any]] = {
            node: frozenset(bag) for node, bag in bags.items()
        }
        for node, bag in self._bags.items():
            if not bag:
                raise DecompositionError(f"bag of node {node!r} is empty")
        self._edges = [tuple(e) for e in edges]
        tree = Graph(vertices=self._bags, edges=self._edges)
        for u, v in self._edges:
            if u not in self._bags or v not in self._bags:
                raise DecompositionError(f"edge ({u!r}, {v!r}) uses an unknown node")
        if not tree.is_tree():
            raise DecompositionError("the decomposition's edges do not form a tree")
        self._tree = tree

    # -- accessors -----------------------------------------------------------

    @property
    def bags(self) -> dict[Any, frozenset[Any]]:
        return dict(self._bags)

    @property
    def edges(self) -> list[tuple[Any, Any]]:
        return list(self._edges)

    @property
    def tree(self) -> Graph:
        return self._tree

    def bag(self, node: Any) -> frozenset[Any]:
        return self._bags[node]

    @property
    def width(self) -> int:
        """Maximum bag cardinality minus one."""
        return max(len(b) for b in self._bags.values()) - 1

    def vertices_covered(self) -> frozenset[Any]:
        return frozenset(v for bag in self._bags.values() for v in bag)

    # -- validity ---------------------------------------------------------------

    def is_valid_for(
        self,
        vertices: Iterable[Any],
        hyperedges: Iterable[frozenset[Any]],
    ) -> bool:
        """Check the three conditions of Section 6's definition:

        1. bags are non-empty subsets of the domain (non-emptiness is
           enforced at construction; subset-ness checked here);
        2. every hyperedge (tuple of a relation / constraint scope) is
           contained in some bag;
        3. the occurrences of each vertex form a (connected) subtree.
        """
        universe = set(vertices)
        if not self.vertices_covered() <= universe:
            return False
        if not universe <= self.vertices_covered():
            return False
        for edge in hyperedges:
            if not any(edge <= bag for bag in self._bags.values()):
                return False
        for v in universe:
            nodes = [n for n, bag in self._bags.items() if v in bag]
            if not nodes:
                return False
            if not self._tree.subgraph(nodes).is_connected():
                return False
        return True

    def rooted(self, root: Any | None = None) -> tuple[Any, dict[Any, list[Any]]]:
        """Root the tree; returns ``(root, children)`` adjacency."""
        if root is None:
            root = min(self._bags, key=repr)
        children: dict[Any, list[Any]] = {n: [] for n in self._bags}
        seen = {root}
        stack = [root]
        while stack:
            node = stack.pop()
            for nbr in sorted(self._tree.neighbors(node), key=repr):
                if nbr not in seen:
                    seen.add(nbr)
                    children[node].append(nbr)
                    stack.append(nbr)
        return root, children

    def __repr__(self) -> str:
        return f"TreeDecomposition(nodes={len(self._bags)}, width={self.width})"


def from_elimination_order(graph: Graph, order: Sequence[Any]) -> TreeDecomposition:
    """Build a tree decomposition from an elimination order.

    Eliminating ``v`` creates the bag ``{v} ∪ N(v)`` in the current (filled)
    graph, then turns ``N(v)`` into a clique and removes ``v``.  Each bag is
    attached to the bag of the earliest-eliminated remaining neighbour.  The
    width of the result equals the width of the elimination order.
    """
    order = list(order)
    if set(order) != set(graph.vertices):
        raise DecompositionError("elimination order must enumerate all vertices exactly once")
    if not order:
        raise DecompositionError("cannot decompose the empty graph")

    position = {v: i for i, v in enumerate(order)}
    work = graph.copy()
    bags: dict[int, frozenset[Any]] = {}
    parent_vertex: dict[int, Any] = {}
    for i, v in enumerate(order):
        nbrs = work.neighbors(v)
        bags[i] = frozenset(nbrs | {v})
        later = [u for u in nbrs if position[u] > i]
        if later:
            parent_vertex[i] = min(later, key=lambda u: position[u])
        nbr_list = sorted(nbrs, key=repr)
        for a_idx, a in enumerate(nbr_list):
            for b in nbr_list[a_idx + 1 :]:
                work.add_edge(a, b)
        work.remove_vertex(v)

    edges = [(i, position[parent_vertex[i]]) for i in parent_vertex]
    # Vertices eliminated last in separate components leave orphan bags; the
    # tree constraint requires connecting them (bags unaffected by linking
    # through arbitrary nodes since shared vertices are empty).
    decomposition_nodes = set(bags)
    tree = Graph(vertices=decomposition_nodes, edges=edges)
    components = tree.connected_components()
    anchor = next(iter(components[0]))
    for comp in components[1:]:
        edges.append((anchor, next(iter(comp))))
    return TreeDecomposition(bags, edges)


def min_degree_order(graph: Graph) -> list[Any]:
    """The min-degree elimination-order heuristic."""
    work = graph.copy()
    order = []
    while work.num_vertices():
        v = min(sorted(work.vertices, key=repr), key=work.degree)
        nbrs = sorted(work.neighbors(v), key=repr)
        for i, a in enumerate(nbrs):
            for b in nbrs[i + 1 :]:
                work.add_edge(a, b)
        work.remove_vertex(v)
        order.append(v)
    return order


def min_fill_order(graph: Graph) -> list[Any]:
    """The min-fill elimination-order heuristic (fewest fill edges first)."""
    work = graph.copy()
    order = []

    def fill_count(v: Any) -> int:
        nbrs = sorted(work.neighbors(v), key=repr)
        return sum(
            1
            for i, a in enumerate(nbrs)
            for b in nbrs[i + 1 :]
            if not work.has_edge(a, b)
        )

    while work.num_vertices():
        v = min(sorted(work.vertices, key=repr), key=fill_count)
        nbrs = sorted(work.neighbors(v), key=repr)
        for i, a in enumerate(nbrs):
            for b in nbrs[i + 1 :]:
                work.add_edge(a, b)
        work.remove_vertex(v)
        order.append(v)
    return order


def heuristic_decomposition(graph: Graph) -> TreeDecomposition:
    """The better of the min-degree and min-fill decompositions."""
    if not graph.vertices:
        raise DecompositionError("cannot decompose the empty graph")
    candidates = [
        from_elimination_order(graph, min_degree_order(graph)),
        from_elimination_order(graph, min_fill_order(graph)),
    ]
    return min(candidates, key=lambda d: d.width)


def treewidth_upper_bound(graph: Graph) -> int:
    """Heuristic treewidth upper bound (min of min-degree and min-fill)."""
    if not graph.vertices:
        return -1
    return heuristic_decomposition(graph).width


def treewidth_exact(graph: Graph, upper: int | None = None) -> int:
    """Exact treewidth by memoized branch-and-bound over elimination orders.

    Exponential in the number of vertices; intended for graphs of up to
    roughly 18 vertices (tests, exactness oracles).  ``upper`` seeds the
    pruning bound (defaults to the heuristic bound).
    """
    if not graph.vertices:
        return -1
    if upper is None:
        upper = treewidth_upper_bound(graph)
    best = {None: upper}
    memo: dict[frozenset, int] = {}

    def eliminate(g: Graph, v: Any) -> Graph:
        h = g.copy()
        nbrs = sorted(h.neighbors(v), key=repr)
        for i, a in enumerate(nbrs):
            for b in nbrs[i + 1 :]:
                h.add_edge(a, b)
        h.remove_vertex(v)
        return h

    def search(g: Graph, bound: int) -> int:
        """Minimum over orders of the max elimination degree, given we may
        discard anything ≥ bound (we already have a solution of width bound)."""
        key = frozenset(g.edges()) | frozenset((v,) for v in g.vertices)
        if key in memo:
            return memo[key]
        n = g.num_vertices()
        if n <= 1:
            memo[key] = 0
            return 0
        # Simplicial / low-degree shortcuts: eliminating a vertex whose
        # neighbourhood is a clique is always optimal.
        for v in sorted(g.vertices, key=repr):
            nbrs = sorted(g.neighbors(v), key=repr)
            if all(
                g.has_edge(a, b) for i, a in enumerate(nbrs) for b in nbrs[i + 1 :]
            ):
                result = max(len(nbrs), search(eliminate(g, v), bound))
                memo[key] = result
                return result
        result = n - 1  # eliminating into a clique always works
        for v in sorted(g.vertices, key=repr):
            d = g.degree(v)
            if d >= result or d > bound:
                continue
            sub = search(eliminate(g, v), min(bound, result))
            result = min(result, max(d, sub))
        memo[key] = result
        return result

    return min(best[None], search(graph, best[None]))


def treewidth_of_structure(structure: Structure, exact: bool = True) -> int:
    """The treewidth of a relational structure (Gaifman-graph treewidth).

    Structures with empty Gaifman graphs (no domain) have width −1 by
    convention; a single element with no tuples has width 0.
    """
    graph = gaifman_graph(structure)
    if exact:
        return treewidth_exact(graph)
    return treewidth_upper_bound(graph)


def treewidth_of_instance(instance: CSPInstance, exact: bool = True) -> int:
    """The treewidth of a CSP instance's constraint graph."""
    graph = constraint_graph(instance)
    if exact:
        return treewidth_exact(graph)
    return treewidth_upper_bound(graph)


def decomposition_of_instance(instance: CSPInstance) -> TreeDecomposition:
    """A heuristic tree decomposition of the instance's constraint graph.

    Every constraint scope forms a clique of the constraint graph, so each
    scope is contained in some bag — exactly condition 2 of the definition.
    """
    graph = constraint_graph(instance)
    if not graph.vertices:
        raise DecompositionError("instance has no variables to decompose")
    return heuristic_decomposition(graph)
