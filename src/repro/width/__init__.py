"""Widths and decompositions: treewidth, acyclicity, querywidth, hypertree width.

Executable counterpart of Section 6 of the tutorial: tree decompositions of
structures and CSP instances, the GYO/join-tree/Yannakakis machinery for
acyclic instances, and the querywidth / hypertree-width bounds used to
compare the notions of "width" the section surveys.
"""

from repro.width.acyclic import (
    JoinTree,
    gyo_reduction,
    is_acyclic,
    join_tree,
    yannakakis_is_solvable,
    yannakakis_solve,
)
from repro.width.gaifman import (
    constraint_graph,
    gaifman_graph,
    incidence_graph,
    instance_hypergraph,
    structure_hypergraph,
)
from repro.width.graph import Graph
from repro.width.lowerbounds import (
    clique_lower_bound,
    clique_number,
    degeneracy,
    mmd_plus_lower_bound,
    treewidth_lower_bound,
)
from repro.width.hypertree import (
    HypertreeDecomposition,
    exact_generalized_hypertree_width,
    hypertree_width_interval,
    hypertree_width_lower_bound,
    hypertree_width_upper_bound,
    instance_hypertree_interval,
    minimum_edge_cover,
)
from repro.width.querywidth import (
    QueryDecomposition,
    incidence_treewidth,
    query_decomposition_from_incidence,
    query_width_interval,
    query_width_lower_bound,
    query_width_upper_bound,
)
from repro.width.treedecomp import (
    TreeDecomposition,
    decomposition_of_instance,
    from_elimination_order,
    heuristic_decomposition,
    min_degree_order,
    min_fill_order,
    treewidth_exact,
    treewidth_of_instance,
    treewidth_of_structure,
    treewidth_upper_bound,
)

__all__ = [
    "Graph",
    "TreeDecomposition",
    "from_elimination_order",
    "min_degree_order",
    "min_fill_order",
    "heuristic_decomposition",
    "treewidth_exact",
    "treewidth_upper_bound",
    "treewidth_of_structure",
    "treewidth_of_instance",
    "decomposition_of_instance",
    "gaifman_graph",
    "constraint_graph",
    "structure_hypergraph",
    "instance_hypergraph",
    "incidence_graph",
    "gyo_reduction",
    "is_acyclic",
    "join_tree",
    "JoinTree",
    "yannakakis_is_solvable",
    "yannakakis_solve",
    "minimum_edge_cover",
    "HypertreeDecomposition",
    "hypertree_width_upper_bound",
    "hypertree_width_lower_bound",
    "hypertree_width_interval",
    "exact_generalized_hypertree_width",
    "instance_hypertree_interval",
    "degeneracy",
    "clique_number",
    "clique_lower_bound",
    "mmd_plus_lower_bound",
    "treewidth_lower_bound",
    "incidence_treewidth",
    "QueryDecomposition",
    "query_decomposition_from_incidence",
    "query_width_upper_bound",
    "query_width_lower_bound",
    "query_width_interval",
]
