"""Gaifman (primal) graphs and constraint hypergraphs.

The treewidth of a relational structure (Section 6; Feder–Vardi [21]) is the
treewidth of its *Gaifman graph*: vertices are the domain elements, with an
edge between two elements whenever they co-occur in some tuple.  For a CSP
instance the same construction on variables and constraint scopes yields the
classical *constraint graph*.  The hypergraph view (one hyperedge per
tuple/scope) feeds the acyclicity and hypertree-width machinery.
"""

from __future__ import annotations

from typing import Any

from repro.csp.instance import CSPInstance
from repro.relational.structure import Structure
from repro.width.graph import Graph

__all__ = [
    "gaifman_graph",
    "constraint_graph",
    "structure_hypergraph",
    "instance_hypergraph",
    "incidence_graph",
]


def gaifman_graph(structure: Structure) -> Graph:
    """The Gaifman graph of a relational structure: domain elements adjacent
    iff they co-occur in a tuple of some relation."""
    g = Graph(vertices=structure.domain)
    for symbol in structure.vocabulary:
        for t in structure.relation(symbol):
            distinct = sorted(set(t), key=repr)
            for i, u in enumerate(distinct):
                for v in distinct[i + 1 :]:
                    g.add_edge(u, v)
    return g


def constraint_graph(instance: CSPInstance) -> Graph:
    """The constraint (primal) graph of a CSP instance: variables adjacent
    iff they share a constraint scope."""
    g = Graph(vertices=instance.variables)
    for c in instance.constraints:
        scope = sorted(set(c.scope), key=repr)
        for i, u in enumerate(scope):
            for v in scope[i + 1 :]:
                g.add_edge(u, v)
    return g


def structure_hypergraph(structure: Structure) -> list[frozenset[Any]]:
    """The hyperedges of a structure: one per tuple (as a set of elements).

    Singleton and empty hyperedges are kept — they matter for covering
    isolated elements in decompositions.
    """
    edges = {frozenset(t) for symbol in structure.vocabulary for t in structure.relation(symbol)}
    return sorted(edges, key=lambda e: (len(e), repr(sorted(e, key=repr))))


def instance_hypergraph(instance: CSPInstance) -> list[frozenset[Any]]:
    """The constraint hypergraph: one hyperedge per constraint scope."""
    edges = {frozenset(c.scope) for c in instance.constraints}
    return sorted(edges, key=lambda e: (len(e), repr(sorted(e, key=repr))))


def incidence_graph(instance: CSPInstance) -> Graph:
    """The incidence graph: a bipartite graph between variables and
    constraints, with an edge when the variable occurs in the scope.

    Chekuri–Rajaraman (discussed at the end of Section 6) show a tree
    decomposition of the incidence graph is a *query decomposition*, so its
    treewidth upper-bounds the querywidth.
    """
    g = Graph(vertices=instance.variables)
    for i, c in enumerate(instance.constraints):
        node = ("constraint", i)
        g.add_vertex(node)
        for v in set(c.scope):
            g.add_edge(node, v)
    return g
