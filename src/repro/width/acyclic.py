"""Acyclic hypergraphs: GYO reduction, join trees, and Yannakakis evaluation.

Section 6 traces the "topology of the query" line of work to the study of
acyclic joins [45, 32].  A hypergraph is (α-)acyclic iff the GYO reduction
(repeatedly delete ears — vertices in a single hyperedge — and hyperedges
contained in other hyperedges) empties it; equivalently iff it has a *join
tree*.  Acyclic = hypertree width 1, the base case of the width hierarchy
compared in benchmark E6.

Yannakakis' algorithm decides an acyclic CSP/join in polynomial time: a
bottom-up semijoin pass makes every relation globally consistent enough to
answer the Boolean question, and a top-down pass plus greedy descent
constructs a solution — the "backtrack-free search" Section 5 mentions.
"""

from __future__ import annotations

from typing import Any

from repro.csp.instance import CSPInstance
from repro.errors import DecompositionError
from repro.relational.algebra import semijoin
from repro.relational.relation import Relation

__all__ = [
    "gyo_reduction",
    "is_acyclic",
    "join_tree",
    "JoinTree",
    "yannakakis_is_solvable",
    "yannakakis_solve",
]


def gyo_reduction(
    hyperedges: list[frozenset[Any]],
) -> tuple[list[frozenset[Any]], list[tuple[int, int]]]:
    """Run the GYO (Graham / Yu–Özsoyoğlu) reduction.

    Parameters
    ----------
    hyperedges:
        The hyperedges, indexed by position.

    Returns
    -------
    (remaining, parents):
        ``remaining`` — the reduced hyperedge contents (same indexing, with
        absorbed edges emptied); ``parents`` — ``(child, parent)`` pairs
        recorded when a hyperedge was absorbed into another, which form the
        join-tree edges when the reduction succeeds.
    """
    current: list[set[Any]] = [set(e) for e in hyperedges]
    alive = [bool(e) for e in current]
    # Edges that start empty are trivially absorbed (into nothing).
    parents: list[tuple[int, int]] = []

    changed = True
    while changed:
        changed = False
        # Ear removal: drop vertices that occur in exactly one live edge.
        occurrence: dict[Any, list[int]] = {}
        for i, edge in enumerate(current):
            if alive[i]:
                for v in edge:
                    occurrence.setdefault(v, []).append(i)
        for v, where in occurrence.items():
            if len(where) == 1:
                current[where[0]].discard(v)
                changed = True
        # Absorption: an edge contained in a different live edge is removed.
        live = [i for i in range(len(current)) if alive[i]]
        for i in live:
            if not alive[i]:
                continue
            for j in live:
                if i != j and alive[j] and current[i] <= current[j]:
                    alive[i] = False
                    parents.append((i, j))
                    changed = True
                    break
        # Edges emptied by ear removal die without a parent (isolated).
        for i in range(len(current)):
            if alive[i] and not current[i]:
                alive[i] = False
                changed = True

    remaining = [
        frozenset(current[i]) if alive[i] else frozenset() for i in range(len(current))
    ]
    return remaining, parents


def is_acyclic(hyperedges: list[frozenset[Any]]) -> bool:
    """Whether the hypergraph is α-acyclic (GYO reduction empties it)."""
    remaining, _ = gyo_reduction(hyperedges)
    return all(not e for e in remaining)


class JoinTree:
    """A join tree over hyperedge indices: a forest of parent pointers such
    that for each vertex, the edges containing it form a connected subtree."""

    __slots__ = ("hyperedges", "parent", "roots")

    def __init__(
        self,
        hyperedges: list[frozenset[Any]],
        parent: dict[int, int],
        roots: list[int],
    ):
        self.hyperedges = hyperedges
        self.parent = parent
        self.roots = roots

    def children(self) -> dict[int, list[int]]:
        out: dict[int, list[int]] = {i: [] for i in range(len(self.hyperedges))}
        for child, par in self.parent.items():
            out[par].append(child)
        return out

    def topological_order(self) -> list[int]:
        """Indices ordered leaves-first (children before parents)."""
        children = self.children()
        order: list[int] = []
        visited: set[int] = set()

        def visit(node: int) -> None:
            if node in visited:
                return
            visited.add(node)
            for c in children[node]:
                visit(c)
            order.append(node)

        for r in self.roots:
            visit(r)
        return order


def join_tree(hyperedges: list[frozenset[Any]]) -> JoinTree:
    """Build a join tree for an acyclic hypergraph.

    Raises :class:`DecompositionError` when the hypergraph is cyclic.
    Absorption parents from the GYO reduction become tree parents; edges
    never absorbed (one per connected component) become roots.
    """
    remaining, parents = gyo_reduction(hyperedges)
    if any(remaining):
        raise DecompositionError("the hypergraph is cyclic: GYO reduction got stuck")
    parent = dict(parents)
    roots = [i for i in range(len(hyperedges)) if i not in parent]
    return JoinTree(list(hyperedges), parent, roots)


def _constraint_relations(instance: CSPInstance) -> tuple[CSPInstance, list[Relation]]:
    from repro.csp.solvers.join import constraint_relations

    normalized = instance.normalize()
    return normalized, constraint_relations(normalized)


def yannakakis_is_solvable(
    instance: CSPInstance, *, execution: str | None = None
) -> bool:
    """Decide an acyclic CSP instance by Yannakakis' bottom-up semijoin pass.

    Each constraint is semijoin-reduced by its join-tree children; the
    instance is solvable iff no relation empties.  Linear-shaped in the total
    size of the relations (each relation is touched once per tree edge).
    ``execution`` selects the semijoin implementation (``"indexed"`` probes
    each reducer's memoized hash index, ``"scan"`` re-scans it per row; see
    :func:`repro.relational.algebra.semijoin`).

    Raises :class:`DecompositionError` on cyclic instances — callers should
    test :func:`is_acyclic` first or fall back to another solver.
    """
    normalized, relations = _constraint_relations(instance)
    if not normalized.constraints:
        return not normalized.variables or bool(normalized.domain)
    scopes = [frozenset(r.attributes) for r in relations]
    tree = join_tree(scopes)

    reduced = list(relations)
    for node in tree.topological_order():
        for child, par in tree.parent.items():
            if par == node:
                reduced[node] = semijoin(
                    reduced[node], reduced[child], execution=execution
                )
        if not reduced[node]:
            return False
    return all(bool(reduced[r]) for r in tree.roots)


def yannakakis_solve(
    instance: CSPInstance, *, execution: str | None = None
) -> dict[Any, Any] | None:
    """Construct a solution of an acyclic instance backtrack-freely.

    After the bottom-up pass, a top-down pass semijoin-reduces children by
    their parents; then a greedy descent picks, at each node, any row
    agreeing with the values chosen so far — full consistency guarantees it
    exists (the "backtrack-free search" of Section 5).  ``execution``
    selects the semijoin implementation as in
    :func:`yannakakis_is_solvable`; with the default hash-indexed semijoin,
    a relation reducing several children in the top-down pass builds its
    probe index once and reuses it for every child.
    """
    normalized, relations = _constraint_relations(instance)
    domain = sorted(normalized.domain, key=repr)
    if not normalized.constraints:
        if normalized.variables and not domain:
            return None
        return {v: domain[0] for v in normalized.variables}

    scopes = [frozenset(r.attributes) for r in relations]
    tree = join_tree(scopes)
    reduced = list(relations)

    bottom_up = tree.topological_order()
    children = tree.children()
    for node in bottom_up:
        for child in children[node]:
            reduced[node] = semijoin(
                reduced[node], reduced[child], execution=execution
            )
        if not reduced[node]:
            return None
    for node in reversed(bottom_up):  # top-down
        for child in children[node]:
            reduced[child] = semijoin(
                reduced[child], reduced[node], execution=execution
            )

    # Greedy descent: fix attributes node by node, parents before children.
    chosen: dict[str, Any] = {}
    for node in reversed(bottom_up):
        rel = reduced[node]
        fixed = [a for a in rel.attributes if a in chosen]
        row = next(
            (
                t
                for t in sorted(rel.tuples, key=repr)
                if all(t[rel.index_of(a)] == chosen[a] for a in fixed)
            ),
            None,
        )
        if row is None:
            raise DecompositionError(
                "internal error: full reducer left an inextensible row choice"
            )
        chosen.update(zip(rel.attributes, row))

    names = {f"v{i}": v for i, v in enumerate(normalized.variables)}
    assignment = {names[a]: value for a, value in chosen.items()}
    for v in normalized.variables:
        if v not in assignment:
            if not domain:
                return None
            assignment[v] = domain[0]
    return assignment
