"""Hypertree width and generalized hypertree decompositions.

Gottlob–Leone–Scarcello (end of Section 6) introduce *hypertree width*:
decompositions whose bags are covered by at most ``k`` hyperedges; CSPs of
bounded hypertree width are tractable and the notion dominates both
treewidth and querywidth.  Exactly computing hypertree width is itself
hard beyond small ``k``, so this module provides the standard sandwich:

* **exact width 1** — hypertree width 1 coincides with α-acyclicity, decided
  by the GYO reduction;
* **upper bound** — any tree decomposition of the primal graph plus an
  optimal per-bag hyperedge cover is a generalized hypertree decomposition,
  so its maximal cover size bounds ghw (and ghw ≤ hw ≤ 3·ghw+1 in general;
  for our bound the decomposition itself is returned as a certificate);
* **lower bound** — 1, or 2 when the hypergraph is cyclic.

Benchmark E6 uses these to reproduce the paper's qualitative comparison of
the width notions (clique: tw = n−1 but ghw = 1; cycle: tw = 2 = ghw; …).
"""

from __future__ import annotations

from itertools import combinations
from typing import Any

from repro.csp.instance import CSPInstance
from repro.errors import DecompositionError
from repro.width.acyclic import is_acyclic
from repro.width.gaifman import instance_hypergraph
from repro.width.graph import Graph
from repro.width.treedecomp import TreeDecomposition, heuristic_decomposition

__all__ = [
    "minimum_edge_cover",
    "HypertreeDecomposition",
    "hypertree_width_upper_bound",
    "hypertree_width_lower_bound",
    "exact_generalized_hypertree_width",
    "hypertree_width_interval",
    "instance_hypertree_interval",
]


def minimum_edge_cover(
    bag: frozenset[Any], hyperedges: list[frozenset[Any]]
) -> list[int] | None:
    """A minimum-cardinality set of hyperedges whose union covers ``bag``.

    Exact branch-and-bound set cover (bags are small — one per decomposition
    node).  Returns hyperedge indices, or ``None`` if the bag has a vertex in
    no hyperedge.
    """
    useful = [
        (i, bag & e) for i, e in enumerate(hyperedges) if bag & e
    ]
    covered_all = frozenset().union(*(c for _, c in useful)) if useful else frozenset()
    if not bag <= covered_all:
        return None
    for size in range(1, len(useful) + 1):
        for combo in combinations(useful, size):
            union: set[Any] = set()
            for _, contribution in combo:
                union |= contribution
            if bag <= union:
                return [i for i, _ in combo]
    return None  # unreachable: the full set covers


class HypertreeDecomposition:
    """A generalized hypertree decomposition: a tree decomposition together
    with, for each node, a cover of its bag by hyperedges.  Its width is the
    largest cover size."""

    __slots__ = ("decomposition", "covers", "hyperedges")

    def __init__(
        self,
        decomposition: TreeDecomposition,
        covers: dict[Any, list[int]],
        hyperedges: list[frozenset[Any]],
    ):
        self.decomposition = decomposition
        self.covers = covers
        self.hyperedges = hyperedges

    @property
    def width(self) -> int:
        return max((len(c) for c in self.covers.values()), default=0)

    def is_valid(self) -> bool:
        """Covers must actually cover their bags."""
        for node, cover in self.covers.items():
            bag = self.decomposition.bag(node)
            union: set[Any] = set()
            for i in cover:
                union |= self.hyperedges[i]
            if not bag <= union:
                return False
        return True

    def __repr__(self) -> str:
        return f"HypertreeDecomposition(width={self.width})"


def _primal_graph(hyperedges: list[frozenset[Any]]) -> Graph:
    g = Graph()
    for e in hyperedges:
        elems = sorted(e, key=repr)
        for v in elems:
            g.add_vertex(v)
        for i, u in enumerate(elems):
            for v in elems[i + 1 :]:
                g.add_edge(u, v)
    return g


def hypertree_width_upper_bound(
    hyperedges: list[frozenset[Any]],
) -> HypertreeDecomposition:
    """A generalized hypertree decomposition witnessing an upper bound.

    Built from a heuristic tree decomposition of the primal graph with an
    exact minimum edge cover per bag.
    """
    nonempty = [e for e in hyperedges if e]
    if not nonempty:
        raise DecompositionError("cannot decompose a hypergraph with no nonempty edges")
    graph = _primal_graph(nonempty)
    td = heuristic_decomposition(graph)
    covers: dict[Any, list[int]] = {}
    for node, bag in td.bags.items():
        cover = minimum_edge_cover(bag, nonempty)
        if cover is None:
            raise DecompositionError(f"bag {set(bag)!r} not coverable by hyperedges")
        covers[node] = cover
    return HypertreeDecomposition(td, covers, nonempty)


def exact_generalized_hypertree_width(
    hyperedges: list[frozenset[Any]], max_vertices: int = 12
) -> int:
    """Exact generalized hypertree width, for small hypergraphs.

    Uses the elimination-order characterization: every tree decomposition
    refines to one generated by an elimination order whose bags are subsets
    of the original bags, and the cover number is monotone under ⊆ — so

        ghw(H) = min over elimination orders of max bag cover number

    computed by memoized branch-and-bound over orders (exponential in the
    number of vertices; guarded by ``max_vertices``).
    """
    from repro.width.graph import Graph

    nonempty = [e for e in hyperedges if e]
    if not nonempty:
        return 0
    vertices = {v for e in nonempty for v in e}
    if len(vertices) > max_vertices:
        raise DecompositionError(
            f"{len(vertices)} vertices exceed max_vertices={max_vertices}; "
            "use hypertree_width_interval for bounds"
        )
    if is_acyclic(nonempty):
        return 1

    graph = _primal_graph(nonempty)
    cover_cache: dict[frozenset, int] = {}

    def cover_size(bag: frozenset) -> int:
        if bag not in cover_cache:
            cover = minimum_edge_cover(bag, nonempty)
            cover_cache[bag] = len(cover) if cover is not None else len(bag)
        return cover_cache[bag]

    memo: dict[frozenset, int] = {}
    upper = hypertree_width_upper_bound(nonempty).width

    def eliminate(g: "Graph", v: Any) -> "Graph":
        h = g.copy()
        nbrs = sorted(h.neighbors(v), key=repr)
        for i, a in enumerate(nbrs):
            for b in nbrs[i + 1 :]:
                h.add_edge(a, b)
        h.remove_vertex(v)
        return h

    def search(g: "Graph", bound: int) -> int:
        if g.num_vertices() == 0:
            return 1
        key = frozenset(g.edges()) | frozenset((v,) for v in g.vertices)
        if key in memo:
            return memo[key]
        best = cover_size(frozenset(g.vertices))  # eliminate into one bag
        for v in sorted(g.vertices, key=repr):
            bag = frozenset(g.neighbors(v) | {v})
            c = cover_size(bag)
            if c >= best or c > bound:
                continue
            sub = search(eliminate(g, v), min(bound, best))
            best = min(best, max(c, sub))
        memo[key] = best
        return best

    return min(upper, search(graph, upper))


def hypertree_width_lower_bound(hyperedges: list[frozenset[Any]]) -> int:
    """1 for acyclic hypergraphs (exact there); 2 for cyclic ones."""
    nonempty = [e for e in hyperedges if e]
    if not nonempty:
        return 0
    return 1 if is_acyclic(nonempty) else 2


def hypertree_width_interval(
    hyperedges: list[frozenset[Any]],
) -> tuple[int, int]:
    """``(lower, upper)`` bounds on generalized hypertree width.

    The interval collapses (lower == upper) exactly on acyclic hypergraphs
    and on cyclic ones whose heuristic bound is 2 — which covers every
    workload in the E6 benchmark.
    """
    nonempty = [e for e in hyperedges if e]
    if not nonempty:
        return 0, 0
    lower = hypertree_width_lower_bound(nonempty)
    if lower == 1:
        return 1, 1  # acyclic: ghw = hw = 1 exactly
    upper = hypertree_width_upper_bound(nonempty).width
    return lower, max(lower, upper)


def instance_hypertree_interval(instance: CSPInstance) -> tuple[int, int]:
    """Hypertree-width bounds for a CSP instance's constraint hypergraph."""
    return hypertree_width_interval(instance_hypergraph(instance))
