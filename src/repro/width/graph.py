"""A minimal undirected-graph type used by the width machinery.

The library core is dependency-free, so this small adjacency-set graph backs
the Gaifman-graph construction, elimination-order treewidth algorithms, and
bipartiteness tests.  (networkx is used only in the test suite, as an
independent oracle.)
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Iterator

__all__ = ["Graph"]


class Graph:
    """A simple undirected graph with hashable vertices, no self-loops."""

    __slots__ = ("_adj",)

    def __init__(
        self,
        vertices: Iterable[Hashable] = (),
        edges: Iterable[tuple[Hashable, Hashable]] = (),
    ):
        self._adj: dict[Any, set[Any]] = {}
        for v in vertices:
            self.add_vertex(v)
        for u, v in edges:
            self.add_edge(u, v)

    # -- mutation ------------------------------------------------------------

    def add_vertex(self, v: Hashable) -> None:
        self._adj.setdefault(v, set())

    def add_edge(self, u: Hashable, v: Hashable) -> None:
        """Add an undirected edge (self-loops are ignored)."""
        self.add_vertex(u)
        self.add_vertex(v)
        if u != v:
            self._adj[u].add(v)
            self._adj[v].add(u)

    def remove_vertex(self, v: Hashable) -> None:
        for u in self._adj.pop(v, ()):
            self._adj[u].discard(v)

    # -- queries ---------------------------------------------------------------

    @property
    def vertices(self) -> frozenset:
        return frozenset(self._adj)

    def edges(self) -> Iterator[tuple[Any, Any]]:
        seen = set()
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if (v, u) not in seen:
                    seen.add((u, v))
                    yield u, v

    def neighbors(self, v: Hashable) -> frozenset:
        return frozenset(self._adj.get(v, ()))

    def degree(self, v: Hashable) -> int:
        return len(self._adj.get(v, ()))

    def has_edge(self, u: Hashable, v: Hashable) -> bool:
        return v in self._adj.get(u, ())

    def num_vertices(self) -> int:
        return len(self._adj)

    def num_edges(self) -> int:
        return sum(len(n) for n in self._adj.values()) // 2

    def copy(self) -> "Graph":
        g = Graph()
        g._adj = {v: set(nbrs) for v, nbrs in self._adj.items()}
        return g

    def subgraph(self, vertices: Iterable[Hashable]) -> "Graph":
        keep = set(vertices) & set(self._adj)
        g = Graph(vertices=keep)
        for u in keep:
            for v in self._adj[u]:
                if v in keep:
                    g.add_edge(u, v)
        return g

    # -- standard algorithms -------------------------------------------------

    def connected_components(self) -> list[frozenset]:
        """The vertex sets of the connected components."""
        seen: set[Any] = set()
        components = []
        for start in self._adj:
            if start in seen:
                continue
            stack = [start]
            comp = set()
            while stack:
                v = stack.pop()
                if v in comp:
                    continue
                comp.add(v)
                stack.extend(self._adj[v] - comp)
            seen |= comp
            components.append(frozenset(comp))
        return components

    def is_connected(self) -> bool:
        return len(self.connected_components()) <= 1

    def is_bipartite(self) -> bool:
        """Two-colorability by BFS layering."""
        return self.bipartition() is not None

    def bipartition(self) -> tuple[frozenset, frozenset] | None:
        """A 2-coloring ``(left, right)`` of the vertices, or ``None``."""
        color: dict[Any, int] = {}
        for start in self._adj:
            if start in color:
                continue
            color[start] = 0
            queue = [start]
            while queue:
                v = queue.pop()
                for u in self._adj[v]:
                    if u not in color:
                        color[u] = 1 - color[v]
                        queue.append(u)
                    elif color[u] == color[v]:
                        return None
        left = frozenset(v for v, c in color.items() if c == 0)
        right = frozenset(v for v, c in color.items() if c == 1)
        return left, right

    def is_tree(self) -> bool:
        """Connected and acyclic (the empty graph counts as a tree)."""
        n = self.num_vertices()
        if n == 0:
            return True
        return self.is_connected() and self.num_edges() == n - 1

    def __repr__(self) -> str:
        return f"Graph(|V|={self.num_vertices()}, |E|={self.num_edges()})"
