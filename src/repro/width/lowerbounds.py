"""Treewidth lower bounds.

Companions to the exact branch-and-bound and heuristic upper bounds in
:mod:`repro.width.treedecomp`: cheap certified lower bounds sandwich the
exact value in tests, and seed the exact search's pruning.

* **degeneracy** — the maximum over subgraphs of the minimum degree; every
  tree decomposition of width w yields an elimination order with back-degree
  ≤ w, so degeneracy ≤ treewidth;
* **clique number** — a clique of size ω must fit inside one bag, so
  ω − 1 ≤ treewidth (exact search for small graphs, greedy otherwise);
* **MMD+** — the "minor-min-degree" improvement of degeneracy: repeatedly
  delete a minimum-degree vertex after *contracting* it into its
  least-degree neighbour; contraction preserves minors, and treewidth is
  minor-monotone.
"""

from __future__ import annotations

from itertools import combinations
from typing import Any

from repro.width.graph import Graph

__all__ = [
    "degeneracy",
    "clique_number",
    "clique_lower_bound",
    "mmd_plus_lower_bound",
    "treewidth_lower_bound",
]


def degeneracy(graph: Graph) -> int:
    """The degeneracy: max over elimination of the minimum degree (0 for the
    empty graph)."""
    work = graph.copy()
    best = 0
    while work.num_vertices():
        v = min(sorted(work.vertices, key=repr), key=work.degree)
        best = max(best, work.degree(v))
        work.remove_vertex(v)
    return best


def clique_number(graph: Graph, exact_limit: int = 25) -> int:
    """The clique number ω — exact for graphs with at most ``exact_limit``
    vertices (branch and bound), greedy beyond (still a valid lower bound).
    """
    vertices = sorted(graph.vertices, key=repr)
    if not vertices:
        return 0
    if len(vertices) > exact_limit:
        return _greedy_clique(graph)

    best = [1]

    def extend(clique: list[Any], candidates: list[Any]) -> None:
        if len(clique) + len(candidates) <= best[0]:
            return
        if not candidates:
            best[0] = max(best[0], len(clique))
            return
        for i, v in enumerate(candidates):
            if len(clique) + len(candidates) - i <= best[0]:
                break
            nbrs = graph.neighbors(v)
            extend(clique + [v], [u for u in candidates[i + 1 :] if u in nbrs])

    extend([], vertices)
    return best[0]


def _greedy_clique(graph: Graph) -> int:
    order = sorted(graph.vertices, key=lambda v: -graph.degree(v))
    clique: set[Any] = set()
    for v in order:
        if clique <= graph.neighbors(v):
            clique.add(v)
    return max(1, len(clique))


def clique_lower_bound(graph: Graph) -> int:
    """ω − 1 ≤ treewidth (a clique must sit inside one bag)."""
    if not graph.vertices:
        return -1
    return clique_number(graph) - 1


def mmd_plus_lower_bound(graph: Graph) -> int:
    """The MMD+ lower bound: like degeneracy, but the removed minimum-degree
    vertex is *contracted* into its least-degree neighbour (a minor, so the
    bound stays valid); dominates plain degeneracy."""
    work = graph.copy()
    best = 0
    while work.num_vertices() > 1:
        v = min(sorted(work.vertices, key=repr), key=work.degree)
        best = max(best, work.degree(v))
        nbrs = sorted(work.neighbors(v), key=repr)
        if not nbrs:
            work.remove_vertex(v)
            continue
        target = min(nbrs, key=work.degree)
        for u in nbrs:
            if u != target:
                work.add_edge(target, u)
        work.remove_vertex(v)
    return best


def treewidth_lower_bound(graph: Graph) -> int:
    """The best of the implemented lower bounds (−1 for the empty graph)."""
    if not graph.vertices:
        return -1
    return max(
        degeneracy(graph),
        clique_lower_bound(graph),
        mmd_plus_lower_bound(graph),
    )
