"""Querywidth (Chekuri–Rajaraman) bounds.

Section 6 reports two facts about query decompositions that this module
operationalizes:

* ``CSP(Q(k), F)`` is tractable for bounded querywidth ``k``;
* a tree decomposition of the *incidence graph* of a query is also a query
  decomposition, so the incidence treewidth strictly upper-bounds the
  querywidth — while *recognizing* querywidth 4 is NP-complete, which is why
  we work with bounds rather than an exact recognizer.

The sandwich offered: querywidth 1 ⟺ acyclicity (exact), and an upper bound
read off a heuristic incidence-graph tree decomposition: each bag is charged
the number of constraint-side vertices it contains, plus (when necessary)
one covering atom per variable-side vertex not already covered by those
atoms; the maximum charge over bags bounds the querywidth.
"""

from __future__ import annotations

from typing import Any

from repro.csp.instance import CSPInstance
from repro.width.acyclic import is_acyclic
from repro.width.gaifman import incidence_graph, instance_hypergraph
from repro.width.treedecomp import heuristic_decomposition, treewidth_exact

__all__ = [
    "QueryDecomposition",
    "incidence_treewidth",
    "query_decomposition_from_incidence",
    "query_width_upper_bound",
    "query_width_lower_bound",
    "query_width_interval",
]


class QueryDecomposition:
    """A query decomposition in the Chekuri–Rajaraman sense: a tree whose
    nodes are labeled by sets of *atoms* (constraint indices) and loose
    *variables*, such that

    1. every atom appears in some node label;
    2. for every atom, the nodes whose label contains it (as an atom) or
       contains one of its variables form a connected subtree;
    3. for every variable, the nodes whose label *covers* it (mentions it
       loosely or via an atom) form a connected subtree.

    Width = the maximum total label size — atoms **plus** loose variables
    (the Gottlob–Leone–Scarcello reading of Chekuri–Rajaraman's definition,
    under which querywidth 1 coincides with acyclicity).
    """

    __slots__ = ("atoms_of", "variables_of", "tree", "scopes")

    def __init__(
        self,
        atoms_of: dict[Any, frozenset[int]],
        variables_of: dict[Any, frozenset[Any]],
        edges: list[tuple[Any, Any]],
        scopes: list[frozenset[Any]],
    ):
        from repro.errors import DecompositionError
        from repro.width.graph import Graph

        self.atoms_of = {n: frozenset(a) for n, a in atoms_of.items()}
        self.variables_of = {n: frozenset(v) for n, v in variables_of.items()}
        self.scopes = list(scopes)
        self.tree = Graph(vertices=self.atoms_of, edges=edges)
        if not self.tree.is_tree():
            raise DecompositionError("query decomposition edges must form a tree")

    @property
    def width(self) -> int:
        return max(
            (
                len(self.atoms_of[n]) + len(self.variables_of[n])
                for n in self.atoms_of
            ),
            default=0,
        )

    def _covers_variable(self, node: Any, variable: Any) -> bool:
        if variable in self.variables_of[node]:
            return True
        return any(variable in self.scopes[i] for i in self.atoms_of[node])

    def is_valid(self) -> bool:
        """Check the three conditions above."""
        nodes = list(self.atoms_of)
        # 1. atom coverage
        covered = set()
        for atoms in self.atoms_of.values():
            covered |= atoms
        if covered != set(range(len(self.scopes))):
            return False
        # 2. connectedness per atom (nodes listing the atom)
        for i in range(len(self.scopes)):
            where = [n for n in nodes if i in self.atoms_of[n]]
            if where and not self.tree.subgraph(where).is_connected():
                return False
        # 3. connectedness per variable
        variables = {v for s in self.scopes for v in s}
        for v in variables:
            where = [n for n in nodes if self._covers_variable(n, v)]
            if where and not self.tree.subgraph(where).is_connected():
                return False
        return True


def query_decomposition_from_incidence(instance: CSPInstance) -> "QueryDecomposition":
    """Chekuri–Rajaraman's construction, executed: a tree decomposition of
    the incidence graph *is* a query decomposition — constraint-side bag
    members become atoms, variable-side members loose variables."""
    from repro.width.treedecomp import heuristic_decomposition

    instance = instance.normalize()
    scopes = [frozenset(c.scope) for c in instance.constraints]
    graph = incidence_graph(instance)
    td = heuristic_decomposition(graph)
    atoms_of: dict[Any, frozenset[int]] = {}
    variables_of: dict[Any, frozenset[Any]] = {}
    for node, bag in td.bags.items():
        atoms = frozenset(
            member[1]
            for member in bag
            if isinstance(member, tuple) and member and member[0] == "constraint"
        )
        loose = frozenset(
            member
            for member in bag
            if not (isinstance(member, tuple) and member and member[0] == "constraint")
        )
        atoms_of[node] = atoms
        variables_of[node] = loose
    return QueryDecomposition(atoms_of, variables_of, td.edges, scopes)


def incidence_treewidth(instance: CSPInstance, exact: bool = False) -> int:
    """Treewidth of the instance's incidence graph (variables vs constraints)."""
    graph = incidence_graph(instance)
    if not graph.vertices:
        return -1
    if exact:
        return treewidth_exact(graph)
    return heuristic_decomposition(graph).width


def query_width_upper_bound(instance: CSPInstance) -> int:
    """An upper bound on the querywidth from the incidence-graph
    decomposition (Chekuri–Rajaraman's construction).

    Each incidence bag is converted to a query-decomposition node: its
    constraint vertices stay as atoms, and each uncovered variable vertex is
    covered by one additional atom mentioning it (or counts as a singleton
    when no constraint mentions it at all)."""
    instance = instance.normalize()
    if not instance.constraints:
        return 0
    graph = incidence_graph(instance)
    td = heuristic_decomposition(graph)
    scopes = [frozenset(c.scope) for c in instance.constraints]

    def atoms_for(bag: frozenset[Any]) -> int:
        atoms = {node[1] for node in bag if isinstance(node, tuple) and node[0] == "constraint"}
        covered: set[Any] = set()
        for i in atoms:
            covered |= scopes[i]
        extra = 0
        for v in bag:
            if isinstance(v, tuple) and v and v[0] == "constraint":
                continue
            if v in covered:
                continue
            home = next((i for i, s in enumerate(scopes) if v in s), None)
            if home is None:
                extra += 1  # isolated variable: counts as its own singleton atom
            else:
                atoms.add(home)
                covered |= scopes[home]
        return len(atoms) + extra

    return max(atoms_for(bag) for bag in td.bags.values())


def query_width_lower_bound(instance: CSPInstance) -> int:
    """1 when the constraint hypergraph is acyclic (then exact); else 2."""
    instance = instance.normalize()
    edges = [e for e in instance_hypergraph(instance) if e]
    if not edges:
        return 0
    return 1 if is_acyclic(edges) else 2


def query_width_interval(instance: CSPInstance) -> tuple[int, int]:
    """``(lower, upper)`` querywidth bounds; collapses on acyclic inputs."""
    lower = query_width_lower_bound(instance)
    if lower <= 1:
        return lower, lower
    upper = query_width_upper_bound(instance)
    return lower, max(lower, upper)
