"""Schaefer's dichotomy for Boolean constraint satisfaction (Section 3).

Schaefer [50] proved that ``CSP(B)`` for a Boolean structure ``B`` is
polynomial-time solvable when ``B`` falls in one of six classes — and
NP-complete otherwise.  The six classes, with their modern polymorphism
characterizations used by :func:`classify`:

=================  ==========================================  ==============
class              definition                                  recognized by
=================  ==========================================  ==============
0-valid            every relation contains the all-0 tuple     direct check
1-valid            every relation contains the all-1 tuple     direct check
Horn               every relation closed under AND (min)       polymorphism
dual-Horn          every relation closed under OR (max)        polymorphism
bijunctive         every relation closed under majority        polymorphism
affine             every relation closed under x⊕y⊕z           polymorphism
=================  ==========================================  ==============

This explains the tractability of Horn-SAT, 2-SAT, affine satisfiability,
and the NP-completeness of e.g. One-in-Three SAT (whose relation lies in
none of the classes) — benchmark E7 exercises both sides.
"""

from __future__ import annotations

import enum
from typing import Iterable

from repro.csp.instance import CSPInstance
from repro.dichotomy.polymorphisms import (
    boolean_max,
    boolean_min,
    majority,
    minority,
    relation_closed_under,
)
from repro.errors import DomainError
from repro.relational.structure import Structure

__all__ = ["SchaeferClass", "classify_relations", "classify", "classify_instance", "is_tractable"]

BOOLEAN_DOMAIN = frozenset({0, 1})


class SchaeferClass(enum.Enum):
    """The six tractable classes of Schaefer's dichotomy theorem."""

    ZERO_VALID = "0-valid"
    ONE_VALID = "1-valid"
    HORN = "horn"
    DUAL_HORN = "dual-horn"
    BIJUNCTIVE = "bijunctive"
    AFFINE = "affine"


def _check_boolean(relations: Iterable[frozenset[tuple]]) -> list[frozenset[tuple]]:
    rels = [frozenset(map(tuple, r)) for r in relations]
    for r in rels:
        for row in r:
            if not set(row) <= BOOLEAN_DOMAIN:
                raise DomainError(f"non-Boolean value in relation row {row!r}")
    return rels


def classify_relations(
    relations: Iterable[frozenset[tuple]],
) -> frozenset[SchaeferClass]:
    """All Schaefer classes containing *every* given relation.

    Empty relations belong to every class (they never witness failure);
    templates with only empty relations are trivially everything.
    """
    rels = _check_boolean(relations)
    found = set()
    # Note: an *empty* relation is vacuously closed under every operation
    # (so it is Horn, dual-Horn, bijunctive, affine) but is not 0- or
    # 1-valid — it contains no tuple at all.
    if all(r and (0,) * _width(r) in r for r in rels):
        found.add(SchaeferClass.ZERO_VALID)
    if all(r and (1,) * _width(r) in r for r in rels):
        found.add(SchaeferClass.ONE_VALID)
    if all(relation_closed_under(r, boolean_min, 2) for r in rels):
        found.add(SchaeferClass.HORN)
    if all(relation_closed_under(r, boolean_max, 2) for r in rels):
        found.add(SchaeferClass.DUAL_HORN)
    if all(relation_closed_under(r, majority, 3) for r in rels):
        found.add(SchaeferClass.BIJUNCTIVE)
    if all(relation_closed_under(r, minority, 3) for r in rels):
        found.add(SchaeferClass.AFFINE)
    return frozenset(found)


def _width(relation: frozenset[tuple]) -> int:
    return len(next(iter(relation)))


def classify(template: Structure) -> frozenset[SchaeferClass]:
    """Classify a Boolean template structure (domain must be ⊆ {0, 1})."""
    if not template.domain <= BOOLEAN_DOMAIN:
        raise DomainError("Schaefer classification requires a Boolean domain")
    return classify_relations(
        template.relation(symbol) for symbol in template.vocabulary
    )


def classify_instance(instance: CSPInstance) -> frozenset[SchaeferClass]:
    """Classify the set of relations used by a Boolean CSP instance."""
    if not instance.domain <= BOOLEAN_DOMAIN:
        raise DomainError("Schaefer classification requires a Boolean domain")
    return classify_relations(c.relation for c in instance.constraints)


def is_tractable(classes: frozenset[SchaeferClass]) -> bool:
    """Schaefer's dichotomy: tractable iff at least one class applies;
    NP-complete otherwise."""
    return bool(classes)
