"""H-coloring and the Hell–Nešetřil dichotomy (Section 3).

For an undirected graph ``H``, the ``H``-coloring problem ``CSP(H)`` asks
whether an input graph ``G`` maps homomorphically into ``H``.  Hell and
Nešetřil [33] proved the dichotomy: polynomial when ``H`` is 2-colorable
(bipartite) — or trivial when ``H`` has a loop — and NP-complete otherwise.
Since ``CSP(K_k)`` is k-colorability, this subsumes the coloring hierarchy.

Graphs here are :class:`repro.width.graph.Graph` objects plus an optional
set of looped vertices; converters to/from symmetric binary structures let
the generic homomorphism machinery interoperate.
"""

from __future__ import annotations

import enum
from typing import Any

from repro.relational.homomorphism import find_homomorphism
from repro.relational.structure import Structure
from repro.width.graph import Graph

__all__ = [
    "HColoringClass",
    "classify_target",
    "solve_hcoloring",
    "is_hcolorable",
    "graph_to_structure",
    "structure_to_graph",
]


class HColoringClass(enum.Enum):
    """Hell–Nešetřil classification of the target graph."""

    TRIVIAL = "trivial"  # H has a loop, or no edges: constant-time answers
    POLYNOMIAL = "polynomial"  # H bipartite with an edge: reduces to 2-coloring
    NP_COMPLETE = "np-complete"  # H loopless, non-bipartite


def graph_to_structure(graph: Graph, loops: frozenset = frozenset()) -> Structure:
    """An undirected graph as a structure with a symmetric binary ``E``."""
    edges = set()
    for u, v in graph.edges():
        edges.add((u, v))
        edges.add((v, u))
    for v in loops:
        edges.add((v, v))
    return Structure({"E": 2}, graph.vertices | loops, {"E": edges})


def structure_to_graph(structure: Structure) -> tuple[Graph, frozenset]:
    """Back from a symmetric binary structure to ``(graph, looped_vertices)``.

    The edge relation is symmetrized if it is not already.
    """
    g = Graph(vertices=structure.domain)
    loops = set()
    for u, v in structure.relation("E"):
        if u == v:
            loops.add(u)
        else:
            g.add_edge(u, v)
    return g, frozenset(loops)


def classify_target(h: Graph, loops: frozenset = frozenset()) -> HColoringClass:
    """Classify ``H`` per the Hell–Nešetřil dichotomy."""
    if loops or h.num_edges() == 0:
        return HColoringClass.TRIVIAL
    if h.is_bipartite():
        return HColoringClass.POLYNOMIAL
    return HColoringClass.NP_COMPLETE


def solve_hcoloring(
    g: Graph, h: Graph, h_loops: frozenset = frozenset()
) -> dict[Any, Any] | None:
    """Find an ``H``-coloring of ``G`` (a homomorphism ``G → H``), or ``None``.

    Dispatches on the dichotomy class of ``H``:

    * a loop in ``H`` absorbs everything;
    * an edgeless ``H`` admits a homomorphism iff ``G`` is edgeless (and
      ``H`` nonempty when ``G`` is not);
    * a bipartite ``H`` with an edge admits one iff ``G`` is bipartite —
      found by 2-coloring ``G`` onto any edge of ``H``;
    * otherwise (NP-complete side) backtracking homomorphism search.
    """
    klass = classify_target(h, h_loops)
    if klass is HColoringClass.TRIVIAL:
        if h_loops:
            loop = min(h_loops, key=repr)
            return {v: loop for v in g.vertices}
        # H edgeless and loopless.
        if g.num_edges() > 0:
            return None
        if g.vertices and not h.vertices:
            return None
        target = min(h.vertices, key=repr) if h.vertices else None
        return {v: target for v in g.vertices}
    if klass is HColoringClass.POLYNOMIAL:
        mapping: dict[Any, Any] = {}
        anchor_edge = next(iter(h.edges()))
        for component in g.connected_components():
            sub = g.subgraph(component)
            parts = sub.bipartition()
            if parts is None:
                return None
            left, right = parts
            for v in left:
                mapping[v] = anchor_edge[0]
            for v in right:
                mapping[v] = anchor_edge[1]
        return mapping
    # NP-complete side: generic search.
    return find_homomorphism(
        graph_to_structure(g), graph_to_structure(h, h_loops)
    )


def is_hcolorable(g: Graph, h: Graph, h_loops: frozenset = frozenset()) -> bool:
    """Decide ``CSP(H)`` on input ``G``."""
    return solve_hcoloring(g, h, h_loops) is not None
