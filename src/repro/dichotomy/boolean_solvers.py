"""Dedicated polynomial solvers for Schaefer's six tractable classes.

Each solver takes a Boolean :class:`~repro.csp.instance.CSPInstance` whose
relations belong to the corresponding class and produces a solution (or
``None``), in polynomial time:

* 0-valid / 1-valid — the constant assignment;
* Horn (min-closed) — generalized arc consistency, then the minimum of each
  filtered domain (sound because min-closed relations keep coordinatewise
  minima of supports);
* dual-Horn (max-closed) — dually, the maximum;
* bijunctive (majority-closed) — translate every relation into its
  equivalent set of ≤2-clauses and run 2-SAT on the implication graph;
* affine (minority-closed) — extract the linear system over GF(2) each
  relation is the solution set of, and Gauss-eliminate.

:func:`solve_boolean` classifies the instance and dispatches, falling back
to backtracking when no class applies — the executable form of the
dichotomy's tractable side (benchmark E7).
"""

from __future__ import annotations

from itertools import product
from typing import Any

from repro.consistency.arc import ac3
from repro.csp.instance import Constraint, CSPInstance
from repro.dichotomy.cnf import CNF, two_sat
from repro.dichotomy.schaefer import SchaeferClass, classify_instance
from repro.errors import DomainError, SolverError

__all__ = [
    "solve_zero_valid",
    "solve_one_valid",
    "solve_horn",
    "solve_dual_horn",
    "solve_bijunctive",
    "solve_affine",
    "relation_to_2cnf_clauses",
    "relation_to_linear_system",
    "solve_boolean",
]


def _check_boolean_instance(instance: CSPInstance) -> CSPInstance:
    if not instance.domain <= {0, 1}:
        raise DomainError("Boolean solvers require domain ⊆ {0, 1}")
    return instance.normalize()


def solve_zero_valid(instance: CSPInstance) -> dict[Any, int]:
    """The all-0 assignment (valid whenever every relation is 0-valid)."""
    instance = _check_boolean_instance(instance)
    assignment = {v: 0 for v in instance.variables}
    if not instance.is_solution(assignment):
        raise SolverError("instance is not 0-valid")
    return assignment


def solve_one_valid(instance: CSPInstance) -> dict[Any, int]:
    """The all-1 assignment (valid whenever every relation is 1-valid)."""
    instance = _check_boolean_instance(instance)
    assignment = {v: 1 for v in instance.variables}
    if not instance.is_solution(assignment):
        raise SolverError("instance is not 1-valid")
    return assignment


def _solve_lattice(instance: CSPInstance, pick_min: bool) -> dict[Any, int] | None:
    instance = _check_boolean_instance(instance)
    result = ac3(instance)
    if not result.consistent:
        return None
    choose = min if pick_min else max
    assignment = {v: choose(result.domains[v]) for v in instance.variables}
    if not instance.is_solution(assignment):
        raise SolverError(
            "lattice solver produced an invalid assignment; "
            "are all relations min-/max-closed?"
        )
    return assignment


def solve_horn(instance: CSPInstance) -> dict[Any, int] | None:
    """Solve a min-closed (Horn) Boolean instance: GAC then minima."""
    return _solve_lattice(instance, pick_min=True)


def solve_dual_horn(instance: CSPInstance) -> dict[Any, int] | None:
    """Solve a max-closed (dual-Horn) Boolean instance: GAC then maxima."""
    return _solve_lattice(instance, pick_min=False)


def relation_to_2cnf_clauses(
    scope: tuple[Any, ...], relation: frozenset[tuple[int, ...]]
) -> list[tuple[tuple[Any, int], ...]] | None:
    """The ≤2-clauses (over ``(variable, sign)`` literals; sign 1 = positive)
    entailed by the constraint, or ``None`` if their conjunction is strictly
    weaker than the relation — which happens exactly when the relation is
    not bijunctive."""
    arity = len(scope)
    clauses: list[tuple[tuple[Any, int], ...]] = []
    # Candidate clauses over at most two scope positions.
    candidates: list[list[tuple[int, int]]] = []  # [(position, sign)]
    for i in range(arity):
        for si in (0, 1):
            candidates.append([(i, si)])
            for j in range(i + 1, arity):
                for sj in (0, 1):
                    candidates.append([(i, si), (j, sj)])
    entailed = []
    for cand in candidates:
        if all(any(row[pos] == sign for pos, sign in cand) for row in relation):
            entailed.append(cand)
    # Check the conjunction of entailed clauses is exactly the relation.
    allowed = set()
    for row in product((0, 1), repeat=arity):
        if all(any(row[pos] == sign for pos, sign in c) for c in entailed):
            allowed.add(row)
    if relation and allowed != set(relation):
        return None
    if not relation:
        return None  # the empty relation is not expressible as 2-CNF
    for cand in entailed:
        clauses.append(tuple((scope[pos], sign) for pos, sign in cand))
    return clauses


def solve_bijunctive(instance: CSPInstance) -> dict[Any, int] | None:
    """Solve a majority-closed Boolean instance via 2-CNF translation + SCC."""
    instance = _check_boolean_instance(instance)
    var_ids = {v: i + 1 for i, v in enumerate(instance.variables)}
    int_clauses: list[tuple[int, ...]] = []
    for c in instance.constraints:
        if not c.relation:
            return None
        clauses = relation_to_2cnf_clauses(c.scope, c.relation)
        if clauses is None:
            raise SolverError(
                f"constraint on {c.scope!r} is not bijunctive (no 2-CNF equivalent)"
            )
        for clause in clauses:
            int_clauses.append(
                tuple(var_ids[v] if sign else -var_ids[v] for v, sign in clause)
            )
    model = two_sat(CNF(int_clauses))
    if model is None:
        return None
    assignment = {v: int(model.get(var_ids[v], False)) for v in instance.variables}
    if not instance.is_solution(assignment):
        raise SolverError("2-SAT model violates the original instance")
    return assignment


def relation_to_linear_system(
    scope: tuple[Any, ...], relation: frozenset[tuple[int, ...]]
) -> list[tuple[tuple[Any, ...], int]] | None:
    """Linear equations over GF(2) whose solution set equals the relation, or
    ``None`` when no such system exists (the relation is not affine).

    Each equation is ``(variables-with-coefficient-1, constant)``; candidate
    equations over the scope are enumerated (2^arity coefficient vectors) and
    kept when satisfied by every row.
    """
    arity = len(scope)
    if not relation:
        return None  # the empty relation is not an affine subspace
    equations: list[tuple[tuple[int, ...], int]] = []
    for coeffs in product((0, 1), repeat=arity):
        if not any(coeffs):
            continue
        values = {sum(c * row[i] for i, c in enumerate(coeffs)) % 2 for row in relation}
        if len(values) == 1:
            equations.append((coeffs, values.pop()))
    # The system's solution set must be exactly the relation.
    solutions = set()
    for row in product((0, 1), repeat=arity):
        if all(
            sum(c * row[i] for i, c in enumerate(coeffs)) % 2 == rhs
            for coeffs, rhs in equations
        ):
            solutions.add(row)
    if solutions != set(relation):
        return None
    return [
        (tuple(scope[i] for i, c in enumerate(coeffs) if c), rhs)
        for coeffs, rhs in equations
    ]


def solve_affine(instance: CSPInstance) -> dict[Any, int] | None:
    """Solve a minority-closed Boolean instance by GF(2) Gaussian elimination."""
    instance = _check_boolean_instance(instance)
    variables = list(instance.variables)
    var_index = {v: i for i, v in enumerate(variables)}
    n = len(variables)

    rows: list[list[int]] = []  # each row: n coefficients + rhs
    for c in instance.constraints:
        system = relation_to_linear_system(c.scope, c.relation)
        if system is None:
            if not c.relation:
                return None
            raise SolverError(f"constraint on {c.scope!r} is not affine")
        for vars_with_one, rhs in system:
            row = [0] * (n + 1)
            for v in vars_with_one:
                row[var_index[v]] ^= 1
            row[n] = rhs
            rows.append(row)

    # Gaussian elimination over GF(2).
    pivot_of_col: dict[int, int] = {}
    rank = 0
    for col in range(n):
        pivot = next((r for r in range(rank, len(rows)) if rows[r][col]), None)
        if pivot is None:
            continue
        rows[rank], rows[pivot] = rows[pivot], rows[rank]
        for r in range(len(rows)):
            if r != rank and rows[r][col]:
                rows[r] = [a ^ b for a, b in zip(rows[r], rows[rank])]
        pivot_of_col[col] = rank
        rank += 1
    for r in range(rank, len(rows)):
        if rows[r][n]:
            return None  # 0 = 1
    assignment = {v: 0 for v in variables}
    for col, r in pivot_of_col.items():
        assignment[variables[col]] = rows[r][n]
    if not instance.is_solution(assignment):
        raise SolverError("affine solver produced an invalid assignment")
    return assignment


def solve_boolean(instance: CSPInstance) -> dict[Any, int] | None:
    """Classify and dispatch: the executable tractable side of the dichotomy.

    Falls back to MAC backtracking when the instance's relations lie in none
    of the six classes (the NP-complete side).
    """
    instance = _check_boolean_instance(instance)
    classes = classify_instance(instance)
    if SchaeferClass.ZERO_VALID in classes:
        return solve_zero_valid(instance)
    if SchaeferClass.ONE_VALID in classes:
        return solve_one_valid(instance)
    if SchaeferClass.HORN in classes:
        return solve_horn(instance)
    if SchaeferClass.DUAL_HORN in classes:
        return solve_dual_horn(instance)
    if SchaeferClass.BIJUNCTIVE in classes:
        return solve_bijunctive(instance)
    if SchaeferClass.AFFINE in classes:
        return solve_affine(instance)
    from repro.csp.solvers import backtracking

    return backtracking.solve(instance)
