"""CNF formulas and the classical satisfiability algorithms.

The concrete problems Schaefer's theorem organizes — Horn-SAT, 2-SAT,
affine SAT, One-in-Three SAT — live naturally in clausal form.  This module
provides a small CNF type (clauses of signed integer literals, DIMACS
convention: variable ``v`` positive, ``-v`` negated), the classical
polynomial algorithms (unit propagation for Horn, implication-graph SCC for
2-SAT), a DPLL solver for the general case, and converters to CSP instances
so the two views can be differentially tested.
"""

from __future__ import annotations

from itertools import product
from typing import Iterable, Sequence

from repro.csp.instance import Constraint, CSPInstance
from repro.errors import DomainError

__all__ = ["CNF", "horn_sat", "two_sat", "dpll", "cnf_to_csp"]

Clause = tuple[int, ...]


class CNF:
    """A CNF formula: a tuple of clauses over positive-integer variables."""

    __slots__ = ("_clauses", "_variables")

    def __init__(self, clauses: Iterable[Sequence[int]]):
        cl = []
        variables: set[int] = set()
        for clause in clauses:
            c = tuple(clause)
            for lit in c:
                if lit == 0:
                    raise DomainError("0 is not a valid literal")
                variables.add(abs(lit))
            cl.append(c)
        self._clauses = tuple(cl)
        self._variables = frozenset(variables)

    @property
    def clauses(self) -> tuple[Clause, ...]:
        return self._clauses

    @property
    def variables(self) -> frozenset[int]:
        return self._variables

    def is_horn(self) -> bool:
        """At most one positive literal per clause."""
        return all(sum(1 for lit in c if lit > 0) <= 1 for c in self._clauses)

    def is_dual_horn(self) -> bool:
        """At most one negative literal per clause."""
        return all(sum(1 for lit in c if lit < 0) <= 1 for c in self._clauses)

    def is_2cnf(self) -> bool:
        return all(len(c) <= 2 for c in self._clauses)

    def satisfied_by(self, assignment: dict[int, bool]) -> bool:
        return all(
            any(assignment[abs(lit)] == (lit > 0) for lit in c) for c in self._clauses
        )

    def __repr__(self) -> str:
        return f"CNF({len(self._clauses)} clauses, {len(self._variables)} vars)"


def horn_sat(formula: CNF) -> dict[int, bool] | None:
    """Horn satisfiability by unit propagation — a minimal model or ``None``.

    Start with everything false; a clause whose negative literals are all
    true forces its (sole) positive literal.  Linear-shaped in formula size.
    """
    if not formula.is_horn():
        raise DomainError("horn_sat requires a Horn formula")
    true_vars: set[int] = set()
    changed = True
    while changed:
        changed = False
        for clause in formula.clauses:
            positives = [lit for lit in clause if lit > 0]
            if any(lit > 0 and lit in true_vars for lit in clause):
                continue
            negatives_all_true = all(-lit in true_vars for lit in clause if lit < 0)
            if not negatives_all_true:
                continue
            if not positives:
                return None  # all-negative clause violated by forced trues
            true_vars.add(positives[0])
            changed = True
    return {v: v in true_vars for v in formula.variables}


def two_sat(formula: CNF) -> dict[int, bool] | None:
    """2-SAT via the implication graph and Tarjan SCCs.

    A clause ``(a ∨ b)`` yields implications ``¬a → b`` and ``¬b → a``;
    satisfiable iff no variable shares an SCC with its negation, and a model
    is read off the reverse topological order of the condensation.
    """
    if not formula.is_2cnf():
        raise DomainError("two_sat requires clauses of size <= 2")

    succ: dict[int, list[int]] = {}

    def add_implication(a: int, b: int) -> None:
        succ.setdefault(a, []).append(b)

    nodes: set[int] = set()
    for v in formula.variables:
        nodes.add(v)
        nodes.add(-v)
    for clause in formula.clauses:
        if len(clause) == 0:
            return None
        if len(clause) == 1:
            (a,) = clause
            add_implication(-a, a)
        else:
            a, b = clause
            add_implication(-a, b)
            add_implication(-b, a)

    # Iterative Tarjan SCC.
    index: dict[int, int] = {}
    low: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    comp: dict[int, int] = {}
    counter = [0]
    comp_counter = [0]

    for root in sorted(nodes):
        if root in index:
            continue
        work: list[tuple[int, int]] = [(root, 0)]
        while work:
            node, child_i = work[-1]
            if child_i == 0:
                index[node] = low[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            children = succ.get(node, [])
            advanced = False
            while child_i < len(children):
                child = children[child_i]
                child_i += 1
                if child not in index:
                    work[-1] = (node, child_i)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index[child])
            if advanced:
                continue
            work[-1] = (node, child_i)
            if child_i >= len(children):
                if low[node] == index[node]:
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        comp[w] = comp_counter[0]
                        if w == node:
                            break
                    comp_counter[0] += 1
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])

    for v in formula.variables:
        if comp[v] == comp[-v]:
            return None
    # Tarjan completes sink components first, so smaller component ids are
    # later in topological order; a literal is true iff its component comes
    # after its negation's in topological order, i.e. has the smaller id.
    return {v: comp[v] < comp[-v] for v in formula.variables}


def dpll(formula: CNF) -> dict[int, bool] | None:
    """A DPLL solver with unit propagation — the general-case baseline."""
    variables = sorted(formula.variables)

    def propagate(
        clauses: list[Clause], assignment: dict[int, bool]
    ) -> tuple[list[Clause], dict[int, bool]] | None:
        clauses = list(clauses)
        assignment = dict(assignment)
        changed = True
        while changed:
            changed = False
            next_clauses: list[Clause] = []
            for clause in clauses:
                unassigned: list[int] = []
                satisfied = False
                for lit in clause:
                    var = abs(lit)
                    if var in assignment:
                        if assignment[var] == (lit > 0):
                            satisfied = True
                            break
                    else:
                        unassigned.append(lit)
                if satisfied:
                    continue
                if not unassigned:
                    return None
                if len(unassigned) == 1:
                    lit = unassigned[0]
                    assignment[abs(lit)] = lit > 0
                    changed = True
                else:
                    next_clauses.append(tuple(unassigned))
            clauses = next_clauses
        return clauses, assignment

    def search(clauses: list[Clause], assignment: dict[int, bool]) -> dict[int, bool] | None:
        state = propagate(clauses, assignment)
        if state is None:
            return None
        clauses, assignment = state
        free = [v for v in variables if v not in assignment]
        if not clauses or not free:
            full = dict(assignment)
            for v in free:
                full[v] = False
            return full
        v = free[0]
        for value in (True, False):
            result = search(clauses, {**assignment, v: value})
            if result is not None:
                return result
        return None

    return search(list(formula.clauses), {})


def cnf_to_csp(formula: CNF) -> CSPInstance:
    """Encode a CNF formula as a CSP instance over {0, 1}: one constraint per
    clause, whose relation is the set of satisfying rows of the clause."""
    constraints = []
    for clause in formula.clauses:
        scope = tuple(dict.fromkeys(abs(lit) for lit in clause))
        rows = set()
        for values in product((0, 1), repeat=len(scope)):
            env = dict(zip(scope, values))
            if any(env[abs(lit)] == (1 if lit > 0 else 0) for lit in clause):
                rows.add(values)
        constraints.append(Constraint(scope, rows))
    return CSPInstance(sorted(formula.variables), (0, 1), constraints)
