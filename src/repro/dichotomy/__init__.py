"""Dichotomy theorems made executable: Schaefer's Boolean classes with
dedicated polynomial solvers, Hell–Nešetřil H-coloring, and the
polymorphism machinery underlying both (Section 3)."""

from repro.dichotomy.boolean_solvers import (
    relation_to_2cnf_clauses,
    relation_to_linear_system,
    solve_affine,
    solve_bijunctive,
    solve_boolean,
    solve_dual_horn,
    solve_horn,
    solve_one_valid,
    solve_zero_valid,
)
from repro.dichotomy.coset import (
    coset_linear_system,
    is_coset_instance,
    is_coset_relation,
    maltsev,
    solve_coset_csp,
)
from repro.dichotomy.cnf import CNF, cnf_to_csp, dpll, horn_sat, two_sat
from repro.dichotomy.hcoloring import (
    HColoringClass,
    classify_target,
    graph_to_structure,
    is_hcolorable,
    solve_hcoloring,
    structure_to_graph,
)
from repro.dichotomy.polymorphisms import (
    boolean_max,
    boolean_min,
    constant_operation,
    find_polymorphisms,
    is_polymorphism,
    majority,
    minority,
    projection_operation,
    relation_closed_under,
)
from repro.dichotomy.schaefer import (
    SchaeferClass,
    classify,
    classify_instance,
    classify_relations,
    is_tractable,
)

__all__ = [
    "SchaeferClass",
    "classify",
    "classify_instance",
    "classify_relations",
    "is_tractable",
    "solve_boolean",
    "solve_zero_valid",
    "solve_one_valid",
    "solve_horn",
    "solve_dual_horn",
    "solve_bijunctive",
    "solve_affine",
    "relation_to_2cnf_clauses",
    "relation_to_linear_system",
    "CNF",
    "horn_sat",
    "two_sat",
    "dpll",
    "cnf_to_csp",
    "HColoringClass",
    "classify_target",
    "solve_hcoloring",
    "is_hcolorable",
    "graph_to_structure",
    "structure_to_graph",
    "is_polymorphism",
    "relation_closed_under",
    "find_polymorphisms",
    "boolean_min",
    "boolean_max",
    "majority",
    "minority",
    "constant_operation",
    "projection_operation",
    "maltsev",
    "is_coset_relation",
    "is_coset_instance",
    "coset_linear_system",
    "solve_coset_csp",
]
