"""Polymorphisms: the closure properties behind the tractability landscape.

Section 3 cites Jeavons–Cohen–Gyssens [34–36] for the algebraic "line of
attack" on the classification of non-uniform CSP.  An ``m``-ary operation
``f: D^m → D`` is a *polymorphism* of a structure ``B`` when every relation
of ``B`` is closed under applying ``f`` coordinatewise to any ``m`` of its
tuples.  Schaefer's tractable Boolean classes are precisely characterized by
four polymorphisms (min, max, majority, minority), which is how
:mod:`repro.dichotomy.schaefer` recognizes them.
"""

from __future__ import annotations

from itertools import product
from typing import Any, Callable, Iterable

from repro.relational.structure import Structure

__all__ = [
    "is_polymorphism",
    "relation_closed_under",
    "find_polymorphisms",
    "boolean_min",
    "boolean_max",
    "majority",
    "minority",
    "constant_operation",
    "projection_operation",
]

Operation = Callable[..., Any]


def relation_closed_under(
    relation: Iterable[tuple], op: Operation, arity: int
) -> bool:
    """Whether ``relation`` is closed under the ``arity``-ary operation:
    for all choices of ``arity`` tuples, the coordinatewise image is in the
    relation."""
    rows = list(relation)
    if not rows:
        return True
    width = len(rows[0])
    for choice in product(rows, repeat=arity):
        image = tuple(op(*(choice[m][i] for m in range(arity))) for i in range(width))
        if image not in set(rows):
            return False
    return True


def is_polymorphism(op: Operation, structure: Structure, arity: int) -> bool:
    """Whether ``op`` (of the given arity) is a polymorphism of the structure.

    ``op`` must be total on the structure's domain.
    """
    return all(
        relation_closed_under(structure.relation(symbol), op, arity)
        for symbol in structure.vocabulary
    )


def find_polymorphisms(structure: Structure, arity: int) -> list[dict[tuple, Any]]:
    """Enumerate all ``arity``-ary polymorphisms of a small structure, each
    returned as a table ``{input-tuple: output}``.

    Exhaustive over all ``|D|^(|D|^arity)`` operations — strictly a
    small-domain tool (|D| ≤ 3, arity ≤ 2, or |D| = 2, arity ≤ 3).
    """
    domain = sorted(structure.domain, key=repr)
    inputs = list(product(domain, repeat=arity))
    found = []
    for outputs in product(domain, repeat=len(inputs)):
        table = dict(zip(inputs, outputs))

        def op(*args: Any) -> Any:
            return table[args]

        if is_polymorphism(op, structure, arity):
            found.append(table)
    return found


# -- the four Schaefer operations over {0, 1} --------------------------------


def boolean_min(x: int, y: int) -> int:
    """Binary AND — the polymorphism of Horn (weakly negative) relations."""
    return x & y


def boolean_max(x: int, y: int) -> int:
    """Binary OR — the polymorphism of dual-Horn (weakly positive) relations."""
    return x | y


def majority(x: Any, y: Any, z: Any) -> Any:
    """The ternary majority operation — polymorphism of bijunctive (2-CNF)
    relations.  Defined over any domain (returns ``x`` when all differ)."""
    if x == y or x == z:
        return x
    if y == z:
        return y
    return x


def minority(x: int, y: int, z: int) -> int:
    """x ⊕ y ⊕ z over {0,1} — the polymorphism of affine relations."""
    return x ^ y ^ z


def constant_operation(value: Any) -> Operation:
    """The unary constant operation ``x ↦ value``; a polymorphism exactly of
    structures where ``value`` induces a one-element substructure satisfying
    everything (0-valid / 1-valid in the Boolean case)."""

    def op(_x: Any) -> Any:
        return value

    return op


def projection_operation(arity: int, position: int) -> Operation:
    """The ``position``-th projection — a polymorphism of *every* structure
    (the trivial case; useful in tests)."""

    def op(*args: Any) -> Any:
        return args[position]

    return op
