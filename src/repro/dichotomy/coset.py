"""Group-theoretic tractability — the *first condition* of Feder–Vardi (§3).

Section 3 reports that Feder and Vardi isolated two conditions implying
tractability of ``CSP(B)``; the paper develops the Datalog condition at
length and says of the other only that it "is group-theoretic and covers
Schaefer's tractable class of affine satisfiability problems".  This module
makes that condition executable over the cyclic groups ``Z_p`` (``p``
prime):

* a relation ``R ⊆ Z_p^r`` is a **coset** of a subgroup of ``Z_p^r`` iff it
  is closed under the Mal'tsev operation ``x − y + z`` (coordinatewise) —
  :func:`is_coset_relation` checks exactly this;
* every coset is the solution set of a linear system ``Mx = c`` over the
  field ``GF(p)`` — :func:`coset_linear_system` recovers one by enumerating
  the satisfied linear constraints (exact, exponential only in the arity);
* a CSP instance all of whose relations are cosets is solved by Gaussian
  elimination over ``GF(p)`` — :func:`solve_coset_csp`.

For ``p = 2`` this is precisely Schaefer's affine class (and the two
implementations are differentially tested against each other).
"""

from __future__ import annotations

from itertools import product
from typing import Any, Iterable

from repro.csp.instance import CSPInstance
from repro.errors import DomainError, SolverError

__all__ = [
    "maltsev",
    "is_coset_relation",
    "is_coset_instance",
    "coset_linear_system",
    "solve_coset_csp",
]


def _check_prime(p: int) -> None:
    if p < 2 or any(p % q == 0 for q in range(2, int(p**0.5) + 1)):
        raise DomainError(f"modulus must be prime, got {p}")


def maltsev(p: int):
    """The Mal'tsev operation ``(x, y, z) ↦ x − y + z  (mod p)``."""

    def op(x: int, y: int, z: int) -> int:
        return (x - y + z) % p

    return op


def is_coset_relation(relation: Iterable[tuple[int, ...]], p: int) -> bool:
    """Whether ``relation ⊆ Z_p^r`` is a coset of a subgroup of ``Z_p^r``
    (equivalently: nonempty and closed under ``x − y + z``).

    The empty relation is *not* a coset (cosets are nonempty).
    """
    _check_prime(p)
    rows = [tuple(t) for t in relation]
    if not rows:
        return False
    width = len(rows[0])
    for t in rows:
        if len(t) != width or not all(0 <= v < p for v in t):
            raise DomainError(f"row {t!r} is not a Z_{p} tuple of arity {width}")
    row_set = set(rows)
    op = maltsev(p)
    for x in rows:
        for y in rows:
            for z in rows:
                image = tuple(op(a, b, c) for a, b, c in zip(x, y, z))
                if image not in row_set:
                    return False
    return True


def is_coset_instance(instance: CSPInstance, p: int) -> bool:
    """Whether every constraint relation of the instance is a coset."""
    _check_prime(p)
    if not instance.domain <= set(range(p)):
        return False
    return all(is_coset_relation(c.relation, p) for c in instance.constraints)


def coset_linear_system(
    scope: tuple[Any, ...], relation: frozenset[tuple[int, ...]], p: int
) -> list[tuple[tuple[int, ...], int]] | None:
    """Equations ``Σ aᵢ·xᵢ = c (mod p)`` whose common solution set equals the
    relation, or ``None`` when the relation is not a coset.

    Candidates are all nonzero coefficient vectors over the scope (``p^r``
    of them — arity stays small in practice); an equation is kept when every
    row satisfies it, and exactness is verified by re-solving.
    """
    _check_prime(p)
    if not relation:
        return None
    arity = len(scope)
    equations: list[tuple[tuple[int, ...], int]] = []
    for coefficients in product(range(p), repeat=arity):
        if not any(coefficients):
            continue
        values = {
            sum(a * v for a, v in zip(coefficients, row)) % p for row in relation
        }
        if len(values) == 1:
            equations.append((coefficients, values.pop()))
    solutions = {
        row
        for row in product(range(p), repeat=arity)
        if all(
            sum(a * v for a, v in zip(coeffs, row)) % p == rhs
            for coeffs, rhs in equations
        )
    }
    if solutions != set(relation):
        return None
    return equations


def solve_coset_csp(instance: CSPInstance, p: int) -> dict[Any, int] | None:
    """Solve a coset-CSP over ``Z_p`` by Gaussian elimination over GF(p).

    Raises :class:`SolverError` if some relation is not a coset (use
    :func:`is_coset_instance` to pre-check); returns ``None`` when the
    accumulated linear system is inconsistent or some relation is empty.
    """
    _check_prime(p)
    instance = instance.normalize()
    if not instance.domain <= set(range(p)):
        raise DomainError(f"domain must be within Z_{p}")
    variables = list(instance.variables)
    index = {v: i for i, v in enumerate(variables)}
    n = len(variables)

    rows: list[list[int]] = []  # n coefficients + rhs, over GF(p)
    for constraint in instance.constraints:
        if not constraint.relation:
            return None
        system = coset_linear_system(constraint.scope, constraint.relation, p)
        if system is None:
            raise SolverError(
                f"constraint on {constraint.scope!r} is not a coset of Z_{p}^r"
            )
        for coefficients, rhs in system:
            row = [0] * (n + 1)
            for variable, a in zip(constraint.scope, coefficients):
                row[index[variable]] = (row[index[variable]] + a) % p
            row[n] = rhs
            rows.append(row)

    # Gaussian elimination over GF(p).
    pivot_of: dict[int, int] = {}
    rank = 0
    for col in range(n):
        pivot = next((r for r in range(rank, len(rows)) if rows[r][col] % p), None)
        if pivot is None:
            continue
        rows[rank], rows[pivot] = rows[pivot], rows[rank]
        inv = pow(rows[rank][col], p - 2, p)
        rows[rank] = [(x * inv) % p for x in rows[rank]]
        for r in range(len(rows)):
            if r != rank and rows[r][col] % p:
                factor = rows[r][col]
                rows[r] = [(a - factor * b) % p for a, b in zip(rows[r], rows[rank])]
        pivot_of[col] = rank
        rank += 1
    for r in range(rank, len(rows)):
        if rows[r][n] % p:
            return None

    assignment = {v: 0 for v in variables}
    for col, r in pivot_of.items():
        assignment[variables[col]] = rows[r][n] % p
    if not instance.is_solution(assignment):
        raise SolverError("coset solver produced an invalid assignment")
    return assignment
