"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch any library failure with a single ``except`` clause while still
being able to discriminate the precise failure mode.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SchemaError",
    "ArityError",
    "VocabularyError",
    "DomainError",
    "ParseError",
    "DecompositionError",
    "UnsatisfiableError",
    "SolverError",
    "TelemetryError",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class SchemaError(ReproError):
    """A relation was built or combined with an inconsistent attribute scheme."""


class ArityError(ReproError):
    """A tuple's length does not match the arity of its relation symbol."""


class VocabularyError(ReproError):
    """A name is missing from the vocabulary it was looked up in: two
    structures that must share a vocabulary do not, a predicate is absent
    from a database, or an attribute is absent from a relation's scheme."""


class DomainError(ReproError):
    """A value or variable falls outside the expected domain."""


class ParseError(ReproError):
    """A textual query, rule, or regular expression could not be parsed."""


class DecompositionError(ReproError):
    """A tree/query/hypertree decomposition is invalid or cannot be built."""


class UnsatisfiableError(ReproError):
    """Raised when a solution was required but the instance has none."""


class SolverError(ReproError):
    """A solver was invoked on an instance it cannot handle."""


class TelemetryError(ReproError):
    """The telemetry plane was misused: mis-nested spans, an unknown
    metricset kind, or a malformed trace export."""
