"""repro — constraint satisfaction and database theory, executable.

A from-scratch Python reproduction of Moshe Y. Vardi's PODS 2000 tutorial
*Constraint Satisfaction and Database Theory*.  Every definition of the
paper is a data structure and every proposition/theorem an algorithm or a
testable equivalence:

* :mod:`repro.relational` — relations, relational algebra, structures,
  homomorphisms (Section 2);
* :mod:`repro.csp` — CSP instances, conversions, and the solver suite
  (Sections 2–3, Prop 2.1);
* :mod:`repro.cq` — conjunctive queries, canonical databases, Chandra–Merlin
  containment, bounded-variable formulas (Sections 2, 6);
* :mod:`repro.datalog` — bottom-up Datalog and the canonical program ρ_B
  (Section 4);
* :mod:`repro.games` — existential k-pebble games (Sections 4–5);
* :mod:`repro.consistency` — local consistency and establishing strong
  k-consistency (Section 5);
* :mod:`repro.width` — treewidth, acyclicity/Yannakakis, querywidth,
  hypertree width (Section 6);
* :mod:`repro.dichotomy` — Schaefer's dichotomy, Hell–Nešetřil H-coloring,
  polymorphisms (Section 3);
* :mod:`repro.views` — RPQs, view-based query answering, the two
  CSP ↔ view-answering reductions, maximal rewritings (Section 7);
* :mod:`repro.generators` — workload generators for tests and benchmarks.
"""

from repro.csp.convert import csp_to_homomorphism, homomorphism_to_csp
from repro.csp.solvers.portfolio import explain as explain_route
from repro.csp.solvers.portfolio import is_solvable, solve
from repro.csp.instance import Constraint, CSPInstance
from repro.relational.homomorphism import find_homomorphism, homomorphism_exists
from repro.relational.relation import Relation
from repro.relational.structure import Structure, Vocabulary

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Relation",
    "Structure",
    "Vocabulary",
    "Constraint",
    "CSPInstance",
    "solve",
    "is_solvable",
    "explain_route",
    "csp_to_homomorphism",
    "homomorphism_to_csp",
    "homomorphism_exists",
    "find_homomorphism",
]
