"""Work-stealing parallel backtracking search with first-solution cancel.

:func:`solve_parallel` partitions the MAC search tree by *top-level
branching*: a splitter runs the root arc-consistency fixpoint, picks the
exact variable the serial solver would branch on (minimum remaining
values, ties by degree then canonical rank), and turns each surviving
value into a subtree task — the original instance plus one unary *pin*
constraint per branching decision.  Tasks carry their tree path (the
tuple of branch indices), so paths order subtrees exactly as serial
depth-first search visits them.

Tasks live on a shared work-stealing deque (a managed list guarded by one
lock: owners push new subtasks at the back, idle workers steal from the
front, where the shallowest — largest — subtrees sit).  A worker that
steals a task either *splits* it again (while the backlog is thinner than
the worker count, so siblings do not idle) or *solves* it with the
ordinary serial solver.  Exactness of the answer rests on two facts:

* the splitter reproduces serial branching: at an AC fixpoint the serial
  solver assigns singleton domains without search effects, so its first
  real branch is the first ``|domain| ≥ 2`` variable under the serial
  tie-break, and an all-singleton fixpoint *is* the serial solution;
* the winner is the lexicographically smallest solved path.  A task is
  cancelled (via the ``should_stop`` hook polled every
  :data:`~repro.csp.solvers.backtracking.STOP_CHECK_INTERVAL` nodes) only
  when its path exceeds the best solved path, so no subtree that could
  hold the serial solution is ever abandoned.

Per-task :class:`~repro.csp.solvers.backtracking.SearchStats` (including
cancelled tasks' partial counters — honest work done) ship back and merge
into the parent's stats, which the parent publishes to the ambient
propagation collector and charges to its ``"search"`` span — so
``repro stats`` totals and JSONL trace reaggregation stay exact.
"""

from __future__ import annotations

import os
import queue as _queue
import time
from typing import Any, Iterable

from repro.consistency.propagation import (
    PropagationStats,
    check_propagation_strategy,
    make_engine,
    publish,
)
from repro.csp.instance import Constraint, CSPInstance
from repro.errors import SolverError
from repro.parallel.pool import (
    effective_config,
    get_manager,
    get_pool,
    record_worker,
)
from repro.telemetry.registry import counter_delta, snapshot
from repro.telemetry.spans import span

__all__ = ["solve_parallel", "MAX_SPLIT_DEPTH"]

#: How many branching levels may be expanded into tasks.  Depth 1 is the
#: root split; workers re-split stolen tasks up to this depth while the
#: deque backlog is thinner than the worker count.
MAX_SPLIT_DEPTH = 2

#: Master-side guard against a wedged worker pool: how long one
#: ``results.get`` may block before the solve is abandoned.
RESULT_TIMEOUT = 120.0


def _pin_instance(
    instance: CSPInstance, pins: tuple[tuple[Any, Any], ...]
) -> CSPInstance:
    """``instance`` plus one unary constraint per branching decision.

    Pinning via constraints (rather than rewriting domains) keeps the
    subtree a plain :class:`CSPInstance`, so the serial solver — and the
    splitter, recursively — handle it with no special cases.
    """
    if not pins:
        return instance
    extra = [Constraint((var,), [(value,)]) for var, value in pins]
    return CSPInstance(
        instance.variables, instance.domain, list(instance.constraints) + extra
    )


def _split(instance: CSPInstance):
    """Serial-faithful branch expansion of ``instance``.

    Returns ``(kind, payload, prop)`` where ``kind`` is ``"refuted"``
    (the root fixpoint wiped out a domain), ``"solved"`` (the fixpoint
    left every domain singleton — ``payload`` is the solution the serial
    solver would return), or ``"children"`` (``payload`` is
    ``(variable, values)``: the serial branch variable and its canonical
    value order).  ``prop`` charges the splitter's propagation work.
    """
    normalized = instance.normalize()
    engine = make_engine(normalized, "residual")
    prop = PropagationStats()
    engine.charge_build(prop)
    domains = engine.fresh_domains()
    if not engine.propagate(domains, engine.full_worklist(), prop):
        return "refuted", None, prop
    variables = list(normalized.variables)
    branchable = [v for v in variables if engine.domain_size(domains, v) >= 2]
    if not branchable:
        solution = {v: engine.domain_values(domains, v)[0] for v in variables}
        return "solved", solution, prop
    # The serial solver assigns singleton domains first (no search effect
    # at a fixpoint), then branches MRV with ties by degree, then by the
    # canonical variable rank — reproduced here on the same normalized
    # instance so the task decomposition shadows the serial tree.
    degree = {v: len(normalized.constraints_on(v)) for v in variables}
    var_rank = {v: i for i, v in enumerate(sorted(variables, key=repr))}
    var = min(
        branchable,
        key=lambda v: (engine.domain_size(domains, v), -degree[v], var_rank[v]),
    )
    return "children", (var, engine.domain_values(domains, var)), prop


# -- the shared deque --------------------------------------------------------
#
# Module-level helpers (not methods) so worker processes can call them on
# the shipped proxies under any start method.


def _push_tasks(tasks, lock, items: Iterable[tuple]) -> None:
    """Append subtree tasks at the back of the deque (owner side)."""
    with lock:
        for item in items:
            tasks.append(item)


def _steal_task(tasks, lock):
    """Pop the front task (the shallowest subtree), or ``None`` if empty."""
    with lock:
        if len(tasks) == 0:
            return None
        return tasks.pop(0)


def _offer_best(ctrl, lock, path: tuple) -> None:
    """Lower the shared best solved path to ``path`` if it improves it."""
    with lock:
        best = ctrl.get("best")
        if best is None or path < tuple(best):
            ctrl["best"] = path


# -- worker side -------------------------------------------------------------


def _search_worker_loop(
    tasks, lock, results, ctrl, instance, strategy, worker_count
) -> int:
    """Pool task: steal, split-or-solve, report — until told to stop.

    Every stolen task produces exactly one message on ``results``:
    ``(kind, path, payload, SearchStats, pid)`` with ``kind`` in
    ``"split"`` / ``"solved"`` / ``"refuted"`` / ``"cancelled"``; the
    master tracks outstanding paths, so the protocol needs no acks.
    """
    from repro.csp.solvers.backtracking import Inference, SearchStats, solve_with_stats

    pid = os.getpid()
    handled = 0
    while not ctrl.get("stop"):
        item = _steal_task(tasks, lock)
        if item is None:
            time.sleep(0.002)
            continue
        handled += 1
        path, pins = tuple(item[0]), tuple(item[1])
        stats = SearchStats()
        stats.steals += 1
        best = ctrl.get("best")
        if best is not None and path > tuple(best):
            # The whole subtree lies after the best solved path: it cannot
            # win, so it is reported cancelled without being searched.
            results.put(("cancelled", path, None, stats, pid))
            continue
        pinned = _pin_instance(instance, pins)
        with lock:
            backlog = len(tasks)
        if len(path) < MAX_SPLIT_DEPTH and backlog < worker_count:
            kind, payload, prop = _split(pinned)
            stats.propagation.merge(prop)
            if kind == "children":
                var, values = payload
                # Ordering invariant: the split message must be enqueued
                # BEFORE the children become stealable.  The results queue
                # is FIFO, so this guarantees the master registers the new
                # child paths before any sibling's report on one of them
                # can arrive; pushing first lets a sibling steal-and-report
                # a child ahead of the split message, and the master would
                # then re-add an already-finished path forever.
                results.put(("split", path, len(values), stats, pid))
                _push_tasks(
                    tasks,
                    lock,
                    [
                        (path + (i,), pins + ((var, value),))
                        for i, value in enumerate(values)
                    ],
                )
                continue
            if kind == "solved":
                stats.tasks += 1
                _offer_best(ctrl, lock, path)
                results.put(("solved", path, payload, stats, pid))
                continue
            stats.tasks += 1
            results.put(("refuted", path, None, stats, pid))
            continue
        cancelled = [False]

        def should_stop() -> bool:
            if ctrl.get("stop"):
                cancelled[0] = True
                return True
            best = ctrl.get("best")
            if best is not None and path > tuple(best):
                cancelled[0] = True
                return True
            return False

        solved = solve_with_stats(
            pinned, Inference.MAC, strategy, should_stop=should_stop
        )
        solved.steals += stats.steals
        solved.tasks += 1
        if solved.solution is not None:
            _offer_best(ctrl, lock, path)
            results.put(("solved", path, solved.solution, solved, pid))
        elif cancelled[0]:
            results.put(("cancelled", path, None, solved, pid))
        else:
            results.put(("refuted", path, None, solved, pid))
    return handled


# -- master side -------------------------------------------------------------


def solve_parallel(
    instance: CSPInstance,
    strategy: str = "residual",
    workers: int | None = None,
):
    """MAC backtracking search partitioned across the worker pool.

    Returns the merged :class:`~repro.csp.solvers.backtracking.SearchStats`
    of every subtree task (total work done, including cancelled tasks'
    partial counters) with ``solution`` set to exactly what the serial
    solver returns on ``instance``.  Falls back to the serial solver when
    fewer than two workers are configured or the root split resolves the
    instance outright.
    """
    from repro.csp.solvers.backtracking import Inference, SearchStats, solve_with_stats

    check_propagation_strategy(strategy)
    if workers is None:
        workers = effective_config().workers
    if workers < 2:
        return solve_with_stats(instance, Inference.MAC, strategy)
    normalized = instance.normalize()
    with span("search", inference="mac", strategy=strategy, workers=workers) as sp:
        stats = SearchStats()
        try:
            kind, payload, prop = _split(normalized)
            stats.propagation.merge(prop)
            if kind == "solved":
                stats.solution = payload
            elif kind == "children":
                var, values = payload
                stats.solution = _run_tasks(
                    normalized, strategy, workers, var, values, stats
                )
        finally:
            publish(stats.propagation)
        if sp:
            sp.add_counters("search", counter_delta(stats, snapshot(SearchStats())))
            sp.note(
                nodes=stats.nodes, tasks=stats.tasks,
                solved=stats.solution is not None,
            )
        return stats


def _next_result(results, loops):
    """One message off ``results``, polling the worker-loop handles so a
    crashed worker re-raises its exception immediately instead of letting
    the solve idle out the full :data:`RESULT_TIMEOUT`."""
    deadline = time.monotonic() + RESULT_TIMEOUT
    while True:
        try:
            return results.get(timeout=1.0)
        except _queue.Empty:
            for loop in loops:
                if loop.ready():
                    loop.get()  # re-raises the worker's exception
            if time.monotonic() >= deadline:
                raise SolverError(
                    "parallel search stalled: no worker reported within "
                    f"{RESULT_TIMEOUT:.0f}s"
                ) from None


def _run_tasks(normalized, strategy, workers, var, values, stats):
    """Dispatch the root subtree tasks, drain results, return the winner.

    Runs until *every* outstanding path has reported (solved, refuted, or
    cancelled) so the merged stats account for all work done, then stops
    the workers.  The winning solution is the one at the smallest solved
    path — the subtree serial depth-first search reaches first.
    """
    manager = get_manager()
    tasks = manager.list()
    lock = manager.Lock()
    results = manager.Queue()
    ctrl = manager.dict({"best": None, "stop": False})
    _push_tasks(
        tasks, lock, [((i,), ((var, value),)) for i, value in enumerate(values)]
    )
    pool = get_pool(workers)
    loops = [
        pool.apply_async(
            _search_worker_loop,
            (tasks, lock, results, ctrl, normalized, strategy, workers),
        )
        for _ in range(workers)
    ]
    pending = {(i,) for i in range(len(values))}
    solutions: dict[tuple, dict] = {}
    try:
        while pending:
            kind, path, payload, wstats, pid = _next_result(results, loops)
            path = tuple(path)
            pending.discard(path)
            # Track the winner explicitly: SearchStats.merge would adopt
            # the first solution seen, which need not be the smallest path.
            solution = wstats.solution
            wstats.solution = None
            stats.merge(wstats)
            record_worker(pid, "search", f"task{path!r}:{kind}", wstats)
            if kind == "split":
                pending.update(path + (i,) for i in range(payload))
            elif kind == "solved":
                solutions[path] = payload if payload is not None else solution
    finally:
        ctrl["stop"] = True
    for loop in loops:
        loop.get(timeout=RESULT_TIMEOUT)
    if not solutions:
        return None
    return solutions[min(solutions)]
