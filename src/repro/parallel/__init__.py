"""Shard-parallel execution: partitioned joins, work-stealing search, batching.

Proposition 2.1's join evaluation and the MAC search tree both decompose
along value space: a natural join splits by hash of its key (equal keys
collide into equal shards), and a search tree splits by its top-level
branches.  This package exploits both decompositions across a persistent
worker-process pool:

* :mod:`repro.parallel.pool` — the pool itself, the ContextVar-scoped
  :func:`~repro.parallel.pool.parallel_config` knobs (worker count,
  serial-fallback threshold, inner execution), and the per-worker
  breakdown plumbing behind the CLI's ``--workers`` tables;
* :mod:`repro.parallel.partition` — hash partitioning on canonical join
  keys: interned codes radix-pack so the shard of a key is one modulo
  under a codec shared by all operands;
* :mod:`repro.parallel.joins` — the ``execution="parallel"`` bodies of
  ``natural_join`` / ``semijoin`` / ``join_all``: partition, fan the
  shards out, union the (provably disjoint) shard outputs;
* :mod:`repro.parallel.search` — work-stealing parallel MAC backtracking
  with first-solution cancellation, returning exactly the serial solution;
* :mod:`repro.parallel.coordinator` — batch routing of many
  queries/instances across the pool (round-robin / least-loaded / hash).

Everything reports exactly: per-worker ``EvalStats`` /
``PropagationStats`` / ``SearchStats`` ship back with each result and
merge into the parent's collectors inside the open operator span, so
``repro stats`` totals and JSONL trace reaggregation are identical to a
serial run (see ``tests/parallel/test_stats_exactness.py``).
"""

from __future__ import annotations

from repro.parallel.coordinator import POLICIES, Coordinator, Job, JobResult
from repro.parallel.joins import (
    parallel_fold,
    parallel_join_all,
    parallel_natural_join,
    parallel_semijoin,
)
from repro.parallel.partition import (
    choose_partition_attribute,
    hash_partition,
    partition_codec,
)
from repro.parallel.pool import (
    DEFAULT_WORKERS,
    PARALLEL_THRESHOLD,
    ParallelConfig,
    WorkerRecord,
    effective_config,
    get_manager,
    get_pool,
    parallel_config,
    record_worker,
    run_binary_task,
    run_fold_task,
    shutdown_pool,
    worker_reports,
)
from repro.parallel.search import MAX_SPLIT_DEPTH, solve_parallel

__all__ = [
    "DEFAULT_WORKERS",
    "PARALLEL_THRESHOLD",
    "MAX_SPLIT_DEPTH",
    "POLICIES",
    "ParallelConfig",
    "parallel_config",
    "effective_config",
    "get_pool",
    "get_manager",
    "shutdown_pool",
    "WorkerRecord",
    "worker_reports",
    "record_worker",
    "run_fold_task",
    "run_binary_task",
    "partition_codec",
    "hash_partition",
    "choose_partition_attribute",
    "parallel_natural_join",
    "parallel_semijoin",
    "parallel_fold",
    "parallel_join_all",
    "solve_parallel",
    "Coordinator",
    "Job",
    "JobResult",
]
