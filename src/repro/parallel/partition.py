"""Hash partitioning of relations on canonical join keys.

The shard function is deliberately boring: the partition columns are
interned through one shared :class:`~repro.relational.interning.Codec`
(built over the *union* of the operands' partition-column values, so equal
values get equal codes on every operand), the per-row codes radix-pack
into a single machine int, and the shard index is one modulo.  Equal join
keys therefore land in equal shards on both sides of a join — the property
that makes the sharded join exact: every output row fixes its key, so it
is produced by exactly one shard and the shard outputs union disjointly.

For multi-way folds the same machinery co-partitions every relation that
*contains* the chosen partition attribute; relations without it are
broadcast whole (see :mod:`repro.parallel.joins`).
"""

from __future__ import annotations

import time
from typing import Iterable, Sequence

from repro.relational.interning import Codec
from repro.relational.relation import Relation
from repro.relational.stats import current_stats

__all__ = [
    "partition_codec",
    "hash_partition",
    "choose_partition_attribute",
]


def partition_codec(
    relations: Sequence[Relation], attributes: Sequence[str]
) -> Codec:
    """A codec over the union of ``attributes`` values across ``relations``.

    Sharing one codec across the operands is what aligns the shards: the
    shard of a key depends only on its packed code, and equal values code
    equally under a shared codec.
    """
    values = []
    for rel in relations:
        positions = [
            rel.attributes.index(a) for a in attributes if a in rel.attributes
        ]
        for row in rel:
            for p in positions:
                values.append(row[p])
    return Codec(values)


def hash_partition(
    relation: Relation,
    attributes: Sequence[str],
    shards: int,
    codec: Codec,
) -> list[Relation]:
    """Split ``relation`` into ``shards`` relations by hashed key.

    The key of a row is its ``attributes`` projection radix-packed under
    ``codec`` (base ``len(codec)``); the shard index is ``key % shards``.
    Every row lands in exactly one shard, so the shards partition the
    relation.  Charges a ``"partition"`` operator to the ambient stats
    (one full scan; ``partitions`` counts shards materialized).
    """
    start = time.perf_counter()
    positions = [relation.attributes.index(a) for a in attributes]
    base = max(1, len(codec))
    encode = codec.code_map
    buckets: list[list[tuple]] = [[] for _ in range(shards)]
    for row in relation:
        packed = 0
        for p in positions:
            packed = packed * base + encode[row[p]]
        buckets[packed % shards].append(row)
    parts = [Relation(relation.attributes, rows) for rows in buckets]
    stats = current_stats()
    if stats is not None:
        stats.record(
            "partition",
            scanned=len(relation),
            partitions=shards,
            seconds=time.perf_counter() - start,
        )
    return parts


def choose_partition_attribute(relations: Sequence[Relation]) -> str | None:
    """The attribute to co-partition a multi-way fold on.

    Picks the attribute shared by the most relations (ties broken
    alphabetically, so plans are deterministic); returns ``None`` when no
    attribute occurs in at least two relations — a pure Cartesian product,
    which the caller leaves to the serial path.
    """
    counts: dict[str, int] = {}
    for rel in relations:
        for a in rel.attributes:
            counts[a] = counts.get(a, 0) + 1
    best: str | None = None
    best_count = 1
    for a in sorted(counts):
        if counts[a] > best_count:
            best, best_count = a, counts[a]
    return best
