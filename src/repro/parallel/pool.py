"""The persistent worker-process pool and its configuration plane.

One :class:`multiprocessing.Pool` (plus one ``SyncManager`` for the shared
search structures) serves every parallel operator in the process: pools are
expensive to fork, shards are cheap to ship (the interned/columnar planes
made relations pickle-light — see ``Relation.__getstate__``), so the pool
is created lazily on first use, grown when a caller asks for more workers,
and torn down at interpreter exit.

Configuration is ContextVar-scoped like the stats collectors:
:func:`parallel_config` overrides the worker count, the serial-fallback
threshold, and the inner (per-shard) execution for the duration of a
``with`` block, so tests can force cross-process execution on tiny inputs
and services can pin worker budgets per request without touching globals.

Worker-side discipline: every task runs under fresh
:func:`~repro.relational.stats.collect_stats` /
:func:`~repro.consistency.propagation.collect_propagation` blocks and ships
its counters back with the result; the parent merges them into its own
installed stats objects *inside* the operator span, so span deltas — and
therefore the JSONL trace reaggregation — stay exact across the fan-out.
:func:`worker_reports` additionally collects the per-worker breakdown the
CLI renders under ``--workers``.
"""

from __future__ import annotations

import atexit
import os
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Any, Iterator, Sequence

__all__ = [
    "DEFAULT_WORKERS",
    "PARALLEL_THRESHOLD",
    "ParallelConfig",
    "parallel_config",
    "effective_config",
    "get_pool",
    "get_manager",
    "shutdown_pool",
    "WorkerRecord",
    "worker_reports",
    "record_worker",
    "run_fold_task",
    "run_binary_task",
]

#: Workers used when neither :func:`parallel_config` nor an explicit
#: argument names a count: one per core, capped at 8 (the scaling curve in
#: EXPERIMENTS.md flattens past the memory bus on this workload family).
DEFAULT_WORKERS = max(1, min(8, os.cpu_count() or 1))

#: Serial-fallback floor: a parallel operator whose total input rows fall
#: below this runs the serial inner execution instead — shipping shards to
#: workers costs more than joining a few hundred rows in place.
PARALLEL_THRESHOLD = 2048


@dataclass(frozen=True)
class ParallelConfig:
    """One scope's parallel-execution knobs.

    ``workers``: processes to fan out across; ``threshold``: minimum total
    input rows before sharding pays (0 forces cross-process execution —
    the differential tests do this); ``inner``: the per-shard serial
    execution, ``None`` meaning "best available" (``"columnar"`` with
    numpy, else ``"interned"``).
    """

    workers: int = DEFAULT_WORKERS
    threshold: int = PARALLEL_THRESHOLD
    inner: str | None = None


_CONFIG: ContextVar[ParallelConfig | None] = ContextVar(
    "repro_parallel_config", default=None
)


def effective_config() -> ParallelConfig:
    """The innermost :func:`parallel_config`, or the defaults."""
    return _CONFIG.get() or ParallelConfig()


@contextmanager
def parallel_config(
    workers: int | None = None,
    threshold: int | None = None,
    inner: str | None = None,
) -> Iterator[ParallelConfig]:
    """Scope the parallel-execution knobs for a ``with`` block.

    Omitted arguments inherit from the enclosing scope (or the defaults),
    so nested blocks compose::

        with parallel_config(workers=2, threshold=0):
            join_all(relations, execution="parallel")  # always fans out
    """
    base = effective_config()
    cfg = ParallelConfig(
        workers=base.workers if workers is None else max(1, int(workers)),
        threshold=base.threshold if threshold is None else max(0, int(threshold)),
        inner=base.inner if inner is None else inner,
    )
    token = _CONFIG.set(cfg)
    try:
        yield cfg
    finally:
        _CONFIG.reset(token)


def inner_execution(cfg: ParallelConfig | None = None) -> str:
    """The serial execution a shard runs under: the config's explicit
    choice, else ``"columnar"`` when numpy is importable, else
    ``"interned"``."""
    cfg = cfg or effective_config()
    if cfg.inner is not None:
        return cfg.inner
    from repro.relational.columnar import numpy_backend

    return "columnar" if numpy_backend() is not None else "interned"


# -- the pool ----------------------------------------------------------------

_pool = None
_pool_size = 0
_manager = None


def _mp_context():
    import multiprocessing as mp

    # Fork is an order of magnitude cheaper to start and inherits the
    # parent's interned caches copy-on-write; spawn remains the portable
    # fallback (worker entry points are module-level and payloads pickle).
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


def _worker_init() -> None:
    """Pool-worker initializer: detach state forked from the parent.

    A forked child inherits the parent's ContextVars — including an open
    telemetry trace and installed stats objects.  Workers must not append
    spans to a copied trace or charge a copied stats object (the parent
    merges shipped counters instead), so the inherited vars are cleared
    once per worker process.
    """
    from repro.consistency import propagation as _prop
    from repro.relational import stats as _stats
    from repro.telemetry import spans as _spans

    _spans._TRACE.set(None)
    _stats._ACTIVE.set(None)
    _prop._ACTIVE.set(None)
    _CONFIG.set(None)


def get_pool(workers: int):
    """The persistent pool, grown to at least ``workers`` processes.

    Growing tears the old pool down and forks a larger one; shrinking never
    happens (idle workers cost almost nothing).  The pool is shared by all
    parallel operators and the coordinator.
    """
    global _pool, _pool_size
    workers = max(1, int(workers))
    if _pool is None or _pool_size < workers:
        if _pool is not None:
            _pool.terminate()
            _pool.join()
        ctx = _mp_context()
        _pool = ctx.Pool(processes=workers, initializer=_worker_init)
        _pool_size = workers
    return _pool


def get_manager():
    """The persistent ``SyncManager`` backing the shared search structures
    (work-stealing deque, result queue, best-path cell)."""
    global _manager
    if _manager is None:
        _manager = _mp_context().Manager()
    return _manager


def shutdown_pool() -> None:
    """Tear down the pool and manager (atexit hook; also a test hook)."""
    global _pool, _pool_size, _manager
    if _pool is not None:
        _pool.terminate()
        _pool.join()
        _pool = None
        _pool_size = 0
    if _manager is not None:
        _manager.shutdown()
        _manager = None


atexit.register(shutdown_pool)


# -- per-worker breakdown ----------------------------------------------------


@dataclass
class WorkerRecord:
    """One worker's shipped counters for one task: the unit of the
    ``--workers`` breakdown table."""

    pid: int
    kind: str
    label: str
    stats: Any


_REPORTS: ContextVar[list | None] = ContextVar(
    "repro_parallel_reports", default=None
)


@contextmanager
def worker_reports() -> Iterator[list]:
    """Collect :class:`WorkerRecord` entries from every parallel operation
    in the block (the CLI's per-worker breakdown source)."""
    records: list[WorkerRecord] = []
    token = _REPORTS.set(records)
    try:
        yield records
    finally:
        _REPORTS.reset(token)


def record_worker(pid: int, kind: str, label: str, stats: Any) -> None:
    """Append one worker's shipped stats to the active report collector."""
    records = _REPORTS.get()
    if records is not None:
        records.append(WorkerRecord(pid, kind, label, stats))


# -- worker-side task entry points ------------------------------------------
#
# Module-level so the pool can import them under any start method.  Every
# task collects its own EvalStats/PropagationStats and ships them back;
# the parent merges (the composition law makes the totals exact).


def run_fold_task(payload: tuple) -> tuple:
    """Pool task: one shard's ``join_all`` fold.

    ``payload`` is ``(relations, execution)`` with the planner's order
    already fixed — the shard must fold in the same order as every other
    shard so all result schemes align.
    """
    relations, execution = payload
    from repro.consistency.propagation import collect_propagation
    from repro.relational.algebra import _join_all
    from repro.relational.stats import collect_stats

    with collect_stats() as stats, collect_propagation():
        result = _join_all(list(relations), execution)
    return result, stats, os.getpid()


def run_binary_task(payload: tuple) -> tuple:
    """Pool task: one shard's binary join or semijoin.

    ``payload`` is ``(kind, left, right, execution)`` with ``kind`` one of
    ``"join"`` / ``"semijoin"``.
    """
    kind, left, right, execution = payload
    from repro.consistency.propagation import collect_propagation
    from repro.relational.algebra import natural_join, semijoin
    from repro.relational.stats import collect_stats

    with collect_stats() as stats, collect_propagation():
        if kind == "join":
            result = natural_join(left, right, execution=execution)
        else:
            result = semijoin(left, right, execution=execution)
    return result, stats, os.getpid()
