"""Batch coordination: route many queries/instances across the worker pool.

The shard-parallel operators in :mod:`repro.parallel.joins` parallelize
*one* evaluation; the :class:`Coordinator` parallelizes *many* — a batch
of conjunctive-query evaluations and CSP solves fans out over the same
persistent pool, one job per task, under one of three routing policies:

* ``"round-robin"`` — job *i* goes to worker ``i mod W`` (the baseline:
  oblivious, perfectly fair on uniform batches);
* ``"least-loaded"`` — self-scheduling: each worker gets one job up
  front, and every completion immediately pulls the next job to the
  worker that just freed (the right policy for skewed batches);
* ``"hash"`` — jobs route by a stable hash of their ``key`` (affinity:
  jobs sharing a key — e.g. the same database — land on the same worker,
  whose memoized indexes and codecs then amortize across the batch).

Hash affinity is made real by a worker-side *database affinity cache*:
each worker keeps the last few keyed databases it unpickled, and an
``"evaluate"`` job whose shipped database equals the cached one for its
key runs against the cached object instead — through
:meth:`~repro.relational.structure.Structure.derived` every query on the
same database object shares one set of atom relations, so the hash
indexes one job's joins build are *probed* (``index_hits``) rather than
rebuilt (``index_builds``) by every later job with the same key.

Every job runs under fresh stats collectors in its worker and ships its
counters home; :meth:`Coordinator.run` merges them into the ambient
collectors (and :func:`~repro.parallel.pool.record_worker`) so batch
totals equal the sum of serial runs, and keeps per-worker subtotals in
:attr:`Coordinator.worker_totals` for the breakdown table.
"""

from __future__ import annotations

import hashlib
import os
import queue as _queue
import time
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.consistency.propagation import PropagationStats, publish
from repro.errors import SolverError
from repro.parallel.pool import (
    effective_config,
    get_manager,
    get_pool,
    record_worker,
)
from repro.relational.stats import EvalStats, current_stats

__all__ = ["Job", "JobResult", "Coordinator", "POLICIES"]

#: The routing policies :class:`Coordinator` accepts.
POLICIES = ("round-robin", "least-loaded", "hash")

#: Master-side guard against a wedged pool (seconds per result wait).
RESULT_TIMEOUT = 120.0


@dataclass(frozen=True)
class Job:
    """One unit of batch work.

    ``kind`` selects the entry point: ``"evaluate"`` (payload
    ``(query, database, strategy)`` →
    :func:`repro.cq.evaluate.evaluate`), ``"is_solvable"`` (payload
    ``(instance, strategy)`` → :func:`repro.csp.solvers.join.is_solvable`)
    or ``"solve"`` (payload ``(instance, strategy)`` → MAC backtracking,
    returning the solution dict).  ``key`` is the affinity token the
    ``"hash"`` policy routes on (defaults to the job's batch index).
    """

    kind: str
    payload: tuple
    key: Any = None


@dataclass
class JobResult:
    """One job's outcome plus the counters its worker shipped back."""

    index: int
    worker: int
    pid: int
    value: Any
    seconds: float
    eval_stats: EvalStats = field(repr=False, default_factory=EvalStats)
    propagation: PropagationStats = field(
        repr=False, default_factory=PropagationStats
    )
    search: Any = field(repr=False, default=None)


#: Worker-process-local database affinity cache: ``{job.key: database}``.
#: Bounded FIFO — a long-lived pool worker holds at most this many shipped
#: databases alive for cross-job index reuse.
_AFFINITY_CAP = 4
_affinity_databases: dict[Any, Any] = {}


def _affine_database(key: Any, database: Any) -> Any:
    """Swap a shipped database for this worker's cached equal copy.

    Every job arrives with its own unpickled database object, so without
    this cache even perfectly-routed jobs rebuild every index from
    scratch.  When an earlier job with the same ``key`` shipped an *equal*
    database, return that earlier object — its memoized atom relations and
    hash indexes (see :meth:`Structure.derived`) are already warm.  An
    unequal database under the same key (the caller updated it) replaces
    the cached copy, so reuse is never stale.
    """
    if key is None:
        return database
    cached = _affinity_databases.get(key)
    if cached is not None and cached == database:
        return cached
    if len(_affinity_databases) >= _AFFINITY_CAP:
        _affinity_databases.pop(next(iter(_affinity_databases)))
    _affinity_databases[key] = database
    return database


def _run_job(job: Job) -> Any:
    """Worker-side dispatch of one job (under installed collectors)."""
    if job.kind == "evaluate":
        from repro.cq.evaluate import evaluate

        query, database, strategy = job.payload
        return evaluate(query, _affine_database(job.key, database), strategy)
    if job.kind == "is_solvable":
        from repro.csp.solvers.join import is_solvable

        instance, strategy = job.payload
        return is_solvable(instance, strategy)
    if job.kind == "solve":
        instance, strategy = job.payload
        return None, instance, strategy  # handled by caller (needs stats)
    raise SolverError(f"unknown coordinator job kind {job.kind!r}")


def _coordinator_worker_loop(worker_id: int, task_q, result_q) -> int:
    """Pool task: drain this worker's queue until the ``None`` sentinel.

    Each job runs under fresh stats collectors; the result message is
    ``(index, worker_id, pid, value, eval_stats, prop_stats, search_stats,
    seconds)``.
    """
    from repro.consistency.propagation import collect_propagation
    from repro.csp.solvers.backtracking import Inference, solve_with_stats
    from repro.relational.stats import collect_stats

    pid = os.getpid()
    handled = 0
    while True:
        item = task_q.get()
        if item is None:
            return handled
        index, job = item
        handled += 1
        start = time.perf_counter()
        search_stats = None
        with collect_stats() as estats, collect_propagation() as pstats:
            if job.kind == "solve":
                instance, strategy = job.payload
                search_stats = solve_with_stats(instance, Inference.MAC, strategy)
                value = search_stats.solution
            else:
                value = _run_job(job)
        result_q.put(
            (
                index,
                worker_id,
                pid,
                value,
                estats,
                pstats,
                search_stats,
                time.perf_counter() - start,
            )
        )


def _next_result(result_q, loops):
    """One message off ``result_q``, polling the worker-loop handles so a
    crashed worker re-raises its exception immediately instead of letting
    the batch idle out the full :data:`RESULT_TIMEOUT`."""
    deadline = time.monotonic() + RESULT_TIMEOUT
    while True:
        try:
            return result_q.get(timeout=1.0)
        except _queue.Empty:
            for loop in loops:
                if loop.ready():
                    loop.get()  # re-raises the worker's exception
            if time.monotonic() >= deadline:
                raise SolverError(
                    "coordinator stalled: no worker reported within "
                    f"{RESULT_TIMEOUT:.0f}s"
                ) from None


def _stable_hash(key: Any) -> int:
    """A process-stable hash (``hash()`` is salted per interpreter)."""
    return int.from_bytes(
        hashlib.md5(repr(key).encode()).digest()[:8], "big"
    )


class Coordinator:
    """Route a batch of :class:`Job` objects across the worker pool."""

    def __init__(self, workers: int | None = None, policy: str = "round-robin"):
        if policy not in POLICIES:
            raise SolverError(
                f"unknown routing policy {policy!r}; expected one of {POLICIES}"
            )
        self.workers = workers or effective_config().workers
        self.policy = policy
        #: Per-worker subtotals of the last :meth:`run`:
        #: ``{worker_id: {"jobs", "pid", "seconds", "eval", "propagation"}}``.
        self.worker_totals: dict[int, dict] = {}

    def _route(self, index: int, job: Job) -> int:
        if self.policy == "hash":
            return _stable_hash(job.key if job.key is not None else index) % self.workers
        return index % self.workers  # round-robin (least-loaded routes lazily)

    def run(self, jobs: Sequence[Job]) -> list[JobResult]:
        """Execute ``jobs``; results come back in batch order.

        Merges every job's shipped counters into the ambient stats
        collectors (so a surrounding ``collect_stats`` block sees batch
        totals identical to running the jobs serially) and rebuilds
        :attr:`worker_totals`.
        """
        jobs = list(jobs)
        self.worker_totals = {}
        if not jobs:
            return []
        manager = get_manager()
        workers = min(self.workers, max(1, len(jobs)))
        task_queues = [manager.Queue() for _ in range(workers)]
        result_q = manager.Queue()
        pool = get_pool(workers)
        loops = [
            pool.apply_async(_coordinator_worker_loop, (w, task_queues[w], result_q))
            for w in range(workers)
        ]
        remaining = list(enumerate(jobs))
        if self.policy == "least-loaded":
            # Prime one job per worker; completions pull the rest.
            for w in range(min(workers, len(remaining))):
                index, job = remaining.pop(0)
                task_queues[w].put((index, job))
        else:
            for index, job in remaining:
                task_queues[self._route(index, job) % workers].put((index, job))
            remaining = []
        results: list[JobResult | None] = [None] * len(jobs)
        collected = 0
        try:
            while collected < len(jobs):
                index, worker_id, pid, value, estats, pstats, sstats, seconds = (
                    _next_result(result_q, loops)
                )
                collected += 1
                results[index] = JobResult(
                    index, worker_id, pid, value, seconds, estats, pstats, sstats
                )
                self._account(worker_id, pid, seconds, estats, pstats)
                record_worker(pid, "batch", f"job[{index}]:{jobs[index].kind}", estats)
                if remaining:
                    next_index, next_job = remaining.pop(0)
                    task_queues[worker_id].put((next_index, next_job))
        finally:
            # Always deliver the sentinels: a failed batch must not leave
            # worker loops blocked on their task queues.
            for q in task_queues:
                q.put(None)
        for loop in loops:
            loop.get(timeout=RESULT_TIMEOUT)
        # Merge batch totals into the ambient collectors, in batch order so
        # the merged stats are deterministic regardless of completion order.
        ambient = current_stats()
        for result in results:
            if ambient is not None:
                ambient.merge(result.eval_stats)
            publish(result.propagation)
        return results  # type: ignore[return-value]

    def _account(self, worker_id, pid, seconds, estats, pstats) -> None:
        totals = self.worker_totals.setdefault(
            worker_id,
            {
                "pid": pid,
                "jobs": 0,
                "seconds": 0.0,
                "eval": EvalStats(),
                "propagation": PropagationStats(),
            },
        )
        totals["jobs"] += 1
        totals["seconds"] += seconds
        totals["eval"].merge(estats)
        totals["propagation"].merge(pstats)
