"""Shard-parallel join operators: partition, fan out, merge back.

Each operator here is the ``execution="parallel"`` body of its serial
counterpart in :mod:`repro.relational.algebra` (which opens the telemetry
span *before* dispatching, so everything charged here — including merged
worker counters — lands inside the operator's span and the JSONL trace
reaggregates exactly):

* :func:`parallel_natural_join` / :func:`parallel_semijoin` hash-partition
  both operands on the full shared key and run one binary task per
  nonempty shard pair;
* :func:`parallel_fold` co-partitions a planner-ordered multi-way fold on
  its most-shared attribute — relations containing the attribute shard,
  the rest broadcast whole — and runs one fold task per viable shard.

Exactness: every output row fixes its partition-key value, so it is
produced by exactly one shard; the shard outputs are disjoint and their
union is the serial result.  Each shard folds in the parent's planner
order, so all shard schemes agree with the serial scheme.

Every operator falls back to the serial inner execution when the
configured worker count is below two, the operands are smaller than the
configured threshold, or there is no attribute to partition on (a pure
Cartesian product).  Worker tasks ship ``(result, EvalStats, pid)`` back;
the parent merges the stats into its own installed collector (counter
monotonicity makes the totals exact) and feeds the per-worker breakdown
via :func:`~repro.parallel.pool.record_worker`.
"""

from __future__ import annotations

import time
from itertools import chain
from typing import Iterable, Sequence

from repro.parallel.partition import (
    choose_partition_attribute,
    hash_partition,
    partition_codec,
)
from repro.parallel.pool import (
    effective_config,
    get_pool,
    inner_execution,
    record_worker,
    run_binary_task,
    run_fold_task,
)
from repro.relational.relation import Relation
from repro.relational.stats import current_stats

__all__ = [
    "parallel_natural_join",
    "parallel_semijoin",
    "parallel_fold",
    "parallel_join_all",
]


def _fold_scheme(pending: Sequence[Relation]) -> tuple[str, ...]:
    """The scheme a left-to-right fold of ``pending`` produces (each join
    appends the right operand's private attributes in scheme order)."""
    attrs: list[str] = []
    for rel in pending:
        for a in rel.attributes:
            if a not in attrs:
                attrs.append(a)
    return tuple(attrs)


def _aligned_rows(relation: Relation, attrs: tuple[str, ...]) -> Iterable[tuple]:
    """``relation``'s rows reordered to ``attrs`` (identity when the
    schemes already agree, which is the expected case)."""
    if relation.attributes == attrs:
        return iter(relation)
    positions = [relation.index_of(a) for a in attrs]
    return (tuple(row[p] for p in positions) for row in relation)


def _merge_worker_stats(outs: Sequence[tuple], kind: str, label: str) -> None:
    """Fold every task's shipped counters into the parent's collector (in
    submission order, so merged stats are deterministic) and feed the
    per-worker breakdown."""
    stats = current_stats()
    for index, (_, wstats, pid) in enumerate(outs):
        if stats is not None:
            stats.merge(wstats)
        record_worker(pid, kind, f"{label}[{index}]", wstats)


def _gather(
    shard_results: Sequence[Relation],
    attrs: tuple[str, ...],
    tasks: int,
    start: float,
) -> Relation:
    """Union the (disjoint) shard outputs and charge the gather."""
    result = Relation(
        attrs, chain.from_iterable(_aligned_rows(r, attrs) for r in shard_results)
    )
    stats = current_stats()
    if stats is not None:
        stats.record(
            "parallel_gather",
            emitted=len(result),
            parallel_tasks=tasks,
            seconds=time.perf_counter() - start,
        )
    return result


def parallel_natural_join(left: Relation, right: Relation) -> Relation:
    """``left ⋈ right`` by co-partitioning both operands on the shared key."""
    from repro.relational.algebra import _natural_join, _shared_and_private

    cfg = effective_config()
    inner = inner_execution(cfg)
    shared, right_private = _shared_and_private(left, right)
    if (
        cfg.workers < 2
        or not shared
        or len(left) + len(right) < cfg.threshold
    ):
        return _natural_join(left, right, inner)
    start = time.perf_counter()
    key = tuple(shared)
    codec = partition_codec((left, right), key)
    _charge_codec()
    shards = cfg.workers
    left_parts = hash_partition(left, key, shards, codec)
    right_parts = hash_partition(right, key, shards, codec)
    pool = get_pool(shards)
    pairs = [
        (left_parts[i], right_parts[i])
        for i in range(shards)
        if left_parts[i] and right_parts[i]
    ]
    handles = [
        pool.apply_async(run_binary_task, (("join", lp, rp, inner),))
        for lp, rp in pairs
    ]
    outs = [h.get() for h in handles]
    _merge_worker_stats(outs, "join", "natural_join")
    out_attrs = left.attributes + tuple(right_private)
    return _gather([r for r, _, _ in outs], out_attrs, len(pairs), start)


def parallel_semijoin(left: Relation, right: Relation) -> Relation:
    """``left ⋉ right`` by co-partitioning both operands on the shared key."""
    from repro.relational.algebra import _semijoin, _shared_and_private

    cfg = effective_config()
    inner = inner_execution(cfg)
    shared, _ = _shared_and_private(left, right)
    if (
        cfg.workers < 2
        or not shared
        or len(left) + len(right) < cfg.threshold
    ):
        return _semijoin(left, right, inner)
    start = time.perf_counter()
    key = tuple(shared)
    codec = partition_codec((left, right), key)
    _charge_codec()
    shards = cfg.workers
    left_parts = hash_partition(left, key, shards, codec)
    right_parts = hash_partition(right, key, shards, codec)
    pool = get_pool(shards)
    pairs = [
        (left_parts[i], right_parts[i])
        for i in range(shards)
        if left_parts[i] and right_parts[i]
    ]
    handles = [
        pool.apply_async(run_binary_task, (("semijoin", lp, rp, inner),))
        for lp, rp in pairs
    ]
    outs = [h.get() for h in handles]
    _merge_worker_stats(outs, "semijoin", "semijoin")
    return _gather([r for r, _, _ in outs], left.attributes, len(pairs), start)


def parallel_fold(pending: Sequence[Relation]) -> Relation:
    """A planner-ordered multi-way fold, co-partitioned on one attribute.

    ``pending`` arrives already ordered by the planner; each shard task
    folds its co-partitioned copy in exactly that order (so shard schemes
    and the serial scheme coincide).  Relations that do not contain the
    partition attribute are broadcast to every shard.
    """
    from repro.relational.algebra import _join_all

    pending = list(pending)
    cfg = effective_config()
    inner = inner_execution(cfg)
    total = sum(len(r) for r in pending)
    if cfg.workers < 2 or len(pending) < 2 or total < cfg.threshold:
        return _join_all(pending, inner)
    attr = choose_partition_attribute(pending)
    if attr is None:
        # Pure Cartesian product: no key to shard on.
        return _join_all(pending, inner)
    start = time.perf_counter()
    holders = [r for r in pending if attr in r.attributes]
    codec = partition_codec(holders, (attr,))
    _charge_codec()
    shards = cfg.workers
    parts = {id(r): hash_partition(r, (attr,), shards, codec) for r in holders}
    shard_inputs = []
    for i in range(shards):
        rels = tuple(
            parts[id(r)][i] if attr in r.attributes else r for r in pending
        )
        # An empty holder shard makes this shard's whole fold empty — skip.
        if all(len(r) for r in rels if attr in r.attributes):
            shard_inputs.append(rels)
    pool = get_pool(shards)
    handles = [
        pool.apply_async(run_fold_task, ((rels, inner),))
        for rels in shard_inputs
    ]
    outs = [h.get() for h in handles]
    _merge_worker_stats(outs, "join", "fold")
    return _gather(
        [r for r, _, _ in outs], _fold_scheme(pending), len(shard_inputs), start
    )


#: Alias matching the public ``join_all`` entry point's vocabulary.
parallel_join_all = parallel_fold


def _charge_codec() -> None:
    """Charge the shared partition codec build to the ambient stats."""
    stats = current_stats()
    if stats is not None:
        stats.record("partition_codec", intern_tables=1)
