"""Establishing strong k-consistency — Definitions 5.4/5.5, Theorem 5.6.

Theorem 5.6: strong k-consistency can be established for ``(A, B)`` iff the
Duplicator wins the existential k-pebble game (``W^k(A,B) ≠ ∅``), and in that
case the four-step procedure below yields the *largest coherent* instance
establishing it:

1. compute ``W^k(A, B)`` (the largest winning strategy);
2. for every ``i ≤ k`` and every i-tuple ``ā`` over ``A``, form
   ``R_ā = { b̄ : (ā, b̄) ∈ W^k(A, B) }``;
3. form the CSP instance with variables ``A``, values ``B``, and constraints
   ``{(ā, R_ā)}``;
4. return its homomorphism instance ``(A′, B′)``.

:func:`establish_strong_k_consistency` implements the procedure verbatim;
:func:`check_establishes` verifies the four clauses of Definition 5.4 on an
arbitrary candidate, and :func:`is_coherent` checks Definition 5.5.
"""

from __future__ import annotations

from itertools import product
from typing import Any

from repro.csp.convert import csp_to_homomorphism, homomorphism_to_csp
from repro.csp.instance import Constraint, CSPInstance
from repro.errors import UnsatisfiableError
from repro.games.pebble import PebbleGameResult, solve_game
from repro.relational.homomorphism import is_homomorphism, is_partial_homomorphism
from repro.relational.structure import Structure

__all__ = [
    "establish_strong_k_consistency",
    "establishment_csp",
    "can_establish",
    "check_establishes",
    "is_coherent",
]


def can_establish(
    a: Structure, b: Structure, k: int, strategy: str = "residual"
) -> bool:
    """Whether strong k-consistency can be established for ``(A, B)`` —
    equivalently (Thm 5.6), whether the Duplicator wins the k-pebble game.

    ``strategy`` selects the game's pruning engine (``"residual"``,
    ``"naive"``, or ``"interned"``); all compute the same answer.
    """
    return solve_game(a, b, k, strategy=strategy).duplicator_wins


def establishment_csp(
    a: Structure,
    b: Structure,
    k: int,
    game: PebbleGameResult | None = None,
    strategy: str = "residual",
) -> CSPInstance:
    """Steps 1–3 of Theorem 5.6: the CSP instance whose constraints are all
    the relations ``R_ā`` read off the largest winning strategy.

    Scopes range over tuples of *distinct* elements of ``A`` (repetition in a
    scope adds nothing: the induced constraint is determined by the distinct
    positions, and normalization would remove it again).

    Raises :class:`UnsatisfiableError` when the Spoiler wins, since then
    strong k-consistency cannot be established (Thm 5.6, only-if direction).
    """
    if game is None:
        game = solve_game(a, b, k, strategy=strategy)
    if game.spoiler_wins:
        raise UnsatisfiableError(
            "the Spoiler wins the existential k-pebble game; "
            "strong k-consistency cannot be established"
        )
    variables = sorted(a.domain, key=repr)
    constraints: list[Constraint] = []
    for size in range(1, k + 1):
        for scope in _distinct_tuples(variables, size):
            rows = game.winning_tuples(scope)
            constraints.append(Constraint(scope, rows))
    return CSPInstance(variables, b.domain, constraints)


def _distinct_tuples(elements: list[Any], size: int):
    from itertools import permutations

    yield from permutations(elements, size)


def establish_strong_k_consistency(
    a: Structure, b: Structure, k: int, strategy: str = "residual"
) -> tuple[Structure, Structure]:
    """The full four-step procedure of Theorem 5.6.

    Returns the homomorphism instance ``(A′, B′)`` of the establishment CSP —
    the largest coherent instance establishing strong k-consistency for
    ``(A, B)``.  ``strategy`` selects the underlying game engine.
    """
    instance = establishment_csp(a, b, k, strategy=strategy)
    return csp_to_homomorphism(instance)


def check_establishes(
    a: Structure,
    b: Structure,
    a_prime: Structure,
    b_prime: Structure,
    k: int,
) -> bool:
    """Verify Definition 5.4: ``(A′, B′)`` establishes strong k-consistency
    for ``(A, B)``.

    Checks the four clauses:

    1. ``dom(A′) = dom(A)`` and ``dom(B′) = dom(B)`` (and the vocabulary of
       the primed pair is k-ary);
    2. ``CSP(A′, B′)`` is strongly k-consistent;
    3. every k-partial homomorphism ``A′ → B′`` is one of ``A → B``;
    4. total functions ``A → B`` are homomorphisms ``A → B`` iff they are
       homomorphisms ``A′ → B′``.

    Exhaustive (clauses 3–4 enumerate functions), so intended for the small
    structures of the test suite.
    """
    from repro.consistency.local import is_strongly_k_consistent

    if a_prime.domain != a.domain or b_prime.domain != b.domain:
        return False
    if a_prime.vocabulary.max_arity() > k:
        return False

    instance = homomorphism_to_csp(a_prime, b_prime)
    if not is_strongly_k_consistent(instance, k):
        return False

    a_elems = sorted(a.domain, key=repr)
    b_elems = sorted(b.domain, key=repr)

    # Clause 3: k-partial homomorphisms of the primed pair are k-partial
    # homomorphisms of the original pair.
    from itertools import combinations

    for size in range(1, min(k, len(a_elems)) + 1):
        for dom in combinations(a_elems, size):
            for image in product(b_elems, repeat=size):
                mapping = dict(zip(dom, image))
                if is_partial_homomorphism(mapping, a_prime, b_prime):
                    if not is_partial_homomorphism(mapping, a, b):
                        return False

    # Clause 4: total homomorphisms coincide.
    for image in product(b_elems, repeat=len(a_elems)):
        mapping = dict(zip(a_elems, image))
        if is_homomorphism(mapping, a, b) != is_homomorphism(mapping, a_prime, b_prime):
            return False
    return True


def is_coherent(a: Structure, b: Structure) -> bool:
    """Definition 5.5: ``(A, B)`` is coherent if for every constraint
    ``(ā, R)`` of ``CSP(A, B)`` and every ``b̄ ∈ R``, the correspondence
    ``h_{ā,b̄}`` is a well-defined partial homomorphism from ``A`` to ``B``."""
    instance = homomorphism_to_csp(a, b)
    for constraint in instance.constraints:
        scope = constraint.scope
        for row in constraint.relation:
            mapping: dict[Any, Any] = {}
            well_defined = True
            for var, value in zip(scope, row):
                if var in mapping and mapping[var] != value:
                    well_defined = False
                    break
                mapping[var] = value
            if not well_defined:
                return False
            if not is_partial_homomorphism(mapping, a, b):
                return False
    return True
