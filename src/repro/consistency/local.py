"""Local consistency — Definitions 5.2 and Proposition 5.3 of the tutorial.

``i``-consistency: every partial solution on ``i−1`` variables extends to any
``i``-th variable.  Strong ``k``-consistency: ``i``-consistency for all
``i ≤ k``.  Proposition 5.3 recasts both in terms of partial homomorphisms of
the homomorphism instance and of the existential k-pebble game; this module
implements the direct definitional checks *and* the game-based
reformulations, which the test suite verifies to coincide.
"""

from __future__ import annotations

from itertools import combinations, product
from typing import Any

from repro.csp.convert import csp_to_homomorphism
from repro.csp.instance import CSPInstance
from repro.errors import DomainError
from repro.games.pebble import has_forth_property, is_winning_strategy
from repro.relational.homomorphism import is_partial_homomorphism
from repro.relational.interning import encode_structure
from repro.relational.structure import Structure

__all__ = [
    "partial_solutions_on",
    "is_i_consistent",
    "is_strongly_k_consistent",
    "is_i_consistent_via_homomorphisms",
    "is_strongly_k_consistent_via_game",
]


def partial_solutions_on(
    instance: CSPInstance, variables: tuple[Any, ...]
) -> list[dict[Any, Any]]:
    """All partial solutions on exactly the given variables.

    A partial solution violates no constraint whose scope lies entirely
    inside ``variables`` (cf. the discussion before Definition 5.2).
    Exhaustive — meant for the small ``i`` of the consistency definitions.
    """
    domain = sorted(instance.domain, key=repr)
    relevant = [
        c for c in instance.constraints if set(c.scope) <= set(variables)
    ]
    out = []
    for values in product(domain, repeat=len(variables)):
        assignment = dict(zip(variables, values))
        if all(c.satisfied_by(assignment) for c in relevant):
            out.append(assignment)
    return out


def is_i_consistent(instance: CSPInstance, i: int) -> bool:
    """Definition 5.2: every partial solution on ``i−1`` variables extends to
    every further variable."""
    if i < 1:
        raise DomainError(f"i-consistency needs i >= 1, got {i}")
    variables = instance.variables
    if len(variables) < i:
        return True
    for base in combinations(variables, i - 1):
        partials = partial_solutions_on(instance, base)
        for extra in variables:
            if extra in base:
                continue
            for assignment in partials:
                if not _extends(instance, assignment, extra):
                    return False
    return True


def _extends(instance: CSPInstance, assignment: dict[Any, Any], variable: Any) -> bool:
    extended_vars = set(assignment) | {variable}
    relevant = [
        c
        for c in instance.constraints
        if variable in c.scope and set(c.scope) <= extended_vars
    ]
    for value in instance.domain:
        assignment[variable] = value
        if all(c.satisfied_by(assignment) for c in relevant):
            del assignment[variable]
            return True
    del assignment[variable]
    return False


def is_strongly_k_consistent(instance: CSPInstance, k: int) -> bool:
    """Strong k-consistency: i-consistency for every ``i ≤ k`` (Def 5.2)."""
    return all(is_i_consistent(instance, i) for i in range(1, k + 1))


def _partial_homomorphism_family(
    a: Structure, b: Structure, size: int
) -> set[frozenset]:
    """All partial homomorphisms A → B with domain of size exactly ``size``.

    The exhaustive |A|^size·|B|^size sweep runs in code space: both
    structures are interned to dense ints so every candidate mapping is
    built, hashed, and homomorphism-checked over small-int pairs, and only
    the accepted mappings are decoded back to original values.  The family
    returned is exactly the one the plain enumeration produced.
    """
    enc_a, codec_a = encode_structure(a)
    enc_b, codec_b = encode_structure(b)
    family: set[frozenset] = set()
    a_elems = sorted(enc_a.domain)
    b_elems = sorted(enc_b.domain)
    da, db = codec_a.decode, codec_b.decode
    for dom in combinations(a_elems, size):
        for image in product(b_elems, repeat=size):
            mapping = dict(zip(dom, image))
            if is_partial_homomorphism(mapping, enc_a, enc_b):
                family.add(frozenset((da(x), db(y)) for x, y in mapping.items()))
    return family


def is_i_consistent_via_homomorphisms(instance: CSPInstance, i: int) -> bool:
    """Proposition 5.3 (first half): ``P`` is i-consistent iff the family of
    all (i−1)-element partial homomorphisms of ``(A_P, B_P)`` has the i-forth
    property."""
    if i < 1:
        raise DomainError(f"i-consistency needs i >= 1, got {i}")
    a, b = csp_to_homomorphism(instance)
    if len(a.domain) < i:
        return True
    family = _partial_homomorphism_family(a, b, i - 1)
    family |= _partial_homomorphism_family(a, b, i)  # extensions to test against
    base = {f for f in family if len(f) == i - 1}
    # forth with threshold i: every (i-1)-sized member extends to each element.
    for f in base:
        dom = {p[0] for p in f}
        for x in a.domain:
            if x in dom:
                continue
            if not any(
                f < g and len(g) == i and x in {p[0] for p in g} for g in family
            ):
                return False
    return True


def is_strongly_k_consistent_via_game(instance: CSPInstance, k: int) -> bool:
    """Proposition 5.3 (second half): ``P`` is strongly k-consistent iff the
    family of *all* ≤k-partial homomorphisms of ``(A_P, B_P)`` is a winning
    strategy for the Duplicator in the existential k-pebble game."""
    a, b = csp_to_homomorphism(instance)
    family: set[frozenset] = set()
    for size in range(0, k + 1):
        family |= _partial_homomorphism_family(a, b, size)
    return is_winning_strategy(family, a, b, k) and has_forth_property(family, a, k)
