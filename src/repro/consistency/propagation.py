"""The residual-support propagation core shared by the §5 fixpoint engines.

Arc consistency, singleton arc consistency, path consistency, and the
existential k-pebble game of Section 4 are all *greatest-fixpoint pruning*
procedures: start from a candidate set (domain values, pair tuples, partial
homomorphisms) and delete elements that have lost their supporting witness,
cascading until nothing changes.  Marx (*Modern Lower Bound Techniques in
Database Theory and Constraint Satisfaction*, 2022) identifies exactly these
procedures as the complexity-critical core of the CSP/DB correspondence —
and their naive implementations redo the same witness search over and over.

This module provides the three ingredients the rewritten engines share:

* :class:`PropagationStats` — the observability layer, mirroring
  :class:`~repro.relational.stats.EvalStats`: revisions, constraint-row
  support checks, residual-support hits, trail restores, and wipeouts,
  collectable through a ``contextvars``-scoped :func:`collect_propagation`.
* :class:`Worklist` — a set-backed deduplicating queue.  The classical AC-3
  formulation appends ``(constraint, variable)`` arcs unboundedly; here an
  arc already awaiting revision is never enqueued twice.
* :class:`PropagationEngine` — generalized arc consistency in the AC-3rm
  *residual support* style (Lecoutre–Hemery): for every
  ``(constraint, variable, value)`` triple the last support row found is
  remembered, and a revision first re-verifies that stored row in O(arity)
  before falling back to a scan — and the scan itself only walks the rows
  that carry ``value`` in the right column, courtesy of the memoized
  :meth:`~repro.relational.relation.Relation.index_on` hash indexes from the
  join backend.  Residual supports are *hints*, re-verified before every
  use, so they stay sound when domains grow back (trail-restoring SAC
  probes, backtracking search) — unlike AC-2001 pointers, which assume
  monotone deletion.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Any, Container, Hashable, Iterable, Iterator

from repro.csp.instance import Constraint, CSPInstance
from repro.relational.interning import bit_positions, encode_instance
from repro.relational.relation import Relation
from repro.telemetry.registry import counter_delta, snapshot
from repro.telemetry.spans import span

__all__ = [
    "PropagationStats",
    "collect_propagation",
    "current_propagation",
    "Worklist",
    "PropagationEngine",
    "InternedEngine",
    "ColumnarEngine",
    "make_engine",
    "PROPAGATION_STRATEGIES",
    "check_propagation_strategy",
]

#: The propagation strategies every §4/§5 fixpoint engine accepts:
#: ``"residual"`` (the support-indexed default), ``"naive"`` (the
#: rescan-everything baseline, kept as the differential-testing oracle —
#: the same role ``execution="scan"`` plays in the join backend),
#: ``"interned"`` (bitset domains over dense-int value codes; see
#: :class:`InternedEngine`), and ``"columnar"`` (the same bitset domains,
#: but with each revision sweeping the constraint's whole code-space
#: column as one vectorized operation when numpy is available; see
#: :class:`ColumnarEngine`).
PROPAGATION_STRATEGIES: tuple[str, ...] = ("residual", "naive", "interned", "columnar")


def check_propagation_strategy(strategy: str) -> str:
    """Validate a propagation strategy name, returning it unchanged.

    Unknown names raise :class:`~repro.errors.SolverError`, mirroring
    :func:`repro.relational.planner.parse_strategy`.
    """
    if strategy not in PROPAGATION_STRATEGIES:
        from repro.errors import SolverError

        raise SolverError(
            f"unknown propagation strategy {strategy!r}; "
            f"expected one of {PROPAGATION_STRATEGIES}"
        )
    return strategy


@dataclass
class PropagationStats:
    """Mutable accumulator of propagation counters (monotone, like EvalStats).

    Attributes
    ----------
    revisions:
        Revise operations that actually examined constraint rows (a pop of
        an arc whose domain is already empty counts nothing).
    support_checks:
        Constraint rows tested for validity against the current domains —
        the unit of work the residual engine exists to save.
    support_hits:
        Stored residual supports that re-verified successfully, i.e. the
        O(1) fast path.  ``support_hits ≤ support_checks`` always.
    trail_restores:
        Values put back by a trail rollback (SAC probes restoring the
        shared fixpoint instead of rebuilding the instance).
    wipeouts:
        Domain (or pair-relation) wipeouts observed — each one is a proof
        of unsatisfiability of the probed instance.
    intern_tables:
        Value ↔ dense-int codec tables built by interned engines.
    bitset_words:
        64-bit words held by the bitset domain representation (variables ×
        words-per-domain), charged once per interned engine build.
    mask_ops:
        Word-level membership operations performed by bitset revisions —
        the interned counterpart of ``support_checks``.
    """

    revisions: int = 0
    support_checks: int = 0
    support_hits: int = 0
    trail_restores: int = 0
    wipeouts: int = 0
    intern_tables: int = 0
    bitset_words: int = 0
    mask_ops: int = 0

    def merge(self, other: "PropagationStats") -> "PropagationStats":
        """Fold ``other``'s counters into this object (in place); return it."""
        self.revisions += other.revisions
        self.support_checks += other.support_checks
        self.support_hits += other.support_hits
        self.trail_restores += other.trail_restores
        self.wipeouts += other.wipeouts
        self.intern_tables += other.intern_tables
        self.bitset_words += other.bitset_words
        self.mask_ops += other.mask_ops
        return self

    def reset(self) -> None:
        """Zero every counter."""
        self.revisions = 0
        self.support_checks = 0
        self.support_hits = 0
        self.trail_restores = 0
        self.wipeouts = 0
        self.intern_tables = 0
        self.bitset_words = 0
        self.mask_ops = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of support checks answered by a stored residual support."""
        return self.support_hits / self.support_checks if self.support_checks else 0.0

    def as_dict(self) -> dict:
        """A plain-dict snapshot (for ``--json`` output and EXPERIMENTS tables)."""
        return {
            "revisions": self.revisions,
            "support_checks": self.support_checks,
            "support_hits": self.support_hits,
            "trail_restores": self.trail_restores,
            "wipeouts": self.wipeouts,
            "hit_rate": self.hit_rate,
            "intern_tables": self.intern_tables,
            "bitset_words": self.bitset_words,
            "mask_ops": self.mask_ops,
        }

    def summary(self) -> str:
        """A short human-readable report."""
        return "\n".join(
            [
                f"revisions       {self.revisions}",
                f"support checks  {self.support_checks}",
                f"support hits    {self.support_hits} ({self.hit_rate:.0%})",
                f"trail restores  {self.trail_restores}",
                f"wipeouts        {self.wipeouts}",
                f"intern tables   {self.intern_tables}",
                f"bitset words    {self.bitset_words}",
                f"mask ops        {self.mask_ops}",
            ]
        )


# Like EvalStats: a ContextVar rather than a module global, so concurrent
# traces (threads, asyncio tasks, nested blocks) never share counters.
_ACTIVE: ContextVar[PropagationStats | None] = ContextVar(
    "repro_propagation_stats", default=None
)


def current_propagation() -> PropagationStats | None:
    """The innermost active :func:`collect_propagation` stats object, if any."""
    return _ACTIVE.get()


@contextmanager
def collect_propagation(
    stats: PropagationStats | None = None,
) -> Iterator[PropagationStats]:
    """Collect propagation statistics for the duration of the ``with`` block.

    Every propagation engine (AC/SAC/PC strategies, the pebble-game
    pruning, MAC search) merges its per-run counters into the innermost
    active block on completion.  Nested blocks shadow outer ones.

    >>> from repro.consistency.arc import ac3
    >>> from repro.csp.instance import Constraint, CSPInstance
    >>> inst = CSPInstance(["x", "y"], [0, 1], [Constraint(("x", "y"), {(0, 1)})])
    >>> with collect_propagation() as stats:
    ...     _ = ac3(inst)
    >>> stats.revisions > 0
    True
    """
    if stats is None:
        stats = PropagationStats()
    token = _ACTIVE.set(stats)
    try:
        yield stats
    finally:
        _ACTIVE.reset(token)


def publish(stats: PropagationStats) -> PropagationStats:
    """Merge ``stats`` into the active :func:`collect_propagation` block.

    Engines call this exactly once per run, so a traced composite (SAC over
    many probes, a whole search) reports the merged counters of its parts.
    Returns ``stats`` unchanged for chaining.
    """
    active = _ACTIVE.get()
    if active is not None and active is not stats:
        active.merge(stats)
    return stats


class Worklist:
    """A set-backed deduplicating FIFO queue of hashable work items.

    The fix for the classical AC-3 formulation's unbounded duplicate-arc
    enqueueing: an item already awaiting processing is not enqueued again
    (``push`` returns ``False``), while an item may of course re-enter the
    queue after it has been popped.

    >>> wl = Worklist([1, 2, 1])
    >>> len(wl)
    2
    >>> wl.pop(), wl.pop()
    (1, 2)
    >>> wl.push(1)
    True
    """

    __slots__ = ("_queue", "_members")

    def __init__(self, items: Iterable[Hashable] = ()):
        self._queue: deque = deque()
        self._members: set = set()
        for item in items:
            self.push(item)

    def push(self, item: Hashable) -> bool:
        """Enqueue ``item`` unless it is already pending; report whether it was."""
        if item in self._members:
            return False
        self._members.add(item)
        self._queue.append(item)
        return True

    def pop(self) -> Any:
        """Dequeue and return the oldest pending item."""
        item = self._queue.popleft()
        self._members.discard(item)
        return item

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)

    def __contains__(self, item: object) -> bool:
        return item in self._members


class _ResidualConstraint:
    """One constraint prepared for residual-support revision.

    The relation is wrapped in a :class:`~repro.relational.relation.Relation`
    over positional attribute names so the join backend's memoized
    :meth:`~repro.relational.relation.Relation.index_on` hash indexes serve
    as the per-(position, value) candidate lists: a revision for value ``a``
    of the variable at position ``i`` only ever walks the rows that carry
    ``a`` in column ``i``, never the whole relation.
    """

    __slots__ = ("scope", "arity", "position", "relation", "_attrs", "_supports")

    def __init__(self, constraint: Constraint):
        self.scope = constraint.scope
        self.arity = constraint.arity
        # Normalized scopes have distinct variables, so positions are unique.
        self.position = {v: i for i, v in enumerate(self.scope)}
        self._attrs = tuple(f"p{i}" for i in range(self.arity))
        self.relation = Relation(self._attrs, constraint.relation)
        # (position, value) → last row found to support the value there.
        self._supports: dict[tuple[int, Any], tuple[Any, ...]] = {}

    def candidates(self, position: int, value: Any) -> list[tuple[Any, ...]]:
        """Rows carrying ``value`` at ``position`` (memoized hash-index group)."""
        index = self.relation.index_on((self._attrs[position],))
        return index.get((value,), [])  # type: ignore[return-value]

    def row_valid(self, row: tuple[Any, ...], domains: dict[Any, set[Any]]) -> bool:
        scope = self.scope
        for i in range(self.arity):
            if row[i] not in domains[scope[i]]:
                return False
        return True

    def revise(
        self,
        variable: Any,
        domains: dict[Any, set[Any]],
        stats: PropagationStats,
    ) -> set[Any]:
        """Remove and return the values of ``variable`` with no support here.

        Each surviving value costs one support check when its stored
        residual support is still valid; otherwise its candidate index
        group is scanned until a new support is found (and stored).
        """
        position = self.position[variable]
        current = domains[variable]
        if not current:
            return set()
        stats.revisions += 1
        removed: set[Any] = set()
        for value in current:
            key = (position, value)
            stored = self._supports.get(key)
            if stored is not None:
                stats.support_checks += 1
                if self.row_valid(stored, domains):
                    stats.support_hits += 1
                    continue
            for row in self.candidates(position, value):
                if row is stored:
                    continue  # already found invalid just above
                stats.support_checks += 1
                if self.row_valid(row, domains):
                    self._supports[key] = row
                    break
            else:
                removed.add(value)
        if removed:
            domains[variable] = current - removed
        return removed


class PropagationEngine:
    """Generalized arc consistency with residual supports over one instance.

    Built once per (normalized) instance; revisions share the constraint
    indexes and residual supports across every propagation the caller runs
    — AC-3 passes, SAC probes, or all the nodes of a MAC search.  Residual
    supports are verified before use, so the engine is sound even when the
    caller restores previously deleted values between calls.
    """

    def __init__(self, instance: CSPInstance):
        if not instance.is_normalized():
            instance = instance.normalize()
        self.instance = instance
        self._ordered_domain = sorted(instance.domain, key=repr)
        self.constraints = [_ResidualConstraint(c) for c in instance.constraints]
        self.constraints_on: dict[Any, list[_ResidualConstraint]] = {
            v: [] for v in instance.variables
        }
        for rc in self.constraints:
            for v in rc.scope:
                self.constraints_on[v].append(rc)

    # -- worklist construction -------------------------------------------

    def fresh_domains(self) -> dict[Any, set[Any]]:
        """Full domains for every variable (the AC starting point)."""
        return {v: set(self.instance.domain) for v in self.instance.variables}

    def full_worklist(self, skip: Container[Any] = ()) -> Worklist:
        """Every (constraint, variable) arc, minus targets in ``skip``."""
        return Worklist(
            (rc, v) for rc in self.constraints for v in rc.scope if v not in skip
        )

    def arcs_from(self, variables: Iterable[Any], skip: Container[Any] = ()) -> Worklist:
        """The arcs whose revision a change to ``variables`` can trigger:
        ``(c, v)`` for every constraint ``c`` on a changed variable and
        every *other* variable ``v`` of its scope not in ``skip``."""
        worklist = Worklist()
        for changed in variables:
            for rc in self.constraints_on.get(changed, ()):
                for v in rc.scope:
                    if v != changed and v not in skip:
                        worklist.push((rc, v))
        return worklist

    # -- the fixpoint loop -------------------------------------------------

    def propagate(
        self,
        domains: dict[Any, set[Any]],
        worklist: Worklist,
        stats: PropagationStats,
        trail: list[tuple[Any, set[Any]]] | None = None,
        skip: Container[Any] = (),
    ) -> bool:
        """Run revisions to fixpoint; ``False`` on a domain wipeout.

        Deletions are appended to ``trail`` (as ``(variable, removed-set)``
        entries) when one is given, so the caller can roll them back with
        :meth:`restore`.  ``skip`` excludes revision targets (assigned
        search variables).  On a wipeout the worklist is abandoned —
        the instance is already refuted.
        """
        sp = span(
            "propagation.fixpoint",
            engine=type(self).__name__,
            arcs=len(worklist),
        )
        if not sp:
            return self._propagate(domains, worklist, stats, trail, skip)
        # ``stats`` is a function argument, not the ContextVar-installed
        # object, so the span cannot capture its delta automatically.
        with sp:
            before = snapshot(stats)
            ok = self._propagate(domains, worklist, stats, trail, skip)
            sp.add_counters("propagation", counter_delta(stats, before))
            sp.note(consistent=ok)
            return ok

    def _propagate(
        self,
        domains: dict[Any, set[Any]],
        worklist: Worklist,
        stats: PropagationStats,
        trail: list[tuple[Any, set[Any]]] | None = None,
        skip: Container[Any] = (),
    ) -> bool:
        while worklist:
            rc, variable = worklist.pop()
            removed = rc.revise(variable, domains, stats)
            if not removed:
                continue
            if trail is not None:
                trail.append((variable, removed))
            if not domains[variable]:
                stats.wipeouts += 1
                return False
            for other in self.constraints_on[variable]:
                for v in other.scope:
                    if v != variable and v not in skip:
                        worklist.push((other, v))
        return True

    @staticmethod
    def restore(
        domains: dict[Any, set[Any]],
        trail: list[tuple[Any, set[Any]]],
        stats: PropagationStats,
    ) -> None:
        """Undo every deletion recorded on ``trail`` (newest first), emptying it."""
        while trail:
            variable, removed = trail.pop()
            domains[variable] |= removed
            stats.trail_restores += len(removed)

    # -- generic domain protocol --------------------------------------------
    #
    # SAC and MAC drive either engine through these accessors, so the two
    # domain representations (value sets here, bitmasks in InternedEngine)
    # share one search/probe loop.  ``domain_values`` must enumerate in the
    # canonical ``repr`` order both engines agree on.

    def charge_build(self, stats: PropagationStats) -> None:
        """Charge this engine's representation cost to ``stats`` (nothing
        for the plain set engine; codec + bitset words for the interned one).
        """

    def domain_size(self, domains: dict[Any, Any], variable: Any) -> int:
        return len(domains[variable])

    def domain_values(self, domains: dict[Any, Any], variable: Any) -> list[Any]:
        """The current domain in canonical (``repr``-sorted) order.

        The instance-wide order is precomputed once, so per-call work is a
        filter, not a sort.
        """
        current = domains[variable]
        return [v for v in self._ordered_domain if v in current]

    def contains(self, domains: dict[Any, Any], variable: Any, value: Any) -> bool:
        return value in domains[variable]

    def is_empty(self, domains: dict[Any, Any], variable: Any) -> bool:
        return not domains[variable]

    def pin(self, domains: dict[Any, Any], variable: Any, value: Any) -> Any:
        """Narrow ``variable`` to ``{value}``; return what was removed.

        Returns a falsy empty removal when the domain already was the
        singleton.  The removal is the trail entry for :meth:`restore`.
        """
        removed = domains[variable] - {value}
        if removed:
            domains[variable] = {value}
        return removed

    def discard(self, domains: dict[Any, Any], variable: Any, value: Any) -> None:
        domains[variable].discard(value)

    def count(self, removed: Any) -> int:
        """Number of values in a removal produced by revise/pin."""
        return len(removed)

    def export_domains(self, domains: dict[Any, Any]) -> dict[Any, set[Any]]:
        """The domains as plain value sets (already are, for this engine)."""
        return domains

    def decode_assignment(self, assignment: dict[Any, Any]) -> dict[Any, Any]:
        """A plain-value copy of a solver assignment (identity here)."""
        return dict(assignment)


class _BitsetConstraint:
    """One code-space constraint prepared for bitset revision.

    The relation's rows are tuples of dense int codes, so support questions
    become word operations on int bitmasks:

    * arity 1 — intersect the domain with the precomputed allowed mask;
    * arity 2 — for each candidate value, one ``partner_mask & other_domain``
      AND decides support (the partner masks are precomputed per value and
      position);
    * arity ≥ 3 — walk the per-(position, value) candidate rows testing each
      entry with a ``(domain >> code) & 1`` bit probe.

    Every word-level membership operation is counted in
    ``PropagationStats.mask_ops`` — the interned analogue of the residual
    engine's ``support_checks``.
    """

    __slots__ = ("scope", "arity", "position", "allowed_mask", "partner_masks", "candidates")

    def __init__(self, constraint: Constraint, n_codes: int):
        self.scope = constraint.scope
        self.arity = constraint.arity
        # Normalized scopes have distinct variables, so positions are unique.
        self.position = {v: i for i, v in enumerate(self.scope)}
        self.allowed_mask = 0
        self.partner_masks: tuple[list[int], list[int]] | None = None
        self.candidates: list[list[list[tuple[int, ...]]]] | None = None
        rows = constraint.relation
        if self.arity == 1:
            mask = 0
            for row in rows:
                mask |= 1 << row[0]
            self.allowed_mask = mask
        elif self.arity == 2:
            first = [0] * n_codes
            second = [0] * n_codes
            for a, b in rows:
                first[a] |= 1 << b
                second[b] |= 1 << a
            self.partner_masks = (first, second)
        else:
            cand = [[[] for _ in range(n_codes)] for _ in range(self.arity)]
            for row in rows:
                for i, code in enumerate(row):
                    cand[i][code].append(row)
            self.candidates = cand

    def revise(
        self,
        variable: Any,
        domains: dict[Any, int],
        stats: PropagationStats,
    ) -> int:
        """Remove and return (as a bitmask) the unsupported values of
        ``variable`` — the bitset counterpart of
        :meth:`_ResidualConstraint.revise`."""
        position = self.position[variable]
        current = domains[variable]
        if not current:
            return 0
        stats.revisions += 1
        if self.arity == 1:
            stats.mask_ops += 1
            new = current & self.allowed_mask
        elif self.arity == 2:
            other = domains[self.scope[1 - position]]
            masks = self.partner_masks[position]
            new = 0
            ops = 0
            m = current
            while m:
                low = m & -m
                ops += 1
                if masks[low.bit_length() - 1] & other:
                    new |= low
                m ^= low
            stats.mask_ops += ops
        else:
            scope = self.scope
            arity = self.arity
            cand = self.candidates[position]
            new = 0
            ops = 0
            m = current
            while m:
                low = m & -m
                for row in cand[low.bit_length() - 1]:
                    valid = True
                    for i in range(arity):
                        if i == position:
                            continue
                        ops += 1
                        if not (domains[scope[i]] >> row[i]) & 1:
                            valid = False
                            break
                    if valid:
                        new |= low
                        break
                m ^= low
            stats.mask_ops += ops
        removed = current & ~new
        if removed:
            domains[variable] = new
        return removed


class InternedEngine(PropagationEngine):
    """Generalized arc consistency over bitset domains in code space.

    The instance's values are interned to dense int codes (in ``repr``
    order, so ascending code order matches the plain engines' canonical
    value order); each variable's domain becomes one int bitmask; and
    revisions are word operations (:class:`_BitsetConstraint`).  The
    worklist discipline, the propagate loop, and the trail protocol are
    inherited unchanged from :class:`PropagationEngine` — a trail entry is
    ``(variable, removed_mask)`` and restore is ``domains[v] |= mask``,
    which is the same ``|=`` the set engine uses.

    Callers that build one should charge ``intern_tables += 1`` and
    ``bitset_words += engine.bitset_words`` to their stats object, so the
    representation cost stays visible next to the ``mask_ops`` it buys.
    """

    def __init__(self, instance: CSPInstance):
        if not instance.is_normalized():
            instance = instance.normalize()
        self.instance = instance
        self.encoded, self.codec = encode_instance(instance)
        n = len(self.codec)
        self.full_mask = (1 << n) - 1
        self.bitset_words = len(instance.variables) * ((n + 63) // 64 if n else 0)
        self.constraints = [
            _BitsetConstraint(c, n) for c in self.encoded.constraints
        ]
        self.constraints_on = {v: [] for v in instance.variables}
        for bc in self.constraints:
            for v in bc.scope:
                self.constraints_on[v].append(bc)

    def charge_build(self, stats: PropagationStats) -> None:
        stats.intern_tables += 1
        stats.bitset_words += self.bitset_words

    def fresh_domains(self) -> dict[Any, int]:
        """Full domains (all bits set) for every variable."""
        return {v: self.full_mask for v in self.instance.variables}

    @staticmethod
    def restore(
        domains: dict[Any, int],
        trail: list[tuple[Any, int]],
        stats: PropagationStats,
    ) -> None:
        """Undo every deletion recorded on ``trail`` (newest first)."""
        while trail:
            variable, removed = trail.pop()
            domains[variable] |= removed
            stats.trail_restores += removed.bit_count()

    # -- generic domain protocol (bitmask versions) -------------------------

    def domain_size(self, domains: dict[Any, int], variable: Any) -> int:
        return domains[variable].bit_count()

    def domain_values(self, domains: dict[Any, int], variable: Any) -> list[int]:
        """The current domain codes ascending — the original ``repr`` order."""
        return list(bit_positions(domains[variable]))

    def contains(self, domains: dict[Any, int], variable: Any, value: int) -> bool:
        return bool((domains[variable] >> value) & 1)

    def pin(self, domains: dict[Any, int], variable: Any, value: int) -> int:
        bit = 1 << value
        removed = domains[variable] & ~bit
        if removed:
            domains[variable] = bit
        return removed

    def discard(self, domains: dict[Any, int], variable: Any, value: int) -> None:
        domains[variable] &= ~(1 << value)

    def count(self, removed: int) -> int:
        return removed.bit_count()

    def export_domains(self, domains: dict[Any, int]) -> dict[Any, set[Any]]:
        """Decode the bitmask domains to plain value sets."""
        return {v: self.codec.set_of(mask) for v, mask in domains.items()}

    def decode_assignment(self, assignment: dict[Any, int]) -> dict[Any, Any]:
        return {v: self.codec.decode(code) for v, code in assignment.items()}


def _mask_to_bools(mask: int, nbits: int, np):
    """An int bitmask as a numpy bool array of length ``nbits``."""
    raw = np.frombuffer(mask.to_bytes((nbits + 7) // 8, "little"), dtype=np.uint8)
    return np.unpackbits(raw, bitorder="little")[:nbits].astype(bool)


def _bools_to_mask(bools, np) -> int:
    """A numpy bool array back into an int bitmask (little-endian bits)."""
    return int.from_bytes(np.packbits(bools, bitorder="little").tobytes(), "little")


class _ColumnarConstraint:
    """One code-space constraint prepared for whole-column vectorized revision.

    Where :class:`_BitsetConstraint` walks the candidate values of a
    revision one bit at a time, this constraint sweeps the entire column at
    once with numpy:

    * arity 1 — unchanged: one AND with the precomputed allowed mask;
    * arity 2 — the relation is a dense ``n×n`` support matrix per
      position, bit-packed along the support axis (``np.packbits``, one
      byte per 8 codes); a revision ANDs the packed matrix against the
      other domain's mask *bytes* (taken straight from the Python int, no
      unpacking) and reduces with ``any`` — one packed sweep answers all
      candidate values together, touching an eighth of the memory a bool
      matrix would;
    * arity ≥ 3 — the rows live in one ``m×arity`` int64 matrix; a revision
      gathers every non-revised column's domain membership in one fancy-
      index pass, ANDs the row-validity vector, and scatters the surviving
      rows' revised-position codes into the supported set.

    ``PropagationStats.mask_ops`` counts the same logical membership work
    the bitset engine counts (candidate values for arity ≤ 2, candidate
    row-cells for arity ≥ 3), so the two engines stay comparable even
    though the columnar one executes it as a handful of array operations.
    """

    __slots__ = (
        "scope",
        "arity",
        "position",
        "n_codes",
        "n_bytes",
        "allowed_mask",
        "pair_bits",
        "rows_matrix",
        "_np",
    )

    def __init__(self, constraint: Constraint, n_codes: int, np):
        self.scope = constraint.scope
        self.arity = constraint.arity
        # Normalized scopes have distinct variables, so positions are unique.
        self.position = {v: i for i, v in enumerate(self.scope)}
        self.n_codes = n_codes
        self.n_bytes = (n_codes + 7) // 8
        self._np = np
        self.allowed_mask = 0
        self.pair_bits = None
        self.rows_matrix = None
        rows = constraint.relation
        if self.arity == 1:
            mask = 0
            for row in rows:
                mask |= 1 << row[0]
            self.allowed_mask = mask
        elif self.arity == 2:
            first = np.zeros(n_codes * n_codes, dtype=bool)
            if rows:
                first[
                    np.fromiter(
                        (a * n_codes + b for a, b in rows),
                        dtype=np.int64,
                        count=len(rows),
                    )
                ] = True
            first = first.reshape(n_codes, n_codes)
            # position 0 asks "value a supported by some b in the other
            # domain"; position 1 is the transpose question.  Packing the
            # support axis (little-endian bits, matching the int masks)
            # makes the revision sweep a byte-AND instead of a bool-AND.
            self.pair_bits = (
                np.packbits(first, axis=1, bitorder="little"),
                np.packbits(first.T, axis=1, bitorder="little"),
            )
        else:
            self.rows_matrix = np.array(sorted(rows), dtype=np.int64).reshape(
                len(rows), self.arity
            )

    def revise(
        self,
        variable: Any,
        domains: dict[Any, int],
        stats: PropagationStats,
    ) -> int:
        """Remove and return (as a bitmask) the unsupported values of
        ``variable`` — same contract as :meth:`_BitsetConstraint.revise`."""
        position = self.position[variable]
        current = domains[variable]
        if not current:
            return 0
        stats.revisions += 1
        np = self._np
        if self.arity == 1:
            stats.mask_ops += 1
            new = current & self.allowed_mask
        elif self.arity == 2:
            other_bytes = np.frombuffer(
                domains[self.scope[1 - position]].to_bytes(self.n_bytes, "little"),
                dtype=np.uint8,
            )
            supported = (self.pair_bits[position] & other_bytes).any(axis=1)
            new = current & _bools_to_mask(supported, np)
            stats.mask_ops += current.bit_count()
        else:
            rows = self.rows_matrix
            if len(rows):
                valid = np.ones(len(rows), dtype=bool)
                for i in range(self.arity):
                    if i == position:
                        continue
                    dom_bools = _mask_to_bools(
                        domains[self.scope[i]], self.n_codes, np
                    )
                    valid &= dom_bools[rows[:, i]]
                supported = np.zeros(self.n_codes, dtype=bool)
                supported[rows[valid][:, position]] = True
                new = current & _bools_to_mask(supported, np)
                stats.mask_ops += len(rows) * (self.arity - 1)
            else:
                new = 0
        removed = current & ~new
        if removed:
            domains[variable] = new
        return removed


class ColumnarEngine(InternedEngine):
    """The interned bitset engine with vectorized whole-column revisions.

    Everything about the code space is inherited from
    :class:`InternedEngine` — the codec, the bitmask domains, the trail
    protocol, the worklist discipline, and the generic domain protocol —
    so the engine computes the *identical* fixpoint, including identical
    partial domains on a wipeout and identical MAC search trees.  Only the
    per-constraint :meth:`revise` changes: with numpy available the
    constraints become :class:`_ColumnarConstraint` and each revision
    sweeps the whole column in a few array operations instead of a
    per-value bit loop.  Without numpy the engine *is* the interned engine
    (the bitset constraints are kept), so ``strategy="columnar"`` degrades
    transparently on numpy-free installs.
    """

    def __init__(self, instance: CSPInstance):
        super().__init__(instance)
        from repro.relational.columnar import numpy_backend

        np = numpy_backend()
        n = len(self.codec)
        if np is not None and n:
            self.constraints = [
                _ColumnarConstraint(c, n, np) for c in self.encoded.constraints
            ]
            self.constraints_on = {v: [] for v in self.instance.variables}
            for cc in self.constraints:
                for v in cc.scope:
                    self.constraints_on[v].append(cc)


def make_engine(instance: CSPInstance, strategy: str) -> PropagationEngine:
    """The propagation engine for a (validated) strategy name.

    ``"interned"`` → :class:`InternedEngine`, ``"columnar"`` →
    :class:`ColumnarEngine`, anything else (``"residual"``) → the plain
    :class:`PropagationEngine`.  ``"naive"`` has no engine — callers route
    it to their rescan-everything baseline before getting here.
    """
    if strategy == "columnar":
        return ColumnarEngine(instance)
    if strategy == "interned":
        return InternedEngine(instance)
    return PropagationEngine(instance)
