"""Arc and path consistency — the classical k=2, 3 consistency workhorses.

Section 5 of the tutorial traces the consistency approach to Freuder [23, 24]
and Dechter [17].  Arc consistency is (2-)consistency enforced by domain
filtering; path consistency tightens binary relations through third
variables.  Both are special cases of "establishing strong k-consistency",
but their direct algorithms (AC-3, PC-2 style) are far cheaper and are what
practical CSP solvers interleave with search, so the library provides them
standalone.
"""

from __future__ import annotations

from typing import Any

from repro.csp.instance import Constraint, CSPInstance

__all__ = [
    "ac3",
    "enforce_arc_consistency",
    "path_consistency",
    "singleton_arc_consistency",
    "ArcResult",
]


class ArcResult:
    """Result of an arc-consistency run.

    Attributes
    ----------
    domains:
        The filtered per-variable domains.
    consistent:
        False iff some domain was wiped out (the instance is unsolvable).
    revisions:
        Number of revise operations performed.
    """

    __slots__ = ("domains", "consistent", "revisions")

    def __init__(self, domains: dict[Any, set[Any]], consistent: bool, revisions: int):
        self.domains = domains
        self.consistent = consistent
        self.revisions = revisions

    def __repr__(self) -> str:
        return f"ArcResult(consistent={self.consistent}, revisions={self.revisions})"


def ac3(instance: CSPInstance) -> ArcResult:
    """Generalized AC-3: filter each variable's domain to the values that
    have a *support* in every constraint mentioning it (all other scope
    variables take values in their current domains).

    Runs to fixpoint; sound (never removes a value that occurs in a
    solution) and therefore a decision procedure for unsatisfiability only.
    """
    instance = instance.normalize()
    domains: dict[Any, set[Any]] = {v: set(instance.domain) for v in instance.variables}
    constraints_on: dict[Any, list[Constraint]] = {v: [] for v in instance.variables}
    for c in instance.constraints:
        for v in c.variables():
            constraints_on[v].append(c)

    queue: list[tuple[Constraint, Any]] = [
        (c, v) for c in instance.constraints for v in c.variables()
    ]
    revisions = 0
    while queue:
        constraint, variable = queue.pop()
        revisions += 1
        supported: set[Any] = set()
        scope = constraint.scope
        for row in constraint.relation:
            if all(row[i] in domains[scope[i]] for i in range(len(scope))):
                for i, v in enumerate(scope):
                    if v == variable:
                        supported.add(row[i])
        new = domains[variable] & supported
        if new != domains[variable]:
            domains[variable] = new
            if not new:
                return ArcResult(domains, False, revisions)
            for c in constraints_on[variable]:
                for v in c.variables():
                    if v != variable:
                        queue.append((c, v))
    return ArcResult(domains, True, revisions)


def enforce_arc_consistency(instance: CSPInstance) -> CSPInstance | None:
    """Return an equivalent instance whose constraint relations are filtered
    to arc-consistent domains (as added unary constraints), or ``None`` if
    arc consistency wipes out a domain (the instance is unsolvable)."""
    result = ac3(instance)
    if not result.consistent:
        return None
    instance = instance.normalize()
    extra = [
        Constraint((v,), {(value,) for value in dom})
        for v, dom in result.domains.items()
    ]
    filtered = []
    for c in instance.constraints:
        rows = {
            row
            for row in c.relation
            if all(row[i] in result.domains[c.scope[i]] for i in range(c.arity))
        }
        filtered.append(Constraint(c.scope, rows))
    return CSPInstance(instance.variables, instance.domain, filtered + extra).normalize()


def singleton_arc_consistency(instance: CSPInstance) -> ArcResult:
    """Singleton arc consistency (SAC): a value survives iff *assigning it*
    leaves the instance arc-consistent.

    Strictly stronger than AC (it refutes, e.g., 2-coloring odd cycles,
    which plain AC cannot), still polynomial: one AC-3 run per
    variable/value pair, iterated to fixpoint.  Sound: assigning any value
    of any solution leaves an AC-consistent instance, so solution values
    are never pruned.
    """
    instance = instance.normalize()
    base = ac3(instance)
    if not base.consistent:
        return base
    domains = {v: set(d) for v, d in base.domains.items()}
    revisions = base.revisions

    changed = True
    while changed:
        changed = False
        for variable in instance.variables:
            for value in sorted(domains[variable], key=repr):
                probe = _with_domains(instance, domains, variable, value)
                result = ac3(probe)
                revisions += result.revisions
                if not result.consistent:
                    domains[variable].discard(value)
                    changed = True
                    if not domains[variable]:
                        return ArcResult(domains, False, revisions)
    return ArcResult(domains, True, revisions)


def _with_domains(
    instance: CSPInstance,
    domains: dict[Any, set[Any]],
    pinned_variable: Any,
    pinned_value: Any,
) -> CSPInstance:
    """The instance restricted to the current domains with one variable
    pinned — expressed via added unary constraints."""
    extra = [
        Constraint(
            (v,),
            {(pinned_value,)} if v == pinned_variable else {(x,) for x in dom},
        )
        for v, dom in domains.items()
    ]
    return CSPInstance(
        instance.variables, instance.domain, list(instance.constraints) + extra
    )


def path_consistency(instance: CSPInstance) -> CSPInstance | None:
    """Strong path consistency (PC-2 + AC) for *binary-or-smaller* instances.

    For every ordered pair ``(x, y)`` the implicit binary relation
    ``R_xy`` is tightened through every third variable ``z``:
    ``R_xy ← R_xy ∩ π_xy(R_xz ⋈ R_zy)``, interleaved with arc consistency
    (a value survives in a domain iff it has a partner in every pair
    relation it participates in), to a joint fixpoint.  Returns the
    tightened equivalent instance (with explicit binary constraints for all
    pairs) or ``None`` when some relation or domain empties, proving
    unsolvability.  Because AC runs to fixpoint alongside PC, the returned
    instance is always arc-consistent — the classical "strong path
    consistency" package (``tests/consistency`` asserts it).

    Instances containing constraints of arity > 2 are handled by first
    projecting those constraints onto their variable pairs — the result is
    then a sound *relaxation*, still usable for refutation.
    """
    instance = instance.normalize()
    variables = list(instance.variables)
    domain = sorted(instance.domain, key=repr)

    # R[x][y]: set of allowed (value_x, value_y) pairs, x != y.
    pairs: dict[tuple[Any, Any], set[tuple[Any, Any]]] = {}
    full = {(u, w) for u in domain for w in domain}
    for x in variables:
        for y in variables:
            if x != y:
                pairs[(x, y)] = set(full)

    unary: dict[Any, set[Any]] = {v: set(domain) for v in variables}
    for c in instance.constraints:
        if c.arity == 1:
            unary[c.scope[0]] &= {row[0] for row in c.relation}
        elif c.arity == 2:
            x, y = c.scope
            pairs[(x, y)] &= set(c.relation)
            pairs[(y, x)] &= {(b, a) for a, b in c.relation}
        else:
            # Project higher-arity constraints onto each ordered pair.
            for i in range(c.arity):
                for j in range(c.arity):
                    if i != j:
                        x, y = c.scope[i], c.scope[j]
                        pairs[(x, y)] &= {(row[i], row[j]) for row in c.relation}

    for v, dom in unary.items():
        for y in variables:
            if y != v:
                pairs[(v, y)] = {p for p in pairs[(v, y)] if p[0] in dom}
                pairs[(y, v)] = {p for p in pairs[(y, v)] if p[1] in dom}

    # Anything already empty refutes outright (the fixpoint loop below only
    # reports wipeouts it *causes*, not ones present from the start).
    if variables and (
        any(not unary[v] for v in variables) or any(not p for p in pairs.values())
    ):
        return None

    changed = True
    while changed:
        changed = False
        # Path tightening: R_xy ← R_xy ∩ π_xy(R_xz ⋈ R_zy).
        for x in variables:
            for y in variables:
                if x == y:
                    continue
                for z in variables:
                    if z == x or z == y:
                        continue
                    allowed = {
                        (a, b)
                        for (a, b) in pairs[(x, y)]
                        if any(
                            (a, cv) in pairs[(x, z)] and (cv, b) in pairs[(z, y)]
                            for cv in domain
                        )
                    }
                    if allowed != pairs[(x, y)]:
                        pairs[(x, y)] = allowed
                        pairs[(y, x)] = {(b, a) for a, b in allowed}
                        if not allowed:
                            return None
                        changed = True
        # Arc tightening: a value stays in dom(x) iff every pair relation
        # R_xy still offers it a partner; shrunken domains then re-filter
        # the pair relations.  Iterating both steps to a joint fixpoint is
        # what upgrades plain PC to *strong* path consistency.
        for x in variables:
            narrowed = unary[x]
            for y in variables:
                if y != x:
                    narrowed = narrowed & {a for (a, _) in pairs[(x, y)]}
            if narrowed != unary[x]:
                unary[x] = narrowed
                if not narrowed:
                    return None
                changed = True
                for y in variables:
                    if y != x:
                        pairs[(x, y)] = {p for p in pairs[(x, y)] if p[0] in narrowed}
                        pairs[(y, x)] = {p for p in pairs[(y, x)] if p[1] in narrowed}

    constraints = [
        Constraint((x, y), pairs[(x, y)])
        for x in variables
        for y in variables
        if repr(x) < repr(y)
    ]
    constraints += [Constraint((v,), {(a,) for a in unary[v]}) for v in variables]
    return CSPInstance(variables, instance.domain, constraints).normalize()
