"""Arc and path consistency — the classical k=2, 3 consistency workhorses.

Section 5 of the tutorial traces the consistency approach to Freuder [23, 24]
and Dechter [17].  Arc consistency is (2-)consistency enforced by domain
filtering; path consistency tightens binary relations through third
variables.  Both are special cases of "establishing strong k-consistency",
but their direct algorithms are far cheaper and are what practical CSP
solvers interleave with search, so the library provides them standalone.

Every engine here accepts a ``strategy`` knob (the propagation analogue of
the join backend's ``indexed``/``scan`` executions):

* ``"residual"`` (default) — the support-indexed engines built on
  :mod:`repro.consistency.propagation`: deduplicated worklists, per-
  ``(constraint, variable, value)`` residual support rows backed by the
  memoized :meth:`~repro.relational.relation.Relation.index_on` hash
  indexes, trail-restored SAC probes, and memoized PC witnesses.
* ``"naive"`` — the textbook rescan-everything fixpoints, kept as the
  differential-testing oracle (``tests/test_differential_matrix.py``
  checks bit-identical domains and verdicts between the two).
* ``"interned"`` — the code-space kernels: domain values are interned to
  dense int codes, per-variable domains become int bitmasks, and a revise
  answers support questions with word operations
  (:class:`~repro.consistency.propagation.InternedEngine`).  Domains in
  results are decoded back to plain value sets, so callers see identical
  output.
* ``"columnar"`` — the interned code space with vectorized revisions:
  each revise sweeps the constraint's whole column as a few numpy array
  operations (:class:`~repro.consistency.propagation.ColumnarEngine`),
  falling back to the interned bit loop when numpy is absent.  Same
  fixpoint, same decoded domains.

Both strategies are instrumented with
:class:`~repro.consistency.propagation.PropagationStats`; results carry
their counters and every run also merges into an active
:func:`~repro.consistency.propagation.collect_propagation` block.
"""

from __future__ import annotations

from typing import Any

from repro.csp.instance import Constraint, CSPInstance
from repro.relational.interning import decode_instance, encode_instance
from repro.consistency.propagation import (
    PropagationEngine,
    PropagationStats,
    Worklist,
    check_propagation_strategy,
    make_engine,
    publish,
)

__all__ = [
    "ac3",
    "enforce_arc_consistency",
    "path_consistency",
    "singleton_arc_consistency",
    "ArcResult",
]


class ArcResult:
    """Result of an arc-consistency run.

    Attributes
    ----------
    domains:
        The filtered per-variable domains.
    consistent:
        False iff some domain was wiped out (the instance is unsolvable).
    revisions:
        Number of revise operations that actually examined constraint rows
        (shorthand for ``stats.revisions``).
    stats:
        The full :class:`~repro.consistency.propagation.PropagationStats`
        of the run — support checks, residual-support hits, trail
        restores, wipeouts.
    """

    __slots__ = ("domains", "consistent", "revisions", "stats")

    def __init__(
        self,
        domains: dict[Any, set[Any]],
        consistent: bool,
        revisions: int,
        stats: PropagationStats | None = None,
    ):
        self.domains = domains
        self.consistent = consistent
        self.revisions = revisions
        self.stats = stats if stats is not None else PropagationStats()

    def __repr__(self) -> str:
        return f"ArcResult(consistent={self.consistent}, revisions={self.revisions})"


def ac3(instance: CSPInstance, strategy: str = "residual") -> ArcResult:
    """Generalized AC-3: filter each variable's domain to the values that
    have a *support* in every constraint mentioning it (all other scope
    variables take values in their current domains).

    Runs to fixpoint; sound (never removes a value that occurs in a
    solution) and therefore a decision procedure for unsatisfiability only.
    Both strategies compute the same (unique) arc-consistent closure.
    ``"residual"`` re-verifies stored support rows instead of rescanning
    whole relations and holds its arcs in a deduplicating set-backed
    worklist, so a pending arc is never enqueued twice and ``revisions``
    counts revise operations that really examined rows — matching the
    counter's docstring.  ``"naive"`` is the seed implementation kept as
    the differential oracle, unbounded duplicate arc enqueueing included.
    ``"interned"`` runs the same worklist over bitmask domains in code
    space and decodes the result.
    """
    check_propagation_strategy(strategy)
    instance = instance.normalize()
    if strategy == "naive":
        domains, consistent, stats = _ac3_naive(instance)
    else:
        engine: PropagationEngine = make_engine(instance, strategy)
        stats = PropagationStats()
        engine.charge_build(stats)
        raw = engine.fresh_domains()
        consistent = engine.propagate(raw, engine.full_worklist(), stats)
        domains = engine.export_domains(raw)
    publish(stats)
    return ArcResult(domains, consistent, stats.revisions, stats)


def _ac3_naive(
    instance: CSPInstance,
) -> tuple[dict[Any, set[Any]], bool, PropagationStats]:
    """The textbook GAC-3 fixpoint: every revise rescans the full relation.

    ``instance`` must be normalized.  Kept verbatim (modulo instrumentation)
    as the differential oracle for the residual engine — including the
    original unbounded list queue, which may hold the same
    ``(constraint, variable)`` arc many times; the residual engine's
    :class:`~repro.consistency.propagation.Worklist` is the fix.
    """
    stats = PropagationStats()
    domains: dict[Any, set[Any]] = {v: set(instance.domain) for v in instance.variables}
    constraints_on: dict[Any, list[Constraint]] = {v: [] for v in instance.variables}
    for c in instance.constraints:
        for v in c.variables():
            constraints_on[v].append(c)

    queue: list[tuple[Constraint, Any]] = [
        (c, v) for c in instance.constraints for v in c.variables()
    ]
    while queue:
        constraint, variable = queue.pop()
        stats.revisions += 1
        supported: set[Any] = set()
        scope = constraint.scope
        for row in constraint.relation:
            stats.support_checks += 1
            if all(row[i] in domains[scope[i]] for i in range(len(scope))):
                for i, v in enumerate(scope):
                    if v == variable:
                        supported.add(row[i])
        new = domains[variable] & supported
        if new != domains[variable]:
            domains[variable] = new
            if not new:
                stats.wipeouts += 1
                return domains, False, stats
            for c in constraints_on[variable]:
                for v in c.variables():
                    if v != variable:
                        queue.append((c, v))
    return domains, True, stats


def enforce_arc_consistency(
    instance: CSPInstance, strategy: str = "residual"
) -> CSPInstance | None:
    """Return an equivalent instance whose constraint relations are filtered
    to arc-consistent domains (as added unary constraints), or ``None`` if
    arc consistency wipes out a domain (the instance is unsolvable)."""
    result = ac3(instance, strategy)
    if not result.consistent:
        return None
    instance = instance.normalize()
    extra = [
        Constraint((v,), {(value,) for value in dom})
        for v, dom in result.domains.items()
    ]
    filtered = []
    for c in instance.constraints:
        rows = {
            row
            for row in c.relation
            if all(row[i] in result.domains[c.scope[i]] for i in range(c.arity))
        }
        filtered.append(Constraint(c.scope, rows))
    return CSPInstance(instance.variables, instance.domain, filtered + extra).normalize()


def singleton_arc_consistency(
    instance: CSPInstance, strategy: str = "residual"
) -> ArcResult:
    """Singleton arc consistency (SAC): a value survives iff *assigning it*
    leaves the instance arc-consistent.

    Strictly stronger than AC (it refutes, e.g., 2-coloring odd cycles,
    which plain AC cannot), still polynomial.  Sound: assigning any value
    of any solution leaves an AC-consistent instance, so solution values
    are never pruned.  Both strategies compute the unique SAC closure:

    * ``"naive"`` — one full AC-3 run per (variable, value) probe on a
      rebuilt instance, iterated to fixpoint (the textbook SAC-1 shape);
    * ``"residual"`` — one shared AC fixpoint; each probe pins the
      variable and propagates only from its constraints, then rolls the
      deletions back off a trail instead of rebuilding anything;
    * ``"interned"`` — the residual probe loop, but over bitmask domains
      in code space: a pin is one mask swap, a revise is word operations,
      a rollback is one ``|=`` per trail entry.
    """
    check_propagation_strategy(strategy)
    instance = instance.normalize()
    if strategy == "naive":
        return _sac_naive(instance)
    return _sac_engine(make_engine(instance, strategy))


def _sac_naive(instance: CSPInstance) -> ArcResult:
    stats = PropagationStats()
    base_domains, consistent, base_stats = _ac3_naive(instance)
    stats.merge(base_stats)
    if not consistent:
        publish(stats)
        return ArcResult(base_domains, False, stats.revisions, stats)
    domains = {v: set(d) for v, d in base_domains.items()}

    changed = True
    while changed:
        changed = False
        for variable in instance.variables:
            for value in sorted(domains[variable], key=repr):
                probe = _with_domains(instance, domains, variable, value)
                _, probe_ok, probe_stats = _ac3_naive(probe.normalize())
                stats.merge(probe_stats)
                if not probe_ok:
                    domains[variable].discard(value)
                    changed = True
                    if not domains[variable]:
                        publish(stats)
                        return ArcResult(domains, False, stats.revisions, stats)
    publish(stats)
    return ArcResult(domains, True, stats.revisions, stats)


def _sac_engine(engine: PropagationEngine) -> ArcResult:
    """Incremental SAC on a shared propagation engine.

    Invariant: between probes, ``domains`` is the AC closure of the
    current instance restriction — so a probe for ``(variable, value)``
    only needs to propagate from the pinned variable's own constraints,
    and a failed probe's deletions are undone off the trail in O(deleted).

    The loop drives the engine exclusively through the generic domain
    protocol (``domain_values``/``contains``/``pin``/``discard``/…), so the
    same code serves the set-based residual engine and the bitmask
    :class:`~repro.consistency.propagation.InternedEngine`; both enumerate
    values in the same canonical order, so the probe sequence — and hence
    every counter except the representation-specific ones — lines up.
    """
    stats = PropagationStats()
    engine.charge_build(stats)
    instance = engine.instance
    domains = engine.fresh_domains()
    if not engine.propagate(domains, engine.full_worklist(), stats):
        publish(stats)
        return ArcResult(engine.export_domains(domains), False, stats.revisions, stats)

    changed = True
    while changed:
        changed = False
        for variable in instance.variables:
            for value in engine.domain_values(domains, variable):
                if not engine.contains(domains, variable, value):
                    continue  # pruned by a failed sibling probe's fallout
                removed = engine.pin(domains, variable, value)
                if not removed:
                    continue  # pinning a singleton domain changes nothing
                trail: list[tuple[Any, Any]] = [(variable, removed)]
                ok = engine.propagate(
                    domains, engine.arcs_from([variable]), stats, trail=trail
                )
                engine.restore(domains, trail, stats)
                if not ok:
                    engine.discard(domains, variable, value)
                    changed = True
                    if engine.is_empty(domains, variable):
                        stats.wipeouts += 1
                        publish(stats)
                        return ArcResult(
                            engine.export_domains(domains), False, stats.revisions, stats
                        )
                    # Re-establish the shared AC fixpoint before probing on.
                    if not engine.propagate(
                        domains, engine.arcs_from([variable]), stats
                    ):
                        publish(stats)
                        return ArcResult(
                            engine.export_domains(domains), False, stats.revisions, stats
                        )
    publish(stats)
    return ArcResult(engine.export_domains(domains), True, stats.revisions, stats)


def _with_domains(
    instance: CSPInstance,
    domains: dict[Any, set[Any]],
    pinned_variable: Any,
    pinned_value: Any,
) -> CSPInstance:
    """The instance restricted to the current domains with one variable
    pinned — expressed via added unary constraints."""
    extra = [
        Constraint(
            (v,),
            {(pinned_value,)} if v == pinned_variable else {(x,) for x in dom},
        )
        for v, dom in domains.items()
    ]
    return CSPInstance(
        instance.variables, instance.domain, list(instance.constraints) + extra
    )


def path_consistency(
    instance: CSPInstance, strategy: str = "residual"
) -> CSPInstance | None:
    """Strong path consistency (PC-2 + AC) for *binary-or-smaller* instances.

    For every ordered pair ``(x, y)`` the implicit binary relation
    ``R_xy`` is tightened through every third variable ``z``:
    ``R_xy ← R_xy ∩ π_xy(R_xz ⋈ R_zy)``, interleaved with arc consistency
    (a value survives in a domain iff it has a partner in every pair
    relation it participates in), to a joint fixpoint.  Returns the
    tightened equivalent instance (with explicit binary constraints for all
    pairs) or ``None`` when some relation or domain empties, proving
    unsolvability.  Because AC runs to fixpoint alongside PC, the returned
    instance is always arc-consistent — the classical "strong path
    consistency" package (``tests/consistency`` asserts it).

    Instances containing constraints of arity > 2 are handled by first
    projecting those constraints onto their variable pairs — the result is
    then a sound *relaxation*, still usable for refutation.

    ``strategy="residual"`` (default) drives the PC-2 tightenings off a
    deduplicating worklist of ``(x, y, z)`` triples — only triples whose
    input pair relations changed are re-run — and memoizes the last
    witness value per ``(pair tuple, third variable)``, re-verifying it in
    O(1) before scanning the domain.  ``strategy="naive"`` is the full
    triple-sweep fixpoint.  ``strategy="interned"`` interns the instance to
    dense int codes and runs the residual engine in code space (small-int
    pair hashing), decoding the tightened instance at the boundary;
    ``"columnar"`` takes the same code-space path (PC works on pair *sets*,
    not domain bitmasks, so there is no column to sweep — the strategies
    alias).  All compute the same (unique) strong-PC closure.
    """
    check_propagation_strategy(strategy)
    stats = PropagationStats()
    try:
        if strategy in ("interned", "columnar"):
            return _path_consistency_interned(instance, stats)
        return _path_consistency(instance, strategy, stats)
    finally:
        publish(stats)


def _path_consistency_interned(
    instance: CSPInstance, stats: PropagationStats
) -> CSPInstance | None:
    """Run the residual PC engine over the int-encoded instance.

    The strong-PC closure is unique, so tightening in code space and
    decoding afterwards yields exactly the instance the plain residual
    engine computes — only the working values differ (dense small ints,
    whose pair tuples hash and compare cheaply).
    """
    instance = instance.normalize()
    encoded, codec = encode_instance(instance)
    stats.intern_tables += 1
    result = _path_consistency(encoded, "residual", stats)
    return None if result is None else decode_instance(result, codec)


def _path_consistency(
    instance: CSPInstance, strategy: str, stats: PropagationStats
) -> CSPInstance | None:
    instance = instance.normalize()
    variables = list(instance.variables)
    domain = sorted(instance.domain, key=repr)

    # R[x][y]: set of allowed (value_x, value_y) pairs, x != y.
    pairs: dict[tuple[Any, Any], set[tuple[Any, Any]]] = {}
    full = {(u, w) for u in domain for w in domain}
    for x in variables:
        for y in variables:
            if x != y:
                pairs[(x, y)] = set(full)

    unary: dict[Any, set[Any]] = {v: set(domain) for v in variables}
    for c in instance.constraints:
        if c.arity == 1:
            unary[c.scope[0]] &= {row[0] for row in c.relation}
        elif c.arity == 2:
            x, y = c.scope
            pairs[(x, y)] &= set(c.relation)
            pairs[(y, x)] &= {(b, a) for a, b in c.relation}
        else:
            # Project higher-arity constraints onto each ordered pair.
            for i in range(c.arity):
                for j in range(c.arity):
                    if i != j:
                        x, y = c.scope[i], c.scope[j]
                        pairs[(x, y)] &= {(row[i], row[j]) for row in c.relation}

    for v, dom in unary.items():
        for y in variables:
            if y != v:
                pairs[(v, y)] = {p for p in pairs[(v, y)] if p[0] in dom}
                pairs[(y, v)] = {p for p in pairs[(y, v)] if p[1] in dom}

    # Anything already empty refutes outright (the fixpoint loops below only
    # report wipeouts they *cause*, not ones present from the start).
    if variables and (
        any(not unary[v] for v in variables) or any(not p for p in pairs.values())
    ):
        stats.wipeouts += 1
        return None

    if strategy == "naive":
        ok = _pc_fixpoint_naive(variables, domain, pairs, unary, stats)
    else:
        ok = _pc_fixpoint_residual(variables, domain, pairs, unary, stats)
    if not ok:
        stats.wipeouts += 1
        return None

    constraints = [
        Constraint((x, y), pairs[(x, y)])
        for x in variables
        for y in variables
        if repr(x) < repr(y)
    ]
    constraints += [Constraint((v,), {(a,) for a in unary[v]}) for v in variables]
    return CSPInstance(variables, instance.domain, constraints).normalize()


def _pc_narrow_domains(variables, pairs, unary, stats) -> list | None:
    """One arc-tightening sweep: a value stays in dom(x) iff every pair
    relation R_xy still offers it a partner; shrunken domains then
    re-filter the pair relations.  Returns ``None`` on a wipeout, else the
    list of variables whose domain changed.  Shared by both strategies —
    interleaving it with the path tightening to a joint fixpoint is what
    upgrades plain PC to *strong* path consistency."""
    changed = []
    for x in variables:
        narrowed = unary[x]
        for y in variables:
            if y != x:
                narrowed = narrowed & {a for (a, _) in pairs[(x, y)]}
        if narrowed != unary[x]:
            unary[x] = narrowed
            if not narrowed:
                return None
            changed.append(x)
            for y in variables:
                if y != x:
                    pairs[(x, y)] = {p for p in pairs[(x, y)] if p[0] in narrowed}
                    pairs[(y, x)] = {p for p in pairs[(y, x)] if p[1] in narrowed}
    return changed


def _pc_fixpoint_naive(variables, domain, pairs, unary, stats) -> bool:
    """The full-sweep strong-PC fixpoint: every round re-tightens every
    ordered pair through every third variable."""
    changed = True
    while changed:
        changed = False
        # Path tightening: R_xy ← R_xy ∩ π_xy(R_xz ⋈ R_zy).
        for x in variables:
            for y in variables:
                if x == y:
                    continue
                for z in variables:
                    if z == x or z == y:
                        continue
                    stats.revisions += 1
                    allowed = set()
                    for a, b in pairs[(x, y)]:
                        for cv in domain:
                            stats.support_checks += 1
                            if (a, cv) in pairs[(x, z)] and (cv, b) in pairs[(z, y)]:
                                allowed.add((a, b))
                                break
                    if allowed != pairs[(x, y)]:
                        pairs[(x, y)] = allowed
                        pairs[(y, x)] = {(b, a) for a, b in allowed}
                        if not allowed:
                            return False
                        changed = True
        narrowed = _pc_narrow_domains(variables, pairs, unary, stats)
        if narrowed is None:
            return False
        changed = changed or narrowed
    return True


def _pc_fixpoint_residual(variables, domain, pairs, unary, stats) -> bool:
    """Worklist-driven strong-PC fixpoint with memoized witnesses.

    A triple ``(x, y, z)`` (tighten ``R_xy`` through ``z``) is re-enqueued
    only when one of its input relations ``R_xz``/``R_zy`` shrinks; each
    surviving pair ``(a, b)`` first re-verifies its stored witness value
    before falling back to a domain scan.
    """
    worklist = Worklist(
        (x, y, z)
        for x in variables
        for y in variables
        if x != y
        for z in variables
        if z != x and z != y
    )
    witness: dict[tuple[Any, ...], Any] = {}

    def requeue(x: Any, y: Any) -> None:
        # pairs[(x, y)] / pairs[(y, x)] shrank: every tighten reading them
        # must re-run.  T(u, v, z) reads (u, z) and (z, v).
        for w in variables:
            if w != x and w != y:
                worklist.push((x, w, y))
                worklist.push((y, w, x))
                worklist.push((w, y, x))
                worklist.push((w, x, y))

    while True:
        while worklist:
            x, y, z = worklist.pop()
            current = pairs[(x, y)]
            stats.revisions += 1
            allowed = set()
            for a, b in current:
                key = (x, y, z, a, b)
                stored = witness.get(key)
                if stored is not None:
                    stats.support_checks += 1
                    if (a, stored) in pairs[(x, z)] and (stored, b) in pairs[(z, y)]:
                        stats.support_hits += 1
                        allowed.add((a, b))
                        continue
                for cv in domain:
                    stats.support_checks += 1
                    if (a, cv) in pairs[(x, z)] and (cv, b) in pairs[(z, y)]:
                        witness[key] = cv
                        allowed.add((a, b))
                        break
            if allowed != current:
                pairs[(x, y)] = allowed
                pairs[(y, x)] = {(b, a) for a, b in allowed}
                if not allowed:
                    return False
                requeue(x, y)
        narrowed = _pc_narrow_domains(variables, pairs, unary, stats)
        if narrowed is None:
            return False
        if not narrowed:
            return True
        for x in narrowed:
            for y in variables:
                if x != y:
                    requeue(x, y)
