"""Local consistency, arc/path consistency, and establishing strong
k-consistency (Section 5 of the tutorial)."""

from repro.consistency.arc import (
    ArcResult,
    ac3,
    enforce_arc_consistency,
    path_consistency,
    singleton_arc_consistency,
)
from repro.consistency.establish import (
    can_establish,
    check_establishes,
    establish_strong_k_consistency,
    establishment_csp,
    is_coherent,
)
from repro.consistency.local import (
    is_i_consistent,
    is_i_consistent_via_homomorphisms,
    is_strongly_k_consistent,
    is_strongly_k_consistent_via_game,
    partial_solutions_on,
)

__all__ = [
    "ac3",
    "ArcResult",
    "enforce_arc_consistency",
    "path_consistency",
    "singleton_arc_consistency",
    "is_i_consistent",
    "is_strongly_k_consistent",
    "is_i_consistent_via_homomorphisms",
    "is_strongly_k_consistent_via_game",
    "partial_solutions_on",
    "can_establish",
    "check_establishes",
    "establish_strong_k_consistency",
    "establishment_csp",
    "is_coherent",
]
