"""Local consistency, arc/path consistency, and establishing strong
k-consistency (Section 5 of the tutorial).

The propagation core (:mod:`repro.consistency.propagation`) and the
arc/path engines are imported eagerly.  The establishment and local-
consistency helpers live behind a lazy module ``__getattr__`` (PEP 562):
they depend on :mod:`repro.games.pebble`, which itself builds on the
propagation core — importing them eagerly here would close an import
cycle (pebble → consistency → local → games → pebble).
"""

from repro.consistency.arc import (
    ArcResult,
    ac3,
    enforce_arc_consistency,
    path_consistency,
    singleton_arc_consistency,
)
from repro.consistency.propagation import (
    PROPAGATION_STRATEGIES,
    ColumnarEngine,
    InternedEngine,
    PropagationEngine,
    PropagationStats,
    Worklist,
    collect_propagation,
    current_propagation,
    make_engine,
)

__all__ = [
    "ac3",
    "ArcResult",
    "enforce_arc_consistency",
    "path_consistency",
    "singleton_arc_consistency",
    "PROPAGATION_STRATEGIES",
    "ColumnarEngine",
    "InternedEngine",
    "make_engine",
    "PropagationEngine",
    "PropagationStats",
    "Worklist",
    "collect_propagation",
    "current_propagation",
    "is_i_consistent",
    "is_strongly_k_consistent",
    "is_i_consistent_via_homomorphisms",
    "is_strongly_k_consistent_via_game",
    "partial_solutions_on",
    "can_establish",
    "check_establishes",
    "establish_strong_k_consistency",
    "establishment_csp",
    "is_coherent",
]

_ESTABLISH_NAMES = {
    "can_establish",
    "check_establishes",
    "establish_strong_k_consistency",
    "establishment_csp",
    "is_coherent",
}
_LOCAL_NAMES = {
    "is_i_consistent",
    "is_i_consistent_via_homomorphisms",
    "is_strongly_k_consistent",
    "is_strongly_k_consistent_via_game",
    "partial_solutions_on",
}


def __getattr__(name: str):
    if name in _ESTABLISH_NAMES:
        from repro.consistency import establish

        return getattr(establish, name)
    if name in _LOCAL_NAMES:
        from repro.consistency import local

        return getattr(local, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
