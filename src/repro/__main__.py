"""``python -m repro`` — a one-minute guided tour of the library.

Runs a miniature version of each section of the tutorial and prints what
the paper's corresponding claim predicts versus what the code computes.
"""

from __future__ import annotations


def main() -> None:
    from repro.csp.convert import csp_to_homomorphism
    from repro.csp.instance import Constraint, CSPInstance
    from repro.csp.solvers import backtracking, consistency, decomposition, join
    from repro.csp.solvers.consistency import Verdict
    from repro.datalog.engine import goal_holds
    from repro.datalog.library import non_two_colorability_program
    from repro.dichotomy.schaefer import classify_relations
    from repro.games.pebble import solve_game
    from repro.generators.csp_random import coloring_instance
    from repro.generators.graphs import cycle_graph, graph_as_digraph_structure
    from repro.views.certain import ViewSetup, certain_answer

    bar = "─" * 66

    print(bar)
    print("repro: Vardi, 'Constraint Satisfaction and Database Theory' (PODS'00)")
    print(bar)

    # Section 2 — one problem, several formulations.
    inst = coloring_instance(cycle_graph(5), 2)
    print("\n[§2] 2-coloring the 5-cycle:")
    print("  join evaluation (Prop 2.1):   solvable =", join.is_solvable(inst))
    print("  backtracking search:          solvable =", backtracking.is_solvable(inst))
    print("  tree-decomposition (Thm 6.2): solvable =", decomposition.is_solvable(inst))

    # Section 4 — games and Datalog.
    a, b = csp_to_homomorphism(inst)
    for k in (2, 3):
        game = solve_game(a, b, k)
        print(f"[§4] existential {k}-pebble game: Duplicator wins = {game.duplicator_wins}")
    program_says = goal_holds(
        non_two_colorability_program(), graph_as_digraph_structure(cycle_graph(5))
    )
    print("[§4] the paper's 4-Datalog Non-2-Colorability program derives:", program_says)

    # Section 5 — consistency.
    verdict = consistency.solve_decision(inst, 3)
    print("[§5] strong 3-consistency verdict:", verdict.value,
          "(refutation is sound — Thm 4.7)")
    assert verdict is Verdict.UNSATISFIABLE

    # Section 3 — Schaefer.
    one_in_three = frozenset({(1, 0, 0), (0, 1, 0), (0, 0, 1)})
    horn = frozenset({(0, 0), (0, 1), (1, 0)})
    print("[§3] Schaefer classes of NAND:", sorted(c.value for c in classify_relations([horn])))
    print("[§3] Schaefer classes of 1-in-3:", sorted(c.value for c in classify_relations([one_in_three])),
          "→ NP-complete side")

    # Section 7 — views.
    vs = ViewSetup({"V1": "a", "V2": "b"}, {"V1": {("x", "y")}, "V2": {("y", "z")}})
    print("[§7] cert(a·b) contains (x,z):", certain_answer("a b", vs, "x", "z"),
          "(via the constraint-template CSP, Thm 7.5)")

    print("\nSee examples/ for full scenarios and benchmarks/ for E1–E11.")
    print(bar)


if __name__ == "__main__":
    main()
