"""``python -m repro`` — the library's command-line front door.

* ``python -m repro`` (or ``python -m repro tour``) — a one-minute guided
  tour: a miniature version of each section of the tutorial, printing what
  the paper's claim predicts versus what the code computes.
* ``python -m repro stats`` — run a join workload under every join-order
  strategy and print the :class:`~repro.relational.stats.EvalStats`
  counters side by side (tuples scanned, hash probes, intermediate
  cardinalities, interning tables, mask operations, wall time).
  ``--workload propagation`` instead runs the §4/§5 fixpoint engines
  (AC, SAC, the pebble game) under the ``naive``, ``residual``, and
  ``interned`` strategies and prints
  :class:`~repro.consistency.propagation.PropagationStats` counters
  (revisions, support checks, residual hits, trail restores, wipeouts,
  intern tables, bitset words, mask ops).  With ``--json`` both report the
  canonical :func:`repro.telemetry.payload` shape.
* ``python -m repro profile --workload {triangle,join,datalog,propagation,
  search}`` — run one workload under the span tracer and print the
  EXPLAIN-ANALYZE-style profile (per-operator durations, cardinalities,
  % of total); ``--jsonl`` emits the raw event stream instead.
* Both ``stats`` and ``profile`` accept ``--workers N``: with ``N >= 2``
  the parallel execution plane fans shard/subtree work across the
  worker-process pool and a per-worker breakdown table (tasks handled,
  tuples scanned/emitted, search nodes, steals per pid) is appended.
* ``python -m repro trace --jsonl`` — same trace, always as JSONL (the
  machine-readable form ``tools/validate_trace.py`` checks).
* ``python -m repro serve`` — a resident
  :class:`~repro.service.core.QueryService` speaking line-oriented JSON on
  stdin/stdout: incremental view maintenance plus the containment-keyed
  result cache.
* ``python -m repro bench-service`` — replay the multi-tenant workload
  through the service and a recompute-from-scratch baseline; report cache
  hit rate, P50/P99 latencies, and the update-latency speedup.

See ``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import json


def tour() -> None:
    from repro.csp.convert import csp_to_homomorphism
    from repro.csp.instance import Constraint, CSPInstance
    from repro.csp.solvers import backtracking, consistency, decomposition, join
    from repro.csp.solvers.consistency import Verdict
    from repro.datalog.engine import goal_holds
    from repro.datalog.library import non_two_colorability_program
    from repro.dichotomy.schaefer import classify_relations
    from repro.games.pebble import solve_game
    from repro.generators.csp_random import coloring_instance
    from repro.generators.graphs import cycle_graph, graph_as_digraph_structure
    from repro.views.certain import ViewSetup, certain_answer

    bar = "─" * 66

    print(bar)
    print("repro: Vardi, 'Constraint Satisfaction and Database Theory' (PODS'00)")
    print(bar)

    # Section 2 — one problem, several formulations.
    inst = coloring_instance(cycle_graph(5), 2)
    print("\n[§2] 2-coloring the 5-cycle:")
    print("  join evaluation (Prop 2.1):   solvable =", join.is_solvable(inst))
    print("  backtracking search:          solvable =", backtracking.is_solvable(inst))
    print("  tree-decomposition (Thm 6.2): solvable =", decomposition.is_solvable(inst))

    # Section 4 — games and Datalog.
    a, b = csp_to_homomorphism(inst)
    for k in (2, 3):
        game = solve_game(a, b, k)
        print(f"[§4] existential {k}-pebble game: Duplicator wins = {game.duplicator_wins}")
    program_says = goal_holds(
        non_two_colorability_program(), graph_as_digraph_structure(cycle_graph(5))
    )
    print("[§4] the paper's 4-Datalog Non-2-Colorability program derives:", program_says)

    # Section 5 — consistency.
    verdict = consistency.solve_decision(inst, 3)
    print("[§5] strong 3-consistency verdict:", verdict.value,
          "(refutation is sound — Thm 4.7)")
    assert verdict is Verdict.UNSATISFIABLE

    # Section 3 — Schaefer.
    one_in_three = frozenset({(1, 0, 0), (0, 1, 0), (0, 0, 1)})
    horn = frozenset({(0, 0), (0, 1), (1, 0)})
    print("[§3] Schaefer classes of NAND:", sorted(c.value for c in classify_relations([horn])))
    print("[§3] Schaefer classes of 1-in-3:", sorted(c.value for c in classify_relations([one_in_three])),
          "→ NP-complete side")

    # Section 7 — views.
    vs = ViewSetup({"V1": "a", "V2": "b"}, {"V1": {("x", "y")}, "V2": {("y", "z")}})
    print("[§7] cert(a·b) contains (x,z):", certain_answer("a b", vs, "x", "z"),
          "(via the constraint-template CSP, Thm 7.5)")

    print("\nSee examples/ for full scenarios and benchmarks/ for E1–E11.")
    print(bar)


def _stats_workload(name: str, seed: int):
    """Build the named workload: a list of ``(label, run(strategy))`` pairs
    where ``run`` evaluates one join-shaped problem under a strategy."""
    from repro.csp.solvers import join
    from repro.cq.evaluate import evaluate
    from repro.generators.csp_random import coloring_instance, random_binary_csp
    from repro.generators.graphs import (
        cycle_graph,
        graph_as_digraph_structure,
        random_digraph,
    )
    from repro.generators.queries import chain_query, random_query

    if name == "e1":
        instances = [
            random_binary_csp(
                n_variables=9, domain_size=3, n_constraints=12,
                tightness=t, seed=seed + s,
            )
            for t in (0.2, 0.4, 0.6)
            for s in range(3)
        ]
        return [
            (f"e1[{i}]", lambda strategy, inst=inst: join.is_solvable(inst, strategy))
            for i, inst in enumerate(instances)
        ]
    if name == "coloring":
        instances = [
            coloring_instance(cycle_graph(9), 3),
            coloring_instance(cycle_graph(9), 2),
        ]
        return [
            (f"coloring[{i}]", lambda strategy, inst=inst: join.is_solvable(inst, strategy))
            for i, inst in enumerate(instances)
        ]
    if name == "chain":
        db = random_digraph(12, 0.3, seed=seed)
        queries = [chain_query(6)] + [
            random_query(5, 4, seed=seed + s) for s in range(3)
        ]
        return [
            (f"chain[{i}]", lambda strategy, q=q: evaluate(q, db, strategy))
            for i, q in enumerate(queries)
        ]
    raise SystemExit(f"unknown workload {name!r}")


def _propagation_workload(seed: int):
    """The propagation workload: AC/SAC over 2-SAT, Horn, and coloring
    instances plus one pebble-game solve, each parameterized by strategy."""
    from repro.consistency.arc import ac3, singleton_arc_consistency
    from repro.csp.convert import csp_to_homomorphism
    from repro.dichotomy.cnf import cnf_to_csp
    from repro.games.pebble import solve_game
    from repro.generators.csp_random import coloring_instance
    from repro.generators.graphs import cycle_graph
    from repro.generators.sat import random_2sat, random_horn

    families = {
        "2sat": [cnf_to_csp(random_2sat(7, 14, seed=seed + s)) for s in range(2)],
        "horn": [
            cnf_to_csp(random_horn(7, 14, seed=seed + s, width=3)) for s in range(2)
        ],
        "color": [coloring_instance(cycle_graph(9), c) for c in (2, 3)],
    }
    jobs = []
    for family, instances in families.items():
        for i, inst in enumerate(instances):
            jobs.append(
                (f"{family}-ac[{i}]",
                 lambda strategy, inst=inst: ac3(inst, strategy=strategy))
            )
            jobs.append(
                (f"{family}-sac[{i}]",
                 lambda strategy, inst=inst: singleton_arc_consistency(
                     inst, strategy=strategy))
            )
    a, b = csp_to_homomorphism(families["color"][0])
    jobs.append(
        ("pebble-k2", lambda strategy: solve_game(a, b, 2, strategy=strategy))
    )
    return jobs


def propagation_stats_command(args: argparse.Namespace) -> None:
    """Run the propagation workload once per strategy; report the counters."""
    import time

    from repro.consistency.propagation import (
        PROPAGATION_STRATEGIES,
        PropagationStats,
        collect_propagation,
    )

    strategies = list(
        dict.fromkeys(s for s in args.strategies if s in PROPAGATION_STRATEGIES)
    )
    if not strategies:
        strategies = list(PROPAGATION_STRATEGIES)
    workload = _propagation_workload(args.seed)
    per_strategy: dict[str, tuple[PropagationStats, float]] = {}
    for strategy in strategies:
        total = PropagationStats()
        start = time.perf_counter()
        for _label, run in workload:
            with collect_propagation() as stats:
                run(strategy)
            total.merge(stats)
        per_strategy[strategy] = (total, time.perf_counter() - start)

    if args.json:
        from repro.telemetry import payload

        print(json.dumps(
            {s: dict(payload(st), seconds=sec)
             for s, (st, sec) in per_strategy.items()},
            indent=2,
        ))
        return

    print(f"workload: propagation  ({len(workload)} runs, seed {args.seed})")
    header = (
        "strategy", "revisions", "checks", "hits", "hit-rate",
        "restores", "wipeouts", "itabs", "words", "mask-ops", "seconds",
    )
    print(" | ".join(str(c).ljust(10) for c in header))
    for strategy, (st, sec) in per_strategy.items():
        row = (
            strategy, st.revisions, st.support_checks, st.support_hits,
            f"{st.hit_rate:.0%}", st.trail_restores, st.wipeouts,
            st.intern_tables, st.bitset_words, st.mask_ops, f"{sec:.4f}",
        )
        print(" | ".join(str(c).ljust(10) for c in row))


def _print_worker_breakdown(reports, workers: int) -> None:
    """Aggregate shipped-back per-task worker stats into one row per pid.

    ``reports`` holds :class:`~repro.parallel.WorkerRecord` entries whose
    ``stats`` is either an EvalStats (join/semijoin/fold shards) or a
    SearchStats (search subtree tasks); the table shows whichever counters
    apply and zeros for the rest.
    """
    if not reports:
        print(f"per-worker breakdown: no fan-out happened ({workers} workers)")
        return
    by_pid: dict[int, dict] = {}
    for record in reports:
        row = by_pid.setdefault(
            record.pid,
            {"tasks": 0, "scanned": 0, "emitted": 0, "nodes": 0, "steals": 0},
        )
        row["tasks"] += 1
        row["scanned"] += getattr(record.stats, "tuples_scanned", 0)
        row["emitted"] += getattr(record.stats, "tuples_emitted", 0)
        row["nodes"] += getattr(record.stats, "nodes", 0)
        row["steals"] += getattr(record.stats, "steals", 0)
    print(f"per-worker breakdown ({workers} workers, {len(reports)} tasks):")
    header = ("pid", "tasks", "scanned", "emitted", "nodes", "steals")
    print(" | ".join(str(c).ljust(9) for c in header))
    for pid in sorted(by_pid):
        row = by_pid[pid]
        cells = (pid, row["tasks"], row["scanned"], row["emitted"],
                 row["nodes"], row["steals"])
        print(" | ".join(str(c).ljust(9) for c in cells))


def stats_command(args: argparse.Namespace) -> None:
    """Run the workload once per strategy and report the counters."""
    import contextlib

    from repro.parallel import parallel_config, worker_reports
    from repro.relational.planner import EXECUTIONS, STRATEGIES
    from repro.relational.stats import EvalStats, collect_stats

    join_strategies = list(
        dict.fromkeys(s for s in args.strategies if s in STRATEGIES + EXECUTIONS)
    )
    workload = _stats_workload(args.workload, args.seed)
    fan_out = getattr(args, "workers", 1) >= 2
    # Threshold 0 so the CLI's modest workloads actually cross the pool;
    # the config only affects the execution="parallel" strategy rows.
    config = (
        parallel_config(workers=args.workers, threshold=0)
        if fan_out
        else contextlib.nullcontext()
    )
    per_strategy: dict[str, EvalStats] = {}
    all_reports: list = []
    with config:
        for strategy in join_strategies:
            total = EvalStats()
            with worker_reports() as reports:
                for _label, run in workload:
                    with collect_stats() as stats:
                        run(strategy)
                    total.merge(stats)
            all_reports.extend(reports)
            per_strategy[strategy] = total

    if args.json:
        from repro.telemetry import payload

        print(json.dumps({s: payload(st) for s, st in per_strategy.items()}, indent=2))
        return

    print(f"workload: {args.workload}  ({len(workload)} queries, seed {args.seed})")
    header = (
        "strategy", "joins", "scanned", "probes", "ix-built", "ix-hits",
        "misses", "max-inter", "total-inter", "itabs", "mask-ops",
        "tries", "seeks", "lf-rounds", "col-built", "b-probes", "seconds",
    )
    print(" | ".join(str(c).ljust(11) for c in header))
    for strategy, st in per_strategy.items():
        row = (
            strategy, st.joins, st.tuples_scanned, st.hash_probes,
            st.index_builds, st.index_hits, st.probe_misses,
            st.max_intermediate, st.total_intermediate,
            st.intern_tables, st.mask_ops,
            st.trie_builds, st.seeks, st.leapfrog_rounds,
            st.column_builds, st.batch_probes,
            f"{st.wall_seconds:.4f}",
        )
        print(" | ".join(str(c).ljust(11) for c in row))
    if fan_out:
        print()
        _print_worker_breakdown(all_reports, args.workers)


def _profile_workload(name: str, seed: int, workers: int = 1):
    """Build the named profile workload: a ``(description, run)`` pair where
    ``run()`` executes the workload once, to be called under the tracer.

    With ``workers >= 2`` the ``join`` workload runs under the parallel
    execution plane and ``search`` under work-stealing parallel search;
    the other workloads are serial by nature and ignore the knob.
    """
    fan_out = workers >= 2
    if name == "triangle":
        from repro.cq.evaluate import evaluate
        from repro.cq.parser import parse_query
        from repro.generators.graphs import random_digraph

        query = parse_query("Q(X,Y,Z) :- E(X,Y), E(Y,Z), E(Z,X).")
        db = random_digraph(30, 0.15, seed=seed)
        return (
            "cyclic triangle query, strategy=auto (routes to leapfrog triejoin)",
            lambda: evaluate(query, db, strategy="auto"),
        )
    if name == "join":
        from repro.cq.evaluate import evaluate
        from repro.generators.graphs import random_digraph
        from repro.generators.queries import chain_query

        query = chain_query(6)
        db = random_digraph(12, 0.3, seed=seed)
        if fan_out:
            return (
                f"acyclic chain query, hash-sharded joins across {workers} workers",
                lambda: evaluate(query, db, strategy="parallel"),
            )
        return (
            "acyclic chain query, strategy=auto (routes to Yannakakis)",
            lambda: evaluate(query, db, strategy="auto"),
        )
    if name == "datalog":
        from repro.datalog.engine import evaluate_seminaive
        from repro.datalog.library import transitive_closure_program
        from repro.generators.graphs import random_digraph

        program = transitive_closure_program()
        db = random_digraph(16, 0.12, seed=seed)
        return (
            "semi-naive transitive closure (one span per fixpoint round)",
            lambda: evaluate_seminaive(program, db),
        )
    if name == "propagation":
        from repro.consistency.arc import ac3, singleton_arc_consistency
        from repro.generators.csp_random import coloring_instance
        from repro.generators.graphs import cycle_graph

        inst2 = coloring_instance(cycle_graph(9), 2)
        inst3 = coloring_instance(cycle_graph(9), 3)

        def run():
            ac3(inst3)
            singleton_arc_consistency(inst2)

        return ("AC-3 and singleton arc consistency on cycle colorings", run)
    if name == "search":
        from repro.csp.solvers.backtracking import Inference, solve_with_stats
        from repro.generators.csp_random import coloring_instance
        from repro.generators.graphs import cycle_graph

        inst = coloring_instance(cycle_graph(11 + (seed % 4) * 2), 3)
        if fan_out:
            return (
                f"work-stealing parallel MAC search across {workers} workers",
                lambda: solve_with_stats(inst, Inference.MAC, workers=workers),
            )
        return (
            "MAC backtracking search (batched node spans)",
            lambda: solve_with_stats(inst, Inference.MAC),
        )
    raise SystemExit(f"unknown workload {name!r}")


def profile_command(args: argparse.Namespace) -> None:
    """Trace one workload end to end and print the span-tree profile, or
    (with ``--jsonl``) the raw event stream."""
    import contextlib
    import sys

    from repro.consistency.propagation import collect_propagation
    from repro.parallel import parallel_config, worker_reports
    from repro.relational.stats import collect_stats
    from repro.telemetry import QueryProfile, tracing, write_jsonl

    workers = getattr(args, "workers", 1)
    description, run = _profile_workload(args.workload, args.seed, workers)
    config = (
        parallel_config(workers=workers, threshold=0)
        if workers >= 2
        else contextlib.nullcontext()
    )
    # The stats collectors enter *before* the tracer so the root span opens
    # against fresh zero counters — the topmost span deltas (and hence the
    # reaggregated JSONL) then equal the in-process totals exactly.
    with config, collect_stats(), collect_propagation():
        with worker_reports() as reports:
            with tracing(f"profile:{args.workload}") as trace:
                run()
    if args.jsonl:
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fp:
                n = write_jsonl(trace, fp)
            print(f"wrote {n} events to {args.out}", file=sys.stderr)
        else:
            write_jsonl(trace, sys.stdout)
        return
    print(f"workload: {args.workload} — {description}  (seed {args.seed})")
    print(QueryProfile(trace).render())
    if workers >= 2:
        print()
        _print_worker_breakdown(reports, workers)


def trace_command(args: argparse.Namespace) -> None:
    """``repro trace``: the profile trace, always as JSONL events."""
    args.jsonl = True
    profile_command(args)


_PROFILE_WORKLOADS = ("triangle", "join", "datalog", "propagation", "search")


def _add_profile_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workload", choices=_PROFILE_WORKLOADS, default="triangle",
        help="which workload to trace (default: triangle)",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help=(
            "with N >= 2, run the join workload via hash-sharded parallel "
            "execution and the search workload via work-stealing parallel "
            "search, then print a per-worker breakdown (default: 1, serial)"
        ),
    )
    parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the JSONL event stream to FILE instead of stdout",
    )


def main(argv: list[str] | None = None) -> None:
    from repro.consistency.propagation import PROPAGATION_STRATEGIES
    from repro.relational.planner import EXECUTIONS, STRATEGIES

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Constraint satisfaction and database theory, executable.",
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("tour", help="guided tour of the tutorial's sections (default)")
    stats = sub.add_parser(
        "stats",
        help="evaluate a workload and print EvalStats/PropagationStats per strategy",
    )
    stats.add_argument(
        "--workload", choices=("e1", "coloring", "chain", "propagation"), default="e1",
        help=(
            "which workload to instrument: a join workload (e1/coloring/chain) "
            "or the consistency/pebble propagation workload (default: e1)"
        ),
    )
    # "interned" names both a join execution and a propagation strategy, so
    # the combined choice list is deduplicated.
    all_strategies = tuple(
        dict.fromkeys(STRATEGIES + EXECUTIONS + PROPAGATION_STRATEGIES)
    )
    stats.add_argument(
        "--strategies",
        nargs="+",
        choices=all_strategies,
        default=list(all_strategies),
        help=(
            "strategies to compare: join orders (greedy/smallest/textbook), "
            "join executions (indexed/scan/interned/wcoj/columnar/parallel), "
            "or propagation strategies (residual/naive/interned, for "
            "--workload propagation); default: all"
        ),
    )
    stats.add_argument("--seed", type=int, default=0, help="workload seed")
    stats.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help=(
            "with N >= 2, the parallel execution rows fan out across N "
            "pool workers and a per-worker breakdown table is appended "
            "(default: 1, serial)"
        ),
    )
    stats.add_argument("--json", action="store_true", help="machine-readable output")
    profile = sub.add_parser(
        "profile",
        help="trace one workload and print the span-tree profile",
    )
    _add_profile_arguments(profile)
    profile.add_argument(
        "--jsonl", action="store_true",
        help="emit the raw JSONL event stream instead of the rendered profile",
    )
    trace = sub.add_parser(
        "trace", help="trace one workload and emit the JSONL event stream"
    )
    _add_profile_arguments(trace)
    trace.add_argument(
        "--jsonl", action="store_true",
        help="accepted for symmetry; trace always emits JSONL",
    )
    from repro.service import cli as service_cli

    serve = sub.add_parser(
        "serve",
        help="run the incremental query service on stdin/stdout (JSON lines)",
    )
    service_cli.add_serve_arguments(serve)
    bench = sub.add_parser(
        "bench-service",
        help="replay the multi-tenant workload; report hit rate and latencies",
    )
    service_cli.add_bench_service_arguments(bench)
    args = parser.parse_args(argv)

    if args.command == "stats" and args.workload == "propagation":
        propagation_stats_command(args)
    elif args.command == "stats":
        stats_command(args)
    elif args.command == "profile":
        profile_command(args)
    elif args.command == "trace":
        trace_command(args)
    elif args.command == "serve":
        service_cli.run_serve(args)
    elif args.command == "bench-service":
        service_cli.run_bench_service(args)
    else:
        tour()


if __name__ == "__main__":
    try:
        main()
    except BrokenPipeError:
        # Piping into `head` and friends closes stdout early; exit quietly
        # like any well-behaved filter.
        import os
        import sys

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
