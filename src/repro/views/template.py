"""The constraint template — Theorem 7.5's reduction from view-based query
answering to (non-uniform) constraint satisfaction.

Given a query ``Q`` with (ε-free) automaton ``A_Q = (Σ, S, S0, ρ, F)`` and
view definitions ``def(V)``, the template **B** has:

* domain ``2^S``;
* ``(σ1, σ2) ∈ V_i^B`` iff there is a word ``w ∈ L(def(V_i))`` with
  ``ρ(σ1, w) ⊆ σ2``;
* ``σ ∈ U_c^B`` iff ``S0 ⊆ σ``, and ``σ ∈ U_d^B`` iff ``σ ∩ F = ∅``.

Deciding ``(c, d) ∉ cert(Q, V)`` then reduces to ``CSP(A, B)`` where ``A``
encodes the view extensions (``V_i^A = ext(V_i)``, ``U_c^A = {c}``,
``U_d^A = {d}``): intuitively a homomorphism labels every object ``x`` with
the set ``σ(x)`` of automaton states *excluded*… more precisely with an
over-approximation of the states reachable at ``x``, consistent with every
view edge, containing ``S0`` at ``c`` and avoiding ``F`` at ``d`` — exactly
a counterexample database in quotient form.

The template has ``2^{|S|}`` elements, so keep query automata small; this
matches the paper, where the reduction's size is governed by ``Q`` and
``def(V)`` only (the *data* — the extensions — grow only ``A``).
"""

from __future__ import annotations

from collections import deque
from itertools import chain, combinations
from typing import Any

from repro.errors import SolverError
from repro.relational.homomorphism import homomorphism_exists
from repro.relational.structure import Structure, Vocabulary
from repro.views.automata import EPSILON, NFA
from repro.views.certain import ViewSetup
from repro.views.regex import Regex, regex_to_nfa

__all__ = [
    "remove_epsilons",
    "constraint_template",
    "extension_structure",
    "certain_answer_via_csp",
    "U_C",
    "U_D",
]

U_C = "U_c"
U_D = "U_d"


def remove_epsilons(nfa: NFA) -> NFA:
    """An equivalent ε-free NFA on the same state set.

    ``δ'(s, a) = cl(δ(cl({s}), a))`` and a state accepts iff its closure
    meets the accepting set; the initial set is ε-closed.
    """
    transitions: dict[tuple[Any, Any], set] = {}
    for s in nfa.states:
        closure = nfa.epsilon_closure({s})
        for a in nfa.alphabet:
            targets: set = set()
            for t in closure:
                targets |= nfa.transitions.get((t, a), frozenset())
            targets = set(nfa.epsilon_closure(targets))
            if targets:
                transitions[(s, a)] = targets
    accepting = {
        s for s in nfa.states if nfa.epsilon_closure({s}) & nfa.accepting
    }
    return NFA(
        nfa.states,
        nfa.alphabet,
        transitions,
        nfa.epsilon_closure(nfa.initial),
        accepting,
    )


def _powerset(items: frozenset) -> list[frozenset]:
    ordered = sorted(items, key=repr)
    return [
        frozenset(c)
        for r in range(len(ordered) + 1)
        for c in combinations(ordered, r)
    ]


def _step(nfa: NFA, states: frozenset, symbol: str) -> frozenset:
    """ρ on an ε-free automaton: one forward step."""
    out: set = set()
    for s in states:
        out |= nfa.transitions.get((s, symbol), frozenset())
    return frozenset(out)


def _reachable_images(
    query: NFA, view: NFA, sigma1: frozenset, alphabet: frozenset[str]
) -> set[frozenset]:
    """All ``ρ(σ1, w)`` for accepted *nonempty* words ``w ∈ L(view)`` — BFS
    over pairs (image of σ1 so far, view-automaton state set).

    The empty word is excluded: under the unique-name assumption (footnote 2
    of the tutorial) a length-0 path can only witness a view pair whose
    endpoints coincide, and those pairs are handled separately by
    :func:`extension_structure` (the constraint is vacuous when
    ``ε ∈ L(def(V_i))``)."""
    start = (sigma1, view.epsilon_closure(view.initial))

    def successors(image: frozenset, vstates: frozenset):
        for a in alphabet:
            v_next = view.step(vstates, a)
            if v_next:
                yield _step(query, image, a), v_next

    # Seed with the one-letter successors of the start configuration so that
    # only configurations reachable by a *nonempty* word are visited (the
    # start itself may legitimately reappear via a cycle).
    seen: set[tuple[frozenset, frozenset]] = set(successors(*start))
    queue = deque(seen)
    accepted: set[frozenset] = set()
    while queue:
        image, vstates = queue.popleft()
        if vstates & view.accepting:
            accepted.add(image)
        for key in successors(image, vstates):
            if key not in seen:
                seen.add(key)
                queue.append(key)
    return accepted


def constraint_template(
    query: NFA | Regex | str,
    views: ViewSetup,
    max_states: int = 14,
) -> Structure:
    """Build the constraint template **B** of ``Q`` wrt ``def(V)``.

    ``max_states`` caps the query automaton size (the domain is
    ``2^{|S|}``); raise it consciously for larger queries.
    """
    q = query if isinstance(query, NFA) else regex_to_nfa(query)
    alphabet = q.alphabet | views.alphabet
    # Any automaton for L(Q) works; the minimal DFA over the joint alphabet
    # keeps the 2^|S| template domain as small as possible.
    q = q.trimmed().with_alphabet(alphabet).to_dfa().minimized().to_nfa()
    if len(q.states) > max_states:
        raise SolverError(
            f"query automaton has {len(q.states)} states; the template domain "
            f"2^|S| would be too large (max_states={max_states})"
        )

    subsets = _powerset(q.states)
    arities = {name: 2 for name in views.definitions}
    arities[U_C] = 1
    arities[U_D] = 1

    relations: dict[str, set[tuple]] = {name: set() for name in arities}
    s0 = frozenset(q.initial)
    relations[U_C] = {(sigma,) for sigma in subsets if s0 <= sigma}
    relations[U_D] = {(sigma,) for sigma in subsets if not (sigma & q.accepting)}

    for name, view in views.definitions.items():
        rel = relations[name]
        for sigma1 in subsets:
            accepted = _reachable_images(q, view, sigma1, alphabet)
            if not accepted:
                continue
            minimal = _minimal_sets(accepted)
            for sigma2 in subsets:
                if any(t <= sigma2 for t in minimal):
                    rel.add((sigma1, sigma2))

    return Structure(Vocabulary(arities), subsets, relations)


def _minimal_sets(family: set[frozenset]) -> list[frozenset]:
    """The ⊆-minimal members (inclusion of any member is equivalent to
    inclusion of a minimal one)."""
    ordered = sorted(family, key=len)
    minimal: list[frozenset] = []
    for s in ordered:
        if not any(m <= s for m in minimal):
            minimal.append(s)
    return minimal


def extension_structure(views: ViewSetup, c: Any, d: Any) -> Structure:
    """The structure **A** encoding the extensions: ``V_i^A = ext(V_i)``,
    ``U_c^A = {c}``, ``U_d^A = {d}``.

    Self-pairs ``(x, x)`` of a view whose language contains ε are dropped:
    they are witnessed by the empty path in every database, so they
    constrain nothing (the template's ``V_i^B`` counts nonempty witnesses
    only; see :func:`_reachable_images`).
    """
    arities = {name: 2 for name in views.definitions}
    arities[U_C] = 1
    arities[U_D] = 1
    domain = set(views.objects()) | {c, d}
    relations: dict[str, set[tuple]] = {}
    for name, nfa in views.definitions.items():
        pairs = set(views.extensions[name])
        if nfa.accepts(()):
            pairs = {(a, b) for a, b in pairs if a != b}
        relations[name] = pairs
    relations[U_C] = {(c,)}
    relations[U_D] = {(d,)}
    return Structure(Vocabulary(arities), domain, relations)


def certain_answer_via_csp(
    query: NFA | Regex | str, views: ViewSetup, c: Any, d: Any
) -> bool:
    """Theorem 7.5 executed: ``(c, d) ∉ cert(Q, V)`` iff ``CSP(A, B)`` is
    solvable, for ``B`` the constraint template and ``A`` the extensions."""
    b = constraint_template(query, views)
    a = extension_structure(views, c, d)
    return not homomorphism_exists(a, b)
