"""View-based query answering: certain answers (Section 7).

A database is accessible only through views ``V = {V1, …, Vk}``, each with a
definition ``def(Vi)`` (an RPQ) and an extension ``ext(Vi)`` (pairs of
objects).  A database is *consistent* with the views when
``ext(Vi) ⊆ ans(def(Vi), DB)`` (sound views, open domain).  The certain
answer set ``cert(Q, V)`` holds the pairs in ``ans(Q, DB)`` for *every*
consistent DB — deciding membership is co-NP-complete in data complexity
(Theorem 7.1).

Two deciders are provided:

* :func:`certain_answer` — via the paper's own reduction to CSP against the
  constraint template (Theorem 7.5; see :mod:`repro.views.template`);
* :func:`certain_answer_bruteforce` — enumerate *witness-choice* databases:
  every consistent DB contains, per extension pair, a path spelling some
  word of the view language, and answers are monotone, so it suffices that
  every choice of witness words yields a match.  Exact whenever the view
  languages are finite and ``max_word_length`` covers them (the reduction in
  :mod:`repro.views.reduction` is in that regime); a documented
  under-approximation of consistency checking otherwise.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.errors import DomainError
from repro.views.automata import NFA
from repro.views.graphdb import GraphDatabase, rpq_answers
from repro.views.regex import Regex, regex_to_nfa

__all__ = [
    "ViewSetup",
    "is_consistent",
    "certain_answer",
    "certain_answer_bruteforce",
    "certain_answer_exact_views",
    "witness_databases",
]


@dataclass
class ViewSetup:
    """View definitions and extensions, with the query alphabet Σ.

    ``definitions`` values may be NFAs, regex ASTs, or regex strings; they
    are normalized to NFAs over the joint alphabet.
    """

    definitions: dict[str, NFA]
    extensions: dict[str, frozenset[tuple[Any, Any]]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        alphabet: frozenset[str] = frozenset()
        normalized: dict[str, NFA] = {}
        for name, definition in self.definitions.items():
            nfa = definition if isinstance(definition, NFA) else regex_to_nfa(definition)
            normalized[name] = nfa
            alphabet |= nfa.alphabet
        self.definitions = normalized
        self.extensions = {
            name: frozenset(map(tuple, pairs))
            for name, pairs in self.extensions.items()
        }
        for name in self.extensions:
            if name not in self.definitions:
                raise DomainError(f"extension for undefined view {name!r}")
        for name in self.definitions:
            self.extensions.setdefault(name, frozenset())

    @property
    def alphabet(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for nfa in self.definitions.values():
            out |= nfa.alphabet
        return out

    def objects(self) -> frozenset:
        """``D_V`` — all objects appearing in the extensions."""
        return frozenset(
            obj for pairs in self.extensions.values() for pair in pairs for obj in pair
        )

    def with_extensions(
        self, extensions: Mapping[str, Iterable[tuple[Any, Any]]]
    ) -> "ViewSetup":
        return ViewSetup(dict(self.definitions), {k: frozenset(v) for k, v in extensions.items()})


def is_consistent(db: GraphDatabase, views: ViewSetup) -> bool:
    """Sound-view consistency: ``ext(Vi) ⊆ ans(def(Vi), DB)`` for every view."""
    for name, nfa in views.definitions.items():
        answers = rpq_answers(nfa, db)
        if not views.extensions[name] <= answers:
            return False
    return True


def certain_answer(
    query: NFA | Regex | str, views: ViewSetup, c: Any, d: Any
) -> bool:
    """Decide ``(c, d) ∈ cert(Q, V)`` via the constraint-template CSP
    reduction of Theorem 7.5 (exact, and the default)."""
    from repro.views.template import certain_answer_via_csp

    return certain_answer_via_csp(query, views, c, d)


def witness_databases(
    views: ViewSetup, max_word_length: int
):
    """Iterate the *witness-choice* databases: one word of ``L(def(Vi))``
    (length ≤ ``max_word_length``) per extension pair, realized by a fresh
    path between the pair's endpoints.

    Raises :class:`DomainError` when some view language has no word within
    the bound but is needed by a nonempty extension (no consistent database
    can be built from words of that length).
    """
    choices: list[list[tuple[str, tuple[Any, Any], tuple[str, ...]]]] = []
    for name, pairs in sorted(views.extensions.items()):
        if not pairs:
            continue
        words = list(views.definitions[name].enumerate_words(max_word_length))
        for pair in sorted(pairs, key=repr):
            # The empty word witnesses a pair only when its endpoints
            # coincide (a length-0 path from a to a).
            usable = [w for w in words if w or pair[0] == pair[1]]
            if not usable:
                raise DomainError(
                    f"view {name!r} cannot witness pair {pair!r} with words "
                    f"of length <= {max_word_length}"
                )
            choices.append([(name, pair, w) for w in usable])

    objects = views.objects()
    for combo in itertools.product(*choices):
        db = GraphDatabase(nodes=objects)
        fresh = itertools.count()
        for name, (a, b), word in combo:
            current = a
            for i, letter in enumerate(word):
                nxt = b if i == len(word) - 1 else ("w", next(fresh))
                db.add_edge(current, letter, nxt)
                current = nxt
        yield db


def certain_answer_bruteforce(
    query: NFA | Regex | str,
    views: ViewSetup,
    c: Any,
    d: Any,
    max_word_length: int = 4,
) -> bool:
    """Decide certain membership by enumerating witness-choice databases.

    ``(c, d) ∈ cert(Q, V)`` iff every witness-choice database answers
    ``(c, d)`` — by monotonicity of RPQ answers, any consistent database
    contains some witness choice as a subgraph.  Exact for finite view
    languages covered by ``max_word_length``.
    """
    query_nfa = query if isinstance(query, NFA) else regex_to_nfa(query)
    for db in witness_databases(views, max_word_length):
        # The named constants exist in every database (they are constants
        # under the unique-name assumption), even if no extension mentions
        # them.
        db.add_node(c)
        db.add_node(d)
        if (c, d) not in rpq_answers(query_nfa, db):
            return False
    return True


def certain_answer_exact_views(
    query: NFA | Regex | str,
    views: ViewSetup,
    c: Any,
    d: Any,
    max_word_length: int = 4,
) -> bool:
    """Certain answers under the *exact-view* assumption.

    Section 7 notes that assumptions other than sound/open have been studied
    [1, 31, 9].  Under exact views, a database is consistent only when
    ``ext(Vi) = ans(def(Vi), DB) ↾ D_V × D_V`` — the extensions are complete
    over the known objects, not mere lower bounds.  Exactness *shrinks* the
    set of consistent databases, so the certain answers can only grow:

        cert_sound(Q, V)  ⊆  cert_exact(Q, V)

    (verified as a property test).  Decided here by filtering the
    witness-choice databases through the exactness check; when no witness
    database is exact-consistent, the certain answer set is vacuously
    everything (the views are inconsistent under exactness).  Same finite-
    language caveat as :func:`certain_answer_bruteforce`.
    """
    query_nfa = query if isinstance(query, NFA) else regex_to_nfa(query)
    objects = views.objects() | {c, d}
    for db in witness_databases(views, max_word_length):
        db.add_node(c)
        db.add_node(d)
        exact = True
        for name, nfa in views.definitions.items():
            answers_on_objects = {
                pair
                for pair in rpq_answers(nfa, db)
                if pair[0] in objects and pair[1] in objects
            }
            if answers_on_objects != views.extensions[name]:
                exact = False
                break
        if exact and (c, d) not in rpq_answers(query_nfa, db):
            return False
    return True
