"""Nondeterministic and deterministic finite automata.

RPQs (Section 7) are "expressed by means of regular expressions or finite
automata"; everything downstream — query answering, the constraint template,
maximal rewritings — is automata manipulation.  This module implements NFAs
with ε-transitions, the subset construction, products, complementation, and
word enumeration, from scratch.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Hashable, Iterable, Iterator, Mapping

from repro.errors import DomainError

__all__ = ["NFA", "DFA"]

EPSILON = None  # the ε label in transition keys


class NFA:
    """An NFA with ε-moves.

    Parameters
    ----------
    states, alphabet:
        Finite sets.  ``None`` is reserved for ε and may not be a symbol.
    transitions:
        ``{(state, symbol-or-None): set-of-states}``.
    initial, accepting:
        Subsets of ``states``.
    """

    __slots__ = ("states", "alphabet", "transitions", "initial", "accepting")

    def __init__(
        self,
        states: Iterable[Hashable],
        alphabet: Iterable[str],
        transitions: Mapping[tuple[Any, Any], Iterable[Any]],
        initial: Iterable[Any],
        accepting: Iterable[Any],
    ):
        self.states = frozenset(states)
        self.alphabet = frozenset(alphabet)
        if EPSILON in self.alphabet:
            raise DomainError("None is reserved for epsilon")
        self.transitions: dict[tuple[Any, Any], frozenset] = {}
        for (state, symbol), targets in transitions.items():
            if state not in self.states:
                raise DomainError(f"transition from unknown state {state!r}")
            if symbol is not EPSILON and symbol not in self.alphabet:
                raise DomainError(f"transition on unknown symbol {symbol!r}")
            targets = frozenset(targets)
            if not targets <= self.states:
                raise DomainError("transition to unknown state")
            if targets:
                self.transitions[(state, symbol)] = targets
        self.initial = frozenset(initial)
        self.accepting = frozenset(accepting)
        if not self.initial <= self.states or not self.accepting <= self.states:
            raise DomainError("initial/accepting must be subsets of the states")

    # -- core operations -----------------------------------------------------

    def epsilon_closure(self, states: Iterable[Any]) -> frozenset:
        """All states reachable from ``states`` by ε-moves."""
        closure = set(states)
        stack = list(closure)
        while stack:
            s = stack.pop()
            for t in self.transitions.get((s, EPSILON), ()):
                if t not in closure:
                    closure.add(t)
                    stack.append(t)
        return frozenset(closure)

    def step(self, states: Iterable[Any], symbol: str) -> frozenset:
        """``ρ(states, symbol)`` including ε-closure on both sides."""
        current = self.epsilon_closure(states)
        nxt: set[Any] = set()
        for s in current:
            nxt |= self.transitions.get((s, symbol), frozenset())
        return self.epsilon_closure(nxt)

    def run(self, word: Iterable[str]) -> frozenset:
        """The state set after reading ``word`` from the initial states."""
        current = self.epsilon_closure(self.initial)
        for symbol in word:
            current = self.step(current, symbol)
        return current

    def accepts(self, word: Iterable[str]) -> bool:
        return bool(self.run(word) & self.accepting)

    # -- constructions -----------------------------------------------------------

    def to_dfa(self) -> "DFA":
        """The subset construction (complete over this NFA's alphabet)."""
        start = self.epsilon_closure(self.initial)
        states = {start}
        delta: dict[tuple[frozenset, str], frozenset] = {}
        queue = deque([start])
        while queue:
            current = queue.popleft()
            for symbol in self.alphabet:
                nxt = self.step(current, symbol)
                delta[(current, symbol)] = nxt
                if nxt not in states:
                    states.add(nxt)
                    queue.append(nxt)
        accepting = {s for s in states if s & self.accepting}
        return DFA(states, self.alphabet, delta, start, accepting)

    def trimmed(self) -> "NFA":
        """Remove states unreachable from the initial set or from which no
        accepting state is reachable."""
        forward = set(self.epsilon_closure(self.initial))
        queue = deque(forward)
        while queue:
            s = queue.popleft()
            for (state, _symbol), targets in self.transitions.items():
                if state == s:
                    for t in targets:
                        if t not in forward:
                            forward.add(t)
                            queue.append(t)
        backward: set[Any] = set(self.accepting)
        changed = True
        while changed:
            changed = False
            for (state, _symbol), targets in self.transitions.items():
                if state not in backward and targets & backward:
                    backward.add(state)
                    changed = True
        keep = forward & backward
        transitions = {
            key: targets & keep
            for key, targets in self.transitions.items()
            if key[0] in keep
        }
        return NFA(
            keep or {("dead",)},
            self.alphabet,
            transitions if keep else {},
            self.initial & keep,
            self.accepting & keep,
        )

    def is_empty(self) -> bool:
        """Whether the accepted language is empty."""
        return not (self.trimmed().initial)

    def enumerate_words(self, max_length: int) -> Iterator[tuple[str, ...]]:
        """All accepted words of length ≤ ``max_length``, shortest first.

        BFS over (word, state-set) — exponential in ``max_length`` in the
        worst case; for cross-validation on tiny languages only.
        """
        alphabet = sorted(self.alphabet)
        queue: deque[tuple[tuple[str, ...], frozenset]] = deque(
            [((), self.epsilon_closure(self.initial))]
        )
        while queue:
            word, states = queue.popleft()
            if states & self.accepting:
                yield word
            if len(word) < max_length:
                for symbol in alphabet:
                    nxt = self.step(states, symbol)
                    if nxt:
                        queue.append((word + (symbol,), nxt))

    def with_alphabet(self, alphabet: Iterable[str]) -> "NFA":
        """The same automaton over an enlarged alphabet (new symbols have no
        transitions, so the language is unchanged)."""
        return NFA(
            self.states,
            self.alphabet | frozenset(alphabet),
            self.transitions,
            self.initial,
            self.accepting,
        )

    def shortest_word(self) -> tuple[str, ...] | None:
        """A shortest accepted word, or ``None`` for the empty language."""
        seen = {self.epsilon_closure(self.initial)}
        queue: deque[tuple[tuple[str, ...], frozenset]] = deque(
            [((), self.epsilon_closure(self.initial))]
        )
        while queue:
            word, states = queue.popleft()
            if states & self.accepting:
                return word
            for symbol in sorted(self.alphabet):
                nxt = self.step(states, symbol)
                if nxt and nxt not in seen:
                    seen.add(nxt)
                    queue.append((word + (symbol,), nxt))
        return None

    def __repr__(self) -> str:
        return (
            f"NFA(|Q|={len(self.states)}, |Σ|={len(self.alphabet)}, "
            f"|δ|={len(self.transitions)})"
        )


class DFA:
    """A complete DFA (missing transitions are rejected at construction)."""

    __slots__ = ("states", "alphabet", "delta", "initial", "accepting")

    def __init__(
        self,
        states: Iterable[Any],
        alphabet: Iterable[str],
        delta: Mapping[tuple[Any, str], Any],
        initial: Any,
        accepting: Iterable[Any],
    ):
        self.states = frozenset(states)
        self.alphabet = frozenset(alphabet)
        self.delta = dict(delta)
        self.initial = initial
        self.accepting = frozenset(accepting)
        if initial not in self.states:
            raise DomainError("initial state unknown")
        for s in self.states:
            for a in self.alphabet:
                if (s, a) not in self.delta:
                    raise DomainError(f"DFA incomplete at ({s!r}, {a!r})")

    def run(self, word: Iterable[str]) -> Any:
        state = self.initial
        for symbol in word:
            state = self.delta[(state, symbol)]
        return state

    def accepts(self, word: Iterable[str]) -> bool:
        return self.run(word) in self.accepting

    def complement(self) -> "DFA":
        """The complement DFA (same structure, flipped acceptance)."""
        return DFA(
            self.states,
            self.alphabet,
            self.delta,
            self.initial,
            self.states - self.accepting,
        )

    def to_nfa(self) -> NFA:
        transitions = {
            (s, a): {t} for (s, a), t in self.delta.items()
        }
        return NFA(self.states, self.alphabet, transitions, {self.initial}, self.accepting)

    def product(self, other: "DFA", accept_both: bool = True) -> "DFA":
        """Product DFA: intersection (``accept_both``) or union of languages.

        Both automata must share an alphabet.
        """
        if self.alphabet != other.alphabet:
            raise DomainError("product requires a common alphabet")
        states = {(s, t) for s in self.states for t in other.states}
        delta = {
            ((s, t), a): (self.delta[(s, a)], other.delta[(t, a)])
            for s in self.states
            for t in other.states
            for a in self.alphabet
        }
        if accept_both:
            accepting = {
                (s, t)
                for s in self.accepting
                for t in other.accepting
            }
        else:
            accepting = {
                (s, t)
                for s in self.states
                for t in other.states
                if s in self.accepting or t in other.accepting
            }
        return DFA(states, self.alphabet, delta, (self.initial, other.initial), accepting)

    def is_empty(self) -> bool:
        return self.to_nfa().is_empty()

    def reachable(self) -> "DFA":
        """Restrict to the states reachable from the initial state."""
        seen = {self.initial}
        queue = deque([self.initial])
        while queue:
            s = queue.popleft()
            for a in self.alphabet:
                t = self.delta[(s, a)]
                if t not in seen:
                    seen.add(t)
                    queue.append(t)
        delta = {(s, a): t for (s, a), t in self.delta.items() if s in seen}
        return DFA(seen, self.alphabet, delta, self.initial, self.accepting & seen)

    def minimized(self) -> "DFA":
        """The minimal DFA (Moore's partition-refinement algorithm).

        States of the result are frozensets of original states (the
        equivalence classes); a dead class is kept so the DFA stays
        complete.
        """
        dfa = self.reachable()
        partition = [dfa.accepting, dfa.states - dfa.accepting]
        partition = [p for p in partition if p]
        changed = True
        while changed:
            changed = False
            new_partition: list[frozenset] = []
            block_of = {}
            for i, block in enumerate(partition):
                for s in block:
                    block_of[s] = i
            for block in partition:
                groups: dict[tuple, set] = {}
                for s in block:
                    signature = tuple(
                        block_of[dfa.delta[(s, a)]] for a in sorted(dfa.alphabet)
                    )
                    groups.setdefault(signature, set()).add(s)
                if len(groups) > 1:
                    changed = True
                new_partition.extend(frozenset(g) for g in groups.values())
            partition = new_partition
        class_of = {}
        for block in partition:
            fb = frozenset(block)
            for s in block:
                class_of[s] = fb
        states = set(class_of.values())
        delta = {
            (class_of[s], a): class_of[dfa.delta[(s, a)]]
            for s in dfa.states
            for a in dfa.alphabet
        }
        accepting = {class_of[s] for s in dfa.accepting}
        return DFA(states, dfa.alphabet, delta, class_of[dfa.initial], accepting)

    def equivalent(self, other: "DFA") -> bool:
        """Language equality via emptiness of the symmetric difference."""
        diff1 = self.product(other.complement())
        diff2 = other.product(self.complement())
        return diff1.is_empty() and diff2.is_empty()

    def __repr__(self) -> str:
        return f"DFA(|Q|={len(self.states)}, |Σ|={len(self.alphabet)})"
