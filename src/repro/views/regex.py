"""Regular expressions for RPQs: AST, parser, Thompson construction.

Syntax (whitespace-insensitive)::

    expr    ::=  term ('|' term)*
    term    ::=  factor+                      (concatenation by juxtaposition)
    factor  ::=  base ('*' | '+' | '?')*
    base    ::=  SYMBOL | 'ε' | '()' group

Symbols are identifiers (``[A-Za-z0-9_]+``); ``ε`` (or ``eps``) denotes the
empty word and ``∅`` (or ``empty``) the empty language.  ``e+`` and ``e?``
are sugar for ``e e*`` and ``(e|ε)``.
"""

from __future__ import annotations

import itertools
import re
from dataclasses import dataclass
from typing import Iterator

from repro.errors import ParseError
from repro.views.automata import NFA

__all__ = [
    "Regex",
    "SymbolRe",
    "EpsilonRe",
    "EmptyRe",
    "ConcatRe",
    "UnionRe",
    "StarRe",
    "parse_regex",
    "regex_to_nfa",
    "symbols_of",
]


@dataclass(frozen=True)
class SymbolRe:
    symbol: str


@dataclass(frozen=True)
class EpsilonRe:
    pass


@dataclass(frozen=True)
class EmptyRe:
    pass


@dataclass(frozen=True)
class ConcatRe:
    parts: tuple


@dataclass(frozen=True)
class UnionRe:
    parts: tuple


@dataclass(frozen=True)
class StarRe:
    inner: "Regex"


Regex = SymbolRe | EpsilonRe | EmptyRe | ConcatRe | UnionRe | StarRe

_TOKEN = re.compile(r"\s*(?:(?P<sym>[A-Za-z0-9_]+)|(?P<op>[()|*+?])|(?P<eps>ε)|(?P<emp>∅))")


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens = []
    pos = 0
    while pos < len(text):
        m = _TOKEN.match(text, pos)
        if not m or m.end() == pos:
            rest = text[pos:].strip()
            if not rest:
                break
            raise ParseError(f"cannot tokenize regex near {rest[:15]!r}")
        pos = m.end()
        for kind in ("sym", "op", "eps", "emp"):
            value = m.group(kind)
            if value is not None:
                tokens.append((kind, value))
                break
    return tokens


def parse_regex(text: str) -> Regex:
    """Parse the textual syntax above into a :data:`Regex` AST."""
    tokens = _tokenize(text)
    pos = [0]

    def peek() -> tuple[str, str] | None:
        return tokens[pos[0]] if pos[0] < len(tokens) else None

    def advance() -> tuple[str, str]:
        tok = peek()
        if tok is None:
            raise ParseError("unexpected end of regex")
        pos[0] += 1
        return tok

    def parse_union() -> Regex:
        parts = [parse_concat()]
        while (tok := peek()) and tok[1] == "|":
            advance()
            parts.append(parse_concat())
        return parts[0] if len(parts) == 1 else UnionRe(tuple(parts))

    def parse_concat() -> Regex:
        parts = []
        while (tok := peek()) and not (tok[0] == "op" and tok[1] in ")|"):
            parts.append(parse_postfix())
        if not parts:
            return EpsilonRe()
        return parts[0] if len(parts) == 1 else ConcatRe(tuple(parts))

    def parse_postfix() -> Regex:
        node = parse_base()
        while (tok := peek()) and tok[0] == "op" and tok[1] in "*+?":
            advance()
            if tok[1] == "*":
                node = StarRe(node)
            elif tok[1] == "+":
                node = ConcatRe((node, StarRe(node)))
            else:
                node = UnionRe((node, EpsilonRe()))
        return node

    def parse_base() -> Regex:
        kind, value = advance()
        if kind == "sym":
            if value in ("eps",):
                return EpsilonRe()
            if value in ("empty",):
                return EmptyRe()
            return SymbolRe(value)
        if kind == "eps":
            return EpsilonRe()
        if kind == "emp":
            return EmptyRe()
        if value == "(":
            inner = parse_union()
            tok = advance()
            if tok[1] != ")":
                raise ParseError(f"expected ')', got {tok[1]!r}")
            return inner
        raise ParseError(f"unexpected token {value!r}")

    result = parse_union()
    if pos[0] != len(tokens):
        raise ParseError(f"trailing regex input at token {tokens[pos[0]]!r}")
    return result


def symbols_of(regex: Regex) -> frozenset[str]:
    """All alphabet symbols occurring in the expression."""
    if isinstance(regex, SymbolRe):
        return frozenset({regex.symbol})
    if isinstance(regex, (EpsilonRe, EmptyRe)):
        return frozenset()
    if isinstance(regex, StarRe):
        return symbols_of(regex.inner)
    out: frozenset[str] = frozenset()
    for part in regex.parts:
        out |= symbols_of(part)
    return out


_counter = itertools.count()


def _fresh() -> int:
    return next(_counter)


def regex_to_nfa(regex: Regex | str, alphabet: frozenset[str] | None = None) -> NFA:
    """Thompson's construction; ``alphabet`` may extend the symbols used."""
    if isinstance(regex, str):
        regex = parse_regex(regex)
    alphabet = (alphabet or frozenset()) | symbols_of(regex)

    transitions: dict[tuple, set] = {}
    states: set = set()

    def add(src, symbol, dst) -> None:
        transitions.setdefault((src, symbol), set()).add(dst)

    def build(node: Regex) -> tuple:
        """Return ``(start, end)`` states of the fragment."""
        start, end = _fresh(), _fresh()
        states.add(start)
        states.add(end)
        if isinstance(node, SymbolRe):
            add(start, node.symbol, end)
        elif isinstance(node, EpsilonRe):
            add(start, None, end)
        elif isinstance(node, EmptyRe):
            pass  # no path from start to end
        elif isinstance(node, ConcatRe):
            prev = start
            for part in node.parts:
                s, e = build(part)
                add(prev, None, s)
                prev = e
            add(prev, None, end)
        elif isinstance(node, UnionRe):
            for part in node.parts:
                s, e = build(part)
                add(start, None, s)
                add(e, None, end)
        elif isinstance(node, StarRe):
            s, e = build(node.inner)
            add(start, None, s)
            add(e, None, s)
            add(start, None, end)
            add(e, None, end)
        else:
            raise ParseError(f"unknown regex node {node!r}")
        return start, end

    start, end = build(regex)
    return NFA(states, alphabet, transitions, {start}, {end})
