"""Edge-labeled graph databases and RPQ evaluation (Section 7).

A database is an edge-labeled graph ``DB = (D, E)``: nodes are objects,
edges are binary relations indexed by an alphabet Σ.  A regular-path query
``Q`` returns ``ans(Q, DB) = {(x, y) : some path x → … → y spells a word of
L(Q)}``, computed by BFS over the product of the database with the query
automaton.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Hashable, Iterable, Iterator

from repro.errors import DomainError
from repro.views.automata import NFA
from repro.views.regex import Regex, regex_to_nfa

__all__ = ["GraphDatabase", "rpq_answers", "rpq_pairs_from", "rpq_witness_path"]


class GraphDatabase:
    """A mutable edge-labeled graph database."""

    __slots__ = ("_nodes", "_edges")

    def __init__(
        self,
        nodes: Iterable[Hashable] = (),
        edges: Iterable[tuple[Any, str, Any]] = (),
    ):
        self._nodes: set[Any] = set(nodes)
        self._edges: dict[str, set[tuple[Any, Any]]] = {}
        for u, label, v in edges:
            self.add_edge(u, label, v)

    def add_node(self, node: Hashable) -> None:
        self._nodes.add(node)

    def add_edge(self, u: Hashable, label: str, v: Hashable) -> None:
        """Add ``u --label--> v`` (nodes are created as needed)."""
        if not isinstance(label, str) or not label:
            raise DomainError(f"edge labels must be non-empty strings: {label!r}")
        self._nodes.add(u)
        self._nodes.add(v)
        self._edges.setdefault(label, set()).add((u, v))

    @property
    def nodes(self) -> frozenset:
        return frozenset(self._nodes)

    @property
    def alphabet(self) -> frozenset[str]:
        return frozenset(self._edges)

    def edges(self, label: str | None = None) -> Iterator[tuple[Any, str, Any]]:
        labels = [label] if label is not None else sorted(self._edges)
        for lbl in labels:
            for u, v in sorted(self._edges.get(lbl, ()), key=repr):
                yield u, lbl, v

    def successors(self, node: Any) -> Iterator[tuple[str, Any]]:
        for label, pairs in self._edges.items():
            for u, v in pairs:
                if u == node:
                    yield label, v

    def num_edges(self) -> int:
        return sum(len(p) for p in self._edges.values())

    def relation(self, label: str) -> frozenset[tuple[Any, Any]]:
        return frozenset(self._edges.get(label, set()))

    def copy(self) -> "GraphDatabase":
        db = GraphDatabase(self._nodes)
        for label, pairs in self._edges.items():
            db._edges[label] = set(pairs)
        return db

    def __repr__(self) -> str:
        return f"GraphDatabase(|D|={len(self._nodes)}, |E|={self.num_edges()})"


def _as_nfa(query: NFA | Regex | str) -> NFA:
    if isinstance(query, NFA):
        return query
    return regex_to_nfa(query)


def rpq_pairs_from(
    query: NFA | Regex | str, db: GraphDatabase, start: Any
) -> frozenset:
    """The nodes ``y`` with ``(start, y) ∈ ans(Q, DB)`` — BFS over the
    product of the database and the query NFA."""
    nfa = _as_nfa(query)
    init = nfa.epsilon_closure(nfa.initial)
    out: set[Any] = set()
    seen: set[tuple[Any, frozenset]] = {(start, init)}
    queue = deque([(start, init)])
    # Pre-index successors per node for the BFS.
    succ: dict[Any, list[tuple[str, Any]]] = {}
    for u, label, v in db.edges():
        succ.setdefault(u, []).append((label, v))
    while queue:
        node, states = queue.popleft()
        if states & nfa.accepting:
            out.add(node)
        for label, nxt_node in succ.get(node, ()):
            nxt_states = nfa.step(states, label)
            if nxt_states:
                key = (nxt_node, nxt_states)
                if key not in seen:
                    seen.add(key)
                    queue.append(key)
    return frozenset(out)


def rpq_witness_path(
    query: NFA | Regex | str, db: GraphDatabase, source: Any, target: Any
) -> list[tuple[Any, str, Any]] | None:
    """A shortest witness path for ``(source, target) ∈ ans(Q, DB)``: the
    labeled edges of a path from ``source`` to ``target`` spelling a word of
    ``L(Q)`` — or ``None`` when the pair is not an answer.

    BFS over the product graph with parent pointers; the empty list
    witnesses ``source == target`` with ``ε ∈ L(Q)``.
    """
    nfa = _as_nfa(query)
    init = nfa.epsilon_closure(nfa.initial)
    start = (source, init)
    parents: dict[tuple[Any, frozenset], tuple | None] = {start: None}
    queue = deque([start])
    succ: dict[Any, list[tuple[str, Any]]] = {}
    for u, label, v in db.edges():
        succ.setdefault(u, []).append((label, v))

    goal: tuple[Any, frozenset] | None = None
    while queue:
        node, states = queue.popleft()
        if node == target and states & nfa.accepting:
            goal = (node, states)
            break
        for label, nxt_node in succ.get(node, ()):
            nxt_states = nfa.step(states, label)
            if nxt_states:
                key = (nxt_node, nxt_states)
                if key not in parents:
                    parents[key] = ((node, states), label)
                    queue.append(key)
    if goal is None:
        return None
    path: list[tuple[Any, str, Any]] = []
    current = goal
    while parents[current] is not None:
        (prev, label) = parents[current]
        path.append((prev[0], label, current[0]))
        current = prev
    path.reverse()
    return path


def rpq_answers(query: NFA | Regex | str, db: GraphDatabase) -> frozenset[tuple]:
    """``ans(Q, DB)``: all pairs connected by a path spelling a word of L(Q)."""
    nfa = _as_nfa(query)
    pairs: set[tuple] = set()
    for x in sorted(db.nodes, key=repr):
        for y in rpq_pairs_from(nfa, db, x):
            pairs.add((x, y))
    return frozenset(pairs)
