"""Non-perfect Datalog rewritings for RPQs wrt RPQ views.

The closing remark of Section 7: "it is shown in [10] how the connection
between CSP and Datalog described in Section 4 can be used to derive
(non-perfect) Datalog rewritings for RPQs with respect to RPQ views."

The derivation chains two reductions already in the library:

1. view answering → CSP: ``(c, d) ∈ cert(Q, V)`` iff there is **no**
   homomorphism from the extension structure into the constraint template
   **B** (Theorem 7.5);
2. CSP → Datalog: the canonical k-Datalog program ρ_B derives its goal iff
   the Spoiler wins the k-pebble game — a *sound* refutation of
   homomorphism existence (Theorem 4.5(3) + the sound half of Theorem 4.6).

Composing: running ρ_B over the view extensions (as EDB facts) is a sound
Datalog *under-approximation* of the certain answers — goal derived ⟹
``(c, d) ∈ cert(Q, V)``.  It is perfect exactly when ¬CSP(B) is k-Datalog
expressible, which is the longstanding open characterization problem the
section discusses; hence "non-perfect".

Two evaluation routes are provided:

* :func:`datalog_rewriting` materializes ρ_B for the template — an actual
  Datalog program over the view names.  Obstruction-set closures grow
  quickly with the template (the domain is a powerset), so this is for
  *small* queries; the size guard raises early otherwise.
* :func:`certain_answer_kconsistency` evaluates the same query without
  materialization, by playing the existential k-pebble game against the
  template — by Theorem 4.6 this computes exactly what ρ_B would derive.
"""

from __future__ import annotations

from typing import Any

from repro.datalog.canonical import CanonicalProgram, canonical_program
from repro.games.pebble import spoiler_wins
from repro.views.automata import NFA
from repro.views.certain import ViewSetup
from repro.views.regex import Regex
from repro.views.template import constraint_template, extension_structure

__all__ = [
    "datalog_rewriting",
    "certain_answer_datalog",
    "certain_answer_kconsistency",
]


def datalog_rewriting(
    query: NFA | Regex | str, views: ViewSetup, k: int = 2, max_sets: int = 4000
) -> CanonicalProgram:
    """The (non-perfect) Datalog rewriting of ``Q`` wrt the views: the
    canonical k-Datalog program of the constraint template.

    The returned program's EDB predicates are the view names (binary),
    ``U_c``/``U_d`` (unary), and the active-domain predicate; evaluate it
    over any extensions via :func:`certain_answer_datalog`.

    Raises :class:`~repro.errors.SolverError` when the obstruction closure
    exceeds ``max_sets`` — use :func:`certain_answer_kconsistency`, which
    computes the same answers without materializing the program.
    """
    template = constraint_template(query, views)
    return canonical_program(template, k, max_sets=max_sets)


def certain_answer_datalog(
    program: CanonicalProgram,
    views: ViewSetup,
    c: Any,
    d: Any,
) -> bool:
    """Evaluate a materialized Datalog rewriting on given extensions.

    Sound: ``True`` implies ``(c, d) ∈ cert(Q, V)``.  Incomplete in
    general: ``False`` means "not derivable at this k", not necessarily
    "not certain".
    """
    a = extension_structure(views, c, d)
    return program.spoiler_wins(a)


def certain_answer_kconsistency(
    query: NFA | Regex | str,
    views: ViewSetup,
    c: Any,
    d: Any,
    k: int = 2,
) -> bool:
    """The Datalog rewriting evaluated semantically: play the existential
    k-pebble game between the extension structure and the constraint
    template (equal, by Theorem 4.6, to evaluating ρ_B).

    Sound under-approximation of certain answers; polynomial in the data.
    """
    template = constraint_template(query, views)
    a = extension_structure(views, c, d)
    return spoiler_wins(a, template, k)
