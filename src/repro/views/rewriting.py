"""Maximal RPQ rewritings over views — the algorithm of [8] (PODS'99).

Given a query ``Q`` and view definitions over Σ, a *rewriting* is a query
over the view alphabet ``V`` whose every expansion (replace each view name
by a word of its definition) lies in ``L(Q)``.  The maximal RPQ rewriting is
computed by the classical double-complement:

1. determinize & complement ``Q`` into ``D̄`` (words **not** in ``L(Q)``);
2. for each view ``Vi`` compute the relation
   ``R_i = {(p, q) : ∃w ∈ L(def(Vi)), δ̄(p, w) = q}`` on ``D̄``'s states;
3. the NFA ``Bad`` over ``V`` with those transition relations accepts
   exactly the view words having *some* expansion outside ``L(Q)``;
4. the maximal rewriting is the complement of ``Bad``.

Evaluating the rewriting over the view extensions (treating each ``ext(Vi)``
as a ``Vi``-labeled edge set) under-approximates the certain answers —
Section 7's point that the maximal *RPQ* rewriting need not be perfect; the
gap is demonstrated in ``tests/views/test_rewriting.py``.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.views.automata import DFA, NFA
from repro.views.certain import ViewSetup
from repro.views.graphdb import GraphDatabase, rpq_answers
from repro.views.regex import Regex, regex_to_nfa

__all__ = [
    "view_transition_relation",
    "maximal_rewriting",
    "expansion_nfa",
    "is_sound_rewriting_word",
    "evaluate_rewriting",
]


def _query_complement_dfa(query: NFA | Regex | str, alphabet: frozenset[str]) -> DFA:
    q = query if isinstance(query, NFA) else regex_to_nfa(query)
    q = q.with_alphabet(alphabet)
    return q.to_dfa().minimized().complement()


def view_transition_relation(dfa: DFA, view: NFA) -> frozenset[tuple[Any, Any]]:
    """``{(p, q) : ∃w ∈ L(view) with δ(p, w) = q}`` over a DFA's states —
    BFS from each ``p`` over (DFA state, view NFA state set)."""
    pairs: set[tuple[Any, Any]] = set()
    for p in dfa.states:
        start = (p, view.epsilon_closure(view.initial))
        seen = {start}
        queue = deque([start])
        while queue:
            state, vstates = queue.popleft()
            if vstates & view.accepting:
                pairs.add((p, state))
            for a in sorted(dfa.alphabet):
                v_next = view.step(vstates, a)
                if not v_next:
                    continue
                key = (dfa.delta[(state, a)], v_next)
                if key not in seen:
                    seen.add(key)
                    queue.append(key)
    return frozenset(pairs)


def maximal_rewriting(query: NFA | Regex | str, views: ViewSetup) -> DFA:
    """The maximal rewriting of ``Q`` wrt the views, as a DFA over the view
    names (the alphabet of the result is ``set(views.definitions)``)."""
    alphabet = views.alphabet
    if isinstance(query, NFA):
        alphabet = alphabet | query.alphabet
    else:
        alphabet = alphabet | regex_to_nfa(query).alphabet
    complement = _query_complement_dfa(query, alphabet)

    view_names = sorted(views.definitions)
    transitions: dict[tuple[Any, Any], set] = {}
    for name in view_names:
        relation = view_transition_relation(complement, views.definitions[name])
        for p, q in relation:
            transitions.setdefault((p, name), set()).add(q)

    bad = NFA(
        complement.states,
        frozenset(view_names),
        transitions,
        {complement.initial},
        complement.accepting,
    )
    return bad.to_dfa().minimized().complement()


def expansion_nfa(word: tuple[str, ...], views: ViewSetup) -> NFA:
    """The language of expansions of a view word: the concatenation
    ``L(def(V_{i1})) ⋯ L(def(V_im))`` as one NFA."""
    alphabet = views.alphabet
    states: set = {("start",)}
    transitions: dict[tuple, set] = {}
    current_accepting: set = {("start",)}
    for step, name in enumerate(word):
        nfa = views.definitions[name]
        rename = {s: (step, s) for s in nfa.states}
        states.update(rename.values())
        for (s, a), targets in nfa.transitions.items():
            transitions.setdefault((rename[s], a), set()).update(
                rename[t] for t in targets
            )
        for acc in current_accepting:
            transitions.setdefault((acc, None), set()).update(
                rename[i] for i in nfa.initial
            )
        current_accepting = {rename[f] for f in nfa.accepting}
    return NFA(states, alphabet, transitions, {("start",)}, current_accepting)


def is_sound_rewriting_word(
    word: tuple[str, ...], query: NFA | Regex | str, views: ViewSetup
) -> bool:
    """Whether *every* expansion of ``word`` lies in ``L(Q)`` — decided by
    emptiness of (expansions ∩ complement of Q)."""
    q = query if isinstance(query, NFA) else regex_to_nfa(query)
    alphabet = views.alphabet | q.alphabet
    complement = _query_complement_dfa(q, alphabet)
    expansions = expansion_nfa(word, views).with_alphabet(alphabet)
    product = expansions.to_dfa().product(complement)
    return product.is_empty()


def evaluate_rewriting(rewriting: DFA, views: ViewSetup) -> frozenset[tuple]:
    """Evaluate a rewriting over the view extensions: build the view-labeled
    graph with an edge ``a --Vi--> b`` per ``(a, b) ∈ ext(Vi)`` and answer
    the rewriting as an RPQ on it.  Always a subset of ``cert(Q, V)``."""
    db = GraphDatabase()
    for name, pairs in views.extensions.items():
        for a, b in pairs:
            db.add_edge(a, name, b)
    for obj in views.objects():
        db.add_node(obj)
    return rpq_answers(rewriting.to_nfa(), db)
