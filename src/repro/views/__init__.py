"""View-based query processing for regular-path queries (Section 7):
graph databases, RPQ evaluation, certain answers, the constraint-template
reduction to CSP (Thm 7.5), the converse reduction from CSP (Thm 7.3), and
maximal rewritings."""

from repro.views.automata import DFA, NFA
from repro.views.datalog_rewriting import (
    certain_answer_datalog,
    certain_answer_kconsistency,
    datalog_rewriting,
)
from repro.views.certain import (
    ViewSetup,
    certain_answer,
    certain_answer_bruteforce,
    certain_answer_exact_views,
    is_consistent,
    witness_databases,
)
from repro.views.graphdb import (
    GraphDatabase,
    rpq_answers,
    rpq_pairs_from,
    rpq_witness_path,
)
from repro.views.reduction import ViewReduction, csp_to_view_reduction
from repro.views.regex import Regex, parse_regex, regex_to_nfa, symbols_of
from repro.views.rewriting import (
    evaluate_rewriting,
    expansion_nfa,
    is_sound_rewriting_word,
    maximal_rewriting,
    view_transition_relation,
)
from repro.views.template import (
    certain_answer_via_csp,
    constraint_template,
    extension_structure,
    remove_epsilons,
)

__all__ = [
    "NFA",
    "DFA",
    "Regex",
    "parse_regex",
    "regex_to_nfa",
    "symbols_of",
    "GraphDatabase",
    "rpq_answers",
    "rpq_pairs_from",
    "rpq_witness_path",
    "ViewSetup",
    "is_consistent",
    "certain_answer",
    "certain_answer_bruteforce",
    "certain_answer_exact_views",
    "witness_databases",
    "constraint_template",
    "extension_structure",
    "certain_answer_via_csp",
    "remove_epsilons",
    "ViewReduction",
    "csp_to_view_reduction",
    "maximal_rewriting",
    "view_transition_relation",
    "expansion_nfa",
    "is_sound_rewriting_word",
    "evaluate_rewriting",
    "datalog_rewriting",
    "certain_answer_datalog",
    "certain_answer_kconsistency",
]
