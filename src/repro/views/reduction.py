"""The reduction from CSP to view-based query answering (Theorem 7.3).

For every directed graph **B** there are an RPQ ``Q`` and views ``V`` with
definitions ``def(V)`` — *depending on B only* — such that for every
directed graph **A** one can compute extensions ``ext(V)`` and objects
``c, d`` with::

    (c, d) ∉ cert(Q, V)   ⟺   CSP(A, B) is solvable.

The gadget construction used here (equivalent in power to the one of
Calvanese–De Giacomo–Lenzerini–Vardi [10]):

* alphabet: one *color* letter per node of ``B``, plus markers ``s``/``t``;
* ``V_loop``, with definition ``∪_b (b·b)`` and extension ``{(x,x)}`` for
  every node ``x`` of ``A`` — a consistent database must give each node a
  color, recorded as a 2-letter loop through a fresh midpoint;
* ``V_edge``, with definition ``∪_{(b,b') ∈ E(B)} (b·b')`` and extension
  ``E(A)`` — every edge must pick a **B**-edge of colors;
* ``V_s`` / ``V_t`` (definitions ``s``/``t``) connecting a global source
  ``c`` to every node and every node to a global sink ``d``;
* the query accepts ``s · (violation) · t``, where a violation is either a
  node loop followed by an edge leaving in a different color
  (``b b b̂ c'`` with ``b̂ ≠ b``) or an edge arriving in a color other than
  the target's loop (``e1 e2 b b`` with ``b ≠ e2``).

A homomorphism ``A → B`` yields a coloring under which no violation is
readable, hence a consistent counterexample database; conversely any
consistent database contains a witness-choice sub-database whose coloring,
were it not a homomorphism, would expose a violation between ``c`` and
``d``.  Correctness is tested against the brute-force certain-answer checker
(the view languages here are finite with words of length ≤ 2, where that
checker is exact) in ``tests/views/test_reduction.py`` and benchmark E10.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import DomainError
from repro.relational.structure import Structure
from repro.views.automata import NFA
from repro.views.certain import ViewSetup
from repro.views.regex import ConcatRe, Regex, SymbolRe, UnionRe, regex_to_nfa

__all__ = ["ViewReduction", "csp_to_view_reduction", "SOURCE", "SINK"]

SOURCE = "__source__"
SINK = "__sink__"

V_LOOP = "Vloop"
V_EDGE = "Vedge"
V_S = "Vs"
V_T = "Vt"


def _color(node: Any) -> str:
    return f"c_{node!r}".replace(" ", "").replace("'", "").replace('"', "")


@dataclass
class ViewReduction:
    """``Q`` and ``def(V)`` for a fixed template ``B`` (Theorem 7.3)."""

    b: Structure
    query: NFA
    definitions: dict[str, NFA]

    def setup_for(self, a: Structure) -> tuple[ViewSetup, Any, Any]:
        """Extensions (plus the objects ``c, d``) encoding an input ``A``.

        ``A`` must be a digraph over the same ``{"E": 2}`` vocabulary.
        """
        if "E" not in a.vocabulary or a.vocabulary.arity("E") != 2:
            raise DomainError("the reduction expects digraphs with a binary E")
        nodes = sorted(a.domain, key=repr)
        extensions = {
            V_LOOP: {(x, x) for x in nodes},
            V_EDGE: set(a.relation("E")),
            V_S: {(SOURCE, x) for x in nodes},
            V_T: {(x, SINK) for x in nodes},
        }
        views = ViewSetup(dict(self.definitions), extensions)
        return views, SOURCE, SINK


def _word(letters: list[str]) -> Regex:
    parts = tuple(SymbolRe(letter) for letter in letters)
    return parts[0] if len(parts) == 1 else ConcatRe(parts)


def csp_to_view_reduction(b: Structure) -> ViewReduction:
    """Build ``Q`` and ``def(V)`` from the digraph template ``B``.

    Raises :class:`DomainError` for templates without nodes or edges (the
    reduction needs at least one color and one permissible edge word; those
    degenerate CSPs are trivial anyway).
    """
    if "E" not in b.vocabulary or b.vocabulary.arity("E") != 2:
        raise DomainError("the reduction expects digraph templates with a binary E")
    colors = {node: _color(node) for node in sorted(b.domain, key=repr)}
    if not colors:
        raise DomainError("template B has no nodes; CSP(A, B) is trivially unsolvable")
    edges = sorted(b.relation("E"), key=repr)
    if not edges:
        raise DomainError("template B has no edges; handle edgeless templates directly")

    loop_def = UnionRe(tuple(_word([c, c]) for c in colors.values()))
    edge_def = UnionRe(tuple(_word([colors[u], colors[v]]) for u, v in edges))

    violations: list[Regex] = []
    color_list = sorted(colors.values())
    for b_color in color_list:
        for bad in color_list:
            if bad == b_color:
                continue
            for anything in color_list:
                # loop(x) = b b, then an edge starting with b̂ ≠ b.
                violations.append(_word([b_color, b_color, bad, anything]))
    for e1 in color_list:
        for e2 in color_list:
            for bad in color_list:
                if bad == e2:
                    continue
                # edge e1 e2 into y, then loop(y) = b b with b ≠ e2.
                violations.append(_word([e1, e2, bad, bad]))

    query_re = ConcatRe((SymbolRe("s"), UnionRe(tuple(violations)), SymbolRe("t")))
    alphabet = frozenset(color_list) | {"s", "t"}
    definitions = {
        V_LOOP: regex_to_nfa(loop_def, alphabet),
        V_EDGE: regex_to_nfa(edge_def, alphabet),
        V_S: regex_to_nfa(SymbolRe("s"), alphabet),
        V_T: regex_to_nfa(SymbolRe("t"), alphabet),
    }
    return ViewReduction(b=b, query=regex_to_nfa(query_re, alphabet), definitions=definitions)
