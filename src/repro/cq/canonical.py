"""Canonical databases and canonical queries (Propositions 2.2 and 2.3).

The *canonical database* ``D^Q`` of a conjunctive query treats each variable
as a fresh domain element and each body atom as a fact; for every
distinguished variable ``X_i`` a marker predicate ``P_i`` holds of ``X_i``
(and every constant ``c`` gets a marker ``Const_c`` so that homomorphisms
must fix constants).  The *canonical query* ``φ_A`` of a structure is the
Boolean conjunctive query whose body lists all facts of ``A``.

These two constructions mediate the classical equivalences::

    Q1 ⊆ Q2  ⟺  (X1,…,Xn) ∈ Q2(D^{Q1})  ⟺  ∃ hom D^{Q2} → D^{Q1}   (Prop 2.2)
    ∃ hom A → B  ⟺  B ⊨ φ_A  ⟺  φ_B ⊆ φ_A                            (Prop 2.3)
"""

from __future__ import annotations

from typing import Any

from repro.cq.query import Atom, ConjunctiveQuery, Var
from repro.relational.structure import Structure, Vocabulary

__all__ = [
    "canonical_database",
    "canonical_query",
    "structure_from_query_body",
    "distinguished_marker",
    "constant_marker",
]


def distinguished_marker(position: int) -> str:
    """Name of the marker predicate ``P_i`` for the i-th distinguished
    variable (1-indexed, as in the tutorial)."""
    return f"P{position}"


def constant_marker(constant: Any) -> str:
    """Name of the marker predicate pinning a constant to itself."""
    return f"Const_{constant!r}"


def structure_from_query_body(query: ConjunctiveQuery) -> Structure:
    """The body of ``query`` as a structure: variables and constants are the
    domain, each atom a fact.  No marker predicates are added."""
    arities = dict(query.predicates())
    domain: set[Any] = set(query.variables())
    facts: dict[str, list[tuple]] = {p: [] for p in arities}
    for atom in query.body:
        domain.update(atom.terms)
        facts[atom.predicate].append(tuple(atom.terms))
    return Structure(Vocabulary(arities), domain, facts)


def canonical_database(
    query: ConjunctiveQuery,
    extra_predicates: dict[str, int] | None = None,
    constants: set[Any] | None = None,
) -> Structure:
    """The canonical database ``D^Q`` with distinguished-variable markers.

    Parameters
    ----------
    extra_predicates:
        Additional ``{predicate: arity}`` entries interpreted as empty, so
        another query over a larger vocabulary can be evaluated on the
        result.
    constants:
        Constants (beyond those in the query) whose markers should exist in
        the vocabulary; each constant occurring in the query is added to the
        domain and marked automatically.
    """
    arities = dict(query.predicates())
    for name, arity in (extra_predicates or {}).items():
        if name in arities and arities[name] != arity:
            raise ValueError(f"conflicting arity for {name!r}")
        arities[name] = arity

    domain: set[Any] = set(query.variables())
    facts: dict[str, list[tuple]] = {p: [] for p in arities}
    for atom in query.body:
        domain.update(atom.terms)
        facts.setdefault(atom.predicate, []).append(tuple(atom.terms))

    for i, v in enumerate(query.distinguished, start=1):
        marker = distinguished_marker(i)
        arities[marker] = 1
        facts[marker] = [(v,)]

    all_constants = {t for t in domain if not isinstance(t, Var)}
    for c in constants or ():
        all_constants.add(c)
        domain.add(c)
    for c in all_constants:
        marker = constant_marker(c)
        arities[marker] = 1
        facts[marker] = [(c,)]

    return Structure(Vocabulary(arities), domain, facts)


def canonical_query(structure: Structure, name: str = "Phi") -> ConjunctiveQuery:
    """The Boolean canonical query ``φ_A`` of a structure (Prop 2.3): one
    existential variable per domain element, one body atom per fact.

    Isolated domain elements (in no fact) are dropped — they are
    existentially quantified with no constraints, so the query is logically
    unchanged (assuming nonempty databases, the standard convention).
    """
    var_of = {a: Var(f"x{i}") for i, a in enumerate(sorted(structure.domain, key=repr))}
    body = [
        Atom(symbol, tuple(var_of[v] for v in t))
        for symbol, t in structure.facts()
    ]
    return ConjunctiveQuery(name, (), body)
