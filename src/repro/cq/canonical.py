"""Canonical databases and canonical queries (Propositions 2.2 and 2.3).

The *canonical database* ``D^Q`` of a conjunctive query treats each variable
as a fresh domain element and each body atom as a fact; for every
distinguished variable ``X_i`` a marker predicate ``P_i`` holds of ``X_i``
(and every constant ``c`` gets a marker ``Const_c`` so that homomorphisms
must fix constants).  The *canonical query* ``φ_A`` of a structure is the
Boolean conjunctive query whose body lists all facts of ``A``.

These two constructions mediate the classical equivalences::

    Q1 ⊆ Q2  ⟺  (X1,…,Xn) ∈ Q2(D^{Q1})  ⟺  ∃ hom D^{Q2} → D^{Q1}   (Prop 2.2)
    ∃ hom A → B  ⟺  B ⊨ φ_A  ⟺  φ_B ⊆ φ_A                            (Prop 2.3)
"""

from __future__ import annotations

from itertools import permutations
from typing import Any

from repro.cq.query import Atom, ConjunctiveQuery, Var
from repro.relational.structure import Structure, Vocabulary

__all__ = [
    "canonical_database",
    "canonical_query",
    "canonical_key",
    "CANONICAL_KEY_PERMUTATION_CAP",
    "structure_from_query_body",
    "distinguished_marker",
    "constant_marker",
]


def distinguished_marker(position: int) -> str:
    """Name of the marker predicate ``P_i`` for the i-th distinguished
    variable (1-indexed, as in the tutorial)."""
    return f"P{position}"


def constant_marker(constant: Any) -> str:
    """Name of the marker predicate pinning a constant to itself."""
    return f"Const_{constant!r}"


def structure_from_query_body(query: ConjunctiveQuery) -> Structure:
    """The body of ``query`` as a structure: variables and constants are the
    domain, each atom a fact.  No marker predicates are added."""
    arities = dict(query.predicates())
    domain: set[Any] = set(query.variables())
    facts: dict[str, list[tuple]] = {p: [] for p in arities}
    for atom in query.body:
        domain.update(atom.terms)
        facts[atom.predicate].append(tuple(atom.terms))
    return Structure(Vocabulary(arities), domain, facts)


def canonical_database(
    query: ConjunctiveQuery,
    extra_predicates: dict[str, int] | None = None,
    constants: set[Any] | None = None,
) -> Structure:
    """The canonical database ``D^Q`` with distinguished-variable markers.

    Parameters
    ----------
    extra_predicates:
        Additional ``{predicate: arity}`` entries interpreted as empty, so
        another query over a larger vocabulary can be evaluated on the
        result.
    constants:
        Constants (beyond those in the query) whose markers should exist in
        the vocabulary; each constant occurring in the query is added to the
        domain and marked automatically.
    """
    arities = dict(query.predicates())
    for name, arity in (extra_predicates or {}).items():
        if name in arities and arities[name] != arity:
            raise ValueError(f"conflicting arity for {name!r}")
        arities[name] = arity

    domain: set[Any] = set(query.variables())
    facts: dict[str, list[tuple]] = {p: [] for p in arities}
    for atom in query.body:
        domain.update(atom.terms)
        facts.setdefault(atom.predicate, []).append(tuple(atom.terms))

    for i, v in enumerate(query.distinguished, start=1):
        marker = distinguished_marker(i)
        arities[marker] = 1
        facts[marker] = [(v,)]

    all_constants = {t for t in domain if not isinstance(t, Var)}
    for c in constants or ():
        all_constants.add(c)
        domain.add(c)
    for c in all_constants:
        marker = constant_marker(c)
        arities[marker] = 1
        facts[marker] = [(c,)]

    return Structure(Vocabulary(arities), domain, facts)


#: Bound on the existential-variable orderings :func:`canonical_key`
#: enumerates (8!).  A query whose color-refinement classes admit more
#: orderings gets no key (``None``) — equality-keyed caches must then fall
#: back to an explicit containment probe.
CANONICAL_KEY_PERMUTATION_CAP = 40320


def canonical_key(query: ConjunctiveQuery) -> str | None:
    """A canonical string key: equal keys ⟺ isomorphic queries.

    Two queries get the same key exactly when one maps onto the other by a
    variable bijection that preserves body atoms, constants, and the
    distinguished tuple positionally (the head predicate *name* is
    ignored — it does not affect the answers).  Since the core of a query
    is unique up to isomorphism, ``canonical_key(minimize(q))`` is a sound
    and complete equality key for conjunctive-query *equivalence* —
    exactly what a containment-keyed result cache needs.

    Distinguished variables are pinned positionally (``D0``, ``D1``, …,
    repeating for repeated head variables) and constants by their ``repr``,
    so only the existential variables need canonical names: a color
    refinement over the atom-incidence structure splits them into orbits,
    and the lexicographically least encoding over the per-orbit orderings
    is chosen.  When the orbit structure admits more than
    :data:`CANONICAL_KEY_PERMUTATION_CAP` orderings the search is not
    attempted and ``None`` is returned (no key — never a wrong key).
    """
    first_position: dict[Var, int] = {}
    for i, v in enumerate(query.distinguished):
        first_position.setdefault(v, i)

    def fixed_token(term: Any) -> str | None:
        """The canonical token of a term that needs no search, else None."""
        if isinstance(term, Var):
            if term in first_position:
                return f"D{first_position[term]}"
            return None
        return f"c{term!r}"

    existential = [
        v for v in query.variables() if isinstance(v, Var) and v not in first_position
    ]

    # Color refinement over the existential variables: a variable's
    # signature lists, per atom occurrence, the predicate, the canonical
    # or color token of every term, and the positions it occupies.  Colors
    # are re-ranked by sorted signature each round, so they stay canonical
    # (isomorphism-invariant) by induction.
    color: dict[Var, int] = {v: 0 for v in existential}
    while True:
        signatures: dict[Var, tuple] = {}
        for v in existential:
            occurrences = []
            for atom in query.body:
                if v not in atom.terms:
                    continue
                tags = tuple(
                    fixed_token(t) or f"e{color[t]}" for t in atom.terms
                )
                positions = tuple(
                    i for i, t in enumerate(atom.terms) if t == v
                )
                occurrences.append((atom.predicate, tags, positions))
            signatures[v] = (color[v], tuple(sorted(occurrences)))
        ranked = {sig: rank for rank, sig in enumerate(sorted(set(signatures.values())))}
        new_color = {v: ranked[signatures[v]] for v in existential}
        if new_color == color:
            break
        color = new_color

    classes: dict[int, list[Var]] = {}
    for v in existential:
        classes.setdefault(color[v], []).append(v)
    ordered_classes = [classes[c] for c in sorted(classes)]

    orderings = 1
    for cls in ordered_classes:
        for k in range(2, len(cls) + 1):
            orderings *= k
        if orderings > CANONICAL_KEY_PERMUTATION_CAP:
            return None

    head_tokens = tuple(f"D{first_position[v]}" for v in query.distinguished)
    best: tuple | None = None
    for class_orders in _class_orderings(ordered_classes):
        rank_of: dict[Var, int] = {}
        for cls in class_orders:
            for v in cls:
                rank_of[v] = len(rank_of)
        encoded = tuple(
            sorted(
                (
                    atom.predicate,
                    tuple(
                        fixed_token(t) or f"E{rank_of[t]}" for t in atom.terms
                    ),
                )
                for atom in query.body
            )
        )
        if best is None or encoded < best:
            best = encoded
    return repr((head_tokens, best))


def _class_orderings(ordered_classes: list[list[Var]]):
    """All orderings that permute variables within their refinement class
    only (the classes themselves are canonically ordered already)."""
    if not ordered_classes:
        yield []
        return
    head, tail = ordered_classes[0], ordered_classes[1:]
    for perm in permutations(head):
        for rest in _class_orderings(tail):
            yield [list(perm)] + rest


def canonical_query(structure: Structure, name: str = "Phi") -> ConjunctiveQuery:
    """The Boolean canonical query ``φ_A`` of a structure (Prop 2.3): one
    existential variable per domain element, one body atom per fact.

    Isolated domain elements (in no fact) are dropped — they are
    existentially quantified with no constraints, so the query is logically
    unchanged (assuming nonempty databases, the standard convention).
    """
    var_of = {a: Var(f"x{i}") for i, a in enumerate(sorted(structure.domain, key=repr))}
    body = [
        Atom(symbol, tuple(var_of[v] for v in t))
        for symbol, t in structure.facts()
    ]
    return ConjunctiveQuery(name, (), body)
