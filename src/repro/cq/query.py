"""Conjunctive queries: terms, atoms, and the query AST (Section 2).

A conjunctive query is written as a rule ``Q(X1,…,Xn) :- body`` whose body
is a conjunction of positive atoms; the head variables are the
*distinguished* variables, all others are existentially quantified.  Terms
are :class:`Var` objects or arbitrary hashable constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.errors import ParseError

__all__ = ["Var", "Atom", "ConjunctiveQuery"]


@dataclass(frozen=True, order=True)
class Var:
    """A query variable, identified by name."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Atom:
    """A positive atom ``predicate(t1, …, tn)``; terms are vars or constants."""

    predicate: str
    terms: tuple[Any, ...]

    def __init__(self, predicate: str, terms: Sequence[Any]):
        object.__setattr__(self, "predicate", predicate)
        object.__setattr__(self, "terms", tuple(terms))

    @property
    def arity(self) -> int:
        return len(self.terms)

    def variables(self) -> tuple[Var, ...]:
        """The variables of the atom, in order of first occurrence."""
        seen: list[Var] = []
        for t in self.terms:
            if isinstance(t, Var) and t not in seen:
                seen.append(t)
        return tuple(seen)

    def constants(self) -> tuple[Any, ...]:
        return tuple(t for t in self.terms if not isinstance(t, Var))

    def __repr__(self) -> str:
        inner = ", ".join(repr(t) for t in self.terms)
        return f"{self.predicate}({inner})"


class ConjunctiveQuery:
    """A conjunctive query ``head_name(distinguished…) :- atoms…``.

    Boolean queries have an empty tuple of distinguished variables.
    Every distinguished variable must occur in the body (safety).
    """

    __slots__ = ("_head_name", "_distinguished", "_body")

    def __init__(
        self,
        head_name: str,
        distinguished: Sequence[Var],
        body: Iterable[Atom],
    ):
        self._head_name = head_name
        self._distinguished = tuple(distinguished)
        self._body = tuple(body)
        body_vars = {v for atom in self._body for v in atom.variables()}
        for v in self._distinguished:
            if not isinstance(v, Var):
                raise ParseError(f"distinguished terms must be variables, got {v!r}")
            if v not in body_vars:
                raise ParseError(f"unsafe query: head variable {v!r} not in the body")

    @property
    def head_name(self) -> str:
        return self._head_name

    @property
    def distinguished(self) -> tuple[Var, ...]:
        return self._distinguished

    @property
    def body(self) -> tuple[Atom, ...]:
        return self._body

    @property
    def is_boolean(self) -> bool:
        return not self._distinguished

    def variables(self) -> tuple[Var, ...]:
        """All variables, distinguished first, then by first body occurrence."""
        out = list(self._distinguished)
        for atom in self._body:
            for v in atom.variables():
                if v not in out:
                    out.append(v)
        return tuple(out)

    def existential_variables(self) -> tuple[Var, ...]:
        distinguished = set(self._distinguished)
        return tuple(v for v in self.variables() if v not in distinguished)

    def predicates(self) -> dict[str, int]:
        """``{predicate: arity}`` over the body (consistent arities enforced)."""
        out: dict[str, int] = {}
        for atom in self._body:
            if atom.predicate in out and out[atom.predicate] != atom.arity:
                raise ParseError(
                    f"predicate {atom.predicate!r} used with arities "
                    f"{out[atom.predicate]} and {atom.arity}"
                )
            out[atom.predicate] = atom.arity
        return out

    def rename_apart(self, suffix: str) -> "ConjunctiveQuery":
        """A copy with every variable renamed by appending ``suffix`` —
        used to make two queries variable-disjoint before combination."""
        mapping = {v: Var(v.name + suffix) for v in self.variables()}

        def rn(t: Any) -> Any:
            return mapping.get(t, t) if isinstance(t, Var) else t

        return ConjunctiveQuery(
            self._head_name,
            [mapping[v] for v in self._distinguished],
            [Atom(a.predicate, [rn(t) for t in a.terms]) for a in self._body],
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConjunctiveQuery):
            return NotImplemented
        return (
            self._head_name == other._head_name
            and self._distinguished == other._distinguished
            and set(self._body) == set(other._body)
        )

    def __hash__(self) -> int:
        return hash((self._head_name, self._distinguished, frozenset(self._body)))

    def __repr__(self) -> str:
        head = f"{self._head_name}({', '.join(map(repr, self._distinguished))})"
        body = ", ".join(repr(a) for a in self._body)
        return f"{head} :- {body}."
