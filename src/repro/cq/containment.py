"""Conjunctive-query containment — the Chandra–Merlin theorem (Prop 2.2).

``Q1 ⊆ Q2`` (over all databases) is decided two equivalent ways, both
implemented and differentially tested:

* **evaluation**: check ``(X1,…,Xn) ∈ Q2(D^{Q1})`` on the canonical
  database of ``Q1``;
* **homomorphism**: search for a homomorphism ``D^{Q2} → D^{Q1}`` that
  matches the distinguished markers and fixes constants.

On top of containment we get equivalence and query *minimization* (the
core): greedily dropping body atoms while preserving equivalence yields the
unique-up-to-isomorphism minimal query.
"""

from __future__ import annotations

from repro.cq.canonical import canonical_database
from repro.cq.evaluate import evaluate
from repro.cq.query import Atom, ConjunctiveQuery, Var
from repro.errors import DomainError
from repro.relational.homomorphism import find_homomorphism

__all__ = [
    "is_contained_in",
    "is_contained_in_via_homomorphism",
    "containment_homomorphism",
    "are_equivalent",
    "minimize",
]


def _check_compatible(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> None:
    if len(q1.distinguished) != len(q2.distinguished):
        raise DomainError(
            "containment requires the same number of distinguished variables"
        )


def is_contained_in(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> bool:
    """Decide ``Q1 ⊆ Q2`` by evaluating ``Q2`` on the canonical database of
    ``Q1`` and checking for the tuple of Q1's distinguished variables."""
    _check_compatible(q1, q2)
    predicates = dict(q1.predicates())
    for name, arity in q2.predicates().items():
        if name in predicates and predicates[name] != arity:
            return False  # arity clash: the queries share no databases
        predicates.setdefault(name, arity)
    q2_constants = {t for atom in q2.body for t in atom.constants()}
    db = canonical_database(q1, extra_predicates=predicates, constants=q2_constants)
    answers = evaluate(q2, db)
    return tuple(q1.distinguished) in answers.tuples


def containment_homomorphism(
    q1: ConjunctiveQuery, q2: ConjunctiveQuery
) -> dict | None:
    """A containment witness: a homomorphism ``D^{Q2} → D^{Q1}`` preserving
    distinguished markers and constants, or ``None``.

    Marker predicates make a *plain* structure homomorphism do all the
    bookkeeping: ``P_i`` facts force distinguished variables onto each
    other, ``Const_c`` facts force constants onto themselves.
    """
    _check_compatible(q1, q2)
    union_preds: dict[str, int] = dict(q1.predicates())
    for name, arity in q2.predicates().items():
        if name in union_preds and union_preds[name] != arity:
            return None
        union_preds.setdefault(name, arity)
    constants1 = {t for atom in q1.body for t in atom.constants()}
    constants2 = {t for atom in q2.body for t in atom.constants()}
    shared = constants1 | constants2
    db1 = canonical_database(q1, extra_predicates=union_preds, constants=shared)
    db2 = canonical_database(q2, extra_predicates=union_preds, constants=shared)
    return find_homomorphism(db2, db1)


def is_contained_in_via_homomorphism(
    q1: ConjunctiveQuery, q2: ConjunctiveQuery
) -> bool:
    """Decide ``Q1 ⊆ Q2`` by the homomorphism criterion of Prop 2.2."""
    return containment_homomorphism(q1, q2) is not None


def are_equivalent(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> bool:
    """Whether ``Q1`` and ``Q2`` return the same answers on every database."""
    return is_contained_in(q1, q2) and is_contained_in(q2, q1)


def minimize(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """The core of the query: a minimal equivalent subquery.

    Repeatedly drops a body atom when the remaining query is still
    equivalent (safety of the head is preserved by construction of the
    candidate).  The result is minimal: no further atom can be dropped.

    The fixed side of every equivalence check is ``query`` itself, so its
    canonical database, predicate map, and constant set are computed once
    and shared across the O(n²) drop loop instead of being rebuilt by
    :func:`are_equivalent` for each candidate.  This is sound because every
    candidate's body is a subset of the original body: the candidate's
    predicates and constants are already covered by the query's, so the
    hoisted database is exactly the one :func:`is_contained_in` would build
    per candidate (``canonical_database`` marks its own body's constants
    regardless of the ``constants`` argument).
    """
    predicates = dict(query.predicates())
    constants = {t for atom in query.body for t in atom.constants()}
    fixed_db = canonical_database(
        query, extra_predicates=predicates, constants=constants
    )
    head = tuple(query.distinguished)

    def equivalent_to_query(candidate: ConjunctiveQuery) -> bool:
        # query ⊆ candidate: evaluate the candidate on the hoisted canonical
        # database of the query.
        if head not in evaluate(candidate, fixed_db).tuples:
            return False
        # candidate ⊆ query: the candidate's canonical database changes per
        # candidate, but the predicate map and constant set are the query's.
        db = canonical_database(
            candidate, extra_predicates=predicates, constants=constants
        )
        return tuple(candidate.distinguished) in evaluate(query, db).tuples

    body = list(query.body)
    changed = True
    while changed:
        changed = False
        for i in range(len(body)):
            candidate_body = body[:i] + body[i + 1 :]
            if not candidate_body:
                continue
            remaining_vars = {
                v for atom in candidate_body for v in atom.variables()
            }
            if not set(query.distinguished) <= remaining_vars:
                continue
            candidate = ConjunctiveQuery(
                query.head_name, query.distinguished, candidate_body
            )
            if equivalent_to_query(candidate):
                body = candidate_body
                changed = True
                break
    return ConjunctiveQuery(query.head_name, query.distinguished, body)
