"""Conjunctive-query evaluation over relational structures.

``Q(D)`` is computed by the textbook join plan: translate each body atom to
a relation over its variables (selecting on constants and repeated
variables), natural-join everything, and project onto the distinguished
variables.  Proposition 2.1's join-evaluation view of CSP is the Boolean
special case.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.cq.query import Atom, ConjunctiveQuery, Var
from repro.errors import VocabularyError
from repro.relational.algebra import join_all, project, semijoin
from repro.relational.relation import Relation
from repro.relational.stats import current_stats
from repro.relational.structure import Structure
from repro.telemetry.spans import span

__all__ = ["atom_relation", "evaluate", "evaluate_boolean", "satisfying_assignments"]


def atom_relation(atom: Atom, database: Structure) -> Relation:
    """The relation of assignments to the atom's variables that match the
    database: rows of ``database.relation(atom.predicate)`` filtered on
    constants and repeated variables, projected to one column per variable.

    The result is memoized on the (immutable) database via
    :meth:`~repro.relational.structure.Structure.derived`: every query over
    the same structure gets back the *same* :class:`Relation` object per
    atom, so hash indexes built by one query's joins are probed for free by
    the next — the cross-job reuse the :class:`~repro.parallel.coordinator.Coordinator`'s
    ``"hash"`` routing policy and the :mod:`repro.service` cache lean on.
    """
    if atom.predicate not in database.vocabulary:
        raise VocabularyError(
            f"predicate {atom.predicate!r} not in the database vocabulary"
        )
    return database.derived(
        ("atom_relation", atom), lambda: _build_atom_relation(atom, database)
    )


def _build_atom_relation(atom: Atom, database: Structure) -> Relation:
    rows = database.relation(atom.predicate)
    variables = atom.variables()
    first_position = {v: atom.terms.index(v) for v in variables}

    def matches(row: tuple) -> bool:
        for i, term in enumerate(atom.terms):
            if isinstance(term, Var):
                if row[i] != row[first_position[term]]:
                    return False
            elif row[i] != term:
                return False
        return True

    out = (
        tuple(row[first_position[v]] for v in variables)
        for row in rows
        if matches(row)
    )
    return Relation(tuple(v.name for v in variables), out)


def _body_join(
    query: ConjunctiveQuery, database: Structure, strategy: str | None = None
) -> Relation:
    """Join the body atoms.  ``strategy`` picks the join order and execution
    (see :func:`repro.relational.planner.parse_strategy`): ``"textbook"`` is
    the textual atom order, ``"scan"`` forces nested-loop joins, ``"wcoj"``
    the leapfrog triejoin, and the default is the cost-guided greedy plan
    over the hash-indexed operators.  ``"auto"`` consults the body's
    hypergraph (:mod:`repro.width`): acyclic bodies go through Yannakakis'
    semijoin reducer, **cyclic** bodies through the worst-case optimal
    leapfrog triejoin — the regime where every pairwise plan is
    AGM-suboptimal — and the default plan covers the rest."""
    if strategy == "auto":
        relations = _atom_relations(query, database)
        route = _auto_route(query, relations)
        if route == "yannakakis":
            with span("yannakakis_reduce"):
                reduced = _yannakakis_reduce(relations)
            return join_all(reduced, execution=_reduced_execution(reduced))
        from repro.relational.wcoj import leapfrog_join

        return leapfrog_join(relations)
    return join_all(
        (atom_relation(atom, database) for atom in query.body), strategy=strategy
    )


def _atom_relations(query: ConjunctiveQuery, database: Structure) -> list[Relation]:
    """Translate every body atom to its relation (one "atoms" span)."""
    with span("atoms") as sp:
        relations = [atom_relation(atom, database) for atom in query.body]
        if sp:
            sp.note(rows=sum(len(r) for r in relations))
        return relations


#: The structural width signal behind ``strategy="auto"``: GYO-style
#: join-tree construction — α-acyclicity, i.e. generalized hypertree
#: width 1 (Section 6 of the tutorial).
_ROUTE_SIGNAL = "gyo-acyclicity"

#: Total reduced-body row count at which ``strategy="auto"``'s Yannakakis
#: branch switches the final join from the default execution to
#: ``"columnar"``.  Below it the column-store builds cost more than the
#: batched probes save; above it the vectorized fold wins.  Only consulted
#: when numpy is available (the stdlib fallback has no batched fold).
COLUMNAR_AUTO_THRESHOLD = 256


def _reduced_execution(reduced: list[Relation]) -> str | None:
    """The execution for the final join of a Yannakakis-reduced body:
    ``"columnar"`` for large reduced bodies when numpy is present, else
    ``None`` (the default execution).  The choice is annotated onto the
    routing decision :func:`_auto_route` just recorded."""
    from repro.relational.columnar import numpy_backend

    execution = None
    if (
        numpy_backend() is not None
        and sum(len(r) for r in reduced) >= COLUMNAR_AUTO_THRESHOLD
    ):
        execution = "columnar"
    stats = current_stats()
    if stats is not None and stats.routing_decisions:
        stats.routing_decisions[-1]["execution"] = execution or "default"
    return execution


def _auto_route(query: ConjunctiveQuery, relations: list[Relation]) -> str:
    """Decide where ``strategy="auto"`` sends the body — and record why.

    Acyclic bodies (per :func:`repro.width.acyclic.is_acyclic`, the width
    signal) route to Yannakakis' semijoin reducer; cyclic ones to the
    worst-case optimal leapfrog triejoin.  The decision lands both in the
    active :class:`~repro.relational.stats.EvalStats`
    (``routing_decisions``) and on the ``"route"`` span's attributes.
    """
    from repro.width.acyclic import is_acyclic

    with span("route") as sp:
        acyclic = is_acyclic([frozenset(r.attributes) for r in relations])
        route = "yannakakis" if acyclic else "wcoj"
        stats = current_stats()
        if stats is not None:
            stats.record_routing(
                query.head_name, route, acyclic=acyclic, signal=_ROUTE_SIGNAL
            )
        if sp:
            sp.note(route=route, acyclic=acyclic, signal=_ROUTE_SIGNAL)
        return route


def _yannakakis_reduce(relations: list[Relation]) -> list[Relation] | None:
    """Yannakakis' full reducer for an acyclic body, or ``None`` if cyclic.

    When the body hypergraph (one hyperedge per atom's variable set) is
    α-acyclic, a bottom-up semijoin pass over a join tree followed by a
    top-down pass makes every relation globally consistent, so the final
    join's intermediates never exceed the output size — the Section 6
    polynomial-time guarantee for acyclic joins.  The reduced relations
    join to exactly the same result as the unreduced ones (semijoins only
    delete dangling rows).
    """
    from repro.width.acyclic import is_acyclic, join_tree

    scopes = [frozenset(r.attributes) for r in relations]
    if not is_acyclic(scopes):
        return None
    tree = join_tree(scopes)
    reduced = list(relations)
    bottom_up = tree.topological_order()
    children = tree.children()
    for node in bottom_up:
        for child in children[node]:
            reduced[node] = semijoin(reduced[node], reduced[child])
    for node in reversed(bottom_up):
        for child in children[node]:
            reduced[child] = semijoin(reduced[child], reduced[node])
    return reduced


def evaluate(
    query: ConjunctiveQuery, database: Structure, strategy: str | None = None
) -> Relation:
    """Evaluate ``Q(D)``: the relation over the distinguished variables.

    For a Boolean query the result is the nullary relation — nonempty
    (containing the empty tuple) iff the query holds.  ``strategy`` selects
    the join order; all strategies compute the same relation.  Besides the
    order/execution specs of :func:`repro.relational.planner.parse_strategy`,
    ``"auto"`` is accepted: acyclic bodies are fully semijoin-reduced
    (Yannakakis) before the join — with the final join switching to the
    columnar execution when the reduced body holds at least
    :data:`COLUMNAR_AUTO_THRESHOLD` rows and numpy is available — while
    cyclic ones run the worst-case optimal leapfrog triejoin
    (:mod:`repro.relational.wcoj`).
    """
    with span(
        "cq.evaluate", query=query.head_name, strategy=strategy or "default"
    ) as sp:
        joined = _body_join(query, database, strategy)
        result = project(joined, tuple(v.name for v in query.distinguished))
        if sp:
            sp.note(rows=len(result))
        return result


def evaluate_boolean(
    query: ConjunctiveQuery, database: Structure, strategy: str | None = None
) -> bool:
    """Whether a Boolean conjunctive query holds on the database.

    With ``strategy="auto"`` and an acyclic body, the answer is read off
    the full reducer without materializing the join at all: after the two
    semijoin passes the join is nonempty iff every reduced relation is
    (global consistency of full-reduced acyclic joins).
    """
    with span(
        "cq.evaluate_boolean", query=query.head_name, strategy=strategy or "default"
    ):
        if strategy == "auto":
            relations = _atom_relations(query, database)
            route = _auto_route(query, relations)
            if route == "yannakakis":
                with span("yannakakis_reduce"):
                    reduced = _yannakakis_reduce(relations)
                return all(reduced)
            # Cyclic body: leapfrog with limit=1 — the first full binding
            # decides the query, with nothing materialized at all.
            from repro.relational.wcoj import leapfrog_join

            return bool(leapfrog_join(relations, limit=1))
        return bool(_body_join(query, database, strategy))


def satisfying_assignments(
    query: ConjunctiveQuery, database: Structure, strategy: str | None = None
) -> Iterator[dict[Var, Any]]:
    """Iterate all assignments of *all* query variables that satisfy the body
    (the query's "satisfying valuations", not just the projected answers)."""
    joined = _body_join(query, database, strategy)
    for t in sorted(joined.tuples, key=repr):
        yield {Var(a): value for a, value in zip(joined.attributes, t)}
