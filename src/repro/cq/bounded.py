"""Bounded-variable existential positive formulas — ∃FO^k_{∧,+}.

Proposition 6.1: a structure ``A`` has treewidth ``k`` iff its canonical
query ``φ_A`` is expressible with at most ``k+1`` variables in the fragment
∃FO_{∧,+} (no negation, no disjunction, no universal quantifier).  The proof
of Theorem 6.2 turns a width-``k`` tree decomposition into such a formula and
evaluates it in polynomial combined complexity; this module implements both
halves:

* a tiny AST (:class:`AtomFormula`, :class:`AndFormula`,
  :class:`ExistsFormula`) with :func:`count_variables`;
* :func:`formula_from_tree_decomposition` — the parse-tree construction:
  bottom-up over a rooted decomposition, reusing variable names so that at
  most ``width+1`` distinct names ever occur;
* :func:`evaluate_formula` — memoized recursive evaluation whose state space
  is (subformula × assignments to ≤ k+1 free variables), i.e. the
  ``O(n^{k+1})``-shaped algorithm behind Theorem 6.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import DecompositionError
from repro.relational.structure import Structure
from repro.width.treedecomp import TreeDecomposition

__all__ = [
    "AtomFormula",
    "AndFormula",
    "ExistsFormula",
    "Formula",
    "free_variables",
    "count_variables",
    "evaluate_formula",
    "formula_from_tree_decomposition",
    "formula_to_query",
    "formula_for_structure",
]


@dataclass(frozen=True)
class AtomFormula:
    """``R(x1, …, xn)`` with variable names as strings."""

    predicate: str
    variables: tuple[str, ...]


@dataclass(frozen=True)
class AndFormula:
    """A (possibly empty) conjunction; the empty conjunction is *true*."""

    conjuncts: tuple


@dataclass(frozen=True)
class ExistsFormula:
    """``∃ x1 … xm . sub``."""

    variables: tuple[str, ...]
    sub: "Formula"


Formula = AtomFormula | AndFormula | ExistsFormula


def free_variables(formula: Formula) -> frozenset[str]:
    """The free variables of the formula."""
    if isinstance(formula, AtomFormula):
        return frozenset(formula.variables)
    if isinstance(formula, AndFormula):
        out: frozenset[str] = frozenset()
        for c in formula.conjuncts:
            out |= free_variables(c)
        return out
    return free_variables(formula.sub) - frozenset(formula.variables)


def count_variables(formula: Formula) -> int:
    """The number of *distinct variable names* in the formula — the measure
    that defines the fragments ∃FO^k_{∧,+} and ∃L^k_{∞ω}."""
    names: set[str] = set()

    def walk(f: Formula) -> None:
        if isinstance(f, AtomFormula):
            names.update(f.variables)
        elif isinstance(f, AndFormula):
            for c in f.conjuncts:
                walk(c)
        else:
            names.update(f.variables)
            walk(f.sub)

    walk(formula)
    return len(names)


def evaluate_formula(
    formula: Formula,
    structure: Structure,
    assignment: Mapping[str, Any] | None = None,
) -> bool:
    """Evaluate a sentence (or a formula under ``assignment``) on a structure.

    Memoized on ``(subformula, assignment ↾ free variables)``: with at most
    ``k`` variable names the table has polynomially many entries, giving the
    polynomial combined complexity cited from [58] in Theorem 6.2's proof.
    """
    memo: dict[tuple[int, frozenset], bool] = {}
    domain = sorted(structure.domain, key=repr)

    def ev(f: Formula, env: dict[str, Any]) -> bool:
        fv = free_variables(f)
        key = (id(f), frozenset((v, env[v]) for v in fv))
        if key in memo:
            return memo[key]
        if isinstance(f, AtomFormula):
            result = tuple(env[v] for v in f.variables) in structure.relation(
                f.predicate
            )
        elif isinstance(f, AndFormula):
            result = all(ev(c, env) for c in f.conjuncts)
        else:
            result = _exists(f, env)
        memo[key] = result
        return result

    def _exists(f: ExistsFormula, env: dict[str, Any]) -> bool:
        def assign(i: int) -> bool:
            if i == len(f.variables):
                return ev(f.sub, env)
            name = f.variables[i]
            saved = env.get(name, _MISSING)
            for value in domain:
                env[name] = value
                if assign(i + 1):
                    if saved is _MISSING:
                        env.pop(name, None)
                    else:
                        env[name] = saved
                    return True
            if saved is _MISSING:
                env.pop(name, None)
            else:
                env[name] = saved
            return False

        return assign(0)

    env = dict(assignment or {})
    missing = free_variables(formula) - set(env)
    if missing:
        raise DecompositionError(f"unassigned free variables: {sorted(missing)!r}")
    return ev(formula, env)


_MISSING = object()


def formula_from_tree_decomposition(
    structure: Structure, decomposition: TreeDecomposition
) -> Formula:
    """Build a sentence in ∃FO^{w+1}_{∧,+} equivalent to ``φ_A`` from a
    width-``w`` tree decomposition of ``A`` (the construction in the proof of
    Theorem 6.2).

    Variable names come from the fixed pool ``x0 … xw``; an element shares
    its name with the parent bag where possible and otherwise takes any name
    not used by the elements shared with the parent — the name reuse that
    keeps the total count at ``w + 1``.
    """
    pool = [f"x{i}" for i in range(decomposition.width + 1)]
    bags = decomposition.bags
    root, children = decomposition.rooted()

    # Attach each fact of the structure to one bag containing its elements.
    facts_of: dict[Any, list[tuple[str, tuple]]] = {node: [] for node in bags}
    for symbol, t in structure.facts():
        elems = set(t)
        home = next((n for n in sorted(bags, key=repr) if elems <= bags[n]), None)
        if home is None:
            raise DecompositionError(
                f"fact {symbol}{t!r} is contained in no bag; invalid decomposition"
            )
        facts_of[home].append((symbol, t))

    uncovered = structure.domain - decomposition.vertices_covered()
    if uncovered:
        raise DecompositionError(
            f"decomposition misses domain elements: {sorted(uncovered, key=repr)!r}"
        )

    def build(node: Any, naming: dict[Any, str]) -> Formula:
        """``naming`` maps this bag's elements to variable names (injective)."""
        bag = bags[node]
        conjuncts: list[Formula] = [
            AtomFormula(symbol, tuple(naming[v] for v in t))
            for symbol, t in facts_of[node]
        ]
        for child in children[node]:
            child_bag = bags[child]
            shared = child_bag & bag
            child_naming = {v: naming[v] for v in shared}
            used = set(child_naming.values())
            free_names = [n for n in pool if n not in used]
            new_elements = sorted(child_bag - shared, key=repr)
            if len(new_elements) > len(free_names):
                raise DecompositionError("bag larger than the variable pool")
            fresh = []
            for v, name in zip(new_elements, free_names):
                child_naming[v] = name
                fresh.append(name)
            sub = build(child, child_naming)
            conjuncts.append(ExistsFormula(tuple(fresh), sub) if fresh else sub)
        return AndFormula(tuple(conjuncts))

    root_naming = {
        v: name for v, name in zip(sorted(bags[root], key=repr), pool)
    }
    body = build(root, root_naming)
    root_names = tuple(root_naming[v] for v in sorted(bags[root], key=repr))
    return ExistsFormula(root_names, body)


def formula_to_query(formula: Formula, name: str = "Q") -> "ConjunctiveQuery":
    """Unnest a sentence of ∃FO_{∧,+} into an equivalent Boolean conjunctive
    query — the converse direction of Proposition 6.1.

    Reused variable names are renamed apart (each ∃ introduces fresh copies),
    so a k-variable formula yields a query whose canonical structure has
    treewidth ≤ k − 1: the formula's quantification tree is a tree
    decomposition whose bags are the ≤ k names in scope at each node.
    Verified in ``tests/cq/test_bounded.py`` by round-tripping structures
    through ``formula_from_tree_decomposition`` and back.
    """
    from repro.cq.query import Atom, ConjunctiveQuery

    counter = [0]
    atoms: list[Atom] = []

    def fresh(base: str) -> str:
        counter[0] += 1
        return f"{base}_{counter[0]}"

    def walk(f: Formula, scope: dict[str, str]) -> None:
        if isinstance(f, AtomFormula):
            missing = [v for v in f.variables if v not in scope]
            if missing:
                raise DecompositionError(
                    f"free variables {missing!r} in a sentence-level conversion"
                )
            from repro.cq.query import Var

            atoms.append(
                Atom(f.predicate, tuple(Var(scope[v]) for v in f.variables))
            )
        elif isinstance(f, AndFormula):
            for c in f.conjuncts:
                walk(c, scope)
        else:
            inner = dict(scope)
            for v in f.variables:
                inner[v] = fresh(v)
            walk(f.sub, inner)

    walk(formula, {})
    if not atoms:
        # The trivially true sentence: represent with a single tautological
        # marker is impossible without vocabulary; reject explicitly.
        raise DecompositionError("cannot convert an atom-free (trivially true) sentence")
    return ConjunctiveQuery(name, (), atoms)


def formula_for_structure(structure: Structure) -> Formula:
    """A bounded-variable sentence equivalent to ``φ_A``, from a heuristic
    tree decomposition of the structure's Gaifman graph."""
    from repro.width.gaifman import gaifman_graph
    from repro.width.treedecomp import heuristic_decomposition

    graph = gaifman_graph(structure)
    if not graph.vertices:
        return AndFormula(())
    return formula_from_tree_decomposition(structure, heuristic_decomposition(graph))
