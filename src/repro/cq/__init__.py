"""Conjunctive queries: evaluation, canonical databases, containment,
minimization, and bounded-variable formulas (Sections 2 and 6)."""

from repro.cq.bounded import (
    AndFormula,
    AtomFormula,
    ExistsFormula,
    count_variables,
    evaluate_formula,
    formula_for_structure,
    formula_from_tree_decomposition,
    formula_to_query,
    free_variables,
)
from repro.cq.canonical import (
    CANONICAL_KEY_PERMUTATION_CAP,
    canonical_database,
    canonical_key,
    canonical_query,
    structure_from_query_body,
)
from repro.cq.containment import (
    are_equivalent,
    containment_homomorphism,
    is_contained_in,
    is_contained_in_via_homomorphism,
    minimize,
)
from repro.cq.evaluate import atom_relation, evaluate, evaluate_boolean, satisfying_assignments
from repro.cq.parser import parse_atom, parse_query
from repro.cq.query import Atom, ConjunctiveQuery, Var

__all__ = [
    "Var",
    "Atom",
    "ConjunctiveQuery",
    "parse_query",
    "parse_atom",
    "evaluate",
    "evaluate_boolean",
    "atom_relation",
    "satisfying_assignments",
    "canonical_database",
    "canonical_query",
    "canonical_key",
    "CANONICAL_KEY_PERMUTATION_CAP",
    "structure_from_query_body",
    "is_contained_in",
    "is_contained_in_via_homomorphism",
    "containment_homomorphism",
    "are_equivalent",
    "minimize",
    "AtomFormula",
    "AndFormula",
    "ExistsFormula",
    "free_variables",
    "count_variables",
    "evaluate_formula",
    "formula_from_tree_decomposition",
    "formula_to_query",
    "formula_for_structure",
]
