"""A small parser for conjunctive queries in rule syntax.

Grammar (whitespace-insensitive)::

    rule     ::=  head ':-' atom (',' atom)* '.'?
    head     ::=  NAME '(' termlist? ')'
    atom     ::=  NAME '(' termlist ')'
    termlist ::=  term (',' term)*
    term     ::=  VARIABLE | NAME | INTEGER | quoted string

Following Datalog convention, identifiers starting with an uppercase letter
or underscore are variables; lowercase identifiers, integers, and quoted
strings are constants.

>>> q = parse_query("Q(X1, X2) :- P(X1, Z1, Z2), R(Z2, Z3), R(Z3, X2).")
>>> len(q.body)
3
"""

from __future__ import annotations

import re
from typing import Any

from repro.cq.query import Atom, ConjunctiveQuery, Var
from repro.errors import ParseError

__all__ = ["parse_query", "parse_atom", "parse_term"]

_TOKEN = re.compile(
    r"\s*(?:(?P<name>[A-Za-z_][A-Za-z0-9_]*)|(?P<int>-?\d+)"
    r"|(?P<str>'[^']*'|\"[^\"]*\")|(?P<punct>:-|[(),.]))"
)


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN.match(text, pos)
        if not m or m.end() == pos:
            rest = text[pos:].strip()
            if not rest:
                break
            raise ParseError(f"cannot tokenize near {rest[:20]!r}")
        pos = m.end()
        for kind in ("name", "int", "str", "punct"):
            value = m.group(kind)
            if value is not None:
                tokens.append((kind, value))
                break
    return tokens


def parse_term(token: tuple[str, str]) -> Any:
    """Interpret one token as a term (Var, int, or string constant)."""
    kind, value = token
    if kind == "name":
        if value[0].isupper() or value[0] == "_":
            return Var(value)
        return value
    if kind == "int":
        return int(value)
    if kind == "str":
        return value[1:-1]
    raise ParseError(f"expected a term, got {value!r}")


class _Cursor:
    def __init__(self, tokens: list[tuple[str, str]]):
        self.tokens = tokens
        self.i = 0

    def peek(self) -> tuple[str, str] | None:
        return self.tokens[self.i] if self.i < len(self.tokens) else None

    def next(self) -> tuple[str, str]:
        tok = self.peek()
        if tok is None:
            raise ParseError("unexpected end of input")
        self.i += 1
        return tok

    def expect(self, value: str) -> None:
        tok = self.next()
        if tok[1] != value:
            raise ParseError(f"expected {value!r}, got {tok[1]!r}")


def _parse_atom(cur: _Cursor) -> Atom:
    kind, name = cur.next()
    if kind != "name":
        raise ParseError(f"expected a predicate name, got {name!r}")
    cur.expect("(")
    terms: list[Any] = []
    tok = cur.peek()
    if tok and tok[1] == ")":
        cur.next()
        return Atom(name, terms)
    while True:
        terms.append(parse_term(cur.next()))
        kind, value = cur.next()
        if value == ")":
            return Atom(name, terms)
        if value != ",":
            raise ParseError(f"expected ',' or ')', got {value!r}")


def parse_atom(text: str) -> Atom:
    """Parse a single atom like ``R(X, y, 3)``."""
    cur = _Cursor(_tokenize(text))
    atom = _parse_atom(cur)
    trailing = cur.peek()
    if trailing is not None:
        raise ParseError(f"trailing input after atom: {trailing[1]!r}")
    return atom


def parse_query(text: str) -> ConjunctiveQuery:
    """Parse a conjunctive query rule ``Q(X, Y) :- R(X, Z), S(Z, Y).``"""
    cur = _Cursor(_tokenize(text))
    head = _parse_atom(cur)
    for t in head.terms:
        if not isinstance(t, Var):
            raise ParseError(f"head terms must be variables, got {t!r}")
    cur.expect(":-")
    body = [_parse_atom(cur)]
    while True:
        tok = cur.peek()
        if tok is None:
            break
        if tok[1] == ",":
            cur.next()
            body.append(_parse_atom(cur))
        elif tok[1] == ".":
            cur.next()
            if cur.peek() is not None:
                raise ParseError("trailing input after final '.'")
            break
        else:
            raise ParseError(f"expected ',' or '.', got {tok[1]!r}")
    return ConjunctiveQuery(head.predicate, list(head.terms), body)
