"""Named-attribute relations — the basic value type of the library.

A :class:`Relation` is an immutable set of equal-length tuples together with
a *scheme*: a tuple of distinct attribute names, one per column.  This is the
classical named perspective of the relational model (Codd; see also
Abiteboul–Hull–Vianu, *Foundations of Databases*), and it is exactly the view
the tutorial takes in Section 2 when it reads a CSP constraint ``(t, R)`` as
"a relation ``R`` over the scheme ``t``".

Relations are hashable and comparable, so they can be shared freely between
the CSP, conjunctive-query, and structure representations that the library
converts between.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.errors import ArityError, SchemaError, VocabularyError

__all__ = ["Relation", "CodeIndex", "DENSE_KEY_SPACE_CAP"]

#: Largest packed-key space for which :meth:`Relation.code_index_on` uses a
#: dense array (plus membership bitmap) instead of a dict of packed keys.
DENSE_KEY_SPACE_CAP = 1 << 16


class CodeIndex:
    """A hash index whose keys are radix-packed dense ints, not tuples.

    Built by :meth:`Relation.code_index_on`: the key-column values are
    interned to codes ``0..base-1`` and each row's key becomes the single
    int ``((c₀·base + c₁)·base + c₂)…`` — so a probe costs one small-int
    arithmetic fold and one lookup, with no per-probe tuple allocation or
    tuple hashing.  When the packed key space ``base**len(key)`` is small
    (≤ :data:`DENSE_KEY_SPACE_CAP`) the buckets live in a plain list indexed
    by the packed key and a membership bitmap answers semijoin probes with
    one shift-and-mask; otherwise a dict of packed ints is used.

    Attributes
    ----------
    encode:
        ``value → code`` for the key-column universe of the build side.
        A probe value absent from this map cannot match any row.
    base:
        The radix (``max(1, |universe|)``).
    dense:
        Whether ``buckets`` is a list (dense array) or a dict.
    buckets:
        ``packed-key → list of rows`` (list with ``None`` holes when dense).
    member_mask:
        Dense mode only: bit ``packed`` is set iff the key occurs.
    words:
        64-bit words held by the membership bitmap (0 in dict mode).
    """

    __slots__ = ("encode", "base", "dense", "buckets", "member_mask", "words")

    def __init__(self, tuples, positions):
        universe = sorted({t[i] for t in tuples for i in positions}, key=repr)
        self.encode = {v: i for i, v in enumerate(universe)}
        self.base = max(1, len(universe))
        space = self.base ** len(positions)
        self.dense = space <= DENSE_KEY_SPACE_CAP
        encode, base = self.encode, self.base
        if self.dense:
            buckets: list = [None] * space
            member_mask = 0
            for t in tuples:
                packed = 0
                for i in positions:
                    packed = packed * base + encode[t[i]]
                bucket = buckets[packed]
                if bucket is None:
                    buckets[packed] = [t]
                    member_mask |= 1 << packed
                else:
                    bucket.append(t)
            self.buckets = buckets
            self.member_mask = member_mask
            self.words = (space + 63) // 64
        else:
            grouped: dict = {}
            for t in tuples:
                packed = 0
                for i in positions:
                    packed = packed * base + encode[t[i]]
                grouped.setdefault(packed, []).append(t)
            self.buckets = grouped
            self.member_mask = 0
            self.words = 0

    def lookup(self):
        """The packed-key → bucket-or-None lookup callable (branch hoisted
        out of probe loops: list indexing when dense, ``dict.get`` else)."""
        return self.buckets.__getitem__ if self.dense else self.buckets.get


def _check_scheme(attributes: Sequence[str]) -> tuple[str, ...]:
    attrs = tuple(attributes)
    if len(set(attrs)) != len(attrs):
        raise SchemaError(f"attribute names must be distinct, got {attrs!r}")
    for name in attrs:
        if not isinstance(name, str) or not name:
            raise SchemaError(f"attribute names must be non-empty strings, got {name!r}")
    return attrs


class Relation:
    """An immutable relation over a scheme of named attributes.

    Parameters
    ----------
    attributes:
        The scheme — a sequence of distinct, non-empty attribute names.
    tuples:
        The rows.  Every row must have exactly ``len(attributes)`` entries.
        Rows may contain any hashable Python values.

    Examples
    --------
    >>> r = Relation(("x", "y"), [(1, 2), (2, 3)])
    >>> r.arity
    2
    >>> (1, 2) in r
    True
    """

    __slots__ = (
        "_attributes",
        "_tuples",
        "_hash",
        "_indexes",
        "_code_indexes",
        "_column_store",
        "_profile",
    )

    def __init__(self, attributes: Sequence[str], tuples: Iterable[Sequence[Any]] = ()):
        self._attributes = _check_scheme(attributes)
        arity = len(self._attributes)
        rows = set()
        for row in tuples:
            t = tuple(row)
            if len(t) != arity:
                raise ArityError(
                    f"tuple {t!r} has {len(t)} entries but the scheme "
                    f"{self._attributes!r} has arity {arity}"
                )
            rows.add(t)
        self._tuples: frozenset[tuple[Any, ...]] = frozenset(rows)
        self._hash: int | None = None
        self._indexes: dict[tuple[str, ...], dict[tuple[Any, ...], list[tuple[Any, ...]]]] = {}
        self._code_indexes: dict[tuple[str, ...], CodeIndex] = {}
        self._column_store: Any = None
        self._profile: Any = None

    # -- basic protocol ---------------------------------------------------

    @property
    def attributes(self) -> tuple[str, ...]:
        """The scheme of this relation (a tuple of distinct attribute names)."""
        return self._attributes

    @property
    def tuples(self) -> frozenset[tuple[Any, ...]]:
        """The set of rows."""
        return self._tuples

    @property
    def arity(self) -> int:
        """Number of columns."""
        return len(self._attributes)

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        return iter(self._tuples)

    def __contains__(self, row: object) -> bool:
        return row in self._tuples

    def __bool__(self) -> bool:
        return bool(self._tuples)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self._attributes == other._attributes and self._tuples == other._tuples

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._attributes, self._tuples))
        return self._hash

    def __repr__(self) -> str:
        shown = sorted(self._tuples, key=repr)[:4]
        more = "" if len(self._tuples) <= 4 else f", …(+{len(self._tuples) - 4})"
        body = ", ".join(repr(t) for t in shown)
        return f"Relation({self._attributes!r}, {{{body}{more}}})"

    # -- pickling ----------------------------------------------------------
    #
    # Only the scheme and the rows travel: the memoized hash indexes, code
    # indexes, and column store are derived state, rebuilt lazily on the
    # other side of the wire — a sharded worker re-derives exactly what it
    # probes, and a pickled relation costs no more than its rows
    # (tests/parallel/test_pickling.py pins the size regression).

    def __getstate__(self) -> tuple[tuple[str, ...], frozenset[tuple[Any, ...]]]:
        return (self._attributes, self._tuples)

    def __setstate__(
        self, state: tuple[tuple[str, ...], frozenset[tuple[Any, ...]]]
    ) -> None:
        self._attributes, self._tuples = state
        self._hash = None
        self._indexes = {}
        self._code_indexes = {}
        self._column_store = None
        self._profile = None

    # -- construction helpers ---------------------------------------------

    @classmethod
    def empty(cls, attributes: Sequence[str]) -> "Relation":
        """The empty relation over the given scheme."""
        return cls(attributes, ())

    @classmethod
    def unit(cls) -> "Relation":
        """The nullary relation containing the empty tuple.

        This is the identity of the natural join: joining any relation with
        ``Relation.unit()`` returns that relation unchanged.
        """
        return cls((), [()])

    @classmethod
    def from_trusted_rows(
        cls, attributes: tuple[str, ...], rows: frozenset[tuple[Any, ...]]
    ) -> "Relation":
        """Wrap an already-validated row set without copying it.

        The caller vouches that ``attributes`` is a well-formed scheme and
        every row in ``rows`` is a tuple of matching arity — the invariant a
        :class:`~repro.relational.structure.Structure` maintains for its
        predicate values.  The frozenset is shared, not copied, which is
        what makes rebuilding an atom relation over an unchanged predicate
        value O(1) instead of O(rows).
        """
        relation = cls.__new__(cls)
        relation._attributes = attributes
        relation._tuples = rows if isinstance(rows, frozenset) else frozenset(rows)
        relation._hash = None
        relation._indexes = {}
        relation._code_indexes = {}
        relation._column_store = None
        relation._profile = None
        return relation

    @classmethod
    def from_mappings(
        cls, attributes: Sequence[str], rows: Iterable[Mapping[str, Any]]
    ) -> "Relation":
        """Build a relation from dict-like rows keyed by attribute name."""
        attrs = tuple(attributes)
        return cls(attrs, (tuple(row[a] for a in attrs) for row in rows))

    # -- row/value views ---------------------------------------------------

    def rows_as_mappings(self) -> Iterator[dict[str, Any]]:
        """Iterate the rows as ``{attribute: value}`` dictionaries."""
        for t in self._tuples:
            yield dict(zip(self._attributes, t))

    def active_domain(self) -> frozenset[Any]:
        """All values appearing anywhere in the relation."""
        return frozenset(v for t in self._tuples for v in t)

    def column(self, attribute: str) -> frozenset[Any]:
        """The set of values appearing in the named column."""
        idx = self.index_of(attribute)
        return frozenset(t[idx] for t in self._tuples)

    def index_of(self, attribute: str) -> int:
        """Position of ``attribute`` in the scheme.

        Raises :class:`~repro.errors.VocabularyError` (naming the attribute
        and the scheme) when the attribute is absent.
        """
        try:
            return self._attributes.index(attribute)
        except ValueError:
            raise VocabularyError(
                f"attribute {attribute!r} not in scheme {self._attributes!r}"
            ) from None

    def has_attribute(self, attribute: str) -> bool:
        """Whether ``attribute`` occurs in the scheme."""
        return attribute in self._attributes

    # -- hash indexes ------------------------------------------------------

    def index_on(
        self, attributes: Sequence[str]
    ) -> Mapping[tuple[Any, ...], Sequence[tuple[Any, ...]]]:
        """A hash index on the given key columns: ``key-tuple → rows``.

        The index maps each tuple of key-column values (in the order the
        attributes are given) to the list of full rows carrying those
        values.  Indexes are built lazily on first request and memoized on
        the instance — relations are immutable, so a built index is valid
        forever and is shared by every later join/semijoin probing the same
        key.  The empty key indexes every row under ``()``.

        Callers must not mutate the returned mapping or its row lists.

        >>> r = Relation(("x", "y"), [(1, 2), (1, 3), (2, 2)])
        >>> sorted(r.index_on(("x",))[(1,)])
        [(1, 2), (1, 3)]
        """
        attrs = tuple(attributes)
        cached = self._indexes.get(attrs)
        if cached is not None:
            return cached
        positions = [self.index_of(a) for a in attrs]
        index: dict[tuple[Any, ...], list[tuple[Any, ...]]] = {}
        for t in self._tuples:
            index.setdefault(tuple(t[i] for i in positions), []).append(t)
        self._indexes[attrs] = index
        return index

    def has_index(self, attributes: Sequence[str]) -> bool:
        """Whether :meth:`index_on` has already been built (and memoized)
        for exactly this key-column tuple."""
        return tuple(attributes) in self._indexes

    def code_index_on(self, attributes: Sequence[str]) -> CodeIndex:
        """The interned fast-path counterpart of :meth:`index_on`.

        Returns a :class:`CodeIndex` whose keys are single radix-packed
        ints over a dense interning of the key-column values.  Like
        :meth:`index_on` it is built lazily and memoized per key-column
        tuple, so the codec and the packed buckets are shared by every
        later interned join/semijoin probing the same key.
        """
        attrs = tuple(attributes)
        cached = self._code_indexes.get(attrs)
        if cached is not None:
            return cached
        positions = [self.index_of(a) for a in attrs]
        index = CodeIndex(self._tuples, positions)
        self._code_indexes[attrs] = index
        return index

    def has_code_index(self, attributes: Sequence[str]) -> bool:
        """Whether :meth:`code_index_on` has already been memoized for
        exactly this key-column tuple."""
        return tuple(attributes) in self._code_indexes

    def has_column_store(self) -> bool:
        """Whether :func:`repro.relational.columnar.column_store` has
        already built (and memoized) this relation's struct-of-arrays
        column store.  The store itself lives on the instance like the
        hash and code indexes do — built lazily, valid forever."""
        return self._column_store is not None
