"""Finite relational structures over a relational vocabulary.

Section 2 of the tutorial recasts every CSP instance as a *homomorphism
problem* between two finite relational structures, and Section 4 encodes a
pair ``(A, B)`` of σ-structures as the single σ₁+σ₂-structure ``A + B``.
Both constructions live here.

A :class:`Vocabulary` assigns an arity to each relation symbol.  A
:class:`Structure` interprets each symbol as a set of tuples over its domain.
Structures are immutable and hashable.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.errors import ArityError, DomainError, VocabularyError

__all__ = ["Vocabulary", "Structure", "sum_structure", "SUM_DOMAIN_LEFT", "SUM_DOMAIN_RIGHT"]

#: Unary symbols marking the two halves of a sum structure ``A + B`` (the
#: ``D₁``/``D₂`` predicates of Section 4 of the tutorial).
SUM_DOMAIN_LEFT = "D1"
SUM_DOMAIN_RIGHT = "D2"


class Vocabulary:
    """A finite relational vocabulary: relation symbols with fixed arities.

    >>> sigma = Vocabulary({"E": 2})
    >>> sigma.arity("E")
    2
    """

    __slots__ = ("_arities",)

    def __init__(self, arities: Mapping[str, int]):
        for name, arity in arities.items():
            if not isinstance(name, str) or not name:
                raise VocabularyError(f"relation symbols must be non-empty strings: {name!r}")
            if not isinstance(arity, int) or arity < 0:
                raise VocabularyError(f"arity of {name!r} must be a non-negative int: {arity!r}")
        self._arities: dict[str, int] = dict(arities)

    @property
    def symbols(self) -> frozenset[str]:
        return frozenset(self._arities)

    def arity(self, symbol: str) -> int:
        try:
            return self._arities[symbol]
        except KeyError:
            raise VocabularyError(f"unknown relation symbol {symbol!r}") from None

    def max_arity(self) -> int:
        """The largest arity in the vocabulary (0 for the empty vocabulary)."""
        return max(self._arities.values(), default=0)

    def items(self) -> Iterable[tuple[str, int]]:
        return self._arities.items()

    def __contains__(self, symbol: object) -> bool:
        return symbol in self._arities

    def __len__(self) -> int:
        return len(self._arities)

    def __iter__(self):
        return iter(sorted(self._arities))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Vocabulary):
            return NotImplemented
        return self._arities == other._arities

    def __hash__(self) -> int:
        return hash(frozenset(self._arities.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{s}/{a}" for s, a in sorted(self._arities.items()))
        return f"Vocabulary({{{inner}}})"


class Structure:
    """A finite relational structure: a domain plus an interpretation of each
    symbol of a :class:`Vocabulary` as a relation (set of tuples) on the domain.

    Parameters
    ----------
    vocabulary:
        The vocabulary, or a plain ``{symbol: arity}`` mapping.
    domain:
        The universe.  May be any iterable of hashable values; it is allowed
        to be larger than the active domain of the relations.
    relations:
        ``{symbol: iterable-of-tuples}``.  Symbols omitted from the mapping
        are interpreted as empty.  Tuples must match their symbol's arity and
        use only domain elements.
    """

    __slots__ = ("_vocabulary", "_domain", "_relations", "_hash", "_derived")

    def __init__(
        self,
        vocabulary: Vocabulary | Mapping[str, int],
        domain: Iterable[Any],
        relations: Mapping[str, Iterable[tuple]] | None = None,
    ):
        if not isinstance(vocabulary, Vocabulary):
            vocabulary = Vocabulary(vocabulary)
        self._vocabulary = vocabulary
        self._domain = frozenset(domain)

        interp: dict[str, frozenset[tuple]] = {}
        relations = relations or {}
        for symbol in relations:
            if symbol not in vocabulary:
                raise VocabularyError(f"relation {symbol!r} not in {vocabulary!r}")
        for symbol in vocabulary:
            arity = vocabulary.arity(symbol)
            rows = set()
            for row in relations.get(symbol, ()):
                t = tuple(row)
                if len(t) != arity:
                    raise ArityError(
                        f"tuple {t!r} in {symbol!r} has length {len(t)}, expected {arity}"
                    )
                for v in t:
                    if v not in self._domain:
                        raise DomainError(f"value {v!r} in {symbol!r} not in the domain")
                rows.add(t)
            interp[symbol] = frozenset(rows)
        self._relations = interp
        self._hash: int | None = None
        self._derived: dict[Any, Any] = {}

    # -- accessors ---------------------------------------------------------

    @property
    def vocabulary(self) -> Vocabulary:
        return self._vocabulary

    @property
    def domain(self) -> frozenset[Any]:
        return self._domain

    def relation(self, symbol: str) -> frozenset[tuple]:
        """The interpretation of ``symbol`` (raises for unknown symbols)."""
        try:
            return self._relations[symbol]
        except KeyError:
            raise VocabularyError(f"unknown relation symbol {symbol!r}") from None

    def relations(self) -> Mapping[str, frozenset[tuple]]:
        """All interpretations, as a read-only mapping view."""
        return dict(self._relations)

    def facts(self) -> Iterable[tuple[str, tuple]]:
        """Iterate all facts as ``(symbol, tuple)`` pairs, sorted by symbol."""
        for symbol in sorted(self._relations):
            for t in sorted(self._relations[symbol], key=repr):
                yield symbol, t

    def total_tuples(self) -> int:
        """Total number of tuples across all relations."""
        return sum(len(r) for r in self._relations.values())

    def size(self) -> int:
        """``|domain| + total tuples`` — the usual size measure for structures."""
        return len(self._domain) + self.total_tuples()

    def active_domain(self) -> frozenset[Any]:
        """Domain elements that occur in at least one tuple."""
        return frozenset(v for rows in self._relations.values() for t in rows for v in t)

    # -- derived structures --------------------------------------------------

    def restrict(self, subdomain: Iterable[Any]) -> "Structure":
        """The induced substructure on ``subdomain`` ∩ domain."""
        sub = frozenset(subdomain) & self._domain
        rels = {
            symbol: (t for t in rows if all(v in sub for v in t))
            for symbol, rows in self._relations.items()
        }
        return Structure(self._vocabulary, sub, rels)

    def with_relation(self, symbol: str, arity: int, rows: Iterable[tuple]) -> "Structure":
        """A copy of this structure with one relation added or replaced."""
        arities = dict(self._vocabulary.items())
        if symbol in arities and arities[symbol] != arity:
            raise VocabularyError(
                f"cannot change arity of {symbol!r} from {arities[symbol]} to {arity}"
            )
        arities[symbol] = arity
        rels: dict[str, Iterable[tuple]] = dict(self._relations)
        rels[symbol] = rows
        return Structure(Vocabulary(arities), self._domain, rels)

    # -- derived-value memo ---------------------------------------------------

    def derived(self, key: Any, build: Any) -> Any:
        """Memoize a value derived from this (immutable) structure.

        ``build`` is a zero-argument callable run on the first request for
        ``key``; later requests return the stored value.  Because the
        structure never changes, a derived value can be cached for its
        lifetime — :func:`repro.cq.evaluate.atom_relation` uses this to hand
        every query over the same database the *same*
        :class:`~repro.relational.relation.Relation` objects, so the
        memoized hash indexes built by one query's joins are probed (not
        rebuilt) by the next query.  The memo is identity state: it is
        excluded from equality, hashing, and pickling.
        """
        try:
            return self._derived[key]
        except KeyError:
            value = build()
            self._derived[key] = value
            return value

    # -- pickling -------------------------------------------------------------
    #
    # Only the vocabulary, domain, and relations travel; the cached hash and
    # the derived-value memo are rebuilt lazily on the other side of the
    # wire, so a shipped structure costs no more than its facts.

    def __getstate__(self) -> tuple:
        return (self._vocabulary, self._domain, self._relations)

    def __setstate__(self, state: tuple) -> None:
        self._vocabulary, self._domain, self._relations = state
        self._hash = None
        self._derived = {}

    # -- protocol ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Structure):
            return NotImplemented
        return (
            self._vocabulary == other._vocabulary
            and self._domain == other._domain
            and self._relations == other._relations
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(
                (self._vocabulary, self._domain, frozenset(self._relations.items()))
            )
        return self._hash

    def __repr__(self) -> str:
        counts = ", ".join(f"{s}:{len(r)}" for s, r in sorted(self._relations.items()))
        return f"Structure(|dom|={len(self._domain)}, {counts})"


def sum_structure(left: Structure, right: Structure) -> Structure:
    """The σ₁+σ₂ encoding ``A + B`` of a pair of σ-structures (Section 4).

    The domain is the disjoint union, realised by tagging each element with
    ``0`` (left) or ``1`` (right).  Each σ-symbol ``R`` appears twice, as
    ``R_1`` (the left copy) and ``R_2`` (the right copy), and the unary
    symbols ``D1``/``D2`` mark the two halves.
    """
    if left.vocabulary != right.vocabulary:
        raise VocabularyError("sum_structure requires structures over the same vocabulary")

    arities: dict[str, int] = {SUM_DOMAIN_LEFT: 1, SUM_DOMAIN_RIGHT: 1}
    for symbol, arity in left.vocabulary.items():
        arities[f"{symbol}_1"] = arity
        arities[f"{symbol}_2"] = arity

    domain = {(0, a) for a in left.domain} | {(1, b) for b in right.domain}
    relations: dict[str, list[tuple]] = {
        SUM_DOMAIN_LEFT: [((0, a),) for a in left.domain],
        SUM_DOMAIN_RIGHT: [((1, b),) for b in right.domain],
    }
    for symbol in left.vocabulary:
        relations[f"{symbol}_1"] = [
            tuple((0, v) for v in t) for t in left.relation(symbol)
        ]
        relations[f"{symbol}_2"] = [
            tuple((1, v) for v in t) for t in right.relation(symbol)
        ]
    return Structure(Vocabulary(arities), domain, relations)
