"""Dense-integer value interning — the code-space data plane.

Every algorithm in the tutorial (Props 2.1/2.2, Theorems 4.3/5.2) is stated
over abstract domains, so a bijective value ↔ int encoding is semantics-free:
any structure or CSP instance can be mapped onto the domain ``0..n-1``, run
through kernels that work on machine ints and bitmasks, and mapped back.
The :class:`Codec` assigns codes in ``repr`` order, which makes ascending
code order coincide with the ``repr``-keyed sorts the rest of the codebase
uses for determinism — interned kernels can iterate numerically (or by
ascending bit) and still reproduce the exact observable orderings of the
set-based paths.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.csp.instance import Constraint, CSPInstance
from repro.errors import DomainError
from repro.relational.structure import Structure

__all__ = [
    "Codec",
    "bit_positions",
    "fold_codec",
    "reset_fold_codecs",
    "encode_structure",
    "decode_structure",
    "encode_instance",
    "decode_instance",
]


def bit_positions(mask: int) -> Iterator[int]:
    """Yield the set bit positions of ``mask`` in ascending order.

    Under a :class:`Codec` this is ascending code order, i.e. the original
    ``repr`` order of the decoded values.
    """
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class Codec:
    """A bijection between arbitrary hashable values and dense int codes.

    Codes are assigned in sorted-by-``repr`` order, so for any subset of the
    interned universe, ascending code order equals the ``sorted(..., key=repr)``
    order used throughout the plain-value paths.
    """

    __slots__ = ("_values", "_codes")

    def __init__(self, values: Iterable[Any]):
        ordered = sorted(set(values), key=repr)
        self._values: Tuple[Any, ...] = tuple(ordered)
        self._codes: Dict[Any, int] = {v: i for i, v in enumerate(ordered)}

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, value: Any) -> bool:
        return value in self._codes

    @property
    def values(self) -> Tuple[Any, ...]:
        """All interned values in ascending code (== ``repr``) order."""
        return self._values

    @property
    def code_map(self) -> Dict[Any, int]:
        """The ``value → code`` dict, for probe loops that treat an absent
        value as "cannot match" instead of an error (callers must not
        mutate it)."""
        return self._codes

    @property
    def full_mask(self) -> int:
        """Bitmask with one bit set per interned value."""
        return (1 << len(self._values)) - 1

    def encode(self, value: Any) -> int:
        try:
            return self._codes[value]
        except KeyError:
            raise DomainError(
                f"value {value!r} is not in the interned universe"
            ) from None

    def decode(self, code: int) -> Any:
        if not 0 <= code < len(self._values):
            raise DomainError(
                f"code {code!r} is outside the interned range 0..{len(self._values) - 1}"
            )
        return self._values[code]

    def encode_row(self, row: Iterable[Any]) -> Tuple[int, ...]:
        codes = self._codes
        try:
            return tuple(codes[v] for v in row)
        except KeyError as exc:
            raise DomainError(
                f"value {exc.args[0]!r} is not in the interned universe"
            ) from None

    def decode_row(self, row: Iterable[int]) -> Tuple[Any, ...]:
        return tuple(self.decode(c) for c in row)

    def mask_of(self, values: Iterable[Any]) -> int:
        """Bitmask of a subset of the interned universe."""
        mask = 0
        for value in values:
            mask |= 1 << self.encode(value)
        return mask

    def set_of(self, mask: int) -> set:
        """Decode a bitmask back to the value set it represents."""
        values = self._values
        return {values[c] for c in bit_positions(mask)}

    # Only the value tuple crosses a pickle boundary; the code dict is
    # derived state, rebuilt on arrival — halving the wire size of every
    # codec a sharded worker receives.

    def __getstate__(self) -> Tuple[Any, ...]:
        return self._values

    def __setstate__(self, values: Tuple[Any, ...]) -> None:
        self._values = values
        self._codes = {v: i for i, v in enumerate(values)}


# The memoized fold codecs of :func:`fold_codec`, two tiers.  Profiles show
# the repr-sort of the shared universe dominating the *warm* interned and
# columnar join paths, and workloads re-fold the same base relations
# (Datalog rounds, repeated solvability checks, per-shard fans), so a small
# cache removes the sort from every repeat.
#
# * ``_FOLD_CODECS_BY_ID`` — the fast tier, keyed on the participating
#   relations' *identities*.  A repeated evaluation of the same view folds
#   the very same :class:`~repro.relational.relation.Relation` objects (the
#   incremental service keeps atom relations alive between updates), and an
#   identity probe skips even the ``frozenset`` hash of the rows.  Each
#   entry pins the relation objects it was keyed on, so a live entry's
#   ``id()``s can never be recycled to other relations.
# * ``_FOLD_CODECS`` — the content tier, keyed on the frozenset of
#   relations.  Distinct-but-equal relation objects (rebuilt per call by
#   e.g. the CSP solvers) still share one codec through it.
#
# Both tiers are bounded FIFO at :data:`FOLD_CODEC_CACHE_CAP` entries.
_FOLD_CODECS: dict = {}
_FOLD_CODECS_BY_ID: Dict[Tuple[int, ...], Tuple[Codec, Tuple[Any, ...]]] = {}

#: Entries kept in each fold-codec cache tier before the oldest is evicted.
FOLD_CODEC_CACHE_CAP = 256


def _evict_to_cap(cache: dict) -> None:
    if len(cache) >= FOLD_CODEC_CACHE_CAP:
        cache.pop(next(iter(cache)))


def fold_codec(relations: Iterable[Any]) -> Tuple[Codec, bool]:
    """The shared :class:`Codec` over the active domains of ``relations``,
    memoized per fold.

    Returns ``(codec, built)`` where ``built`` says whether the codec was
    constructed by this call (``False`` on a cache hit) — the honest-charge
    signal callers use for ``EvalStats.intern_tables`` and
    ``EvalStats.codec_cache_hits``.  The probe order is identity first
    (same relation *objects* as an earlier fold — no row hashing at all),
    then content (the frozenset of relations, so the planner's different
    orderings of one fold and rebuilt-but-equal relations share a single
    codec).  Determinism is untouched because the codec sorts its universe
    by ``repr`` regardless of iteration order.
    """
    pinned = tuple(relations)
    id_key = tuple(sorted({id(rel) for rel in pinned}))
    by_id = _FOLD_CODECS_BY_ID.get(id_key)
    if by_id is not None:
        return by_id[0], False
    key = frozenset(pinned)
    codec = _FOLD_CODECS.get(key)
    if codec is not None:
        # Promote: the next fold of these very objects hits the fast tier.
        _evict_to_cap(_FOLD_CODECS_BY_ID)
        _FOLD_CODECS_BY_ID[id_key] = (codec, pinned)
        return codec, False
    codec = Codec(v for rel in key for t in rel for v in t)
    _evict_to_cap(_FOLD_CODECS)
    _FOLD_CODECS[key] = codec
    _evict_to_cap(_FOLD_CODECS_BY_ID)
    _FOLD_CODECS_BY_ID[id_key] = (codec, pinned)
    return codec, True


def reset_fold_codecs() -> None:
    """Drop every memoized fold codec, both tiers (bench/test hook: a
    cold-cache run charges one ``intern_tables`` per fold again)."""
    _FOLD_CODECS.clear()
    _FOLD_CODECS_BY_ID.clear()


def encode_structure(
    structure: Structure, codec: Optional[Codec] = None
) -> Tuple[Structure, Codec]:
    """Rebuild ``structure`` over the dense-code domain ``0..n-1``.

    The vocabulary is preserved; only domain elements are renamed.  The
    result is isomorphic to the input via ``codec.decode``.
    """
    if codec is None:
        codec = Codec(structure.domain)
    relations = {
        symbol: {codec.encode_row(row) for row in rows}
        for symbol, rows in structure.relations().items()
    }
    encoded = Structure(
        structure.vocabulary,
        [codec.encode(v) for v in structure.domain],
        relations,
    )
    return encoded, codec


def decode_structure(structure: Structure, codec: Codec) -> Structure:
    """Invert :func:`encode_structure`."""
    relations = {
        symbol: {codec.decode_row(row) for row in rows}
        for symbol, rows in structure.relations().items()
    }
    return Structure(
        structure.vocabulary,
        [codec.decode(c) for c in structure.domain],
        relations,
    )


def encode_instance(
    instance: CSPInstance, codec: Optional[Codec] = None
) -> Tuple[CSPInstance, Codec]:
    """Rebuild ``instance`` over the dense-code domain; variables unchanged."""
    if codec is None:
        codec = Codec(instance.domain)
    constraints = [
        Constraint(c.scope, {codec.encode_row(row) for row in c.relation})
        for c in instance.constraints
    ]
    encoded = CSPInstance(
        instance.variables,
        [codec.encode(v) for v in instance.domain],
        constraints,
    )
    return encoded, codec


def decode_instance(instance: CSPInstance, codec: Codec) -> CSPInstance:
    """Invert :func:`encode_instance`."""
    constraints = [
        Constraint(c.scope, {codec.decode_row(row) for row in c.relation})
        for c in instance.constraints
    ]
    return CSPInstance(
        instance.variables,
        [codec.decode(c) for c in instance.domain],
        constraints,
    )


def decode_domains(domains: Dict[Any, int], codec: Codec) -> Dict[Any, set]:
    """Decode per-variable bitmask domains to per-variable value sets."""
    return {variable: codec.set_of(mask) for variable, mask in domains.items()}
