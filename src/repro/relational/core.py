"""Cores of relational structures.

A structure is a *core* when every endomorphism (homomorphism to itself) is
an automorphism; every finite structure retracts onto a core that is unique
up to isomorphism.  Cores are the semantic backbone of Chandra–Merlin
minimization (Section 2): two structures are homomorphically equivalent iff
their cores are isomorphic, and the core of a query's canonical database is
the canonical form of the query.

The search here is exact and exponential in the worst case — sized for the
small structures of query minimization and dichotomy experiments, matching
how cores are used in the tutorial's setting (e.g. the Hell–Nešetřil
dichotomy is really about whether the core of **H** is an edge, a loop, or
something bigger).
"""

from __future__ import annotations

from typing import Any

from repro.relational.homomorphism import (
    all_homomorphisms,
    find_homomorphism,
    is_homomorphism,
)
from repro.relational.structure import Structure

__all__ = ["is_core", "core", "retract_to", "homomorphically_equivalent"]


def _proper_retraction(structure: Structure) -> dict[Any, Any] | None:
    """A non-surjective endomorphism, or ``None`` if the structure is a core.

    Searches for an endomorphism avoiding at least one element by pinning
    each candidate element out of the image via a forbidden-value search.
    """
    for h in all_homomorphisms(structure, structure):
        if set(h.values()) != set(structure.domain):
            return h
    return None


def is_core(structure: Structure) -> bool:
    """Whether every endomorphism is surjective (an automorphism)."""
    return _proper_retraction(structure) is None


def retract_to(structure: Structure, mapping: dict[Any, Any]) -> Structure:
    """The induced substructure on the image of an endomorphism."""
    return structure.restrict(set(mapping.values()))


def core(structure: Structure) -> Structure:
    """A core of the structure: repeatedly retract along non-surjective
    endomorphisms until none exists.

    The result is homomorphically equivalent to the input and unique up to
    isomorphism (tested via mutual homomorphisms, not isomorphism).
    """
    current = structure
    while True:
        retraction = _proper_retraction(current)
        if retraction is None:
            return current
        image = retract_to(current, retraction)
        # Compose retractions until the image stabilizes as a substructure.
        current = image


def homomorphically_equivalent(a: Structure, b: Structure) -> bool:
    """Whether homomorphisms exist in both directions (same CSP behavior:
    ``CSP(A)`` and ``CSP(B)`` have identical yes-instances)."""
    return (
        find_homomorphism(a, b) is not None and find_homomorphism(b, a) is not None
    )
