"""Relational algebra over :class:`~repro.relational.relation.Relation`.

The tutorial's Proposition 2.1 reads constraint satisfaction as a
*join-evaluation problem*: a CSP instance ``(V, D, C)`` is solvable iff the
natural join of its constraint relations is nonempty.  This module provides
the natural join (hash-join implementation) plus the standard companions —
projection, selection, renaming, semijoin, and the set operations — which the
acyclic-join and Yannakakis machinery in :mod:`repro.width` builds on.

All operations are pure: they return new relations and never mutate inputs.

Two cross-cutting facilities live alongside the operators:

* **observability** — inside a :func:`repro.relational.stats.collect_stats`
  block, every join/semijoin/selection/projection records tuples scanned,
  hash probes, index builds/hits/misses, result cardinalities, and wall
  time into the active :class:`~repro.relational.stats.EvalStats`;
* **planning** — :func:`join_all` accepts a ``strategy`` that combines a
  join *order* (``"greedy"``, ``"smallest"``, ``"textbook"``) with a join
  *execution* (``"indexed"``, ``"scan"``), e.g. ``"smallest+scan"``; see
  :func:`repro.relational.planner.parse_strategy`.  The defaults are the
  cost-guided greedy order and hash-indexed execution; ``DEFAULT_STRATEGY``
  and ``DEFAULT_EXECUTION`` are the module-wide knobs.

Indexed execution probes the lazily built, memoized per-key-column hash
indexes of :meth:`Relation.index_on` — so a relation joined or
semijoin-reduced repeatedly on the same key (semi-naive Datalog rounds,
Yannakakis passes) pays for its hash table once.  The ``"scan"`` execution
is the nested-loop implementation, kept as a differential-testing oracle.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.errors import SchemaError, SolverError
from repro.relational.planner import EXECUTIONS, choose_build_side, order_relations, parse_strategy
from repro.relational.relation import Relation
from repro.relational.stats import current_stats
from repro.telemetry.spans import span

__all__ = [
    "DEFAULT_STRATEGY",
    "DEFAULT_EXECUTION",
    "project",
    "select",
    "rename",
    "natural_join",
    "join_all",
    "semijoin",
    "warm_index",
    "union",
    "intersection",
    "difference",
    "product",
    "division",
]

#: Join-order strategy used by :func:`join_all` when none is given.
DEFAULT_STRATEGY = "greedy"

#: Join-execution mode used by :func:`natural_join`/:func:`semijoin` when
#: none is given: ``"indexed"`` (memoized hash indexes) or ``"scan"``.
DEFAULT_EXECUTION = "indexed"


def _resolve_execution(execution: str | None) -> str:
    mode = execution or DEFAULT_EXECUTION
    if mode not in EXECUTIONS:
        raise SolverError(
            f"unknown join execution {execution!r}; expected one of {EXECUTIONS}"
        )
    return mode


def project(relation: Relation, attributes: Sequence[str]) -> Relation:
    """Project onto ``attributes`` (which may reorder columns).

    >>> r = Relation(("x", "y"), [(1, 2), (1, 3)])
    >>> sorted(project(r, ("x",)).tuples)
    [(1,)]
    """
    with span("project") as sp:
        stats = current_stats()
        start = perf_counter() if stats is not None else 0.0
        attrs = tuple(attributes)
        indices = [relation.index_of(a) for a in attrs]
        result = Relation(attrs, (tuple(t[i] for i in indices) for t in relation))
        if stats is not None:
            stats.record(
                "project",
                scanned=len(relation),
                emitted=len(result),
                seconds=perf_counter() - start,
            )
        if sp:
            sp.note(rows=len(result))
        return result


class _RowView(Mapping[str, Any]):
    """A zero-copy ``{attribute: value}`` view of one row.

    ``select`` hands the predicate one of these instead of materializing a
    ``dict(zip(attrs, row))`` per row: lookups index straight into the tuple
    through a per-relation attribute index that is built once, so a
    predicate touching only some attributes never pays for the rest.
    """

    __slots__ = ("_index", "_row")

    def __init__(self, index: dict[str, int], row: tuple[Any, ...]):
        self._index = index
        self._row = row

    def __getitem__(self, key: str) -> Any:
        return self._row[self._index[key]]

    def __iter__(self) -> Iterator[str]:
        return iter(self._index)

    def __len__(self) -> int:
        return len(self._index)


def select(relation: Relation, predicate: Callable[[Mapping[str, Any]], bool]) -> Relation:
    """Keep the rows on which ``predicate`` (given the row as a mapping) is true.

    The mapping is a lazy view of the row: values are fetched by index on
    access, so no per-row dictionary is allocated.
    """
    stats = current_stats()
    start = perf_counter() if stats is not None else 0.0
    attrs = relation.attributes
    index = {a: i for i, a in enumerate(attrs)}
    kept = (t for t in relation if predicate(_RowView(index, t)))
    result = Relation(attrs, kept)
    if stats is not None:
        stats.record(
            "select",
            scanned=len(relation),
            emitted=len(result),
            seconds=perf_counter() - start,
        )
    return result


def rename(relation: Relation, mapping: Mapping[str, str]) -> Relation:
    """Rename attributes according to ``mapping`` (attributes absent from the
    mapping keep their names).  The resulting scheme must still be distinct.
    """
    new_attrs = tuple(mapping.get(a, a) for a in relation.attributes)
    if len(set(new_attrs)) != len(new_attrs):
        raise SchemaError(
            f"renaming {dict(mapping)!r} collapses scheme "
            f"{relation.attributes!r} to non-distinct {new_attrs!r}"
        )
    return Relation(new_attrs, relation.tuples)


def _shared_and_private(
    left: Relation, right: Relation
) -> tuple[list[str], list[str]]:
    """The canonical (sorted) join key shared by both schemes, and the
    attributes private to ``right``.

    The key is sorted so that it does not depend on operand order or scheme
    layout: ``r ⋈ s``, ``s ⋈ r``, ``r ⋉ s``, and :func:`warm_index` all
    name the same memoized :meth:`Relation.index_on` index.
    """
    left_set = set(left.attributes)
    shared = sorted(a for a in right.attributes if a in left_set)
    private = [a for a in right.attributes if a not in left_set]
    return shared, private


def warm_index(relation: Relation, attributes: Iterable[str]) -> bool:
    """Build (and memoize) ``relation``'s hash index on the canonical join
    key for ``attributes``, charging the build to the active EvalStats.

    The canonical key is the sorted attribute tuple — exactly what
    :func:`natural_join` and :func:`semijoin` probe on — so a caller that
    knows a relation will be probed repeatedly on the same key (the Datalog
    engine's static EDB relations across semi-naive rounds, a Yannakakis
    reducer) can pay the build once, up front;
    :func:`~repro.relational.planner.choose_build_side` then routes every
    later join through the warmed side regardless of cardinalities.
    Returns ``True`` iff an index was actually built (``False`` when the
    key was already memoized).
    """
    key = tuple(sorted(attributes))
    if relation.has_index(key):
        return False
    stats = current_stats()
    start = perf_counter() if stats is not None else 0.0
    relation.index_on(key)
    if stats is not None:
        stats.record(
            "index_build",
            scanned=len(relation),
            index_builds=1,
            seconds=perf_counter() - start,
        )
    return True


def natural_join(
    left: Relation, right: Relation, *, execution: str | None = None
) -> Relation:
    """The natural join ``left ⋈ right`` on the shared attributes.

    ``execution`` picks the physical operator (default
    :data:`DEFAULT_EXECUTION`):

    * ``"indexed"`` — build-side/probe-side hash execution.
      :func:`~repro.relational.planner.choose_build_side` decides which
      operand owns the hash table (an already-memoized
      :meth:`Relation.index_on` index is free; otherwise the smaller side
      builds), and the other operand's rows probe it.
    * ``"scan"`` — the nested-loop implementation: every probe scans the
      whole other relation.  Kept for differential testing.
    * ``"interned"`` — the code-space fast path: the build side's key
      columns are interned to dense ints and probed through the memoized
      radix-packed :meth:`Relation.code_index_on` index, so a probe costs
      one small-int fold instead of a tuple allocation plus tuple hash.
    * ``"wcoj"`` — the two-relation leapfrog triejoin of
      :mod:`repro.relational.wcoj`: both operands are sorted into
      per-attribute tries over a shared dense-int codec and intersected
      variable-at-a-time (seek-based, no hash tables).
    * ``"parallel"`` — the shard-parallel path of :mod:`repro.parallel`:
      both operands are hash-partitioned on the canonical join key (one
      shared codec, radix-packed codes modulo the worker count) and the
      per-shard joins fan out across a persistent worker-process pool,
      falling back to serial execution below a size threshold.

    All produce the same relation with the same column order
    (``left``'s scheme followed by ``right``'s private attributes).  When
    the schemes are disjoint this degenerates to the Cartesian product;
    when they are identical it degenerates to intersection.
    """
    execution = _resolve_execution(execution)
    with span("natural_join", execution=execution) as sp:
        result = _natural_join(left, right, execution)
        if sp:
            sp.note(rows=len(result))
        return result


def _natural_join(left: Relation, right: Relation, execution: str) -> Relation:
    if execution == "wcoj":
        from repro.relational.wcoj import leapfrog_natural_join

        return leapfrog_natural_join(left, right)
    if execution == "columnar":
        from repro.relational.columnar import batched_natural_join

        return batched_natural_join(left, right)
    if execution == "parallel":
        from repro.parallel.joins import parallel_natural_join

        return parallel_natural_join(left, right)
    stats = current_stats()
    start = perf_counter() if stats is not None else 0.0
    shared, right_private = _shared_and_private(left, right)
    key = tuple(shared)
    right_private_idx = [right.index_of(a) for a in right_private]
    out_attrs = left.attributes + tuple(right_private)

    if execution == "scan":
        left_key = [left.index_of(a) for a in key]
        right_key = [right.index_of(a) for a in key]

        def scan_rows() -> Iterable[tuple[Any, ...]]:
            for lt in left:
                for rt in right:
                    if all(lt[i] == rt[j] for i, j in zip(left_key, right_key)):
                        yield lt + tuple(rt[i] for i in right_private_idx)

        result = Relation(out_attrs, scan_rows())
        if stats is not None:
            stats.record(
                "natural_join",
                scanned=len(left) + len(left) * len(right),
                emitted=len(result),
                seconds=perf_counter() - start,
                intermediate=len(result),
            )
        return result

    if execution == "interned":
        build_side = choose_build_side(left, right, key, interned=True)
        build, probe = (right, left) if build_side == "right" else (left, right)
        built = not build.has_code_index(key)
        code_index = build.code_index_on(key)
        encode_key, base = code_index.encode, code_index.base
        lookup = code_index.lookup()
        probe_key = [probe.index_of(a) for a in key]
        hits = misses = 0

        def interned_rows() -> Iterable[tuple[Any, ...]]:
            nonlocal hits, misses
            for pt in probe:
                packed = 0
                for i in probe_key:
                    code = encode_key.get(pt[i])
                    if code is None:
                        packed = -1
                        break
                    packed = packed * base + code
                bucket = lookup(packed) if packed >= 0 else None
                if bucket is None:
                    misses += 1
                    continue
                hits += 1
                if build_side == "right":
                    for rt in bucket:
                        yield pt + tuple(rt[i] for i in right_private_idx)
                else:
                    for lt in bucket:
                        yield lt + tuple(pt[i] for i in right_private_idx)

        result = Relation(out_attrs, interned_rows())
        if stats is not None:
            stats.record(
                "natural_join",
                scanned=len(probe) + (len(build) if built else 0),
                probes=len(probe),
                index_builds=1 if built else 0,
                index_hits=hits,
                probe_misses=misses,
                emitted=len(result),
                intern_tables=1 if built else 0,
                bitset_words=code_index.words if built else 0,
                seconds=perf_counter() - start,
                intermediate=len(result),
            )
        return result

    build_side = choose_build_side(left, right, key)
    build, probe = (right, left) if build_side == "right" else (left, right)
    built = not build.has_index(key)
    index = build.index_on(key)
    probe_key = [probe.index_of(a) for a in key]
    hits = misses = 0

    def indexed_rows() -> Iterable[tuple[Any, ...]]:
        nonlocal hits, misses
        for pt in probe:
            bucket = index.get(tuple(pt[i] for i in probe_key))
            if bucket is None:
                misses += 1
                continue
            hits += 1
            if build_side == "right":
                for rt in bucket:
                    yield pt + tuple(rt[i] for i in right_private_idx)
            else:
                for lt in bucket:
                    yield lt + tuple(pt[i] for i in right_private_idx)

    result = Relation(out_attrs, indexed_rows())
    if stats is not None:
        stats.record(
            "natural_join",
            scanned=len(probe) + (len(build) if built else 0),
            probes=len(probe),
            index_builds=1 if built else 0,
            index_hits=hits,
            probe_misses=misses,
            emitted=len(result),
            seconds=perf_counter() - start,
            intermediate=len(result),
        )
    return result


def join_all(
    relations: Iterable[Relation],
    strategy: str | None = None,
    *,
    execution: str | None = None,
) -> Relation:
    """Natural join of a collection of relations.

    ``strategy`` combines a join *order* — which determines every
    intermediate-relation cardinality, though never the result — and a join
    *execution*; see :func:`repro.relational.planner.parse_strategy`.
    Orders (delegated to :func:`repro.relational.planner.order_relations`):

    * ``"greedy"`` (the default via :data:`DEFAULT_STRATEGY`) — cost-guided,
      smallest estimated intermediate first;
    * ``"smallest"`` — sort once by cardinality (the historical order);
    * ``"textbook"`` — join in the order given, the naive baseline.

    Executions: ``"indexed"`` (memoized hash indexes, the default),
    ``"scan"`` (nested loops), and ``"interned"`` (the code-space
    pipeline: every base relation is re-encoded over one shared dense-int
    codec, the fold runs entirely on int tuples probing radix-packed code
    indexes, and the final relation is decoded back — values cross the
    value↔code boundary exactly twice), and ``"wcoj"`` (the worst-case
    optimal leapfrog triejoin: the binary fold is replaced by one
    variable-at-a-time multi-way join over per-attribute sorted tries,
    materializing nothing but the output — see
    :mod:`repro.relational.wcoj`), and ``"parallel"`` (the fold is
    hash-partitioned on its most-shared attribute and the per-shard
    folds run across the :mod:`repro.parallel` worker pool, with a
    serial fallback below a size threshold); compound specs like
    ``"textbook+scan"`` fix both.  An explicit ``execution`` keyword
    overrides the spec.

    Joining the empty collection yields :meth:`Relation.unit`, the join
    identity, so ``join_all`` is a proper monoid fold.
    """
    order, spec_execution = parse_strategy(
        strategy, default_order=DEFAULT_STRATEGY, default_execution=DEFAULT_EXECUTION
    )
    execution = execution or spec_execution
    pending = order_relations(relations, order)
    with span(
        "join_all", strategy=order, execution=execution, relations=len(pending)
    ) as sp:
        result = _join_all(pending, execution)
        if sp:
            sp.note(rows=len(result))
        return result


def _join_all(pending: Sequence[Relation], execution: str) -> Relation:
    if execution == "wcoj":
        # The worst-case optimal path is a single multi-way operator: the
        # planner's binary order is irrelevant (a global *variable* order
        # drives the enumeration) and no intermediate is materialized.
        from repro.relational.wcoj import leapfrog_join

        return leapfrog_join(pending)
    if execution == "interned":
        return _join_all_interned(pending)
    if execution == "parallel":
        # Hash-partition the fold on its most-shared attribute and fan the
        # per-shard folds across the worker pool (serial fallback below the
        # size threshold); the planner's order is preserved per shard.
        from repro.parallel.joins import parallel_fold

        return parallel_fold(pending)
    if execution == "columnar":
        from repro.relational.columnar import (
            ColumnarFallback,
            join_all_columnar,
            numpy_backend,
        )

        if numpy_backend() is not None:
            try:
                return join_all_columnar(pending)
            except ColumnarFallback:
                # The packed key space outgrew the 64-bit lane; the binary
                # columnar fold below probes with unbounded Python ints.
                pass
        # numpy absent (or fallen back): fold with the batched binary
        # operators — same result, per-join probing.
    result = Relation.unit()
    for rel in pending:
        result = natural_join(result, rel, execution=execution)
        if not result:
            # Early exit: a join with an empty intermediate stays empty.
            all_attrs = list(result.attributes)
            for other in pending:
                for a in other.attributes:
                    if a not in all_attrs:
                        all_attrs.append(a)
            return Relation.empty(all_attrs)
    return result


def _join_all_interned(pending: Sequence[Relation]) -> Relation:
    """The :func:`join_all` fold in code space.

    One codec interns the union of the operands' active domains; every
    operand is rebuilt with int-tuple rows; the binary joins run with
    ``execution="interned"`` (so their key packing works on dense ints);
    and only the final result is decoded.  The planner has already fixed
    the order, which — like the result — is identical to the plain paths'
    because the encoding is a bijection.
    """
    from repro.relational.interning import fold_codec

    stats = current_stats()
    start = perf_counter() if stats is not None else 0.0
    # The shared codec is memoized per fold (identity tier first, then the
    # relation-set tier): re-folding the same relations — Datalog rounds,
    # repeated solvability checks, per-shard fans — skips the repr-sort of
    # the union universe.  Only an actual build charges ``intern_tables``;
    # a served codec charges ``codec_cache_hits``.
    codec, codec_built = fold_codec(pending)
    # Codes are assigned in repr order, so a value universe that is already
    # the dense ints 0..n-1 (in repr order) interns to itself.  Both
    # value↔code boundary passes are then the identity and can be skipped —
    # the fold below runs on the original relations, which *are* their own
    # encodings.
    identity = all(
        type(v) is int and v == i for i, v in enumerate(codec.values)
    )
    if identity:
        encoded: Sequence[Relation] = pending
    else:
        encoded = [
            Relation(rel.attributes, (codec.encode_row(t) for t in rel))
            for rel in pending
        ]
    if stats is not None:
        stats.record(
            "intern_encode",
            scanned=0 if identity else sum(len(r) for r in pending),
            intern_tables=1 if codec_built else 0,
            codec_cache_hits=0 if codec_built else 1,
            seconds=perf_counter() - start,
        )

    def decode(relation: Relation) -> Relation:
        if identity:
            return relation
        decode_start = perf_counter() if stats is not None else 0.0
        values = codec.values
        decoded = Relation(
            relation.attributes,
            (tuple(values[c] for c in t) for t in relation),
        )
        if stats is not None:
            stats.record(
                "intern_decode",
                scanned=len(relation),
                emitted=len(decoded),
                seconds=perf_counter() - decode_start,
            )
        return decoded

    result = Relation.unit()
    for rel in encoded:
        result = natural_join(result, rel, execution="interned")
        if not result:
            all_attrs = list(result.attributes)
            for other in encoded:
                for a in other.attributes:
                    if a not in all_attrs:
                        all_attrs.append(a)
            return Relation.empty(all_attrs)
    return decode(result)


def semijoin(
    left: Relation, right: Relation, *, execution: str | None = None
) -> Relation:
    """The semijoin ``left ⋉ right``: rows of ``left`` that join with ``right``.

    This is the primitive of the Yannakakis algorithm for acyclic joins
    (discussed in Section 6 of the tutorial via [45]).  ``execution`` picks
    the physical operator: ``"indexed"`` probes ``right``'s memoized
    :meth:`Relation.index_on` hash index on the shared attributes — so a
    reducer used repeatedly (as in Yannakakis' two passes) pays for its
    index once — while ``"scan"`` re-scans ``right`` per row of ``left``.
    ``"interned"`` packs each probe key into a single dense int and, when
    the key space is small, answers the membership question with one
    shift-and-mask against ``right``'s membership bitmap (counted in
    ``EvalStats.mask_ops``).
    """
    execution = _resolve_execution(execution)
    with span("semijoin", execution=execution) as sp:
        result = _semijoin(left, right, execution)
        if sp:
            sp.note(rows=len(result))
        return result


def _semijoin(left: Relation, right: Relation, execution: str) -> Relation:
    if execution == "wcoj":
        from repro.relational.wcoj import trie_semijoin

        return trie_semijoin(left, right)
    if execution == "columnar":
        from repro.relational.columnar import batched_semijoin

        return batched_semijoin(left, right)
    if execution == "parallel":
        from repro.parallel.joins import parallel_semijoin

        return parallel_semijoin(left, right)
    stats = current_stats()
    start = perf_counter() if stats is not None else 0.0
    shared, _ = _shared_and_private(left, right)
    key = tuple(shared)
    left_key = [left.index_of(a) for a in key]

    if execution == "scan":
        right_key = [right.index_of(a) for a in key]
        examined = 0

        def scan_matches(lt: tuple[Any, ...]) -> bool:
            nonlocal examined
            for rt in right:
                examined += 1
                if all(lt[i] == rt[j] for i, j in zip(left_key, right_key)):
                    return True
            return False

        result = Relation(left.attributes, (t for t in left if scan_matches(t)))
        if stats is not None:
            stats.record(
                "semijoin",
                scanned=len(left) + examined,
                emitted=len(result),
                seconds=perf_counter() - start,
            )
        return result

    if execution == "interned":
        built = not right.has_code_index(key)
        code_index = right.code_index_on(key)
        encode_key, base = code_index.encode, code_index.base
        hits = misses = mask_ops = 0

        if code_index.dense:
            member_mask = code_index.member_mask

            def interned_matches(lt: tuple[Any, ...]) -> bool:
                nonlocal hits, misses, mask_ops
                packed = 0
                for i in left_key:
                    code = encode_key.get(lt[i])
                    if code is None:
                        misses += 1
                        return False
                    packed = packed * base + code
                mask_ops += 1
                if (member_mask >> packed) & 1:
                    hits += 1
                    return True
                misses += 1
                return False

        else:
            buckets = code_index.buckets

            def interned_matches(lt: tuple[Any, ...]) -> bool:
                nonlocal hits, misses
                packed = 0
                for i in left_key:
                    code = encode_key.get(lt[i])
                    if code is None:
                        misses += 1
                        return False
                    packed = packed * base + code
                if packed in buckets:
                    hits += 1
                    return True
                misses += 1
                return False

        result = Relation(left.attributes, (t for t in left if interned_matches(t)))
        if stats is not None:
            stats.record(
                "semijoin",
                scanned=len(left) + (len(right) if built else 0),
                probes=len(left),
                index_builds=1 if built else 0,
                index_hits=hits,
                probe_misses=misses,
                emitted=len(result),
                intern_tables=1 if built else 0,
                bitset_words=code_index.words if built else 0,
                mask_ops=mask_ops,
                seconds=perf_counter() - start,
            )
        return result

    built = not right.has_index(key)
    index = right.index_on(key)
    hits = misses = 0

    def indexed_matches(lt: tuple[Any, ...]) -> bool:
        nonlocal hits, misses
        if tuple(lt[i] for i in left_key) in index:
            hits += 1
            return True
        misses += 1
        return False

    result = Relation(left.attributes, (t for t in left if indexed_matches(t)))
    if stats is not None:
        stats.record(
            "semijoin",
            scanned=len(left) + (len(right) if built else 0),
            probes=len(left),
            index_builds=1 if built else 0,
            index_hits=hits,
            probe_misses=misses,
            emitted=len(result),
            seconds=perf_counter() - start,
        )
    return result


def _require_same_scheme(left: Relation, right: Relation, op: str) -> None:
    if left.attributes != right.attributes:
        raise SchemaError(
            f"{op} requires identical schemes, got "
            f"{left.attributes!r} and {right.attributes!r}"
        )


def union(left: Relation, right: Relation) -> Relation:
    """Set union of two relations over the same scheme."""
    _require_same_scheme(left, right, "union")
    return Relation(left.attributes, left.tuples | right.tuples)


def intersection(left: Relation, right: Relation) -> Relation:
    """Set intersection of two relations over the same scheme."""
    _require_same_scheme(left, right, "intersection")
    return Relation(left.attributes, left.tuples & right.tuples)


def difference(left: Relation, right: Relation) -> Relation:
    """Set difference ``left - right`` of two relations over the same scheme."""
    _require_same_scheme(left, right, "difference")
    return Relation(left.attributes, left.tuples - right.tuples)


def product(left: Relation, right: Relation) -> Relation:
    """Cartesian product; the schemes must be disjoint."""
    overlap = set(left.attributes) & set(right.attributes)
    if overlap:
        raise SchemaError(f"product requires disjoint schemes, shared: {sorted(overlap)!r}")
    return natural_join(left, right)


def division(left: Relation, right: Relation) -> Relation:
    """Relational division ``left ÷ right``: the tuples over the attributes
    of ``left`` *not* in ``right`` that pair with **every** tuple of
    ``right`` inside ``left`` — the algebra's universal quantifier.

    ``right``'s attributes must be a proper subset of ``left``'s.
    """
    right_attrs = set(right.attributes)
    left_attrs = set(left.attributes)
    if not right_attrs < left_attrs:
        raise SchemaError(
            "division requires the divisor scheme to be a proper subset of "
            f"the dividend scheme; got {right.attributes!r} vs {left.attributes!r}"
        )
    quotient_attrs = tuple(a for a in left.attributes if a not in right_attrs)

    candidates = project(left, quotient_attrs)
    # A candidate survives iff {candidate} × right ⊆ left: compute the
    # required combinations, remove those present, and drop any candidate
    # with a missing combination.
    required = project(natural_join(candidates, right), left.attributes)
    missing = difference(required, left)
    bad = project(missing, quotient_attrs)
    return difference(candidates, bad)
