"""Relational algebra over :class:`~repro.relational.relation.Relation`.

The tutorial's Proposition 2.1 reads constraint satisfaction as a
*join-evaluation problem*: a CSP instance ``(V, D, C)`` is solvable iff the
natural join of its constraint relations is nonempty.  This module provides
the natural join (hash-join implementation) plus the standard companions —
projection, selection, renaming, semijoin, and the set operations — which the
acyclic-join and Yannakakis machinery in :mod:`repro.width` builds on.

All operations are pure: they return new relations and never mutate inputs.

Two cross-cutting facilities live alongside the operators:

* **observability** — inside a :func:`repro.relational.stats.collect_stats`
  block, every join/semijoin/selection/projection records tuples scanned,
  hash probes, result cardinalities, and wall time into the active
  :class:`~repro.relational.stats.EvalStats`;
* **planning** — :func:`join_all` accepts a ``strategy`` (``"greedy"``,
  ``"smallest"``, or ``"textbook"``) and delegates the join *order* to
  :mod:`repro.relational.planner`.  The default is the cost-guided greedy
  order; ``DEFAULT_STRATEGY`` is the module-wide knob.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.errors import SchemaError
from repro.relational.planner import order_relations
from repro.relational.relation import Relation
from repro.relational.stats import current_stats

__all__ = [
    "DEFAULT_STRATEGY",
    "project",
    "select",
    "rename",
    "natural_join",
    "join_all",
    "semijoin",
    "union",
    "intersection",
    "difference",
    "product",
    "division",
]

#: Join-order strategy used by :func:`join_all` when none is given.
DEFAULT_STRATEGY = "greedy"


def project(relation: Relation, attributes: Sequence[str]) -> Relation:
    """Project onto ``attributes`` (which may reorder columns).

    >>> r = Relation(("x", "y"), [(1, 2), (1, 3)])
    >>> sorted(project(r, ("x",)).tuples)
    [(1,)]
    """
    stats = current_stats()
    start = perf_counter() if stats is not None else 0.0
    attrs = tuple(attributes)
    indices = [relation.index_of(a) for a in attrs]
    result = Relation(attrs, (tuple(t[i] for i in indices) for t in relation))
    if stats is not None:
        stats.record(
            "project",
            scanned=len(relation),
            emitted=len(result),
            seconds=perf_counter() - start,
        )
    return result


class _RowView(Mapping[str, Any]):
    """A zero-copy ``{attribute: value}`` view of one row.

    ``select`` hands the predicate one of these instead of materializing a
    ``dict(zip(attrs, row))`` per row: lookups index straight into the tuple
    through a per-relation attribute index that is built once, so a
    predicate touching only some attributes never pays for the rest.
    """

    __slots__ = ("_index", "_row")

    def __init__(self, index: dict[str, int], row: tuple[Any, ...]):
        self._index = index
        self._row = row

    def __getitem__(self, key: str) -> Any:
        return self._row[self._index[key]]

    def __iter__(self) -> Iterator[str]:
        return iter(self._index)

    def __len__(self) -> int:
        return len(self._index)


def select(relation: Relation, predicate: Callable[[Mapping[str, Any]], bool]) -> Relation:
    """Keep the rows on which ``predicate`` (given the row as a mapping) is true.

    The mapping is a lazy view of the row: values are fetched by index on
    access, so no per-row dictionary is allocated.
    """
    stats = current_stats()
    start = perf_counter() if stats is not None else 0.0
    attrs = relation.attributes
    index = {a: i for i, a in enumerate(attrs)}
    kept = (t for t in relation if predicate(_RowView(index, t)))
    result = Relation(attrs, kept)
    if stats is not None:
        stats.record(
            "select",
            scanned=len(relation),
            emitted=len(result),
            seconds=perf_counter() - start,
        )
    return result


def rename(relation: Relation, mapping: Mapping[str, str]) -> Relation:
    """Rename attributes according to ``mapping`` (attributes absent from the
    mapping keep their names).  The resulting scheme must still be distinct.
    """
    new_attrs = tuple(mapping.get(a, a) for a in relation.attributes)
    if len(set(new_attrs)) != len(new_attrs):
        raise SchemaError(
            f"renaming {dict(mapping)!r} collapses scheme "
            f"{relation.attributes!r} to non-distinct {new_attrs!r}"
        )
    return Relation(new_attrs, relation.tuples)


def _shared_and_private(
    left: Relation, right: Relation
) -> tuple[list[str], list[str]]:
    """Attributes shared by both schemes, and attributes private to ``right``."""
    left_set = set(left.attributes)
    shared = [a for a in right.attributes if a in left_set]
    private = [a for a in right.attributes if a not in left_set]
    return shared, private


def natural_join(left: Relation, right: Relation) -> Relation:
    """The natural join ``left ⋈ right`` (hash join on the shared attributes).

    When the schemes are disjoint this degenerates to the Cartesian product;
    when they are identical it degenerates to intersection.
    """
    stats = current_stats()
    start = perf_counter() if stats is not None else 0.0
    shared, right_private = _shared_and_private(left, right)
    left_key = [left.index_of(a) for a in shared]
    right_key = [right.index_of(a) for a in shared]
    right_private_idx = [right.index_of(a) for a in right_private]

    # Build a hash index on the smaller operand's key columns.
    index: dict[tuple[Any, ...], list[tuple[Any, ...]]] = {}
    for t in right:
        key = tuple(t[i] for i in right_key)
        index.setdefault(key, []).append(t)

    out_attrs = left.attributes + tuple(right_private)

    def rows() -> Iterable[tuple[Any, ...]]:
        for lt in left:
            key = tuple(lt[i] for i in left_key)
            for rt in index.get(key, ()):
                yield lt + tuple(rt[i] for i in right_private_idx)

    result = Relation(out_attrs, rows())
    if stats is not None:
        stats.record(
            "natural_join",
            scanned=len(left) + len(right),
            probes=len(left),
            emitted=len(result),
            seconds=perf_counter() - start,
            intermediate=len(result),
        )
    return result


def join_all(relations: Iterable[Relation], strategy: str | None = None) -> Relation:
    """Natural join of a collection of relations.

    The binary-join *order* — which determines every intermediate-relation
    cardinality, though never the result — is delegated to
    :func:`repro.relational.planner.order_relations`:

    * ``"greedy"`` (the default via :data:`DEFAULT_STRATEGY`) — cost-guided,
      smallest estimated intermediate first;
    * ``"smallest"`` — sort once by cardinality (the historical order);
    * ``"textbook"`` — join in the order given, the naive baseline.

    Joining the empty collection yields :meth:`Relation.unit`, the join
    identity, so ``join_all`` is a proper monoid fold.
    """
    pending = order_relations(relations, strategy or DEFAULT_STRATEGY)
    result = Relation.unit()
    for rel in pending:
        result = natural_join(result, rel)
        if not result:
            # Early exit: a join with an empty intermediate stays empty.
            all_attrs = list(result.attributes)
            for other in pending:
                for a in other.attributes:
                    if a not in all_attrs:
                        all_attrs.append(a)
            return Relation.empty(all_attrs)
    return result


def semijoin(left: Relation, right: Relation) -> Relation:
    """The semijoin ``left ⋉ right``: rows of ``left`` that join with ``right``.

    This is the primitive of the Yannakakis algorithm for acyclic joins
    (discussed in Section 6 of the tutorial via [45]).
    """
    stats = current_stats()
    start = perf_counter() if stats is not None else 0.0
    shared, _ = _shared_and_private(left, right)
    left_key = [left.index_of(a) for a in shared]
    right_key = [right.index_of(a) for a in shared]
    keys = {tuple(t[i] for i in right_key) for t in right}
    result = Relation(
        left.attributes,
        (t for t in left if tuple(t[i] for i in left_key) in keys),
    )
    if stats is not None:
        stats.record(
            "semijoin",
            scanned=len(left) + len(right),
            probes=len(left),
            emitted=len(result),
            seconds=perf_counter() - start,
        )
    return result


def _require_same_scheme(left: Relation, right: Relation, op: str) -> None:
    if left.attributes != right.attributes:
        raise SchemaError(
            f"{op} requires identical schemes, got "
            f"{left.attributes!r} and {right.attributes!r}"
        )


def union(left: Relation, right: Relation) -> Relation:
    """Set union of two relations over the same scheme."""
    _require_same_scheme(left, right, "union")
    return Relation(left.attributes, left.tuples | right.tuples)


def intersection(left: Relation, right: Relation) -> Relation:
    """Set intersection of two relations over the same scheme."""
    _require_same_scheme(left, right, "intersection")
    return Relation(left.attributes, left.tuples & right.tuples)


def difference(left: Relation, right: Relation) -> Relation:
    """Set difference ``left - right`` of two relations over the same scheme."""
    _require_same_scheme(left, right, "difference")
    return Relation(left.attributes, left.tuples - right.tuples)


def product(left: Relation, right: Relation) -> Relation:
    """Cartesian product; the schemes must be disjoint."""
    overlap = set(left.attributes) & set(right.attributes)
    if overlap:
        raise SchemaError(f"product requires disjoint schemes, shared: {sorted(overlap)!r}")
    return natural_join(left, right)


def division(left: Relation, right: Relation) -> Relation:
    """Relational division ``left ÷ right``: the tuples over the attributes
    of ``left`` *not* in ``right`` that pair with **every** tuple of
    ``right`` inside ``left`` — the algebra's universal quantifier.

    ``right``'s attributes must be a proper subset of ``left``'s.
    """
    right_attrs = set(right.attributes)
    left_attrs = set(left.attributes)
    if not right_attrs < left_attrs:
        raise SchemaError(
            "division requires the divisor scheme to be a proper subset of "
            f"the dividend scheme; got {right.attributes!r} vs {left.attributes!r}"
        )
    quotient_attrs = tuple(a for a in left.attributes if a not in right_attrs)

    candidates = project(left, quotient_attrs)
    # A candidate survives iff {candidate} × right ⊆ left: compute the
    # required combinations, remove those present, and drop any candidate
    # with a missing combination.
    required = project(natural_join(candidates, right), left.attributes)
    missing = difference(required, left)
    bad = project(missing, quotient_attrs)
    return difference(candidates, bad)
