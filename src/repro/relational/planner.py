"""Cost-guided join planning: greedy ordering by estimated intermediate size.

Proposition 2.1 reduces CSP solvability to evaluating a natural join, so
*how* the binary joins are ordered decides the size of every intermediate
relation — the quantity Marx (2022) identifies as governing join cost.  This
module chooses an order with the classical System-R-style estimate

    |L ⋈ R|  ≈  |L| · |R| / ∏_{a ∈ shared} max(d_L(a), d_R(a))

where ``d_X(a)`` is the number of distinct values of attribute ``a`` in
``X``.  Disjoint schemes make the estimate the full product, so the greedy
planner automatically prefers *connected* relations (shared-attribute
connectivity) over Cartesian products.

Three *order* strategies are exposed:

* ``"greedy"``   — smallest relation first, then repeatedly the relation
  with the smallest estimated join with the running intermediate;
* ``"smallest"`` — sort once by cardinality (the library's historical
  ``join_all`` order);
* ``"textbook"`` — keep the given (textual) order, the naive baseline.

Orthogonally, two *execution* modes decide how each binary join/semijoin
probes its operands:

* ``"indexed"`` — build-side/probe-side hash execution over the memoized
  per-key-column indexes of :meth:`Relation.index_on` (the default);
* ``"scan"``    — the nested-loop implementation, kept for differential
  testing;
* ``"interned"`` — the code-space fast path: key values are interned to
  dense ints and probed through the radix-packed
  :meth:`Relation.code_index_on` indexes (``join_all`` additionally runs
  the whole pipeline over int-encoded rows, decoding at the boundary);
* ``"wcoj"`` — the worst-case optimal multi-way path: ``join_all``
  abandons the binary fold for the leapfrog triejoin of
  :mod:`repro.relational.wcoj`, which joins variable-at-a-time over
  per-attribute sorted tries and never materializes an intermediate
  relation — the strategy of choice on cyclic bodies, where every
  pairwise order is AGM-suboptimal;
* ``"columnar"`` — the struct-of-arrays path of
  :mod:`repro.relational.columnar`: relations lazily grow memoized
  ``array('q')`` code columns, probes run as batched column sweeps
  against the radix-packed code indexes, and ``join_all`` (with numpy
  available) keeps the whole fold in int64 column matrices, decoding
  tuples once at the boundary;
* ``"parallel"`` — the shard-parallel path of :mod:`repro.parallel`:
  operands hash-partition on the canonical join key (interned codes,
  a single modulo) and the per-shard joins fan out across a persistent
  worker-process pool, per-worker stats merging back into the parent.

:func:`parse_strategy` accepts either kind of name, or a compound
``"order+execution"`` spec such as ``"smallest+scan"``.  All combinations
compute the same relation (the natural join is commutative and associative —
see ``tests/relational/test_algebra_properties.py``); they differ only in
cost.  :func:`choose_build_side` picks which operand of one indexed join
pays for the hash table: an already-memoized index is free, otherwise the
smaller (estimated-cheaper) side builds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import SolverError
from repro.relational.relation import Relation
from repro.telemetry.spans import span

__all__ = [
    "STRATEGIES",
    "EXECUTIONS",
    "RelationProfile",
    "JoinPlan",
    "profile",
    "estimate_join",
    "plan_join",
    "order_relations",
    "parse_strategy",
    "choose_build_side",
]

#: Join-*order* strategies (which relation joins next).
STRATEGIES = ("greedy", "smallest", "textbook")

#: Join-*execution* modes (how one binary join/semijoin probes its operands).
#: ``"wcoj"`` is the odd one out: in :func:`repro.relational.algebra.join_all`
#: it replaces the binary fold entirely with the worst-case optimal
#: leapfrog triejoin of :mod:`repro.relational.wcoj` (variable-at-a-time,
#: no intermediate relations), while a binary join/semijoin under it runs
#: the two-relation leapfrog / trie-probe special case.  ``"columnar"``
#: keeps the binary build/probe shape of ``"interned"`` but sweeps whole
#: probe columns per batch (and, in ``join_all`` with numpy present,
#: replaces the fold with the end-to-end column-matrix pipeline of
#: :func:`repro.relational.columnar.join_all_columnar`).  ``"parallel"``
#: shards the operands by hash-partitioning on the canonical join key and
#: fans the per-shard joins across the :mod:`repro.parallel` worker pool
#: (serial fallback below a size threshold; per-worker stats merge back).
EXECUTIONS = ("indexed", "scan", "interned", "wcoj", "columnar", "parallel")


def parse_strategy(
    spec: str | None,
    *,
    default_order: str = "greedy",
    default_execution: str = "indexed",
) -> tuple[str, str]:
    """Split a strategy spec into ``(order, execution)``.

    ``spec`` may be an order name (``"greedy"``, ``"smallest"``,
    ``"textbook"``), an execution name (``"indexed"``, ``"scan"``), or a
    compound ``"order+execution"`` such as ``"textbook+scan"``.  ``None``
    yields the defaults.  Unknown or contradictory specs raise
    :class:`~repro.errors.SolverError`.

    >>> parse_strategy("scan")
    ('greedy', 'scan')
    >>> parse_strategy("smallest+indexed")
    ('smallest', 'indexed')
    """
    order: str | None = None
    execution: str | None = None
    if spec is not None:
        for part in spec.split("+"):
            if part in STRATEGIES:
                if order is not None:
                    raise SolverError(f"strategy {spec!r} names two join orders")
                order = part
            elif part in EXECUTIONS:
                if execution is not None:
                    raise SolverError(f"strategy {spec!r} names two executions")
                execution = part
            else:
                raise SolverError(
                    f"unknown join strategy {part!r}; expected an order in "
                    f"{STRATEGIES} and/or an execution in {EXECUTIONS}"
                )
    return order or default_order, execution or default_execution


def choose_build_side(
    left: Relation, right: Relation, key: Sequence[str], *, interned: bool = False
) -> str:
    """Which operand of an indexed join should own the hash table.

    Returns ``"left"`` or ``"right"``.  A side whose index on ``key`` is
    already memoized wins outright (probing it costs nothing extra);
    otherwise the smaller side builds — the classical build-side rule, with
    the exact cardinality standing in for the estimate.  Ties go right, so
    an index-free join of equal operands matches the historical behavior.
    ``interned=True`` consults the memoized
    :meth:`Relation.code_index_on` indexes instead of the tuple-keyed ones.
    """
    left_key = tuple(key)
    if interned:
        left_has = left.has_code_index(left_key)
        right_has = right.has_code_index(left_key)
    else:
        left_has = left.has_index(left_key)
        right_has = right.has_index(left_key)
    if left_has != right_has:
        return "left" if left_has else "right"
    return "left" if len(left) < len(right) else "right"


@dataclass(frozen=True)
class RelationProfile:
    """The statistics the cost model needs: scheme, cardinality, and
    per-attribute distinct-value counts (all exact for base relations,
    estimated for intermediates)."""

    attributes: frozenset[str]
    cardinality: float
    distinct: dict[str, float]

    def __post_init__(self) -> None:
        object.__setattr__(self, "attributes", frozenset(self.attributes))


def profile(relation: Relation) -> RelationProfile:
    """Exact profile of a base relation (one pass over the tuples).

    Memoized on the relation object: relations are immutable, so the
    statistics never go stale, and repeated planning over a persistent
    relation (every delta round of a fixpoint probes the same full IDB
    relation) pays the scan once.
    """
    cached = relation._profile
    if cached is not None:
        return cached
    counts: dict[str, set] = {a: set() for a in relation.attributes}
    for row in relation:
        for a, v in zip(relation.attributes, row):
            counts[a].add(v)
    result = RelationProfile(
        frozenset(relation.attributes),
        float(len(relation)),
        {a: float(len(vs)) for a, vs in counts.items()},
    )
    relation._profile = result
    return result


def estimate_join(left: RelationProfile, right: RelationProfile) -> RelationProfile:
    """Estimated profile of ``left ⋈ right`` under the uniformity assumption.

    Shared attributes keep the smaller distinct count (a join can only
    narrow a column); every distinct count is capped by the estimated
    cardinality.
    """
    shared = left.attributes & right.attributes
    size = left.cardinality * right.cardinality
    for a in shared:
        divisor = max(left.distinct.get(a, 1.0), right.distinct.get(a, 1.0))
        if divisor > 0:
            size /= divisor
    distinct: dict[str, float] = {}
    for a in left.attributes | right.attributes:
        if a in shared:
            d = min(left.distinct.get(a, 1.0), right.distinct.get(a, 1.0))
        elif a in left.attributes:
            d = left.distinct.get(a, 1.0)
        else:
            d = right.distinct.get(a, 1.0)
        distinct[a] = min(d, size) if size < d else d
    return RelationProfile(left.attributes | right.attributes, size, distinct)


@dataclass(frozen=True)
class JoinPlan:
    """A join order plus the cost model's predictions for it.

    ``order`` indexes into the planner's input sequence;
    ``estimated_sizes`` holds the predicted cardinality of each successive
    intermediate (one entry per join after the first relation).
    """

    strategy: str
    order: tuple[int, ...]
    estimated_sizes: tuple[float, ...]

    @property
    def estimated_max_intermediate(self) -> float:
        return max(self.estimated_sizes, default=0.0)


def _greedy_order(profiles: Sequence[RelationProfile]) -> tuple[tuple[int, ...], tuple[float, ...]]:
    remaining = list(range(len(profiles)))
    # Seed with the smallest relation (ties broken by input position, so
    # plans are deterministic).
    first = min(remaining, key=lambda i: (profiles[i].cardinality, i))
    remaining.remove(first)
    order = [first]
    estimates: list[float] = []
    current = profiles[first]
    while remaining:
        best = None
        best_key = None
        for i in remaining:
            candidate = estimate_join(current, profiles[i])
            shared = len(current.attributes & profiles[i].attributes)
            # Smaller estimate wins; among equals prefer more shared
            # attributes (connectivity), then input position.
            key = (candidate.cardinality, -shared, i)
            if best_key is None or key < best_key:
                best, best_key, best_profile = i, key, candidate
        remaining.remove(best)
        order.append(best)
        estimates.append(best_profile.cardinality)
        current = best_profile
    return tuple(order), tuple(estimates)


def _linear_order(
    profiles: Sequence[RelationProfile], order: Sequence[int]
) -> tuple[float, ...]:
    """Cost-model predictions for a fixed order (used for the baselines)."""
    if not order:
        return ()
    current = profiles[order[0]]
    estimates: list[float] = []
    for i in order[1:]:
        current = estimate_join(current, profiles[i])
        estimates.append(current.cardinality)
    return tuple(estimates)


def plan_join(relations: Sequence[Relation], strategy: str = "greedy") -> JoinPlan:
    """Choose a join order for ``relations`` under the given strategy."""
    if strategy not in STRATEGIES:
        raise SolverError(
            f"unknown join strategy {strategy!r}; expected one of {STRATEGIES}"
        )
    with span("plan", strategy=strategy, relations=len(relations)) as sp:
        profiles = [profile(r) for r in relations]
        if strategy == "greedy":
            order, estimates = _greedy_order(profiles) if profiles else ((), ())
        elif strategy == "smallest":
            order = tuple(
                sorted(range(len(profiles)), key=lambda i: (profiles[i].cardinality, i))
            )
            estimates = _linear_order(profiles, order)
        else:  # textbook: the order the atoms were written in
            order = tuple(range(len(profiles)))
            estimates = _linear_order(profiles, order)
        plan = JoinPlan(strategy, order, estimates)
        if sp:
            sp.note(estimated_max_intermediate=plan.estimated_max_intermediate)
        return plan


def order_relations(
    relations: Iterable[Relation], strategy: str = "greedy"
) -> list[Relation]:
    """The relations reordered according to :func:`plan_join`."""
    rels = list(relations)
    plan = plan_join(rels, strategy)
    return [rels[i] for i in plan.order]
