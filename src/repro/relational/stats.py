"""Execution statistics for the relational algebra — the observability layer.

Marx (*Modern Lower Bound Techniques in Database Theory and Constraint
Satisfaction*, 2022) identifies the **intermediate-relation cardinality** as
the quantity that governs join cost; this module makes it observable.  An
:class:`EvalStats` object accumulates, per algebra operator:

* ``tuples_scanned`` — rows read from operand relations,
* ``hash_probes`` — lookups into a join's hash index,
* ``index_builds`` — hash indexes actually built (a memoized
  :meth:`~repro.relational.relation.Relation.index_on` hit builds nothing),
* ``index_hits`` / ``probe_misses`` — probes that found / did not find a
  matching key in the index,
* ``tuples_emitted`` — rows produced,
* ``intern_tables`` / ``bitset_words`` / ``mask_ops`` — interned-execution
  work: codec + code-index builds, 64-bit words held by packed structures,
  and word-level membership operations,
* ``codec_cache_hits`` — fold codecs served from the memo of
  :func:`repro.relational.interning.fold_codec` (each hit is a repr-sort
  of the fold's shared universe that did *not* run),
* ``seeks`` / ``leapfrog_rounds`` / ``trie_builds`` — worst-case-optimal
  join work: trie-cursor seek/next bisections, leapfrog-chase iterations,
  and sorted tries constructed (see :mod:`repro.relational.wcoj`),
* ``column_builds`` / ``batch_probes`` — columnar-execution work: lazy
  struct-of-arrays column stores actually built (a memoized hit builds
  nothing), and probe keys swept in batched column lookups (see
  :mod:`repro.relational.columnar`),
* ``partitions`` / ``parallel_tasks`` — shard-parallel work: hash shards
  materialized by :mod:`repro.parallel` partitioning, and tasks dispatched
  to the worker-process pool,
* ``intermediate_sizes`` — the cardinality of every join result, in order,
* per-operator invocation counts and wall-clock seconds.

Collection is scoped with the :func:`collect_stats` context manager, which
installs the stats object in a :class:`contextvars.ContextVar` — so nothing
leaks between queries, threads, or async tasks, and the algebra pays a
single ``ContextVar.get`` per operator call when tracing is off.

>>> from repro.relational.algebra import natural_join
>>> from repro.relational.relation import Relation
>>> r = Relation(("x", "y"), [(1, 2)]); s = Relation(("y", "z"), [(2, 3)])
>>> with collect_stats() as stats:
...     _ = natural_join(r, s)
>>> stats.tuples_emitted
1
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["EvalStats", "collect_stats", "current_stats"]


@dataclass
class EvalStats:
    """Mutable accumulator of evaluation counters.

    Counters only ever grow while an evaluation runs (they are *monotone*):
    the stats of a composite evaluation equal the merge of the stats of its
    parts.  A fresh instance has every counter at zero.
    """

    tuples_scanned: int = 0
    hash_probes: int = 0
    index_builds: int = 0
    index_hits: int = 0
    probe_misses: int = 0
    tuples_emitted: int = 0
    intern_tables: int = 0
    codec_cache_hits: int = 0
    bitset_words: int = 0
    mask_ops: int = 0
    seeks: int = 0
    leapfrog_rounds: int = 0
    trie_builds: int = 0
    column_builds: int = 0
    batch_probes: int = 0
    partitions: int = 0
    parallel_tasks: int = 0
    intermediate_sizes: list[int] = field(default_factory=list)
    operator_counts: dict[str, int] = field(default_factory=dict)
    operator_seconds: dict[str, float] = field(default_factory=dict)
    routing_decisions: list[dict] = field(default_factory=list)

    # -- recording ---------------------------------------------------------

    def record(
        self,
        operator: str,
        *,
        scanned: int = 0,
        probes: int = 0,
        index_builds: int = 0,
        index_hits: int = 0,
        probe_misses: int = 0,
        emitted: int = 0,
        intern_tables: int = 0,
        codec_cache_hits: int = 0,
        bitset_words: int = 0,
        mask_ops: int = 0,
        seeks: int = 0,
        leapfrog_rounds: int = 0,
        trie_builds: int = 0,
        column_builds: int = 0,
        batch_probes: int = 0,
        partitions: int = 0,
        parallel_tasks: int = 0,
        seconds: float = 0.0,
        intermediate: int | None = None,
    ) -> None:
        """Record one operator invocation (called by the algebra)."""
        self.tuples_scanned += scanned
        self.hash_probes += probes
        self.index_builds += index_builds
        self.index_hits += index_hits
        self.probe_misses += probe_misses
        self.tuples_emitted += emitted
        self.intern_tables += intern_tables
        self.codec_cache_hits += codec_cache_hits
        self.bitset_words += bitset_words
        self.mask_ops += mask_ops
        self.seeks += seeks
        self.leapfrog_rounds += leapfrog_rounds
        self.trie_builds += trie_builds
        self.column_builds += column_builds
        self.batch_probes += batch_probes
        self.partitions += partitions
        self.parallel_tasks += parallel_tasks
        self.operator_counts[operator] = self.operator_counts.get(operator, 0) + 1
        self.operator_seconds[operator] = (
            self.operator_seconds.get(operator, 0.0) + seconds
        )
        if intermediate is not None:
            self.intermediate_sizes.append(intermediate)

    def record_routing(
        self, query: str, route: str, *, acyclic: bool, signal: str
    ) -> None:
        """Record one ``strategy="auto"`` routing decision.

        ``route`` is the execution path taken (``"yannakakis"`` or
        ``"wcoj"``), ``acyclic`` the width signal's verdict, and ``signal``
        names the structural test that drove the choice (the GYO-style
        join-tree construction — acyclicity is exactly "generalized
        hypertree width 1").
        """
        self.routing_decisions.append(
            {"query": query, "route": route, "acyclic": acyclic, "signal": signal}
        )

    def merge(self, other: "EvalStats") -> "EvalStats":
        """Fold ``other``'s counters into this object (in place) and return it.

        Merging is the composition law: counters add, intermediate sizes
        concatenate — so stats are monotone under composition.
        """
        self.tuples_scanned += other.tuples_scanned
        self.hash_probes += other.hash_probes
        self.index_builds += other.index_builds
        self.index_hits += other.index_hits
        self.probe_misses += other.probe_misses
        self.tuples_emitted += other.tuples_emitted
        self.intern_tables += other.intern_tables
        self.codec_cache_hits += other.codec_cache_hits
        self.bitset_words += other.bitset_words
        self.mask_ops += other.mask_ops
        self.seeks += other.seeks
        self.leapfrog_rounds += other.leapfrog_rounds
        self.trie_builds += other.trie_builds
        self.column_builds += other.column_builds
        self.batch_probes += other.batch_probes
        self.partitions += other.partitions
        self.parallel_tasks += other.parallel_tasks
        self.intermediate_sizes.extend(other.intermediate_sizes)
        self.routing_decisions.extend(other.routing_decisions)
        for op, n in other.operator_counts.items():
            self.operator_counts[op] = self.operator_counts.get(op, 0) + n
        for op, s in other.operator_seconds.items():
            self.operator_seconds[op] = self.operator_seconds.get(op, 0.0) + s
        return self

    def reset(self) -> None:
        """Zero every counter, returning the object to its freshly-built state."""
        self.tuples_scanned = 0
        self.hash_probes = 0
        self.index_builds = 0
        self.index_hits = 0
        self.probe_misses = 0
        self.tuples_emitted = 0
        self.intern_tables = 0
        self.codec_cache_hits = 0
        self.bitset_words = 0
        self.mask_ops = 0
        self.seeks = 0
        self.leapfrog_rounds = 0
        self.trie_builds = 0
        self.column_builds = 0
        self.batch_probes = 0
        self.partitions = 0
        self.parallel_tasks = 0
        self.intermediate_sizes = []
        self.operator_counts = {}
        self.operator_seconds = {}
        self.routing_decisions = []

    # -- derived views -----------------------------------------------------

    @property
    def max_intermediate(self) -> int:
        """Largest join-result cardinality seen (0 if no join ran)."""
        return max(self.intermediate_sizes, default=0)

    @property
    def total_intermediate(self) -> int:
        """Sum of all join-result cardinalities (total materialized rows)."""
        return sum(self.intermediate_sizes)

    @property
    def joins(self) -> int:
        """Number of binary natural joins executed."""
        return self.operator_counts.get("natural_join", 0)

    @property
    def wall_seconds(self) -> float:
        """Total wall-clock time spent inside traced operators."""
        return sum(self.operator_seconds.values())

    def as_dict(self) -> dict:
        """A plain-dict snapshot (for JSON output and EXPERIMENTS tables)."""
        return {
            "tuples_scanned": self.tuples_scanned,
            "hash_probes": self.hash_probes,
            "index_builds": self.index_builds,
            "index_hits": self.index_hits,
            "probe_misses": self.probe_misses,
            "tuples_emitted": self.tuples_emitted,
            "intern_tables": self.intern_tables,
            "codec_cache_hits": self.codec_cache_hits,
            "bitset_words": self.bitset_words,
            "mask_ops": self.mask_ops,
            "seeks": self.seeks,
            "leapfrog_rounds": self.leapfrog_rounds,
            "trie_builds": self.trie_builds,
            "column_builds": self.column_builds,
            "batch_probes": self.batch_probes,
            "partitions": self.partitions,
            "parallel_tasks": self.parallel_tasks,
            "joins": self.joins,
            "max_intermediate": self.max_intermediate,
            "total_intermediate": self.total_intermediate,
            "intermediate_sizes": list(self.intermediate_sizes),
            "operator_counts": dict(self.operator_counts),
            "operator_seconds": dict(self.operator_seconds),
            "routing_decisions": [dict(d) for d in self.routing_decisions],
            "wall_seconds": self.wall_seconds,
        }

    def summary(self) -> str:
        """A short human-readable report (used by ``python -m repro stats``)."""
        lines = [
            f"tuples scanned      {self.tuples_scanned}",
            f"hash probes         {self.hash_probes}",
            f"index builds        {self.index_builds}",
            f"index hits          {self.index_hits}",
            f"probe misses        {self.probe_misses}",
            f"tuples emitted      {self.tuples_emitted}",
            f"intern tables       {self.intern_tables}",
            f"codec cache hits    {self.codec_cache_hits}",
            f"bitset words        {self.bitset_words}",
            f"mask ops            {self.mask_ops}",
            f"seeks               {self.seeks}",
            f"leapfrog rounds     {self.leapfrog_rounds}",
            f"trie builds         {self.trie_builds}",
            f"column builds       {self.column_builds}",
            f"batch probes        {self.batch_probes}",
            f"partitions          {self.partitions}",
            f"parallel tasks      {self.parallel_tasks}",
            f"joins               {self.joins}",
            f"max intermediate    {self.max_intermediate}",
            f"total intermediate  {self.total_intermediate}",
            f"wall seconds        {self.wall_seconds:.6f}",
        ]
        for op in sorted(self.operator_counts):
            lines.append(
                f"  {op:<17} ×{self.operator_counts[op]:<6}"
                f" {self.operator_seconds.get(op, 0.0):.6f}s"
            )
        for d in self.routing_decisions:
            lines.append(
                f"  route {d['query']:<12} -> {d['route']}"
                f" (acyclic={d['acyclic']}, signal={d['signal']})"
            )
        return "\n".join(lines)


# The active stats object.  A ContextVar (rather than a module global) keeps
# concurrent queries — threads, asyncio tasks — from seeing each other's
# counters, and makes `collect_stats` re-entrant.
_ACTIVE: ContextVar[EvalStats | None] = ContextVar("repro_eval_stats", default=None)


def current_stats() -> EvalStats | None:
    """The stats object of the innermost active :func:`collect_stats`, if any."""
    return _ACTIVE.get()


@contextmanager
def collect_stats(stats: EvalStats | None = None) -> Iterator[EvalStats]:
    """Collect algebra statistics for the duration of the ``with`` block.

    Nested blocks shadow outer ones: operations inside the inner block are
    charged to the inner stats object only, so two queries traced separately
    never contaminate each other.

    >>> with collect_stats() as outer:
    ...     with collect_stats() as inner:
    ...         pass
    >>> outer is not inner
    True
    """
    if stats is None:
        stats = EvalStats()
    token = _ACTIVE.set(stats)
    try:
        yield stats
    finally:
        _ACTIVE.reset(token)
