"""Worst-case optimal multi-way join: leapfrog triejoin (Veldhuizen 2014).

Pairwise join plans are provably suboptimal on *cyclic* query bodies: on the
triangle query ``Q(x,y,z) :- E(x,y), E(y,z), E(z,x)`` every binary join
materializes an intermediate of size Θ(|E|²) in the worst case, while the
AGM/fractional-edge-cover bound (Atserias–Grohe–Marx; surveyed in Marx,
*Modern Lower Bound Techniques in Database Theory and Constraint
Satisfaction*) caps the output at O(|E|^{3/2}).  The planner in
:mod:`repro.relational.planner` can only *reorder* binary joins, never avoid
the blow-up; this module avoids it by joining **variable at a time** instead
of relation at a time.

The algorithm is Veldhuizen's leapfrog triejoin:

* each relation's rows are interned to dense int codes (one shared
  :class:`~repro.relational.interning.Codec` per join, so heterogeneous
  values become mutually comparable small ints) and sorted into a
  **per-attribute trie** — a sorted row array walked level by level, one
  level per attribute in the global variable order, with ``seek()``
  implemented by bisection (:class:`TrieRelation` / :class:`TrieCursor`);
* for each variable in turn, the trie cursors of every relation containing
  that variable run a **leapfrog intersection** (:class:`Leapfrog`): the
  cursors chase each other's keys with ``seek()``, emitting exactly the
  values present in *all* of them, in ascending code order;
* matched values are bound and the enumeration recurses into the next
  variable; only full bindings are materialized, and codes are decoded back
  to values only at the output boundary.

No intermediate relation is ever materialized — the only join result is the
output itself, which is what the E5-cyclic benchmark family asserts against
the pairwise executions.  The work is counted in three
:class:`~repro.relational.stats.EvalStats` counters: ``trie_builds`` (sorted
tries constructed), ``seeks`` (cursor ``seek``/``next`` operations — each one
a bisection), and ``leapfrog_rounds`` (iterations of the leapfrog chase).

The global variable order is chosen by :func:`variable_order`, the
maximum-cardinality-search heuristic of the homomorphism searcher's
``_connectivity_order`` lifted to schemes: start from the attribute in the
most atoms, then repeatedly take the attribute sharing the most atoms with
those already ordered.  The *result* is order-invariant (checked by
hypothesis in ``tests/relational/test_wcoj.py``); only the work changes.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from time import perf_counter
from typing import Any, Iterable, Sequence

from repro.errors import SchemaError, VocabularyError
from repro.relational.relation import Relation
from repro.relational.stats import current_stats
from repro.telemetry.spans import span

__all__ = [
    "ArrayCursor",
    "TrieCursor",
    "TrieRelation",
    "Leapfrog",
    "leapfrog_intersect",
    "variable_order",
    "leapfrog_join",
    "leapfrog_natural_join",
    "trie_semijoin",
]


class _Counters:
    """Per-join work counters, folded into EvalStats once at the boundary."""

    __slots__ = ("seeks", "rounds", "tries")

    def __init__(self) -> None:
        self.seeks = 0
        self.rounds = 0
        self.tries = 0


class ArrayCursor:
    """A linear iterator with ``seek()`` over one sorted array — the unary
    cursor of Veldhuizen's leapfrog join.

    The contract every leapfrog participant obeys:

    * ``key()`` — the current element (undefined once ``at_end``);
    * ``next()`` — advance to the next element;
    * ``seek(target)`` — advance to the **least element ≥ target**; the
      caller guarantees ``target >= key()``, so the cursor only moves
      forward and each seek is one bisection of the remaining suffix.
    """

    __slots__ = ("_values", "_pos", "at_end")

    def __init__(self, values: Sequence[int]):
        self._values = list(values)
        self._pos = 0
        self.at_end = not self._values

    def key(self) -> int:
        return self._values[self._pos]

    def next(self) -> None:
        self._pos += 1
        if self._pos >= len(self._values):
            self.at_end = True

    def seek(self, target: int) -> None:
        self._pos = bisect_left(self._values, target, self._pos)
        if self._pos >= len(self._values):
            self.at_end = True


class TrieCursor:
    """A cursor over a :class:`TrieRelation`: the sorted row array walked as
    a trie, one level per attribute.

    ``open()`` descends into the children of the current node (at the root,
    the whole relation), ``up()`` returns to the parent, and within one open
    level the cursor obeys the :class:`ArrayCursor` contract — ``key()``,
    ``next()``, ``seek()`` over the *distinct* values of that level under
    the current prefix, in ascending code order.  All navigation is
    bisection over the level's column array restricted to the parent's row
    range, so a trie is never materialized as nodes — it *is* the sorted
    array plus a stack of ``(lo, hi, pos)`` ranges.
    """

    __slots__ = ("_cols", "_size", "_stack", "_counters", "at_end")

    def __init__(self, cols: Sequence[Sequence[int]], size: int, counters: _Counters | None = None):
        self._cols = cols
        self._size = size
        # One (lo, hi, pos) frame per open level: the parent's row range and
        # the current row position (whose level value is the cursor's key).
        self._stack: list[list[int]] = []
        self._counters = counters
        self.at_end = False

    @property
    def depth(self) -> int:
        """Number of open levels (0 at the root)."""
        return len(self._stack)

    def open(self) -> None:
        """Descend to the first (least) child value of the current node."""
        if not self._stack:
            lo, hi = 0, self._size
        else:
            d = len(self._stack) - 1
            _, parent_hi, pos = self._stack[-1]
            col = self._cols[d]
            lo = pos
            hi = bisect_right(col, col[pos], pos, parent_hi)
        self._stack.append([lo, hi, lo])
        self.at_end = lo >= hi

    def up(self) -> None:
        """Return to the parent node (its key is unchanged)."""
        self._stack.pop()
        self.at_end = False

    def key(self) -> int:
        frame = self._stack[-1]
        return self._cols[len(self._stack) - 1][frame[2]]

    def next(self) -> None:
        """Advance to the next distinct value at this level."""
        frame = self._stack[-1]
        col = self._cols[len(self._stack) - 1]
        pos = bisect_right(col, col[frame[2]], frame[2], frame[1])
        if self._counters is not None:
            self._counters.seeks += 1
        if pos >= frame[1]:
            self.at_end = True
        else:
            frame[2] = pos

    def seek(self, target: int) -> None:
        """Advance to the least value ≥ ``target`` at this level."""
        frame = self._stack[-1]
        col = self._cols[len(self._stack) - 1]
        pos = bisect_left(col, target, frame[2], frame[1])
        if self._counters is not None:
            self._counters.seeks += 1
        if pos >= frame[1]:
            self.at_end = True
        else:
            frame[2] = pos


class TrieRelation:
    """A relation's rows sorted into per-attribute trie form.

    ``attributes`` is the scheme of the (already interned) ``rows``;
    ``levels`` names the trie's levels, outermost first — for a multi-way
    join this is the relation's scheme restricted to the global variable
    order.  A level attribute absent from the scheme raises
    :class:`~repro.errors.VocabularyError` naming the attribute and the
    scheme (the ``index_of`` convention).  Rows are *projected* onto the
    levels and deduplicated, so a trie over a key subset (semijoin probes)
    is exactly the distinct-key trie.
    """

    __slots__ = ("levels", "size", "cols")

    def __init__(
        self,
        attributes: Sequence[str],
        rows: Iterable[Sequence[int]],
        levels: Sequence[str],
        counters: _Counters | None = None,
    ):
        attrs = tuple(attributes)
        positions = []
        for a in levels:
            try:
                positions.append(attrs.index(a))
            except ValueError:
                raise VocabularyError(
                    f"attribute {a!r} not in scheme {attrs!r}"
                ) from None
        keys = sorted({tuple(row[p] for p in positions) for row in rows})
        self.levels = tuple(levels)
        self.size = len(keys)
        self.cols: list[list[int]] = [
            [k[d] for k in keys] for d in range(len(positions))
        ]
        if counters is not None:
            counters.tries += 1

    def cursor(self, counters: _Counters | None = None) -> TrieCursor:
        return TrieCursor(self.cols, self.size, counters)


class Leapfrog:
    """Leapfrog intersection of ``k`` unary cursors (Veldhuizen, Alg. 1).

    After construction (and after each successful :meth:`next`) either
    ``at_end`` is true or every cursor is positioned at the same key — the
    next element of the intersection, read with :meth:`key`.  The chase is
    the classic one: cursors are kept sorted by key; the smallest repeatedly
    ``seek``\\ s to the current maximum until all keys agree.
    """

    __slots__ = ("_cursors", "_p", "_counters", "at_end")

    def __init__(self, cursors: Sequence[Any], counters: _Counters | None = None):
        self._cursors = list(cursors)
        self._counters = counters
        self.at_end = not self._cursors or any(c.at_end for c in self._cursors)
        if not self.at_end:
            self._cursors.sort(key=lambda c: c.key())
            self._p = 0
            self._search()

    def _search(self) -> None:
        cursors = self._cursors
        k = len(cursors)
        max_key = cursors[self._p - 1].key()  # -1 wraps: the largest key
        while True:
            if self._counters is not None:
                self._counters.rounds += 1
            cursor = cursors[self._p]
            if cursor.key() == max_key:
                return  # all k cursors agree on max_key
            cursor.seek(max_key)
            if cursor.at_end:
                self.at_end = True
                return
            max_key = cursor.key()
            self._p = (self._p + 1) % k

    def key(self) -> int:
        return self._cursors[self._p].key()

    def next(self) -> None:
        """Advance past the current match to the next one (or ``at_end``)."""
        cursor = self._cursors[self._p]
        cursor.next()
        if cursor.at_end:
            self.at_end = True
        else:
            self._p = (self._p + 1) % len(self._cursors)
            self._search()


def leapfrog_intersect(arrays: Sequence[Sequence[int]]) -> list[int]:
    """The intersection of sorted arrays by leapfrog chase — the unit-size
    specification of the join: equals ``set.intersection`` on every input
    (hypothesis-checked in ``tests/relational/test_wcoj.py``).
    """
    lf = Leapfrog([ArrayCursor(a) for a in arrays])
    out: list[int] = []
    while not lf.at_end:
        out.append(lf.key())
        lf.next()
    return out


def variable_order(relations: Sequence[Relation]) -> tuple[str, ...]:
    """A connectivity/degree-guided global variable order for the leapfrog
    enumeration.

    Maximum-cardinality search over the body's attributes (the
    ``_connectivity_order`` heuristic of the homomorphism searcher lifted to
    schemes): start from the attribute occurring in the most relations, then
    repeatedly take the attribute sharing the most *already-placed*
    relations, breaking ties by total degree and then name — so consecutive
    variables stay connected and each new binding is constrained by as many
    open tries as possible.  Deterministic for a fixed input.
    """
    rels_of: dict[str, list[int]] = {}
    for i, rel in enumerate(relations):
        for a in rel.attributes:
            rels_of.setdefault(a, []).append(i)
    remaining = set(rels_of)
    shared = {a: 0 for a in remaining}
    placed: set[int] = set()
    order: list[str] = []
    while remaining:
        v = min(remaining, key=lambda a: (-shared[a], -len(rels_of[a]), a))
        remaining.discard(v)
        order.append(v)
        for i in rels_of[v]:
            if i in placed:
                continue
            placed.add(i)
            for a in relations[i].attributes:
                if a in remaining:
                    shared[a] += 1
    return tuple(order)


def _shared_codec(relations: Sequence[Relation]):
    """One codec over the union of the operands' active domains, plus the
    identity fast path of the interned pipeline: a universe that is already
    the dense ints ``0..n-1`` interns to itself, so both boundary passes
    can be skipped."""
    from repro.relational.interning import Codec

    codec = Codec(v for rel in relations for t in rel for v in t)
    identity = all(type(v) is int and v == i for i, v in enumerate(codec.values))
    return codec, identity


def leapfrog_join(
    relations: Iterable[Relation],
    *,
    out_attributes: Sequence[str] | None = None,
    order: Sequence[str] | None = None,
    limit: int | None = None,
) -> Relation:
    """The natural join of ``relations`` by leapfrog triejoin.

    ``order`` fixes the global variable order (default:
    :func:`variable_order`); it must cover every attribute.
    ``out_attributes`` fixes the output scheme (default: the variable
    order); it must be a permutation of the attribute union.  ``limit``
    stops the enumeration after that many output rows — ``limit=1`` decides
    Boolean queries without enumerating the whole result.

    The result is identical to ``join_all`` under every other execution
    (pinned by the differential matrices); only the work differs: no
    intermediate relation is materialized, and the EvalStats trace records
    ``trie_builds``/``seeks``/``leapfrog_rounds`` instead of per-binary-join
    intermediates.
    """
    with span("leapfrog_join") as sp:
        result = _leapfrog_join(relations, out_attributes, order, limit)
        if sp:
            sp.note(rows=len(result))
        return result


def _leapfrog_join(
    relations: Iterable[Relation],
    out_attributes: Sequence[str] | None,
    order: Sequence[str] | None,
    limit: int | None,
) -> Relation:
    stats = current_stats()
    start = perf_counter() if stats is not None else 0.0
    rels = list(relations)
    if not rels:
        return Relation.unit()

    union: list[str] = []
    seen: set[str] = set()
    for rel in rels:
        for a in rel.attributes:
            if a not in seen:
                seen.add(a)
                union.append(a)
    if order is None:
        var_order = variable_order(rels)
    else:
        var_order = tuple(order)
        if set(var_order) != seen or len(var_order) != len(seen):
            raise SchemaError(
                f"variable order {var_order!r} is not a permutation of the "
                f"joined attributes {tuple(sorted(seen))!r}"
            )
    if out_attributes is None:
        out_attrs = var_order
    else:
        out_attrs = tuple(out_attributes)
        if set(out_attrs) != seen or len(out_attrs) != len(seen):
            raise SchemaError(
                f"output scheme {out_attrs!r} is not a permutation of the "
                f"joined attributes {tuple(sorted(seen))!r}"
            )

    counters = _Counters()
    scanned = 0

    def finish(rows: Iterable[tuple]) -> Relation:
        result = Relation(out_attrs, rows)
        if stats is not None:
            stats.record(
                "leapfrog_join",
                scanned=scanned,
                emitted=len(result),
                trie_builds=counters.tries,
                seeks=counters.seeks,
                leapfrog_rounds=counters.rounds,
                intern_tables=1 if counters.tries else 0,
                seconds=perf_counter() - start,
                intermediate=len(result),
            )
        return result

    if any(not rel for rel in rels):
        return finish(())

    scanned = sum(len(rel) for rel in rels)
    codec, identity = _shared_codec(rels)

    # Per-relation tries; a nullary (and nonempty) relation is the join
    # identity and simply does not participate.
    tries: list[tuple[TrieRelation, TrieCursor]] = []
    for rel in rels:
        if not rel.attributes:
            continue
        rows = rel.tuples if identity else (codec.encode_row(t) for t in rel)
        trie = TrieRelation(
            rel.attributes,
            rows,
            [a for a in var_order if a in rel.attributes],
            counters,
        )
        tries.append((trie, trie.cursor(counters)))

    participants: list[list[TrieCursor]] = [
        [cursor for trie, cursor in tries if v in trie.levels] for v in var_order
    ]
    n_vars = len(var_order)
    out_positions = [var_order.index(a) for a in out_attrs]
    binding: list[int] = [0] * n_vars
    out_rows: list[tuple] = []
    values = codec.values

    def emit() -> bool:
        if identity:
            row = tuple(binding[p] for p in out_positions)
        else:
            row = tuple(values[binding[p]] for p in out_positions)
        out_rows.append(row)
        return limit is not None and len(out_rows) >= limit

    if n_vars == 0:
        # Every operand is the nullary unit: the join is the unit.
        out_rows.append(())
        return finish(out_rows)

    def enumerate_level(level: int) -> bool:
        cursors = participants[level]
        for c in cursors:
            c.open()
        lf = Leapfrog(cursors, counters)
        stop = False
        while not lf.at_end:
            binding[level] = lf.key()
            if level == n_vars - 1:
                stop = emit()
            else:
                stop = enumerate_level(level + 1)
            if stop:
                break
            lf.next()
        for c in cursors:
            c.up()
        return stop

    enumerate_level(0)
    return finish(out_rows)


def leapfrog_natural_join(left: Relation, right: Relation) -> Relation:
    """Binary :func:`leapfrog_join` with the binary operators' output scheme
    (``left``'s attributes followed by ``right``'s private ones), so
    ``execution="wcoj"`` slots into :func:`repro.relational.algebra.natural_join`.
    """
    left_set = set(left.attributes)
    out_attrs = left.attributes + tuple(
        a for a in right.attributes if a not in left_set
    )
    return leapfrog_join([left, right], out_attributes=out_attrs)


def trie_semijoin(left: Relation, right: Relation) -> Relation:
    """The semijoin ``left ⋉ right`` by trie probes.

    ``right`` is projected onto the canonical (sorted) shared key and sorted
    into a :class:`TrieRelation`; each ``left`` row walks the trie one level
    at a time with a bisection per level (counted as a ``seek``).  A probe
    value outside ``right``'s interned universe cannot match and misses
    immediately.  With an empty shared key the trie has one empty row iff
    ``right`` is nonempty — the degenerate semijoin semantics.
    """
    with span("trie_semijoin") as sp:
        result = _trie_semijoin(left, right)
        if sp:
            sp.note(rows=len(result))
        return result


def _trie_semijoin(left: Relation, right: Relation) -> Relation:
    stats = current_stats()
    start = perf_counter() if stats is not None else 0.0
    left_set = set(left.attributes)
    key = tuple(sorted(a for a in right.attributes if a in left_set))
    left_key = [left.index_of(a) for a in key]

    from repro.relational.interning import Codec

    counters = _Counters()
    right_key = [right.index_of(a) for a in key]
    codec = Codec(t[i] for t in right for i in right_key)
    codes = codec.code_map  # value → code; an absent value cannot match
    trie = TrieRelation(
        key,
        (tuple(codes[t[i]] for i in right_key) for t in right),
        key,
        counters,
    )
    cols, size = trie.cols, trie.size
    hits = misses = 0

    def matches(row: tuple) -> bool:
        nonlocal hits, misses
        lo, hi = 0, size
        for d, i in enumerate(left_key):
            code = codes.get(row[i])
            if code is None:
                misses += 1
                return False
            col = cols[d]
            pos = bisect_left(col, code, lo, hi)
            counters.seeks += 1
            if pos >= hi or col[pos] != code:
                misses += 1
                return False
            lo = pos
            hi = bisect_right(col, code, pos, hi)
        hits += 1
        return True

    if size == 0:
        result = Relation(left.attributes, ())
        misses = len(left)
    else:
        result = Relation(left.attributes, (t for t in left if matches(t)))
    if stats is not None:
        stats.record(
            "semijoin",
            scanned=len(left) + len(right),
            probes=len(left),
            index_hits=hits,
            probe_misses=misses,
            emitted=len(result),
            trie_builds=counters.tries,
            seeks=counters.seeks,
            intern_tables=1,
            seconds=perf_counter() - start,
        )
    return result
