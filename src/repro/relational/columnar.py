"""Columnar code-space storage — struct-of-arrays relations + batched kernels.

Marx (*Modern Lower Bound Techniques in Database Theory and Constraint
Satisfaction*, 2022) fixes the asymptotics of join and CSP evaluation by
conditional lower bounds, so the wall-clock headroom left on the tutorial's
workloads is constant-factor.  This module buys that factor with a physical
layer change: a :class:`~repro.relational.relation.Relation` gains a lazily
built, memoized :class:`ColumnStore` — one stdlib ``array('q')`` of interned
codes per column (struct of arrays, zero-copy ``memoryview``-able), sharing
the dense-int :class:`~repro.relational.interning.Codec` discipline of the
interned data plane — and the hot per-row loops become whole-column sweeps:

* :func:`mask_select` — selection as a predicate mask applied per column
  (each predicate runs once per *distinct* value, not once per row);
* :func:`batched_semijoin` / :func:`batched_natural_join` — the hash-join
  probe as one batched column lookup against the radix-packed
  :class:`~repro.relational.relation.CodeIndex` (all probe keys packed and
  filtered at once, only the matching rows reach the Python emit loop);
* :func:`project_distinct` — projection/dedup over packed single-int key
  arrays;
* :func:`join_all_columnar` — the multi-way fold kept columnar end to end:
  intermediates stay code matrices, binary joins run sort + batched
  ``searchsorted`` range expansion, and tuples materialize exactly once at
  the decode boundary.

When numpy is importable (:func:`numpy_backend`, auto-detected and cached)
the sweeps run as vectorized ``int64`` array operations over zero-copy
``np.frombuffer`` views of the stdlib arrays; without it every kernel falls
back to a pure-stdlib loop over the same columns, computing the identical
result — the fallback is differentially tested by masking numpy out of
``sys.modules``.  Either way the row path remains the oracle: the
differential matrix pins ``execution="columnar"`` to exact row-set
agreement with ``scan``/``indexed``/``interned``/``wcoj``.

Accounting is honest, mirroring :func:`repro.relational.algebra.warm_index`:
the query whose probe first columnizes a relation is charged the build
(``EvalStats.column_builds`` + tuples scanned), and every batched probe
sweep is counted in ``EvalStats.batch_probes``.
"""

from __future__ import annotations

from array import array
from time import perf_counter
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.relational.interning import Codec, fold_codec
from repro.relational.planner import choose_build_side
from repro.relational.relation import CodeIndex, Relation
from repro.relational.stats import current_stats
from repro.telemetry.spans import span

__all__ = [
    "PACKED_KEY_SPACE_CAP",
    "ColumnStore",
    "column_store",
    "warm_columns",
    "numpy_backend",
    "reset_numpy_backend",
    "mask_select",
    "batched_semijoin",
    "batched_natural_join",
    "project_distinct",
    "join_all_columnar",
    "ColumnarFallback",
]

#: Largest packed-key space the batched kernels push through a signed
#: 64-bit numpy lane.  Beyond it the radix fold could overflow, so probes
#: revert to per-row Python ints (which are unbounded) and
#: :func:`join_all_columnar` raises :class:`ColumnarFallback` to hand the
#: fold back to the binary columnar operators.
PACKED_KEY_SPACE_CAP = 1 << 62


class ColumnarFallback(Exception):
    """Raised by :func:`join_all_columnar` when a fold step cannot run in
    64-bit packed-key space; the caller reruns the fold with the binary
    columnar operators (same result, per-join probing)."""


_UNSET = object()
_numpy: Any = _UNSET


def numpy_backend():
    """The ``numpy`` module when importable, else ``None`` (cached).

    The columnar kernels consult this once per call; both answers produce
    identical relations, so environments without numpy (the CI tier-1
    matrix installs none) run the stdlib fallback transparently.
    """
    global _numpy
    if _numpy is _UNSET:
        try:
            import numpy as np
        except ImportError:
            np = None
        _numpy = np
    return _numpy


def reset_numpy_backend() -> None:
    """Drop the cached numpy detection (test hook for ``sys.modules``
    masking — the numpy-absent differential wall re-detects after this)."""
    global _numpy
    _numpy = _UNSET


class ColumnStore:
    """Struct-of-arrays storage for one relation's rows, in code space.

    One :class:`~repro.relational.interning.Codec` interns the relation's
    active domain (codes in ``repr`` order, as everywhere else); each column
    is an ``array('q')`` of codes, positionally aligned with ``rows``.
    Stores are built lazily by :func:`column_store` and memoized on the
    relation (relations are immutable, so a built store is valid forever) —
    exactly the :meth:`~repro.relational.relation.Relation.index_on`
    discipline.

    Attributes
    ----------
    attributes:
        The relation's scheme.
    codec:
        The relation-wide value ↔ code bijection.
    rows:
        The original row tuples, in the store's fixed positional order.
    nrows:
        ``len(rows)``.
    columns:
        One ``array('q')`` of codes per attribute (same order as
        ``attributes``).
    """

    __slots__ = ("attributes", "codec", "rows", "nrows", "columns", "_np_columns")

    def __init__(self, relation: Relation):
        self.attributes = relation.attributes
        self.rows: tuple[tuple[Any, ...], ...] = tuple(relation.tuples)
        self.nrows = len(self.rows)
        self.codec = Codec(v for t in self.rows for v in t)
        code_map = self.codec.code_map
        self.columns: tuple[array, ...] = tuple(
            array("q", (code_map[t[j]] for t in self.rows))
            for j in range(len(self.attributes))
        )
        self._np_columns: tuple | None = None

    def column_view(self, position: int) -> memoryview:
        """A zero-copy ``memoryview`` of one code column."""
        return memoryview(self.columns[position])

    def np_columns(self) -> tuple | None:
        """Zero-copy ``np.int64`` views of the columns, or ``None`` without
        numpy.  Built once and cached (the underlying buffers are shared
        with ``columns``, never copied)."""
        np = numpy_backend()
        if np is None:
            return None
        if self._np_columns is None:
            self._np_columns = tuple(
                np.frombuffer(col, dtype=np.int64)
                if len(col)
                else np.empty(0, dtype=np.int64)
                for col in self.columns
            )
        return self._np_columns

    def __getstate__(self) -> tuple:
        # The numpy views are zero-copy aliases of ``columns`` — derived
        # state that must not drag a second copy of every column across a
        # pickle boundary.  They rebuild lazily on the other side.
        return (self.attributes, self.codec, self.rows, self.nrows, self.columns)

    def __setstate__(self, state: tuple) -> None:
        self.attributes, self.codec, self.rows, self.nrows, self.columns = state
        self._np_columns = None

    def to_relation(self) -> Relation:
        """Decode the columns back to a relation (the round-trip law:
        ``column_store(r).to_relation() == r``)."""
        values = self.codec.values
        columns = self.columns
        return Relation(
            self.attributes,
            (tuple(values[col[i]] for col in columns) for i in range(self.nrows)),
        )


def column_store(relation: Relation) -> ColumnStore:
    """The relation's memoized :class:`ColumnStore`, building it on first use.

    The build is charged to the active
    :class:`~repro.relational.stats.EvalStats` of the *building* query —
    one ``column_builds``, the full row count as ``tuples_scanned``, one
    ``intern_tables`` for the codec — mirroring :func:`warm_index`'s
    honest-charge rule.  A memoized hit charges nothing.
    """
    store = relation._column_store
    if store is not None:
        return store
    stats = current_stats()
    start = perf_counter() if stats is not None else 0.0
    store = ColumnStore(relation)
    relation._column_store = store
    if stats is not None:
        stats.record(
            "column_build",
            scanned=len(relation),
            column_builds=1,
            intern_tables=1,
            seconds=perf_counter() - start,
        )
    return store


def warm_columns(relation: Relation, attributes: Iterable[str] | None = None) -> bool:
    """Pre-build ``relation``'s column store (and, when ``attributes`` is
    given, its radix-packed code index on the canonical sorted key),
    charging the builds to the active EvalStats.

    The columnar counterpart of
    :func:`repro.relational.algebra.warm_index`: the Datalog engine warms
    its static EDB relations so every semi-naive round after the first
    probes pre-paid structures.  Returns ``True`` iff anything was built.
    """
    built = relation._column_store is None
    column_store(relation)
    if attributes is None:
        return built
    key = tuple(sorted(attributes))
    if relation.has_code_index(key):
        return built
    stats = current_stats()
    start = perf_counter() if stats is not None else 0.0
    index = relation.code_index_on(key)
    if stats is not None:
        stats.record(
            "index_build",
            scanned=len(relation),
            index_builds=1,
            intern_tables=1,
            bitset_words=index.words,
            seconds=perf_counter() - start,
        )
    return True


# -- selection ---------------------------------------------------------------


def mask_select(
    relation: Relation, predicates: Mapping[str, Callable[[Any], bool]]
) -> Relation:
    """Columnar selection: keep the rows satisfying every per-attribute
    predicate — ``select(r, lambda row: all(p(row[a]) for a, p in ...))``
    is the row oracle.

    Each predicate is evaluated once per *distinct* value of the relation's
    interned universe (an allowed-by-code lookup table), then applied to
    the whole column as a boolean mask; the masks AND together and the
    surviving rows are gathered in one pass.  ``EvalStats.mask_ops`` counts
    one operation per row per masked column.
    """
    with span("mask_select", columns=len(predicates)) as sp:
        stats = current_stats()
        start = perf_counter() if stats is not None else 0.0
        store = column_store(relation)
        values = store.codec.values
        mask_ops = 0
        np = numpy_backend()
        if np is not None:
            keep = np.ones(store.nrows, dtype=bool)
            cols = store.np_columns()
            for attr, pred in predicates.items():
                lut = np.fromiter(
                    (bool(pred(v)) for v in values), dtype=bool, count=len(values)
                )
                keep &= lut[cols[relation.index_of(attr)]]
                mask_ops += store.nrows
            kept = [store.rows[i] for i in np.nonzero(keep)[0].tolist()]
        else:
            tests = []
            for attr, pred in predicates.items():
                allowed = {c for c, v in enumerate(values) if pred(v)}
                tests.append((store.columns[relation.index_of(attr)], allowed))
                mask_ops += store.nrows
            kept = [
                row
                for i, row in enumerate(store.rows)
                if all(col[i] in allowed for col, allowed in tests)
            ]
        result = Relation(relation.attributes, kept)
        if stats is not None:
            stats.record(
                "select",
                scanned=len(relation),
                emitted=len(result),
                mask_ops=mask_ops,
                seconds=perf_counter() - start,
            )
        if sp:
            sp.note(rows=len(result))
        return result


# -- batched probing against a CodeIndex -------------------------------------


def _bitmap_bools(mask: int, nbits: int, np):
    """A dense CodeIndex membership bitmap as a numpy bool array."""
    raw = np.frombuffer(mask.to_bytes((nbits + 7) // 8, "little"), dtype=np.uint8)
    return np.unpackbits(raw, bitorder="little")[:nbits].astype(bool)


def _probe_batch(
    store: ColumnStore, key_positions: Sequence[int], index: CodeIndex
) -> tuple[list[int], list[int], int, int, int]:
    """Probe every store row's packed key against ``index`` in one batch.

    Returns ``(positions, packed, hits, misses, mask_ops)`` where
    ``positions`` are the store-row positions whose key occurs in the
    index and ``packed`` the corresponding packed keys (aligned).  The
    translation from store codes to index codes is one lookup table over
    the store's *universe* (built once per probe, not per row).
    """
    base = index.base
    encode = index.encode
    values = store.codec.values
    np = numpy_backend()
    space = base ** len(key_positions)
    if np is not None and space <= PACKED_KEY_SPACE_CAP:
        lut = np.fromiter(
            (encode.get(v, -1) for v in values), dtype=np.int64, count=len(values)
        )
        cols = store.np_columns()
        valid = np.ones(store.nrows, dtype=bool)
        packed = np.zeros(store.nrows, dtype=np.int64)
        for j in key_positions:
            codes = lut[cols[j]]
            valid &= codes >= 0
            packed = packed * base + codes
        packed = np.where(valid, packed, 0)
        if index.dense:
            occupied = _bitmap_bools(index.member_mask, space, np)
            hit = valid & occupied[packed]
            mask_ops = store.nrows
        else:
            buckets = index.buckets
            hit = valid.copy()
            packed_list = packed.tolist()
            for i in np.nonzero(valid)[0].tolist():
                if packed_list[i] not in buckets:
                    hit[i] = False
            mask_ops = 0
        positions = np.nonzero(hit)[0].tolist()
        hit_packed = packed[hit].tolist()
        hits = len(positions)
        return positions, hit_packed, hits, store.nrows - hits, mask_ops
    # stdlib fallback: the same sweep with Python ints (unbounded, so no
    # packed-key-space cap applies here).
    lut_list = [encode.get(v, -1) for v in values]
    columns = store.columns
    dense = index.dense
    member = index.member_mask
    buckets = index.buckets
    positions: list[int] = []
    hit_packed: list[int] = []
    misses = mask_ops = 0
    for i in range(store.nrows):
        packed = 0
        ok = True
        for j in key_positions:
            code = lut_list[columns[j][i]]
            if code < 0:
                ok = False
                break
            packed = packed * base + code
        if ok:
            if dense:
                mask_ops += 1
                ok = bool((member >> packed) & 1)
            else:
                ok = packed in buckets
        if ok:
            positions.append(i)
            hit_packed.append(packed)
        else:
            misses += 1
    return positions, hit_packed, len(positions), misses, mask_ops


def _canonical_key(left: Relation, right: Relation) -> tuple[str, ...]:
    left_set = set(left.attributes)
    return tuple(sorted(a for a in right.attributes if a in left_set))


def batched_semijoin(left: Relation, right: Relation) -> Relation:
    """``left ⋉ right`` with the probe side columnized: every probe key is
    packed and tested against ``right``'s radix-packed code index in one
    batched sweep (``EvalStats.batch_probes`` counts the batch's rows).
    """
    stats = current_stats()
    start = perf_counter() if stats is not None else 0.0
    key = _canonical_key(left, right)
    store = column_store(left)
    built = not right.has_code_index(key)
    index = right.code_index_on(key)
    positions, _, hits, misses, mask_ops = _probe_batch(
        store, [left.index_of(a) for a in key], index
    )
    rows = store.rows
    result = Relation(left.attributes, (rows[i] for i in positions))
    if stats is not None:
        stats.record(
            "semijoin",
            scanned=len(left) + (len(right) if built else 0),
            probes=store.nrows,
            batch_probes=store.nrows,
            index_builds=1 if built else 0,
            index_hits=hits,
            probe_misses=misses,
            emitted=len(result),
            intern_tables=1 if built else 0,
            bitset_words=index.words if built else 0,
            mask_ops=mask_ops,
            seconds=perf_counter() - start,
        )
    return result


def batched_natural_join(left: Relation, right: Relation) -> Relation:
    """``left ⋈ right`` with a columnized probe side: the build side owns
    the memoized :class:`~repro.relational.relation.CodeIndex` (the planner
    picks it exactly as in the interned execution), the probe side's key
    columns are packed and membership-filtered in one batch, and only the
    matching rows enter the Python emit loop.
    """
    stats = current_stats()
    start = perf_counter() if stats is not None else 0.0
    left_set = set(left.attributes)
    key = tuple(sorted(a for a in right.attributes if a in left_set))
    right_private = [a for a in right.attributes if a not in left_set]
    right_private_idx = [right.index_of(a) for a in right_private]
    out_attrs = left.attributes + tuple(right_private)

    build_side = choose_build_side(left, right, key, interned=True)
    build, probe = (right, left) if build_side == "right" else (left, right)
    store = column_store(probe)
    built = not build.has_code_index(key)
    index = build.code_index_on(key)
    positions, packed, hits, misses, mask_ops = _probe_batch(
        store, [probe.index_of(a) for a in key], index
    )
    lookup = index.lookup()
    rows = store.rows

    def joined():
        if build_side == "right":
            for i, p in zip(positions, packed):
                pt = rows[i]
                for rt in lookup(p):
                    yield pt + tuple(rt[k] for k in right_private_idx)
        else:
            for i, p in zip(positions, packed):
                pt = rows[i]
                for lt in lookup(p):
                    yield lt + tuple(pt[k] for k in right_private_idx)

    result = Relation(out_attrs, joined())
    if stats is not None:
        stats.record(
            "natural_join",
            scanned=len(probe) + (len(build) if built else 0),
            probes=store.nrows,
            batch_probes=store.nrows,
            index_builds=1 if built else 0,
            index_hits=hits,
            probe_misses=misses,
            emitted=len(result),
            intern_tables=1 if built else 0,
            bitset_words=index.words if built else 0,
            mask_ops=mask_ops,
            seconds=perf_counter() - start,
            intermediate=len(result),
        )
    return result


# -- projection / dedup ------------------------------------------------------


def project_distinct(relation: Relation, attributes: Sequence[str]) -> Relation:
    """Projection with dedup over packed key arrays — the columnar
    counterpart of :func:`repro.relational.algebra.project` (same result).

    Each row's projected columns fold into one radix-packed int; dedup is
    then a single ``np.unique`` over the packed array (a set of small ints
    in the fallback), and only the distinct keys are unpacked and decoded.
    """
    with span("project") as sp:
        stats = current_stats()
        start = perf_counter() if stats is not None else 0.0
        attrs = tuple(attributes)
        store = column_store(relation)
        positions = [relation.index_of(a) for a in attrs]
        base = max(1, len(store.codec))
        values = store.codec.values
        np = numpy_backend()
        if (
            np is not None
            and positions
            and base ** len(positions) <= PACKED_KEY_SPACE_CAP
        ):
            cols = store.np_columns()
            packed = np.zeros(store.nrows, dtype=np.int64)
            for j in positions:
                packed = packed * base + cols[j]
            distinct = np.unique(packed)
            code_cols = []
            rem = distinct
            for _ in positions:
                code_cols.append(rem % base)
                rem = rem // base
            code_cols.reverse()
            tuples = [
                tuple(values[c] for c in codes)
                for codes in zip(*(col.tolist() for col in code_cols))
            ]
            result = Relation(attrs, tuples)
        else:
            rows = store.rows
            result = Relation(attrs, (tuple(t[j] for j in positions) for t in rows))
        if stats is not None:
            stats.record(
                "project",
                scanned=len(relation),
                emitted=len(result),
                batch_probes=store.nrows if np is not None else 0,
                seconds=perf_counter() - start,
            )
        if sp:
            sp.note(rows=len(result))
        return result


# -- the multi-way columnar fold ---------------------------------------------


def join_all_columnar(pending: Sequence[Relation]) -> Relation:
    """The :func:`repro.relational.algebra.join_all` fold, columnar end to
    end (numpy required — callers check :func:`numpy_backend` first).

    One shared codec interns the union of the operands' active domains (as
    in the interned pipeline); every operand's memoized column store is
    translated into shared-code ``int64`` columns; each binary fold step is
    a batched sort-merge probe — pack both sides' keys, ``argsort`` the
    smaller side, ``searchsorted`` every probe key at once, expand the
    match ranges with ``repeat``/``arange`` arithmetic — and intermediates
    stay column matrices.  Tuples materialize exactly once, at the final
    decode boundary.  Natural joins of duplicate-free relations are
    duplicate-free, so no intermediate needs a dedup pass.

    Raises :class:`ColumnarFallback` when a fold step's packed key space
    exceeds the 64-bit lane; the caller reruns with the binary columnar
    operators.
    """
    np = numpy_backend()
    stats = current_stats()
    start = perf_counter() if stats is not None else 0.0
    if not pending:
        return Relation.unit()
    # The shared codec interns the union of the operands' active domains,
    # memoized per fold (:func:`repro.relational.interning.fold_codec`): a
    # warm re-fold of the same relations — Datalog rounds, repeated
    # solvability checks, per-shard fans — skips the repr-sort entirely,
    # and the interned pipeline folding the same relations shares the
    # identical codec object.
    stores = [column_store(rel) for rel in pending]
    codec, codec_built = fold_codec(pending)
    # The identity-codec fast path of the interned pipeline: a universe
    # that is already the dense ints 0..n-1 (in repr order) interns to
    # itself, so the decode boundary can emit the codes directly.
    identity = all(type(v) is int and v == i for i, v in enumerate(codec.values))
    base = max(1, len(codec))
    code_map = codec.code_map
    if stats is not None:
        stats.record(
            "columnar_encode",
            intern_tables=1 if codec_built else 0,
            codec_cache_hits=0 if codec_built else 1,
            seconds=perf_counter() - start,
        )

    def operand(store: ColumnStore) -> tuple[list[str], list, int]:
        lut = np.fromiter(
            (code_map[v] for v in store.codec.values),
            dtype=np.int64,
            count=len(store.codec),
        )
        return (
            list(store.attributes),
            [lut[col] for col in store.np_columns()],
            store.nrows,
        )

    def empty_result(seen_attrs: list[str]) -> Relation:
        all_attrs = list(seen_attrs)
        for other in pending:
            for a in other.attributes:
                if a not in all_attrs:
                    all_attrs.append(a)
        return Relation.empty(all_attrs)

    cur_attrs, cur_cols, cur_rows = operand(stores[0])
    for store in stores[1:]:
        r_attrs, r_cols, r_nrows = operand(store)
        step_start = perf_counter() if stats is not None else 0.0
        cur_set = set(cur_attrs)
        shared = sorted(a for a in r_attrs if a in cur_set)
        private = [a for a in r_attrs if a not in cur_set]
        if shared and base ** len(shared) > PACKED_KEY_SPACE_CAP:
            raise ColumnarFallback(
                f"packed key space {base}^{len(shared)} exceeds the 64-bit lane"
            )

        def pack(cols: list, key_positions: list[int], nrows: int):
            packed = np.zeros(nrows, dtype=np.int64)
            for j in key_positions:
                packed = packed * base + cols[j]
            return packed

        cur_packed = pack(cur_cols, [cur_attrs.index(a) for a in shared], cur_rows)
        rel_packed = pack(r_cols, [r_attrs.index(a) for a in shared], r_nrows)
        # The smaller side pays the sort (the build-side rule); either
        # choice yields the same rows.
        build_is_cur = cur_rows <= r_nrows
        build_p, probe_p = (
            (cur_packed, rel_packed) if build_is_cur else (rel_packed, cur_packed)
        )
        order = np.argsort(build_p, kind="stable")
        sorted_keys = build_p[order]
        lo = np.searchsorted(sorted_keys, probe_p, side="left")
        hi = np.searchsorted(sorted_keys, probe_p, side="right")
        counts = hi - lo
        total = int(counts.sum())
        if stats is not None:
            stats.record(
                "natural_join",
                scanned=cur_rows + r_nrows,
                probes=len(probe_p),
                batch_probes=len(probe_p),
                index_hits=int((counts > 0).sum()),
                probe_misses=int((counts == 0).sum()),
                emitted=total,
                seconds=perf_counter() - step_start,
                intermediate=total,
            )
        if total == 0:
            return empty_result(cur_attrs)
        probe_idx = np.repeat(np.arange(len(probe_p)), counts)
        offsets = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
        build_idx = order[np.repeat(lo, counts) + offsets]
        cur_take, rel_take = (
            (build_idx, probe_idx) if build_is_cur else (probe_idx, build_idx)
        )
        new_cols = [col[cur_take] for col in cur_cols]
        for a in private:
            new_cols.append(r_cols[r_attrs.index(a)][rel_take])
        cur_attrs = cur_attrs + private
        cur_cols = new_cols
        cur_rows = total

    decode_start = perf_counter() if stats is not None else 0.0
    if not cur_attrs:
        result = Relation((), [()] if cur_rows else [])
    else:
        code_rows = zip(*(col.tolist() for col in cur_cols))
        if identity:
            tuples: Iterable[tuple] = code_rows
        else:
            values = codec.values
            tuples = (tuple(values[c] for c in row) for row in code_rows)
        result = Relation(cur_attrs, tuples)
    if stats is not None:
        stats.record(
            "columnar_decode",
            scanned=cur_rows,
            emitted=len(result),
            seconds=perf_counter() - decode_start,
        )
    return result
