"""Relational substrate: relations, algebra, structures, homomorphisms.

This subpackage provides the database-theoretic foundation used by the rest
of the library (Section 2 of the tutorial): named-attribute relations with a
full relational algebra, finite relational structures over vocabularies, and
homomorphism search between structures.
"""

from repro.relational.algebra import (
    DEFAULT_EXECUTION,
    DEFAULT_STRATEGY,
    difference,
    division,
    intersection,
    join_all,
    natural_join,
    product,
    project,
    rename,
    select,
    semijoin,
    union,
    warm_index,
)
from repro.relational.planner import (
    EXECUTIONS,
    STRATEGIES,
    JoinPlan,
    choose_build_side,
    order_relations,
    parse_strategy,
    plan_join,
)
from repro.relational.stats import EvalStats, collect_stats, current_stats
from repro.relational.wcoj import (
    Leapfrog,
    TrieCursor,
    TrieRelation,
    leapfrog_intersect,
    leapfrog_join,
    trie_semijoin,
    variable_order,
)
from repro.relational.core import (
    core,
    homomorphically_equivalent,
    is_core,
    retract_to,
)
from repro.relational.homomorphism import (
    all_homomorphisms,
    count_homomorphisms,
    find_homomorphism,
    homomorphism_exists,
    is_homomorphism,
    is_partial_homomorphism,
)
from repro.relational.relation import Relation
from repro.relational.structure import (
    SUM_DOMAIN_LEFT,
    SUM_DOMAIN_RIGHT,
    Structure,
    Vocabulary,
    sum_structure,
)

__all__ = [
    "Relation",
    "Structure",
    "Vocabulary",
    "sum_structure",
    "SUM_DOMAIN_LEFT",
    "SUM_DOMAIN_RIGHT",
    "project",
    "select",
    "rename",
    "natural_join",
    "join_all",
    "semijoin",
    "warm_index",
    "union",
    "intersection",
    "difference",
    "product",
    "division",
    "DEFAULT_STRATEGY",
    "DEFAULT_EXECUTION",
    "STRATEGIES",
    "EXECUTIONS",
    "JoinPlan",
    "plan_join",
    "order_relations",
    "parse_strategy",
    "choose_build_side",
    "EvalStats",
    "collect_stats",
    "current_stats",
    "Leapfrog",
    "TrieCursor",
    "TrieRelation",
    "leapfrog_intersect",
    "leapfrog_join",
    "trie_semijoin",
    "variable_order",
    "is_homomorphism",
    "is_partial_homomorphism",
    "find_homomorphism",
    "all_homomorphisms",
    "count_homomorphisms",
    "homomorphism_exists",
    "core",
    "is_core",
    "retract_to",
    "homomorphically_equivalent",
]
