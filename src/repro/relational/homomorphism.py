"""Homomorphisms between relational structures.

A homomorphism from ``A`` to ``B`` (over the same vocabulary) is a mapping
``h`` from the domain of ``A`` to the domain of ``B`` such that every tuple of
every relation of ``A`` is mapped, component-wise, into the corresponding
relation of ``B`` (footnote 1 of the tutorial).  By the observation of
Feder–Vardi [21] recounted in Section 2, deciding the existence of such a
homomorphism *is* constraint satisfaction.

This module provides the semantic checks and a backtracking search with
tuple-directed pruning.  Higher-level solvers (join evaluation,
k-consistency, tree-decomposition dynamic programming) live in
:mod:`repro.csp.solvers` and are all validated against this one.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

from repro.errors import VocabularyError
from repro.relational.structure import Structure

__all__ = [
    "is_homomorphism",
    "is_partial_homomorphism",
    "find_homomorphism",
    "all_homomorphisms",
    "count_homomorphisms",
    "homomorphism_exists",
]


def _require_same_vocabulary(a: Structure, b: Structure) -> None:
    if a.vocabulary != b.vocabulary:
        raise VocabularyError(
            f"homomorphism requires a common vocabulary, got "
            f"{a.vocabulary!r} and {b.vocabulary!r}"
        )


def is_homomorphism(mapping: Mapping[Any, Any], a: Structure, b: Structure) -> bool:
    """Whether ``mapping`` is a (total) homomorphism from ``a`` to ``b``.

    ``mapping`` must be defined on every element of the domain of ``a`` and
    take values in the domain of ``b``.
    """
    _require_same_vocabulary(a, b)
    if set(mapping) != set(a.domain):
        return False
    if not set(mapping.values()) <= set(b.domain):
        return False
    for symbol in a.vocabulary:
        target = b.relation(symbol)
        for t in a.relation(symbol):
            if tuple(mapping[v] for v in t) not in target:
                return False
    return True


def is_partial_homomorphism(
    mapping: Mapping[Any, Any], a: Structure, b: Structure
) -> bool:
    """Whether ``mapping`` (defined on a subset of ``a``'s domain) preserves
    every tuple of ``a`` that lies entirely inside its domain.

    This is the notion of *k-partial homomorphism* used throughout
    Sections 4–5 of the tutorial (with ``k`` bounding the domain size).
    """
    _require_same_vocabulary(a, b)
    if not set(mapping) <= set(a.domain):
        return False
    if not set(mapping.values()) <= set(b.domain):
        return False
    dom = set(mapping)
    for symbol in a.vocabulary:
        target = b.relation(symbol)
        for t in a.relation(symbol):
            if all(v in dom for v in t):
                if tuple(mapping[v] for v in t) not in target:
                    return False
    return True


def _tuples_by_element(a: Structure) -> dict[Any, list[tuple[str, tuple]]]:
    """Index: element of A ↦ list of (symbol, tuple) facts mentioning it."""
    index: dict[Any, list[tuple[str, tuple]]] = {v: [] for v in a.domain}
    for symbol in a.vocabulary:
        for t in a.relation(symbol):
            for v in set(t):
                index[v].append((symbol, t))
    return index


def _connectivity_order(a: Structure, facts_of: dict) -> list[Any]:
    """A maximum-cardinality-search ordering: start from the element in the
    most facts, then repeatedly take the element sharing the most facts with
    those already placed.  Keeps consecutive variables connected, so each
    assignment instantiates constraints early — crucial on chain/tree-shaped
    structures, where degree-only orderings degenerate to exponential search.

    The shared-fact counts are maintained incrementally: placing ``v`` bumps
    the count of each element of each *newly* placed fact, instead of
    re-scanning every remaining element's fact list on every selection.
    ``shared[u]`` always equals ``|facts_of[u] ∩ placed_facts|`` (a fact
    containing ``u`` is counted exactly once, when it first enters
    ``placed_facts``), so the order is identical to the rescanning version's.
    """
    remaining = set(a.domain)
    order: list[Any] = []
    placed_facts: set[tuple[str, tuple]] = set()
    shared = {v: 0 for v in remaining}
    base = {v: (len(facts_of[v]), repr(v)) for v in remaining}

    def weight(v: Any) -> tuple[int, int, str]:
        return (shared[v], *base[v])

    while remaining:
        v = max(remaining, key=weight)
        remaining.discard(v)
        order.append(v)
        for f in facts_of[v]:
            if f in placed_facts:
                continue
            placed_facts.add(f)
            for u in set(f[1]):
                if u in remaining:
                    shared[u] += 1
    return order


def _search(a: Structure, b: Structure) -> Iterator[dict[Any, Any]]:
    """Backtracking enumeration of all homomorphisms ``a → b``.

    Variables (elements of ``a``) follow a connectivity-aware ordering;
    after each assignment only the newly fully-instantiated facts are
    re-checked.
    """
    _require_same_vocabulary(a, b)
    facts_of = _tuples_by_element(a)
    order = _connectivity_order(a, facts_of)
    b_domain = sorted(b.domain, key=repr)
    assignment: dict[Any, Any] = {}

    def consistent(var: Any) -> bool:
        for symbol, t in facts_of[var]:
            if all(u in assignment for u in t):
                if tuple(assignment[u] for u in t) not in b.relation(symbol):
                    return False
        return True

    def extend(pos: int) -> Iterator[dict[Any, Any]]:
        if pos == len(order):
            yield dict(assignment)
            return
        var = order[pos]
        for value in b_domain:
            assignment[var] = value
            if consistent(var):
                yield from extend(pos + 1)
            del assignment[var]

    yield from extend(0)


def all_homomorphisms(a: Structure, b: Structure) -> Iterator[dict[Any, Any]]:
    """Iterate every homomorphism from ``a`` to ``b``."""
    return _search(a, b)


def find_homomorphism(a: Structure, b: Structure) -> dict[Any, Any] | None:
    """Return one homomorphism from ``a`` to ``b``, or ``None`` if none exists.

    Routed through the MAC backtracking solver on the "broken-up" CSP
    instance (Section 2's other direction): maintaining arc consistency
    during search is what keeps refutations polynomial on propagation-
    friendly inputs (chains, trees), where the plain enumeration search of
    :func:`all_homomorphisms` would degrade to exhausting the value space.
    """
    _require_same_vocabulary(a, b)
    from repro.csp.convert import homomorphism_to_csp
    from repro.csp.solvers import backtracking

    solution = backtracking.solve(homomorphism_to_csp(a, b))
    if solution is None:
        return None
    return dict(solution)


def homomorphism_exists(a: Structure, b: Structure) -> bool:
    """Decide ``CSP(A, B)``: is there a homomorphism from ``a`` to ``b``?"""
    return find_homomorphism(a, b) is not None


def count_homomorphisms(a: Structure, b: Structure) -> int:
    """The number of homomorphisms from ``a`` to ``b``."""
    return sum(1 for _ in _search(a, b))
