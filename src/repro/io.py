"""Serialization: fact files, DIMACS, and JSON round trips.

Interchange formats for the library's main objects:

* **fact files** — structures as Datalog-style ground facts
  (``E(1, 2).``), the natural format for the homomorphism/CSP view;
* **DIMACS cnf** — the standard SAT interchange format, read into
  :class:`~repro.dichotomy.cnf.CNF`;
* **DIMACS edge** (``p edge n m`` / ``e u v``) — graphs for the
  coloring/width machinery;
* **JSON** — CSP instances, for configuration-driven benchmarks.

All readers accept strings; ``*_file`` variants take paths.  Writers are
inverse to readers (round-trip property-tested).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.cq.parser import _Cursor, _tokenize
from repro.csp.instance import Constraint, CSPInstance
from repro.dichotomy.cnf import CNF
from repro.errors import ParseError
from repro.relational.structure import Structure, Vocabulary
from repro.width.graph import Graph

__all__ = [
    "structure_to_facts",
    "structure_from_facts",
    "cnf_from_dimacs",
    "cnf_to_dimacs",
    "graph_from_dimacs",
    "graph_to_dimacs",
    "instance_to_json",
    "instance_from_json",
    "load_structure",
    "save_structure",
]


# -- structures as fact files ---------------------------------------------------


def structure_to_facts(structure: Structure) -> str:
    """Serialize a structure as ground facts, one per line, with a header
    comment recording the full domain (isolated elements included)."""
    lines = [
        "% domain: " + " ".join(repr(v) for v in sorted(structure.domain, key=repr))
    ]
    lines.append(
        "% arities: "
        + " ".join(f"{s}/{a}" for s, a in sorted(structure.vocabulary.items()))
    )
    for symbol, t in structure.facts():
        args = ", ".join(repr(v) for v in t)
        lines.append(f"{symbol}({args}).")
    return "\n".join(lines) + "\n"


def structure_from_facts(text: str) -> Structure:
    """Parse a fact file back into a structure.

    Constants follow the CQ parser conventions (integers, quoted strings,
    lowercase names); the ``% domain:`` and ``% arities:`` headers, when
    present, restore isolated elements and empty relations.
    """
    domain: set[Any] = set()
    arities: dict[str, int] = {}
    facts: dict[str, list[tuple]] = {}

    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("%"):
            body = line[1:].strip()
            if body.startswith("domain:"):
                for token in body[len("domain:"):].split():
                    domain.add(_parse_value(token))
            elif body.startswith("arities:"):
                for entry in body[len("arities:"):].split():
                    name, _, arity = entry.partition("/")
                    arities[name] = int(arity)
            continue
        if not line.endswith("."):
            raise ParseError(f"fact line must end with '.': {line!r}")
        cursor = _Cursor(_tokenize(line[:-1]))
        kind, name = cursor.next()
        if kind != "name":
            raise ParseError(f"expected predicate name in {line!r}")
        cursor.expect("(")
        values: list[Any] = []
        tok = cursor.peek()
        if tok and tok[1] == ")":
            cursor.next()
        else:
            while True:
                values.append(_parse_value_token(cursor.next()))
                kind2, value2 = cursor.next()
                if value2 == ")":
                    break
                if value2 != ",":
                    raise ParseError(f"expected ',' or ')' in {line!r}")
        arities.setdefault(name, len(values))
        if arities[name] != len(values):
            raise ParseError(f"inconsistent arity for {name!r}")
        facts.setdefault(name, []).append(tuple(values))
        domain.update(values)

    return Structure(Vocabulary(arities), domain, facts)


def _parse_value(token: str) -> Any:
    if token.startswith("'") and token.endswith("'"):
        return token[1:-1]
    try:
        return int(token)
    except ValueError:
        return token


def _parse_value_token(token: tuple[str, str]) -> Any:
    kind, value = token
    if kind == "int":
        return int(value)
    if kind == "str":
        return value[1:-1]
    if kind == "name":
        return value
    raise ParseError(f"unexpected token in fact: {value!r}")


def save_structure(structure: Structure, path: str | Path) -> None:
    """Write a structure to a fact file."""
    Path(path).write_text(structure_to_facts(structure))


def load_structure(path: str | Path) -> Structure:
    """Read a structure from a fact file."""
    return structure_from_facts(Path(path).read_text())


# -- DIMACS CNF -----------------------------------------------------------------


def cnf_from_dimacs(text: str) -> CNF:
    """Parse DIMACS CNF (``p cnf n m`` header, clauses ended by 0)."""
    clauses: list[tuple[int, ...]] = []
    current: list[int] = []
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith(("c", "%")):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) < 2 or parts[1] != "cnf":
                raise ParseError(f"bad DIMACS header: {line!r}")
            continue
        for token in line.split():
            lit = int(token)
            if lit == 0:
                clauses.append(tuple(current))
                current = []
            else:
                current.append(lit)
    if current:
        clauses.append(tuple(current))  # tolerate a missing trailing 0
    return CNF(clauses)


def cnf_to_dimacs(formula: CNF, comment: str | None = None) -> str:
    """Serialize a CNF formula in DIMACS format (optionally with a comment)."""
    n = max(formula.variables, default=0)
    lines = []
    if comment:
        lines.append(f"c {comment}")
    lines.append(f"p cnf {n} {len(formula.clauses)}")
    for clause in formula.clauses:
        lines.append(" ".join(str(lit) for lit in clause) + " 0")
    return "\n".join(lines) + "\n"


# -- DIMACS graphs ----------------------------------------------------------------


def graph_from_dimacs(text: str) -> Graph:
    """Parse the DIMACS edge format (``p edge n m`` / ``e u v``), with
    1-based vertex ids preserved."""
    graph = Graph()
    declared = None
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("c"):
            continue
        parts = line.split()
        if parts[0] == "p":
            if len(parts) < 4 or parts[1] not in ("edge", "col"):
                raise ParseError(f"bad DIMACS graph header: {line!r}")
            declared = int(parts[2])
            for v in range(1, declared + 1):
                graph.add_vertex(v)
        elif parts[0] == "e":
            graph.add_edge(int(parts[1]), int(parts[2]))
        else:
            raise ParseError(f"unknown DIMACS graph line: {line!r}")
    return graph


def graph_to_dimacs(graph: Graph) -> str:
    """Serialize a graph in the DIMACS edge format (vertices renumbered 1..n)."""
    vertices = sorted(graph.vertices)
    index = {v: i + 1 for i, v in enumerate(vertices)}
    lines = [f"p edge {len(vertices)} {graph.num_edges()}"]
    for u, v in sorted(graph.edges(), key=lambda e: (index[e[0]], index[e[1]])):
        a, b = sorted((index[u], index[v]))
        lines.append(f"e {a} {b}")
    return "\n".join(lines) + "\n"


# -- CSP instances as JSON ----------------------------------------------------------


def instance_to_json(instance: CSPInstance) -> str:
    """Serialize an instance; variables/values must be JSON-representable
    (strings or numbers)."""
    payload = {
        "variables": list(instance.variables),
        "domain": sorted(instance.domain, key=repr),
        "constraints": [
            {"scope": list(c.scope), "relation": [list(row) for row in sorted(c.relation, key=repr)]}
            for c in instance.constraints
        ],
    }
    return json.dumps(payload, indent=2)


def instance_from_json(text: str) -> CSPInstance:
    """Parse a CSP instance serialized by :func:`instance_to_json`."""
    payload = json.loads(text)
    constraints = [
        Constraint(tuple(c["scope"]), [tuple(row) for row in c["relation"]])
        for c in payload["constraints"]
    ]
    return CSPInstance(payload["variables"], payload["domain"], constraints)
