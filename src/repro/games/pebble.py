"""The existential k-pebble game (Section 4 of the tutorial).

The game is played by the Spoiler (placing pebbles on elements of ``A``) and
the Duplicator (answering on elements of ``B``).  The Duplicator wins if he
can keep the pebbled correspondence a partial homomorphism forever.

Following Definition 4.2 and Proposition 5.1, the algorithmic object is the
*largest winning strategy* ``H^k(A, B)``: the largest family of partial
homomorphisms from ``A`` to ``B`` with domains of size at most ``k`` that is
closed under subfunctions and has the *k-forth property* (every member of
size < k extends within the family to any further element of ``A``).

It is computed by a greatest-fixpoint pruning: start from *all* partial
homomorphisms of size ≤ k and repeatedly delete

* any function of size < k that fails the forth property for some element,
  and
* any function some restriction of which has been deleted

until nothing changes.  This is the polynomial-time algorithm promised by
Theorem 4.5(2); the O(n^{2k})-shape bound of Theorem 4.7 is exercised by
``benchmarks/bench_e3_pebble_games.py``.

Like the §5 consistency engines, the pruning takes a ``strategy`` knob:
``"residual"`` (default) runs the delete-cascade on the shared
deduplicating worklist core of :mod:`repro.consistency.propagation` and
maintains a per-(function, element) count of surviving one-point
extensions, so the forth-failure check is O(1) instead of re-scanning
extension groups; ``"naive"`` is the seed implementation, kept as the
differential oracle; ``"interned"`` interns both structures to dense int
codes first (:mod:`repro.relational.interning`) so partial functions are
frozensets of small-int pairs — cheap to hash, compare, and restrict —
then runs the residual cascade in code space and decodes the surviving
family at the boundary.  All are instrumented with
:class:`~repro.consistency.propagation.PropagationStats` (a ``revision``
is one forth-check, a ``support check`` one extension-group inspection)
and publish into any active
:func:`~repro.consistency.propagation.collect_propagation` block.

Partial functions are represented as ``frozenset`` s of ``(a, b)`` pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations, product
from typing import Any, Iterable, Iterator

from repro.consistency.propagation import (
    PropagationStats,
    Worklist,
    check_propagation_strategy,
    publish,
)
from repro.errors import DomainError, VocabularyError
from repro.relational.homomorphism import is_partial_homomorphism
from repro.relational.interning import encode_structure
from repro.relational.structure import Structure

__all__ = [
    "PebbleGameResult",
    "solve_game",
    "duplicator_wins",
    "spoiler_wins",
    "largest_winning_strategy",
    "is_winning_strategy",
    "has_forth_property",
]

PartialFunction = frozenset  # frozenset of (a, b) pairs


def _as_mapping(f: PartialFunction) -> dict[Any, Any]:
    return dict(f)


def _all_partial_homomorphisms(
    a: Structure, b: Structure, k: int
) -> set[PartialFunction]:
    """All partial homomorphisms ``A → B`` with domain size ≤ k.

    Enumerated bottom-up: size-``i`` candidates are built by extending
    size-``i−1`` partial homomorphisms, so non-homomorphic branches are cut
    early.
    """
    a_elems = sorted(a.domain, key=repr)
    b_elems = sorted(b.domain, key=repr)
    homs: set[PartialFunction] = {frozenset()}
    frontier: set[PartialFunction] = {frozenset()}
    for _ in range(k):
        next_frontier: set[PartialFunction] = set()
        for f in frontier:
            dom = {p[0] for p in f}
            mapping = _as_mapping(f)
            for x in a_elems:
                if x in dom:
                    continue
                for y in b_elems:
                    mapping[x] = y
                    if is_partial_homomorphism(mapping, a, b):
                        g = f | {(x, y)}
                        if g not in homs:
                            homs.add(g)
                            next_frontier.add(g)
                mapping.pop(x, None)
        frontier = next_frontier
        if not frontier:
            break
    return homs


@dataclass(frozen=True)
class PebbleGameResult:
    """Outcome of solving the existential k-pebble game on ``(A, B)``.

    Attributes
    ----------
    k:
        Number of pebbles.
    strategy:
        The largest winning strategy ``H^k(A, B)`` as a frozenset of partial
        functions (each a frozenset of ``(a, b)`` pairs).  Empty iff the
        Spoiler wins.
    """

    k: int
    strategy: frozenset

    @property
    def duplicator_wins(self) -> bool:
        """Duplicator wins iff a (nonempty) winning strategy exists."""
        return bool(self.strategy)

    @property
    def spoiler_wins(self) -> bool:
        return not self.duplicator_wins

    def functions_with_domain(self, domain: Iterable[Any]) -> Iterator[dict[Any, Any]]:
        """Members of the strategy defined exactly on ``domain``."""
        wanted = frozenset(domain)
        for f in self.strategy:
            if frozenset(p[0] for p in f) == wanted:
                yield _as_mapping(f)

    def winning_tuples(self, scope: tuple[Any, ...]) -> frozenset[tuple[Any, ...]]:
        """The relation ``R_ā = {b̄ : (ā, b̄) ∈ W^k(A,B)}`` for a scope ``ā``.

        This is step 2 of the establishing procedure of Theorem 5.6: tuples
        may repeat variables, in which case images must agree.
        """
        rows: set[tuple[Any, ...]] = set()
        for g in self.functions_with_domain(set(scope)):
            rows.add(tuple(g[v] for v in scope))
        return frozenset(rows)


def _restrictions(f: PartialFunction) -> Iterator[PartialFunction]:
    """All one-point restrictions of ``f``."""
    for pair in f:
        yield f - {pair}


def _extension_groups(
    family: set[PartialFunction],
) -> dict[PartialFunction, dict[Any, set[PartialFunction]]]:
    """``extensions_of[f][x]`` = surviving one-point extensions of ``f`` that
    add the element ``x``; maintained incrementally as functions are deleted.
    """
    extensions_of: dict[PartialFunction, dict[Any, set[PartialFunction]]] = {
        f: {} for f in family
    }
    for g in family:
        if not g:
            continue
        for pair in g:
            f = g - {pair}
            if f in extensions_of:
                extensions_of[f].setdefault(pair[0], set()).add(g)
    return extensions_of


def _prune_naive(
    family: set[PartialFunction],
    a_elems: list,
    k: int,
    stats: PropagationStats,
) -> set[PartialFunction]:
    """The seed greatest-fixpoint pruning, instrumented.

    Uses an unbounded LIFO ``pending`` list (the same function may be queued
    many times) and re-scans extension groups on every forth check.  Kept as
    the differential oracle for the residual cascade.
    """
    extensions_of = _extension_groups(family)

    def fails_forth(f: PartialFunction) -> bool:
        if len(f) >= k:
            return False
        dom = {p[0] for p in f}
        ext = extensions_of[f]
        for x in a_elems:
            if x in dom:
                continue
            stats.support_checks += 1
            if not ext.get(x):
                return True
        return False

    # Initial worklist: every function of size < k (forth check); the
    # restriction check is vacuous initially since the family is
    # restriction-closed by construction.
    pending: list[PartialFunction] = [f for f in family if len(f) < k]
    alive = set(family)

    def delete(f: PartialFunction) -> None:
        """Remove ``f`` and cascade: restrictions must be rechecked for the
        forth property; extensions must be deleted outright."""
        stack = [f]
        while stack:
            g = stack.pop()
            if g not in alive:
                continue
            alive.discard(g)
            # Upward cascade: any surviving extension loses a restriction.
            for by_elem in extensions_of.get(g, {}).values():
                for h in by_elem:
                    if h in alive:
                        stack.append(h)
            # Downward notification: restrictions may now fail forth.
            for r in _restrictions(g):
                if r in alive:
                    by_elem = extensions_of[r]
                    new_elem = next(iter({p[0] for p in g} - {p[0] for p in r}))
                    group = by_elem.get(new_elem)
                    if group is not None:
                        group.discard(g)
                    pending.append(r)

    while pending:
        f = pending.pop()
        if f in alive:
            stats.revisions += 1
            if fails_forth(f):
                delete(f)

    return alive


def _prune_residual(
    family: set[PartialFunction],
    a_elems: list,
    k: int,
    stats: PropagationStats,
) -> set[PartialFunction]:
    """Greatest-fixpoint pruning with O(1) forth-failure detection.

    The per-(function, element) extension *count* is ``len(group)`` for the
    groups of :func:`_extension_groups`, and groups only ever shrink — so an
    empty group is a permanent certificate that its owner fails the forth
    property.  The initial sweep enqueues every function with an empty
    group (short-circuiting at the first, like the naive check); afterwards
    a function is (re-)examined only at the instant a deletion empties one
    of its groups, via the shared deduplicating
    :class:`~repro.consistency.propagation.Worklist` — never by rescanning
    its groups wholesale, which is what the naive strategy does on every
    requeue.
    """
    extensions_of = _extension_groups(family)
    alive = set(family)
    worklist: Worklist = Worklist()

    def cascade(f: PartialFunction) -> None:
        """Delete ``f`` (already certified to fail forth) and propagate."""
        stack = [f]
        while stack:
            g = stack.pop()
            if g not in alive:
                continue
            alive.discard(g)
            # Upward cascade: any surviving extension loses a restriction.
            for by_elem in extensions_of.get(g, {}).values():
                for h in by_elem:
                    if h in alive:
                        stack.append(h)
            # Downward notification: the restriction's extension group for
            # g's extra element shrinks; only an empty-transition can flip
            # its forth status, so only then is it re-enqueued.  This is
            # the same O(1) discard bookkeeping the naive cascade performs
            # — the saved work (not re-scanning r's groups on requeue) is
            # what the naive strategy's extra support_checks measure.
            for r in _restrictions(g):
                if r in alive:
                    new_elem = next(iter({p[0] for p in g} - {p[0] for p in r}))
                    group = extensions_of[r].get(new_elem)
                    if group is not None and g in group:
                        group.discard(g)
                        if not group:
                            worklist.push(r)

    # One lazy sweep, smallest functions first: a function already killed
    # by an earlier cascade is never scanned at all, and each scan
    # short-circuits at the first empty group — exactly the naive check's
    # cost.  Cascades drain eagerly so later sweep entries see the
    # fixpoint-so-far.  Empty groups never refill, so a worklist entry is
    # a certificate and needs no rescan on pop.
    for f in sorted((f for f in family if len(f) < k), key=len):
        if f not in alive:
            continue
        stats.revisions += 1
        dom = {p[0] for p in f}
        failed = False
        for x in a_elems:
            if x in dom:
                continue
            stats.support_checks += 1
            if not extensions_of[f].get(x):
                failed = True
                break
        if not failed:
            continue
        cascade(f)
        while worklist:
            g = worklist.pop()
            if g in alive:
                stats.revisions += 1
                cascade(g)

    return alive


def largest_winning_strategy(
    a: Structure, b: Structure, k: int, strategy: str = "residual"
) -> frozenset:
    """Compute ``H^k(A, B)``, the union of all Duplicator winning strategies.

    Returns the empty frozenset when the Spoiler wins.  See module docstring
    for the greatest-fixpoint algorithm and the ``strategy`` knob; both
    strategies compute the same (unique) greatest fixpoint.
    """
    if k < 1:
        raise DomainError(f"the pebble game needs k >= 1, got {k}")
    if a.vocabulary != b.vocabulary:
        raise VocabularyError("pebble game requires a common vocabulary")
    check_propagation_strategy(strategy)

    stats = PropagationStats()
    try:
        if strategy in ("interned", "columnar"):
            # Run the whole game in code space: enumeration, pruning, and
            # the delete cascade all manipulate frozensets of small-int
            # pairs.  The greatest fixpoint is unique, so decoding the
            # survivors yields exactly the residual strategy's family.
            # ("columnar" aliases this path: the game state is a family of
            # partial maps, not per-variable domains, so there is no column
            # to sweep.)
            enc_a, codec_a = encode_structure(a)
            enc_b, codec_b = encode_structure(b)
            stats.intern_tables += 2
            family = _all_partial_homomorphisms(enc_a, enc_b, k)
            # Codes ascend in the elements' original repr order, so the
            # numeric sort visits elements exactly as the plain path does.
            a_elems = sorted(enc_a.domain)
            alive = _prune_residual(family, a_elems, k, stats)
            if frozenset() not in alive:
                stats.wipeouts += 1
                return frozenset()
            da, db = codec_a.decode, codec_b.decode
            return frozenset(
                frozenset((da(x), db(y)) for x, y in f) for f in alive
            )
        family = _all_partial_homomorphisms(a, b, k)
        a_elems = sorted(a.domain, key=repr)
        if strategy == "naive":
            alive = _prune_naive(family, a_elems, k, stats)
        else:
            alive = _prune_residual(family, a_elems, k, stats)
        if frozenset() not in alive:
            stats.wipeouts += 1
            return frozenset()
        return frozenset(alive)
    finally:
        publish(stats)


def solve_game(
    a: Structure, b: Structure, k: int, strategy: str = "residual"
) -> PebbleGameResult:
    """Solve the existential k-pebble game on ``(A, B)``.

    Polynomial in ``(|A| + |B|)^{O(k)}`` — the effective content of
    Theorem 4.5(2).
    """
    return PebbleGameResult(
        k=k, strategy=largest_winning_strategy(a, b, k, strategy=strategy)
    )


def duplicator_wins(
    a: Structure, b: Structure, k: int, strategy: str = "residual"
) -> bool:
    """Whether the Duplicator wins the existential k-pebble game on (A, B)."""
    return solve_game(a, b, k, strategy=strategy).duplicator_wins


def spoiler_wins(
    a: Structure, b: Structure, k: int, strategy: str = "residual"
) -> bool:
    """Whether the Spoiler wins the existential k-pebble game on (A, B)."""
    return not duplicator_wins(a, b, k, strategy=strategy)


def has_forth_property(
    family: Iterable[PartialFunction], a: Structure, k: int
) -> bool:
    """Check the k-forth property of Definition 4.2 for a family of partial
    functions: every member of size < k extends, within the family, to any
    additional element of ``A``."""
    fam = set(family)
    for f in fam:
        if len(f) >= k:
            continue
        dom = {p[0] for p in f}
        for x in a.domain:
            if x in dom:
                continue
            if not any(
                f < g and x in {p[0] for p in g} and len(g) == len(f) + 1
                for g in fam
            ):
                return False
    return True


def is_winning_strategy(
    family: Iterable[PartialFunction], a: Structure, b: Structure, k: int
) -> bool:
    """Whether ``family`` is a Duplicator winning strategy (Definition 4.2):
    a nonempty family of ≤k-partial homomorphisms with the k-forth property.
    """
    fam = set(family)
    if not fam:
        return False
    for f in fam:
        if len(f) > k:
            return False
        mapping = _as_mapping(f)
        if len(mapping) != len(f):  # not a function: two images for one point
            return False
        if not is_partial_homomorphism(mapping, a, b):
            return False
    return has_forth_property(fam, a, k)


def configurations(result: PebbleGameResult, size: int) -> Iterator[tuple[tuple, tuple]]:
    """Iterate winning configurations ``(ā, b̄)`` with ``|ā| = size`` over
    *distinct* elements, in deterministic order — the ``W^k`` view of the
    strategy used by Theorem 5.6's establishing procedure."""
    domains = sorted(
        {frozenset(p[0] for p in f) for f in result.strategy if len(f) == size},
        key=repr,
    )
    for dom in domains:
        for ordering in _orderings(dom):
            for g in result.functions_with_domain(dom):
                yield ordering, tuple(g[x] for x in ordering)


def _orderings(elements: frozenset) -> Iterator[tuple]:
    from itertools import permutations

    yield from permutations(sorted(elements, key=repr))
