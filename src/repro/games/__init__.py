"""Existential k-pebble games (Sections 4–5 of the tutorial).

Two independent engines compute the same object and are differentially
tested against each other:

* :mod:`repro.games.pebble` — the largest-winning-strategy greatest-fixpoint
  pruning (the workhorse used by the consistency machinery);
* :mod:`repro.games.lfp` — the least-fixed-point induction of Theorem 4.5(1)
  over configurations.
"""

from repro.games.lfp import (
    bad_configurations,
    configuration_is_winning,
    duplicator_wins_via_lfp,
    winning_configurations,
)
from repro.games.pebble import (
    PebbleGameResult,
    configurations,
    duplicator_wins,
    has_forth_property,
    is_winning_strategy,
    largest_winning_strategy,
    solve_game,
    spoiler_wins,
)

__all__ = [
    "PebbleGameResult",
    "solve_game",
    "duplicator_wins",
    "spoiler_wins",
    "largest_winning_strategy",
    "is_winning_strategy",
    "has_forth_property",
    "configurations",
    "bad_configurations",
    "winning_configurations",
    "configuration_is_winning",
    "duplicator_wins_via_lfp",
]
