"""Theorem 4.5(1): winning configurations via least fixed-point logic.

The theorem asserts a positive first-order formula ``φ(x̄, ȳ, S)`` over the
vocabulary σ₁+σ₂ whose least fixpoint on the sum structure ``A + B`` is the
*complement* of ``W^k(A, B)``.  Unfolded, the fixpoint computes the **bad**
configurations — those from which the Spoiler can force a win::

    Bad(ā, b̄)  ⟸  ā ↦ b̄ is not a partial function,            (clash)
                 or it is not a partial homomorphism,           (violation)
                 or ∃ pebble i ∃ a ∈ A  ∀ b ∈ B:
                        Bad(ā[i := a], b̄[i := b])               (re-pebble)

The re-pebbling clause is the Spoiler picking up pebble ``i`` and placing it
on ``a`` with every Duplicator answer ``b`` losing; it is positive in
``Bad``, so the least fixpoint exists and is reached in polynomially many
rounds — Theorem 4.5(2)'s polynomial algorithm, in its logical clothing.

This module implements a tiny evaluator for exactly this induction on the
:func:`~repro.relational.structure.sum_structure` encoding and exposes the
winning configurations as the fixpoint's complement.  Equivalence with the
strategy-pruning engine of :mod:`repro.games.pebble` is verified in
``tests/games/test_lfp.py``.

Configurations here are k-tuples over ``A + B``'s two halves (tagged
elements), matching the paper's ``2k``-tuple formulation.
"""

from __future__ import annotations

from itertools import product
from typing import Any, Iterator

from repro.errors import DomainError, VocabularyError
from repro.relational.structure import Structure, sum_structure

__all__ = [
    "bad_configurations",
    "winning_configurations",
    "duplicator_wins_via_lfp",
    "configuration_is_winning",
]

Config = tuple[tuple, tuple]  # (ā over A, b̄ over B), both length k


def _is_clash(a_bar: tuple, b_bar: tuple) -> bool:
    """Spoiler win condition 1: the correspondence is not a function."""
    mapping: dict[Any, Any] = {}
    for a, b in zip(a_bar, b_bar):
        if a in mapping and mapping[a] != b:
            return True
        mapping[a] = b
    return False


def _violates(a_bar: tuple, b_bar: tuple, a: Structure, b: Structure) -> bool:
    """Spoiler win condition 2: the correspondence (a function) is not a
    partial homomorphism between the pebbled substructures."""
    mapping = dict(zip(a_bar, b_bar))
    pebbled = set(a_bar)
    for symbol in a.vocabulary:
        target = b.relation(symbol)
        for t in a.relation(symbol):
            if set(t) <= pebbled and tuple(mapping[v] for v in t) not in target:
                return True
    return False


def _all_configurations(a: Structure, b: Structure, k: int) -> Iterator[Config]:
    a_elems = sorted(a.domain, key=repr)
    b_elems = sorted(b.domain, key=repr)
    for a_bar in product(a_elems, repeat=k):
        for b_bar in product(b_elems, repeat=k):
            yield a_bar, b_bar


def bad_configurations(a: Structure, b: Structure, k: int) -> frozenset:
    """The least fixpoint of the Spoiler-win induction: all configurations
    from which the Spoiler forces a win.

    Computed by the naive positive-fixpoint iteration the theorem licenses;
    the sum-structure encoding ``A + B`` exists in the library
    (:func:`~repro.relational.structure.sum_structure`) and is exercised in
    tests to confirm the single-structure view is faithful.
    """
    if k < 1:
        raise DomainError(f"need k >= 1, got {k}")
    if a.vocabulary != b.vocabulary:
        raise VocabularyError("the game needs a common vocabulary")
    if a.domain and not b.domain:
        # No configurations exist at all; the Spoiler wins trivially (the
        # Duplicator cannot even answer the first pebble).
        return frozenset()

    a_elems = sorted(a.domain, key=repr)
    b_elems = sorted(b.domain, key=repr)

    bad: set[Config] = set()
    for a_bar, b_bar in _all_configurations(a, b, k):
        if _is_clash(a_bar, b_bar) or _violates(a_bar, b_bar, a, b):
            bad.add((a_bar, b_bar))

    changed = True
    while changed:
        changed = False
        for a_bar, b_bar in _all_configurations(a, b, k):
            if (a_bar, b_bar) in bad:
                continue
            # ∃i ∃a ∀b: Bad after re-pebbling pebble i onto a.
            spoiler_can_force = any(
                all(
                    (
                        a_bar[:i] + (new_a,) + a_bar[i + 1 :],
                        b_bar[:i] + (new_b,) + b_bar[i + 1 :],
                    )
                    in bad
                    for new_b in b_elems
                )
                for i in range(k)
                for new_a in a_elems
            )
            if spoiler_can_force:
                bad.add((a_bar, b_bar))
                changed = True
    return frozenset(bad)


def winning_configurations(a: Structure, b: Structure, k: int) -> frozenset:
    """``W^k(A, B)`` as the complement of the least fixpoint (Thm 4.5(1))."""
    all_configs = frozenset(_all_configurations(a, b, k))
    return all_configs - bad_configurations(a, b, k)


def configuration_is_winning(
    a: Structure, b: Structure, k: int, a_bar: tuple, b_bar: tuple
) -> bool:
    """Membership in ``W^k(A, B)`` for one configuration."""
    return (tuple(a_bar), tuple(b_bar)) in winning_configurations(a, b, k)


def duplicator_wins_via_lfp(a: Structure, b: Structure, k: int) -> bool:
    """The game winner read off the fixpoint: the Duplicator wins iff some
    configuration survives outside the least fixpoint.

    (Good configurations are closed under answering any re-pebbling, so
    their restrictions form a winning strategy; conversely a winning
    Duplicator survives any opening, reaching a good full configuration.)
    """
    if not a.domain:
        return True
    if not b.domain:
        return False
    return bool(winning_configurations(a, b, k))


def sum_structure_view(a: Structure, b: Structure) -> Structure:
    """The σ₁+σ₂ encoding the theorem quantifies over — re-exported here so
    callers exploring the logical side have the exact object."""
    return sum_structure(a, b)
