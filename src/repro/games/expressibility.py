"""Expressibility in ∃L^k_∞ω via preservation — Thm 4.1, Prop 4.3, Cor 4.4.

Infinitary formulas cannot be materialized, but Proposition 4.3 turns
∃L^k-expressibility into a *preservation property* that can be checked on
concrete structure pairs:

    a Boolean query Q is expressible in ∃L^k iff whenever A ⊨ Q and the
    Duplicator wins the existential k-pebble game on (A, B), also B ⊨ Q.

This module provides the checker: feed it a query (any Python predicate on
structures) and structure pairs; it reports the pairs that *refute*
k-expressibility.  Two uses:

* **verification** — by Theorem 4.1 every k-Datalog query lies in ∃L^k, so
  the checker must find no counterexample for such queries (tested over the
  canonical 4-Datalog Non-2-Colorability program, transitive-closure-style
  queries, and ρ_B programs);
* **refutation** — non-monotone queries (e.g. "is 2-colorable") are not in
  any ∃L^k, and the checker exhibits concrete witnessing pairs.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.games.pebble import duplicator_wins
from repro.relational.structure import Structure

__all__ = [
    "preservation_counterexamples",
    "is_preserved_on",
    "datalog_query_as_predicate",
]

BooleanQuery = Callable[[Structure], bool]


def preservation_counterexamples(
    query: BooleanQuery,
    pairs: Iterable[tuple[Structure, Structure]],
    k: int,
) -> list[tuple[Structure, Structure]]:
    """The pairs ``(A, B)`` with ``A ⊨ Q``, Duplicator winning the k-pebble
    game on (A, B), but ``B ⊭ Q`` — each is a proof that ``Q ∉ ∃L^k_∞ω``
    (Prop 4.3 / Cor 4.4)."""
    counterexamples = []
    for a, b in pairs:
        if query(a) and not query(b) and duplicator_wins(a, b, k):
            counterexamples.append((a, b))
    return counterexamples


def is_preserved_on(
    query: BooleanQuery,
    pairs: Iterable[tuple[Structure, Structure]],
    k: int,
) -> bool:
    """Whether the preservation condition holds on all the given pairs —
    necessary (not sufficient: only sampled pairs are checked) for
    ∃L^k-expressibility."""
    return not preservation_counterexamples(query, pairs, k)


def datalog_query_as_predicate(program) -> BooleanQuery:
    """Wrap a Datalog program's goal as a Boolean structure predicate, so
    Theorem 4.1 (k-Datalog ⊆ ∃L^k) can be checked through the preservation
    lens."""
    from repro.datalog.engine import goal_holds

    def query(structure: Structure) -> bool:
        return goal_holds(program, structure)

    return query
