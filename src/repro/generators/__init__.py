"""Workload generators backing the examples, tests, and benchmarks."""

from repro.generators.csp_random import (
    coloring_instance,
    csp_from_graph,
    homomorphism_instance_csp,
    random_binary_csp,
)
from repro.generators.graphs import (
    complete_graph,
    cycle_graph,
    directed_cycle_structure,
    graph_as_digraph_structure,
    grid_graph,
    partial_ktree,
    path_graph,
    random_digraph,
    random_graph,
)
from repro.generators.queries import (
    chain_query,
    random_query,
    random_tree_query,
    star_query,
)
from repro.generators.sat import (
    ONE_IN_THREE,
    random_2sat,
    random_affine_instance,
    random_horn,
    random_ksat,
    random_one_in_three_instance,
)
from repro.generators.views_random import (
    chain_extensions,
    random_extensions,
    random_graph_database,
)

__all__ = [
    "random_binary_csp",
    "coloring_instance",
    "csp_from_graph",
    "homomorphism_instance_csp",
    "cycle_graph",
    "path_graph",
    "complete_graph",
    "grid_graph",
    "random_graph",
    "random_digraph",
    "partial_ktree",
    "graph_as_digraph_structure",
    "directed_cycle_structure",
    "chain_query",
    "star_query",
    "random_tree_query",
    "random_query",
    "random_ksat",
    "random_2sat",
    "random_horn",
    "random_affine_instance",
    "random_one_in_three_instance",
    "ONE_IN_THREE",
    "chain_extensions",
    "random_extensions",
    "random_graph_database",
]
