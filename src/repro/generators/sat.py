"""SAT workload generators: Horn, 2-SAT, k-SAT, affine, One-in-Three."""

from __future__ import annotations

import random

from repro.csp.instance import Constraint, CSPInstance
from repro.dichotomy.cnf import CNF

__all__ = [
    "random_ksat",
    "random_2sat",
    "random_horn",
    "random_affine_instance",
    "random_one_in_three_instance",
]


def random_ksat(n_variables: int, n_clauses: int, k: int, seed: int = 0) -> CNF:
    """Uniform random k-SAT over ``n_variables`` variables."""
    rng = random.Random(seed)
    clauses = []
    for _ in range(n_clauses):
        variables = rng.sample(range(1, n_variables + 1), min(k, n_variables))
        clauses.append(tuple(v if rng.random() < 0.5 else -v for v in variables))
    return CNF(clauses)


def random_2sat(n_variables: int, n_clauses: int, seed: int = 0) -> CNF:
    """Uniform random 2-SAT."""
    return random_ksat(n_variables, n_clauses, 2, seed)


def random_horn(n_variables: int, n_clauses: int, seed: int = 0, width: int = 3) -> CNF:
    """Random Horn formulas: ≤ ``width`` literals, at most one positive."""
    rng = random.Random(seed)
    clauses = []
    for _ in range(n_clauses):
        size = rng.randint(1, width)
        variables = rng.sample(range(1, n_variables + 1), min(size, n_variables))
        lits = [-v for v in variables]
        if rng.random() < 0.6:
            lits[0] = abs(lits[0])
        clauses.append(tuple(lits))
    return CNF(clauses)


def random_affine_instance(
    n_variables: int, n_equations: int, width: int = 3, seed: int = 0
) -> CSPInstance:
    """Random XOR (affine) constraints ``x1 ⊕ … ⊕ xw = b`` as a Boolean CSP."""
    from itertools import product

    rng = random.Random(seed)
    variables = list(range(n_variables))
    constraints = []
    for _ in range(n_equations):
        size = rng.randint(2, width)
        scope = tuple(rng.sample(variables, min(size, n_variables)))
        rhs = rng.randint(0, 1)
        rows = {
            row
            for row in product((0, 1), repeat=len(scope))
            if sum(row) % 2 == rhs
        }
        constraints.append(Constraint(scope, rows))
    return CSPInstance(variables, (0, 1), constraints)


ONE_IN_THREE = frozenset({(1, 0, 0), (0, 1, 0), (0, 0, 1)})


def random_one_in_three_instance(
    n_variables: int, n_clauses: int, seed: int = 0
) -> CSPInstance:
    """Random positive One-in-Three SAT — Schaefer's canonical NP-complete
    template (it lies in none of the six tractable classes)."""
    rng = random.Random(seed)
    variables = list(range(max(n_variables, 3)))
    constraints = [
        Constraint(tuple(rng.sample(variables, 3)), ONE_IN_THREE)
        for _ in range(n_clauses)
    ]
    return CSPInstance(variables, (0, 1), constraints)
