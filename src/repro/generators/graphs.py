"""Graph and digraph workload generators for the benchmark suite.

All generators are deterministic given a seed; graphs come both as
:class:`~repro.width.graph.Graph` objects and as relational structures over
``{"E": 2}``.
"""

from __future__ import annotations

import random
from typing import Any

from repro.relational.structure import Structure
from repro.width.graph import Graph

__all__ = [
    "cycle_graph",
    "path_graph",
    "complete_graph",
    "grid_graph",
    "random_graph",
    "random_digraph",
    "partial_ktree",
    "graph_as_digraph_structure",
    "directed_cycle_structure",
]


def cycle_graph(n: int) -> Graph:
    """The undirected cycle C_n."""
    return Graph(vertices=range(n), edges=[(i, (i + 1) % n) for i in range(n)])


def path_graph(n: int) -> Graph:
    """The path with ``n`` vertices."""
    return Graph(vertices=range(n), edges=[(i, i + 1) for i in range(n - 1)])


def complete_graph(n: int) -> Graph:
    """The clique K_n."""
    return Graph(
        vertices=range(n),
        edges=[(i, j) for i in range(n) for j in range(i + 1, n)],
    )


def grid_graph(rows: int, cols: int) -> Graph:
    """The rows×cols grid (treewidth = min(rows, cols) for proper grids)."""
    g = Graph(vertices=[(r, c) for r in range(rows) for c in range(cols)])
    for r in range(rows):
        for c in range(cols):
            if r + 1 < rows:
                g.add_edge((r, c), (r + 1, c))
            if c + 1 < cols:
                g.add_edge((r, c), (r, c + 1))
    return g


def random_graph(n: int, p: float, seed: int = 0) -> Graph:
    """G(n, p) — each undirected edge present independently."""
    rng = random.Random(seed)
    g = Graph(vertices=range(n))
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                g.add_edge(i, j)
    return g


def random_digraph(n: int, p: float, seed: int = 0, loops: bool = False) -> Structure:
    """A random digraph structure over ``{"E": 2}``."""
    rng = random.Random(seed)
    edges = [
        (i, j)
        for i in range(n)
        for j in range(n)
        if (loops or i != j) and rng.random() < p
    ]
    return Structure({"E": 2}, range(n), {"E": edges})


def partial_ktree(n: int, k: int, p: float, seed: int = 0) -> Graph:
    """A random partial k-tree on ``n`` vertices — treewidth ≤ k by
    construction (a random k-tree with each edge kept with probability
    ``p``), the bounded-treewidth workload of benchmark E5."""
    rng = random.Random(seed)
    if n <= k + 1:
        full = complete_graph(n)
    else:
        full = complete_graph(k + 1)
        cliques = [tuple(range(k + 1))]
        for v in range(k + 1, n):
            base = rng.choice(cliques)
            drop = rng.randrange(len(base))
            new_clique = tuple(u for i, u in enumerate(base) if i != drop) + (v,)
            for u in new_clique[:-1]:
                full.add_edge(u, v)
            cliques.append(new_clique)
    g = Graph(vertices=full.vertices)
    for u, v in full.edges():
        if rng.random() < p:
            g.add_edge(u, v)
    return g


def graph_as_digraph_structure(graph: Graph) -> Structure:
    """An undirected graph as a symmetric binary structure."""
    edges = set()
    for u, v in graph.edges():
        edges.add((u, v))
        edges.add((v, u))
    return Structure({"E": 2}, graph.vertices, {"E": edges})


def directed_cycle_structure(n: int) -> Structure:
    """The directed cycle with n nodes as a structure."""
    return Structure({"E": 2}, range(n), {"E": [(i, (i + 1) % n) for i in range(n)]})
