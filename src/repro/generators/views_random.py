"""Random view setups and graph databases for the Section 7 benchmarks."""

from __future__ import annotations

import random
from typing import Any

from repro.views.certain import ViewSetup
from repro.views.graphdb import GraphDatabase

__all__ = ["random_graph_database", "random_extensions", "chain_extensions"]


def random_graph_database(
    n_nodes: int, n_edges: int, alphabet: list[str], seed: int = 0
) -> GraphDatabase:
    """A random edge-labeled graph database."""
    rng = random.Random(seed)
    nodes = [f"n{i}" for i in range(n_nodes)]
    db = GraphDatabase(nodes=nodes)
    for _ in range(n_edges):
        db.add_edge(rng.choice(nodes), rng.choice(alphabet), rng.choice(nodes))
    return db


def random_extensions(
    views: ViewSetup, n_objects: int, pairs_per_view: int, seed: int = 0
) -> ViewSetup:
    """Fresh random extensions over ``n_objects`` objects for given
    definitions."""
    rng = random.Random(seed)
    objects = [f"o{i}" for i in range(n_objects)]
    extensions: dict[str, set[tuple[Any, Any]]] = {}
    for name in views.definitions:
        extensions[name] = {
            (rng.choice(objects), rng.choice(objects))
            for _ in range(pairs_per_view)
        }
    return views.with_extensions(extensions)


def chain_extensions(views: ViewSetup, view_order: list[str], length: int) -> ViewSetup:
    """Extensions forming a chain ``o0 → o1 → … → o_length`` cycling through
    the named views — the structured workload of benchmark E9."""
    extensions: dict[str, set[tuple[Any, Any]]] = {name: set() for name in views.definitions}
    for i in range(length):
        name = view_order[i % len(view_order)]
        extensions[name].add((f"o{i}", f"o{i + 1}"))
    return views.with_extensions(extensions)
