"""Random conjunctive-query generators for property-based testing."""

from __future__ import annotations

import random

from repro.cq.query import Atom, ConjunctiveQuery, Var

__all__ = ["chain_query", "star_query", "random_tree_query", "random_query"]


def chain_query(length: int, head_name: str = "Q") -> ConjunctiveQuery:
    """``Q(X0) :- E(X0, X1), …, E(X_{n-1}, X_n)``."""
    atoms = [Atom("E", (Var(f"X{i}"), Var(f"X{i+1}"))) for i in range(length)]
    return ConjunctiveQuery(head_name, (Var("X0"),), atoms)


def star_query(rays: int, head_name: str = "Q") -> ConjunctiveQuery:
    """``Q(C) :- E(C, L1), …, E(C, Ln)``."""
    atoms = [Atom("E", (Var("C"), Var(f"L{i}"))) for i in range(rays)]
    return ConjunctiveQuery(head_name, (Var("C"),), atoms)


def random_tree_query(
    n_atoms: int, seed: int = 0, head_name: str = "Q"
) -> ConjunctiveQuery:
    """A random tree-shaped Boolean query over a binary ``E``: each new atom
    attaches a fresh variable to an existing one (with random direction).

    Tree-shaped bodies are acyclic, so these queries have querywidth 1 and
    their canonical structures have treewidth 1 — a family with known
    ground truth for the width machinery.
    """
    rng = random.Random(seed)
    variables = [Var("X0")]
    atoms: list[Atom] = []
    for i in range(n_atoms):
        anchor = rng.choice(variables)
        fresh = Var(f"X{i+1}")
        variables.append(fresh)
        if rng.random() < 0.5:
            atoms.append(Atom("E", (anchor, fresh)))
        else:
            atoms.append(Atom("E", (fresh, anchor)))
    return ConjunctiveQuery(head_name, (), atoms)


def random_query(
    n_atoms: int,
    n_variables: int,
    seed: int = 0,
    head_arity: int = 0,
    head_name: str = "Q",
) -> ConjunctiveQuery:
    """A random Boolean or unary/binary-headed query over a binary ``E``
    with a bounded variable pool (cyclic bodies allowed)."""
    rng = random.Random(seed)
    pool = [Var(f"X{i}") for i in range(max(n_variables, 1))]
    atoms = [
        Atom("E", (rng.choice(pool), rng.choice(pool))) for _ in range(max(n_atoms, 1))
    ]
    body_vars = list(dict.fromkeys(v for a in atoms for v in a.variables()))
    head = tuple(body_vars[:head_arity])
    return ConjunctiveQuery(head_name, head, atoms)
