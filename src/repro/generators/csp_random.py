"""Random CSP instance generators (model-B style) and coloring encodings."""

from __future__ import annotations

import random
from itertools import product
from typing import Any

from repro.csp.instance import Constraint, CSPInstance
from repro.width.graph import Graph

__all__ = [
    "random_binary_csp",
    "coloring_instance",
    "homomorphism_instance_csp",
    "csp_from_graph",
]


def random_binary_csp(
    n_variables: int,
    domain_size: int,
    n_constraints: int,
    tightness: float,
    seed: int = 0,
) -> CSPInstance:
    """The classical model-B random binary CSP: ``n_constraints`` distinct
    variable pairs, each forbidding a ``tightness`` fraction of the
    ``domain_size²`` value pairs."""
    rng = random.Random(seed)
    variables = list(range(n_variables))
    domain = list(range(domain_size))
    all_pairs = [
        (i, j) for i in range(n_variables) for j in range(i + 1, n_variables)
    ]
    rng.shuffle(all_pairs)
    chosen = all_pairs[: min(n_constraints, len(all_pairs))]
    value_pairs = list(product(domain, repeat=2))
    forbidden_count = round(tightness * len(value_pairs))
    constraints = []
    for i, j in chosen:
        forbidden = set(rng.sample(value_pairs, forbidden_count))
        allowed = [p for p in value_pairs if p not in forbidden]
        constraints.append(Constraint((i, j), allowed))
    return CSPInstance(variables, domain, constraints)


def coloring_instance(graph: Graph, colors: int) -> CSPInstance:
    """Proper ``colors``-coloring of an undirected graph as a CSP."""
    domain = list(range(colors))
    disequal = [(a, b) for a in domain for b in domain if a != b]
    constraints = [Constraint((u, v), disequal) for u, v in graph.edges()]
    return CSPInstance(sorted(graph.vertices, key=repr), domain, constraints)


def csp_from_graph(
    graph: Graph, relation: frozenset[tuple[Any, Any]], domain: list[Any]
) -> CSPInstance:
    """A CSP placing the same binary relation on every edge of a graph —
    handy for building instances of prescribed constraint-graph topology."""
    constraints = [Constraint((u, v), relation) for u, v in graph.edges()]
    return CSPInstance(sorted(graph.vertices, key=repr), domain, constraints)


def homomorphism_instance_csp(a_edges, b_edges, a_nodes, b_nodes) -> CSPInstance:
    """The CSP asking for a digraph homomorphism A → B given edge lists."""
    constraints = [Constraint((u, v), set(map(tuple, b_edges))) for u, v in a_edges]
    return CSPInstance(list(a_nodes), list(b_nodes), constraints)
