"""The resident query service: incremental view maintenance plus a
containment-keyed result cache.

ROADMAP item 2 made production-scale: :class:`QueryService` keeps a Datalog
program's least fixpoint materialized under EDB update streams
(:mod:`repro.datalog.incremental`) and answers conjunctive queries through
a :class:`ResultCache` keyed on the canonical form of the *minimized*
query — so syntactically different but equivalent queries (Chandra–Merlin,
Props 2.2/2.3) share one cached answer, and the maintenance plane's
per-predicate dirty sets invalidate exactly the entries whose bodies
mention a changed predicate.
"""

from repro.service.cache import CacheStats, ResultCache
from repro.service.core import QueryService, ServiceAnswer
from repro.service.stream import (
    QueryEvent,
    ServiceWorkload,
    UpdateEvent,
    equivalent_variant,
    service_stream,
)

__all__ = [
    "QueryService",
    "ServiceAnswer",
    "ResultCache",
    "CacheStats",
    "ServiceWorkload",
    "QueryEvent",
    "UpdateEvent",
    "service_stream",
    "equivalent_variant",
]
