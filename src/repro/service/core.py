"""The query service front: maintenance plane + cache plane behind one API.

:class:`QueryService` owns an
:class:`~repro.datalog.incremental.IncrementalEvaluation` (the maintained
least fixpoint) and a :class:`~repro.service.cache.ResultCache` (answers
keyed on the canonical form of minimized queries).  ``ask`` minimizes the
incoming conjunctive query once, probes the cache, and only evaluates on a
miss; ``update`` applies an EDB batch incrementally and invalidates
exactly the cache entries whose bodies mention a changed predicate.
Per-operation latencies land in two
:class:`~repro.telemetry.registry.TimingHistogram` instances so a service
run can report P50/P99 without external tooling.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.cq.containment import minimize
from repro.cq.evaluate import evaluate
from repro.cq.parser import parse_query
from repro.cq.query import ConjunctiveQuery
from repro.datalog.incremental import IncrementalEvaluation, UpdateReport
from repro.datalog.syntax import Program
from repro.relational.relation import Relation
from repro.service.cache import ResultCache
from repro.telemetry.registry import TimingHistogram
from repro.telemetry.spans import span

__all__ = ["QueryService", "ServiceAnswer", "histogram_summary"]


def histogram_summary(hist: TimingHistogram) -> dict[str, Any]:
    """A :meth:`~repro.telemetry.registry.TimingHistogram.as_dict` snapshot
    enriched with the mean and the P50/P99 quantiles the service reports."""
    data = hist.as_dict()
    data["mean_seconds"] = hist.mean_seconds
    data["p50"] = hist.quantile(0.50)
    data["p99"] = hist.quantile(0.99)
    return data


@dataclass(frozen=True)
class ServiceAnswer:
    """One answered query: the result relation, how the cache fared
    (``"exact"``/``"equivalence"``/``"projection"``/``"miss"``), and the
    wall-clock seconds the service spent on it."""

    result: Relation
    outcome: str
    seconds: float

    @property
    def from_cache(self) -> bool:
        return self.outcome != "miss"


class QueryService:
    """A resident Datalog + conjunctive-query service.

    >>> from repro.datalog.library import transitive_closure_program
    >>> svc = QueryService(
    ...     transitive_closure_program(), {"E": {(1, 2), (2, 3)}}
    ... )
    >>> sorted(svc.query("Q(X, Y) :- T(X, Y)").tuples)
    [(1, 2), (1, 3), (2, 3)]
    >>> svc.ask("Q2(A, B) :- T(A, B)").outcome  # equivalent, renamed
    'equivalence'
    >>> report = svc.update(inserts={"E": {(3, 4)}})
    >>> svc.ask("Q(X, Y) :- T(X, Y)").outcome  # invalidated by the update
    'miss'

    Parameters
    ----------
    program:
        The Datalog program whose fixpoint the maintenance plane keeps
        materialized; queries are evaluated over EDB and IDB predicates
        alike.
    database:
        Initial EDB facts (``{predicate: rows}``).
    strategy:
        Join strategy forwarded to both the maintenance plane and query
        evaluation (``None``/"auto"/"wcoj"/...).
    deletion:
        Deletion algorithm for the maintenance plane (``"dred"`` or
        ``"counting"``).
    cache_capacity / containment_probes:
        Forwarded to :class:`~repro.service.cache.ResultCache`.
    """

    def __init__(
        self,
        program: Program,
        database: Mapping[str, Iterable[tuple]] | None = None,
        *,
        strategy: str | None = None,
        deletion: str = "dred",
        cache_capacity: int = 512,
        containment_probes: int = 8,
    ):
        self._strategy = strategy
        self._engine = IncrementalEvaluation(
            program, database, strategy=strategy, deletion=deletion
        )
        self.cache = ResultCache(
            capacity=cache_capacity, containment_probes=containment_probes
        )
        self.query_latency = TimingHistogram()
        self.update_latency = TimingHistogram()

    @property
    def engine(self) -> IncrementalEvaluation:
        """The maintenance plane (read access for inspection/tests)."""
        return self._engine

    @property
    def generation(self) -> int:
        """The maintenance plane's generation counter (bumps per dirty batch)."""
        return self._engine.generation

    # -- query plane ----------------------------------------------------------

    def ask(self, query: str | ConjunctiveQuery) -> ServiceAnswer:
        """Answer a conjunctive query over the maintained database.

        The query is minimized (its core computed) once; the cache is
        probed with the minimized form, and only a miss evaluates against
        the data — after which the result is stored for future equivalent
        (or projectable) queries.
        """
        if isinstance(query, str):
            query = parse_query(query)
        started = time.perf_counter()
        with span("service.query", head=query.head_name) as sp:
            minimized = minimize(query)
            outcome, result = self.cache.lookup(minimized)
            if result is None:
                result = evaluate(
                    minimized, self._engine.as_structure(), strategy=self._strategy
                )
                self.cache.store(minimized, result)
            if sp:
                sp.note(outcome=outcome, rows=len(result))
        seconds = time.perf_counter() - started
        self.query_latency.observe(seconds)
        return ServiceAnswer(result, outcome, seconds)

    def query(self, query: str | ConjunctiveQuery) -> Relation:
        """Like :meth:`ask` but returning just the result relation."""
        return self.ask(query).result

    # -- maintenance plane ----------------------------------------------------

    def update(
        self,
        inserts: Mapping[str, Iterable[tuple]] | None = None,
        deletes: Mapping[str, Iterable[tuple]] | None = None,
    ) -> UpdateReport:
        """Apply one EDB update batch and invalidate affected cache entries."""
        started = time.perf_counter()
        with span("service.update") as sp:
            report = self._engine.apply(inserts, deletes)
            dropped = self.cache.invalidate(report.dirty)
            if sp:
                sp.note(
                    rows_added=report.rows_added,
                    rows_removed=report.rows_removed,
                    cache_dropped=dropped,
                )
        self.update_latency.observe(time.perf_counter() - started)
        return report

    # -- reporting ------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """One dict of cache counters, latency histograms, and generation."""
        return {
            "generation": self._engine.generation,
            "cache": self.cache.stats.as_dict(),
            "query_latency": histogram_summary(self.query_latency),
            "update_latency": histogram_summary(self.update_latency),
        }
