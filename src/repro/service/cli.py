"""The ``repro serve`` and ``repro bench-service`` subcommands.

``repro serve`` runs a :class:`~repro.service.core.QueryService` as a
line-oriented JSON protocol on stdin/stdout — one request object per
line, one response object per line::

    {"op": "query", "q": "Q(X, Y) :- T(X, Y)."}
    {"op": "insert", "predicate": "E", "rows": [[1, 2]]}
    {"op": "delete", "predicate": "E", "rows": [[1, 2]]}
    {"op": "stats"}
    {"op": "quit"}

``repro bench-service`` replays the reproducible multi-tenant workload of
:func:`~repro.service.stream.service_stream` through the service and —
unless ``--no-baseline`` — through a recompute-from-scratch baseline
(full semi-naive refixpoint per update, uncached evaluation per query),
reporting cache hit rate, P50/P99 latencies, and the update-latency
speedup.  With ``--jsonl`` the service run is traced and the raw event
stream (the shape ``tools/validate_trace.py`` checks) is emitted instead.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import IO

__all__ = [
    "add_serve_arguments",
    "add_bench_service_arguments",
    "run_serve",
    "run_bench_service",
]


def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--program", default=None, metavar="FILE",
        help="Datalog program file (default: the transitive-closure program)",
    )
    parser.add_argument(
        "--deletion", choices=("dred", "counting"), default="dred",
        help="deletion algorithm for the maintenance plane (default: dred)",
    )
    parser.add_argument(
        "--strategy", default=None,
        help="join strategy for rule bodies and queries (default: auto)",
    )


def add_bench_service_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--events", type=int, default=200,
                        help="stream length (default: 200)")
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    parser.add_argument("--templates", type=int, default=4,
                        help="query templates in the pool (default: 4)")
    parser.add_argument("--tenants", type=int, default=8,
                        help="tenants issuing queries (default: 8)")
    parser.add_argument("--update-every", type=int, default=14,
                        help="every k-th event is an update batch (default: 14)")
    parser.add_argument("--graph", choices=("random", "hierarchy"),
                        default="random",
                        help="data shape: random digraph with edge churn, or "
                        "a random recursive forest with reparenting updates "
                        "(default: random)")
    parser.add_argument("--nodes", type=int, default=30,
                        help="graph size (default: 30)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="skip the recompute-from-scratch baseline run")
    parser.add_argument("--jsonl", action="store_true",
                        help="emit the traced JSONL event stream instead of the report")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="write the JSONL event stream to FILE instead of stdout")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable report")


def _load_program(path: str | None):
    from repro.datalog.library import transitive_closure_program
    from repro.datalog.parser import parse_program

    if path is None:
        return transitive_closure_program()
    with open(path, encoding="utf-8") as fp:
        return parse_program(fp.read())


def run_serve(
    args: argparse.Namespace,
    stdin: IO[str] | None = None,
    stdout: IO[str] | None = None,
) -> None:
    """The JSONL request/response loop (testable via injected streams)."""
    from repro.errors import ReproError
    from repro.service.core import QueryService

    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    service = QueryService(
        _load_program(args.program),
        strategy=args.strategy,
        deletion=args.deletion,
    )

    def respond(payload: dict) -> None:
        stdout.write(json.dumps(payload, sort_keys=True, default=repr) + "\n")
        stdout.flush()

    for line in stdin:
        line = line.strip()
        if not line:
            continue
        try:
            request = json.loads(line)
            op = request.get("op")
            if op == "quit":
                respond({"ok": True, "op": "quit"})
                break
            if op == "query":
                answer = service.ask(request["q"])
                respond({
                    "ok": True,
                    "op": "query",
                    "outcome": answer.outcome,
                    "attributes": list(answer.result.attributes),
                    "rows": sorted(list(t) for t in answer.result.tuples),
                    "seconds": answer.seconds,
                })
            elif op in ("insert", "delete"):
                rows = {request["predicate"]: {tuple(r) for r in request["rows"]}}
                report = service.update(
                    inserts=rows if op == "insert" else None,
                    deletes=rows if op == "delete" else None,
                )
                respond({
                    "ok": True,
                    "op": op,
                    "rows_added": report.rows_added,
                    "rows_removed": report.rows_removed,
                    "dirty": sorted(report.dirty),
                    "rounds": report.rounds,
                })
            elif op == "stats":
                respond({"ok": True, "op": "stats", "stats": service.stats()})
            else:
                respond({"ok": False, "error": f"unknown op {op!r}"})
        except (ReproError, KeyError, ValueError, TypeError) as exc:
            respond({"ok": False, "error": f"{type(exc).__name__}: {exc}"})


def _replay_service(workload, latencies: dict) -> "object":
    """Run the workload through a QueryService, filling ``latencies``."""
    from repro.service.core import QueryService
    from repro.service.stream import QueryEvent

    service = QueryService(workload.program, workload.database)
    started = time.perf_counter()
    for event in workload.events:
        if isinstance(event, QueryEvent):
            service.ask(event.query)
        else:
            service.update(event.inserts, event.deletes)
    latencies["seconds"] = time.perf_counter() - started
    return service


def _replay_baseline(workload, latencies: dict) -> None:
    """Recompute-from-scratch baseline: full refixpoint per update, direct
    uncached evaluation per query, over the same event stream."""
    from repro.cq.evaluate import evaluate
    from repro.datalog.engine import evaluate_seminaive
    from repro.relational.structure import Structure, Vocabulary
    from repro.service.stream import QueryEvent
    from repro.telemetry.registry import TimingHistogram

    def materialize(edb: dict) -> Structure:
        values = dict(edb)
        values.update(evaluate_seminaive(workload.program, edb))
        domain = {v for rows in values.values() for row in rows for v in row}
        return Structure(
            Vocabulary(workload.program.arities()), domain, values
        )

    update_hist = TimingHistogram()
    query_hist = TimingHistogram()
    edb = {p: set(rows) for p, rows in workload.database.items()}
    started = time.perf_counter()
    structure = materialize(edb)
    for event in workload.events:
        if isinstance(event, QueryEvent):
            t0 = time.perf_counter()
            evaluate(event.query, structure)
            query_hist.observe(time.perf_counter() - t0)
        else:
            t0 = time.perf_counter()
            for predicate, rows in event.deletes.items():
                edb.setdefault(predicate, set()).difference_update(rows)
            for predicate, rows in event.inserts.items():
                edb.setdefault(predicate, set()).update(rows)
            structure = materialize(edb)
            update_hist.observe(time.perf_counter() - t0)
    latencies["seconds"] = time.perf_counter() - started
    latencies["update_latency"] = update_hist
    latencies["query_latency"] = query_hist


def bench_service_report(args: argparse.Namespace) -> dict:
    """Run the benchmark and return the (JSON-able) report dict."""
    from repro.service.stream import service_stream

    workload = service_stream(
        args.events,
        templates=args.templates,
        tenants=args.tenants,
        update_every=args.update_every,
        graph=getattr(args, "graph", "random"),
        nodes=getattr(args, "nodes", 30),
        seed=args.seed,
    )
    service_run: dict = {}
    service = _replay_service(workload, service_run)
    report = {
        "events": len(workload.events),
        "query_events": workload.query_events,
        "update_events": workload.update_events,
        "templates": args.templates,
        "tenants": args.tenants,
        "graph": getattr(args, "graph", "random"),
        "seed": args.seed,
        "service": {
            "seconds": service_run["seconds"],
            "throughput_events_per_s": len(workload.events) / service_run["seconds"]
            if service_run["seconds"]
            else 0.0,
            **service.stats(),
        },
    }
    if not args.no_baseline:
        baseline_run: dict = {}
        _replay_baseline(workload, baseline_run)
        from repro.service.core import histogram_summary

        base_update = baseline_run["update_latency"]
        base_query = baseline_run["query_latency"]
        report["baseline"] = {
            "seconds": baseline_run["seconds"],
            "update_latency": histogram_summary(base_update),
            "query_latency": histogram_summary(base_query),
        }
        if service.update_latency.count and base_update.count:
            report["update_speedup"] = (
                base_update.mean_seconds / service.update_latency.mean_seconds
            )
        if service_run["seconds"]:
            report["throughput_speedup"] = (
                baseline_run["seconds"] / service_run["seconds"]
            )
    return report


def run_bench_service(
    args: argparse.Namespace, stdout: IO[str] | None = None
) -> None:
    stdout = stdout if stdout is not None else sys.stdout
    if args.jsonl:
        from repro.service.stream import service_stream
        from repro.telemetry import tracing, write_jsonl

        workload = service_stream(
            args.events,
            templates=args.templates,
            tenants=args.tenants,
            update_every=args.update_every,
            graph=getattr(args, "graph", "random"),
            nodes=getattr(args, "nodes", 30),
            seed=args.seed,
        )
        with tracing("bench-service") as trace:
            _replay_service(workload, {})
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fp:
                n = write_jsonl(trace, fp)
            print(f"wrote {n} events to {args.out}", file=sys.stderr)
        else:
            write_jsonl(trace, stdout)
        return

    report = bench_service_report(args)
    if args.json:
        stdout.write(json.dumps(report, indent=2, sort_keys=True) + "\n")
        return

    svc = report["service"]
    cache = svc["cache"]
    out = [
        f"bench-service: {report['events']} events "
        f"({report['query_events']} queries, {report['update_events']} updates), "
        f"{report['templates']} templates x {report['tenants']} tenants, "
        f"seed {report['seed']}",
        f"  cache: {cache['hits']}/{cache['lookups']} hits "
        f"({cache['hit_rate']:.0%}) — exact {cache['exact_hits']}, "
        f"equivalence {cache['equivalence_hits']}, "
        f"projection {cache['projection_hits']}; "
        f"{cache['invalidations']} invalidations",
        "  service  query  latency: "
        + _latency_line(svc["query_latency"]),
        "  service  update latency: "
        + _latency_line(svc["update_latency"]),
    ]
    if "baseline" in report:
        base = report["baseline"]
        out += [
            "  baseline query  latency: " + _latency_line(base["query_latency"]),
            "  baseline update latency: " + _latency_line(base["update_latency"]),
            f"  update-latency speedup (baseline/service): "
            f"{report.get('update_speedup', float('nan')):.1f}x",
            f"  whole-run   speedup (baseline/service): "
            f"{report.get('throughput_speedup', float('nan')):.1f}x",
        ]
    out.append(
        f"  service run: {svc['seconds']:.3f}s "
        f"({svc['throughput_events_per_s']:.0f} events/s)"
    )
    stdout.write("\n".join(out) + "\n")


def _latency_line(hist: dict) -> str:
    from repro.telemetry.profile import format_seconds

    return (
        f"P50 {format_seconds(hist.get('p50', 0.0))}  "
        f"P99 {format_seconds(hist.get('p99', 0.0))}  "
        f"mean {format_seconds(hist.get('mean_seconds', 0.0))}  "
        f"(n={hist.get('count', 0)})"
    )
