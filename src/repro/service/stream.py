"""Multi-tenant workload generation for the query service benchmarks.

:func:`service_stream` builds the reproducible workload that
``repro bench-service`` and the E12 benchmark replay: a transitive-closure
program over a seeded random digraph, a stream interleaving conjunctive
queries from a handful of *templates* with EDB update batches.  Each
tenant writes its queries differently — :func:`equivalent_variant`
fresh-renames every variable, shuffles the body, and sometimes adds a
redundant (homomorphically implied) atom — so a naive syntactic cache
would miss almost every probe while the containment-keyed cache, probing
with the canonical key of the minimized query, collapses each template's
variants onto one entry.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Union

from repro.cq.parser import parse_query
from repro.cq.query import Atom, ConjunctiveQuery, Var
from repro.datalog.library import transitive_closure_program
from repro.datalog.syntax import Program

__all__ = [
    "QueryEvent",
    "UpdateEvent",
    "ServiceWorkload",
    "service_stream",
    "equivalent_variant",
]

#: The template pool (over the transitive-closure vocabulary ``E``/``T``)
#: that :func:`service_stream` draws from; ``templates=k`` uses the first k.
TEMPLATE_QUERIES = (
    "Q(X, Y) :- T(X, Y).",
    "Q(X, Z) :- E(X, Y), E(Y, Z).",
    "Q(X) :- T(X, X).",
    "Q(X, Z) :- E(X, Y), T(Y, Z).",
    "Q(Y) :- E(X, Y), T(Y, X).",
    "Q(X, W) :- E(X, Y), E(Y, Z), T(Z, W).",
)


@dataclass(frozen=True)
class QueryEvent:
    """One tenant asking one (variant-rewritten) template query."""

    tenant: int
    query: ConjunctiveQuery
    template: int


@dataclass(frozen=True)
class UpdateEvent:
    """One EDB update batch: per-predicate inserted and deleted rows."""

    inserts: dict[str, frozenset] = field(default_factory=dict)
    deletes: dict[str, frozenset] = field(default_factory=dict)


@dataclass(frozen=True)
class ServiceWorkload:
    """A reproducible service workload: program, initial EDB, event stream."""

    program: Program
    database: dict[str, frozenset]
    events: tuple[Union[QueryEvent, UpdateEvent], ...]
    templates: tuple[ConjunctiveQuery, ...]

    @property
    def query_events(self) -> int:
        return sum(1 for e in self.events if isinstance(e, QueryEvent))

    @property
    def update_events(self) -> int:
        return sum(1 for e in self.events if isinstance(e, UpdateEvent))


def equivalent_variant(
    query: ConjunctiveQuery, rng: random.Random
) -> ConjunctiveQuery:
    """A syntactically scrambled but logically equivalent rewrite.

    Every variable is fresh-renamed, the body atoms are shuffled, and with
    probability one half a *redundant* atom is appended: a copy of an
    existing body atom with one variable occurrence generalized to a fresh
    existential variable.  The copy is a homomorphic image of its
    original (map the fresh variable back), so it is implied and the
    variant stays equivalent — while defeating any cache keyed on query
    text or raw syntax.
    """
    variables = [v for v in query.variables() if isinstance(v, Var)]
    rename = {
        v: Var(f"v{rng.randrange(10**6)}_{i}") for i, v in enumerate(variables)
    }

    def sub(term):
        return rename.get(term, term)

    body = [
        Atom(atom.predicate, tuple(sub(t) for t in atom.terms))
        for atom in query.body
    ]
    rng.shuffle(body)
    if body and rng.random() < 0.5:
        original = rng.choice(body)
        var_positions = [
            i for i, t in enumerate(original.terms) if isinstance(t, Var)
        ]
        if var_positions:
            pos = rng.choice(var_positions)
            fresh = Var(f"w{rng.randrange(10**6)}")
            terms = list(original.terms)
            terms[pos] = fresh
            body.append(Atom(original.predicate, tuple(terms)))
    distinguished = tuple(sub(v) for v in query.distinguished)
    return ConjunctiveQuery(query.head_name, distinguished, body)


def service_stream(
    n_events: int = 200,
    *,
    templates: int = 4,
    tenants: int = 8,
    update_every: int = 14,
    nodes: int = 30,
    edges: int = 60,
    graph: str = "random",
    seed: int = 0,
) -> ServiceWorkload:
    """Generate the multi-tenant benchmark workload.

    Every ``update_every``-th event is an :class:`UpdateEvent`; the rest
    are :class:`QueryEvent` s drawing a template uniformly and scrambling
    it with :func:`equivalent_variant`.  With ``T`` templates, ``U``
    updates, and ``Q`` queries the containment cache's expected hit rate
    is about ``1 - T * (U + 1) / Q`` — each template misses once per
    invalidation epoch and hits every other time.

    ``graph`` picks the data shape and with it the update semantics:

    * ``"random"`` — a seeded random digraph on ``nodes``/``edges``; each
      update inserts one or two fresh edges and deletes one existing edge.
    * ``"hierarchy"`` — a random recursive forest (every node ``i > 0``
      gets a parent drawn uniformly below it, so ``|E| = nodes - 1``;
      ``edges`` is ignored); each update *reparents* one or two nodes to
      a fresh parent with a smaller index, which keeps the forest acyclic
      forever.  This is the classical view-maintenance steady state —
      org charts, file trees, category hierarchies — where each update's
      derivation cone is a small slice of the materialized closure, the
      regime delete-and-rederive is built for.
    """
    if not 1 <= templates <= len(TEMPLATE_QUERIES):
        raise ValueError(
            f"templates must be in 1..{len(TEMPLATE_QUERIES)}, got {templates}"
        )
    if graph not in ("random", "hierarchy"):
        raise ValueError(f"graph must be 'random' or 'hierarchy', got {graph!r}")
    rng = random.Random(seed)
    template_queries = tuple(
        parse_query(text) for text in TEMPLATE_QUERIES[:templates]
    )

    parent: dict[int, int] = {}
    if graph == "hierarchy":
        parent = {child: rng.randrange(child) for child in range(1, nodes)}
        edge_set = {(p, c) for c, p in parent.items()}
    else:
        edge_set = set()
        while len(edge_set) < edges:
            a, b = rng.randrange(nodes), rng.randrange(nodes)
            if a != b:
                edge_set.add((a, b))
    database = {"E": frozenset(edge_set)}

    def fresh_edge() -> tuple[int, int] | None:
        for _ in range(64):
            a, b = rng.randrange(nodes), rng.randrange(nodes)
            if a != b and (a, b) not in edge_set:
                return (a, b)
        return None

    def random_update() -> UpdateEvent:
        inserts = set()
        for _ in range(rng.randint(1, 2)):
            edge = fresh_edge()
            if edge is not None:
                inserts.add(edge)
        deletes = set()
        if edge_set:
            deletes.add(rng.choice(sorted(edge_set)))
        edge_set.update(inserts)
        edge_set.difference_update(deletes)
        return UpdateEvent({"E": frozenset(inserts)}, {"E": frozenset(deletes)})

    def reparent_update() -> UpdateEvent:
        inserts, deletes = set(), set()
        moved: set[int] = set()
        for _ in range(rng.randint(1, 2)):
            child = rng.randrange(1, nodes)
            new_parent = rng.randrange(child)
            # Skip no-ops and double moves of one child (whose delete and
            # insert sets would otherwise overlap within the batch).
            if new_parent == parent[child] or child in moved:
                continue
            moved.add(child)
            deletes.add((parent[child], child))
            inserts.add((new_parent, child))
            parent[child] = new_parent
        edge_set.difference_update(deletes)
        edge_set.update(inserts)
        return UpdateEvent({"E": frozenset(inserts)}, {"E": frozenset(deletes)})

    events: list[Union[QueryEvent, UpdateEvent]] = []
    for i in range(n_events):
        if update_every and (i + 1) % update_every == 0:
            events.append(
                reparent_update() if graph == "hierarchy" else random_update()
            )
        else:
            template = rng.randrange(templates)
            events.append(
                QueryEvent(
                    tenant=rng.randrange(tenants),
                    query=equivalent_variant(template_queries[template], rng),
                    template=template,
                )
            )
    return ServiceWorkload(
        transitive_closure_program(), database, tuple(events), template_queries
    )
