"""The containment-keyed result cache — Props 2.2/2.3 as cache coherence.

Entries are keyed on :func:`repro.cq.canonical.canonical_key` of the
*minimized* query.  Because the core of a conjunctive query is unique up
to isomorphism and the canonical key is an isomorphism invariant, two
equivalent queries — however differently written — collide on the same
key, so the cache answers the second one without touching the data.  Three
probe tiers, cheapest first:

1. **exact/equivalence** — the probe's canonical key indexes straight into
   an entry.  A hit is *exact* when the minimized bodies are syntactically
   identical, *equivalence* when they only agree up to variable renaming.
2. **projection** — an entry whose distinguished tuple extends the probe's
   positionally can answer by projecting its cached relation, when the
   probe's key equals the canonical key of the entry's query re-headed to
   that prefix (sound: equal keys mean isomorphic queries, and projection
   commutes with isomorphism).
3. **containment probe** — queries too symmetric for a canonical key
   (:data:`~repro.cq.canonical.CANONICAL_KEY_PERMUTATION_CAP`) fall back
   to explicit Chandra–Merlin equivalence checks against a bounded number
   of keyless entries.

Invalidation rides the maintenance plane: each entry records the
predicates its body mentions, and :meth:`ResultCache.invalidate` drops
exactly the entries touching a dirty predicate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.cq.canonical import canonical_key
from repro.cq.containment import are_equivalent
from repro.cq.query import ConjunctiveQuery
from repro.relational.relation import Relation

__all__ = ["CacheStats", "ResultCache"]


@dataclass
class CacheStats:
    """Monotone counters of one :class:`ResultCache`'s lifetime."""

    exact_hits: int = 0
    equivalence_hits: int = 0
    projection_hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    invalidations: int = 0
    containment_probes: int = 0

    @property
    def hits(self) -> int:
        return self.exact_hits + self.equivalence_hits + self.projection_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before the first lookup)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "exact_hits": self.exact_hits,
            "equivalence_hits": self.equivalence_hits,
            "projection_hits": self.projection_hits,
            "hits": self.hits,
            "misses": self.misses,
            "lookups": self.lookups,
            "hit_rate": self.hit_rate,
            "stores": self.stores,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "containment_probes": self.containment_probes,
        }


@dataclass
class _Entry:
    query: ConjunctiveQuery  # minimized
    key: str | None
    result: Relation
    predicates: frozenset[str]
    prefix_keys: dict[int, str]  # head-prefix length -> canonical key


class ResultCache:
    """A bounded FIFO cache of minimized-query results.

    Parameters
    ----------
    capacity:
        Entries kept before the oldest is evicted.
    containment_probes:
        Per-lookup budget of explicit equivalence checks in the
        containment tier (only keyless entries are probed — keyed entries
        that could match would already have hit tier 1).
    """

    def __init__(self, capacity: int = 512, containment_probes: int = 8):
        self.capacity = capacity
        self.containment_probes = containment_probes
        self.stats = CacheStats()
        self._entries: dict[ConjunctiveQuery, _Entry] = {}
        self._by_key: dict[str, ConjunctiveQuery] = {}
        self._by_prefix: dict[tuple[str, int], ConjunctiveQuery] = {}
        self._by_predicate: dict[str, set[ConjunctiveQuery]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    # -- lookup ---------------------------------------------------------------

    def lookup(self, minimized: ConjunctiveQuery) -> tuple[str, Relation | None]:
        """Probe the cache with a *minimized* query.

        Returns ``(outcome, relation)`` where ``outcome`` is one of
        ``"exact"``, ``"equivalence"``, ``"projection"``, ``"miss"``; on a
        hit the relation's attributes are already renamed to the probe's
        distinguished variable names.
        """
        key = canonical_key(minimized)
        arity = len(minimized.distinguished)
        if key is not None:
            holder = self._by_key.get(key)
            if holder is not None:
                entry = self._entries[holder]
                if entry.query == minimized:
                    self.stats.exact_hits += 1
                    outcome = "exact"
                else:
                    self.stats.equivalence_hits += 1
                    outcome = "equivalence"
                return outcome, self._rename(entry.result, minimized)
            prefix_holder = self._by_prefix.get((key, arity))
            if prefix_holder is not None:
                entry = self._entries[prefix_holder]
                self.stats.projection_hits += 1
                prefix_attrs = tuple(
                    v.name for v in entry.query.distinguished[:arity]
                )
                from repro.relational.algebra import project

                projected = project(entry.result, prefix_attrs)
                return "projection", self._rename(projected, minimized)
        else:
            # No canonical key (orbit explosion): bounded Chandra–Merlin
            # probes against the other keyless entries of the same arity.
            budget = self.containment_probes
            for entry in self._entries.values():
                if budget <= 0:
                    break
                if entry.key is not None or len(entry.query.distinguished) != arity:
                    continue
                budget -= 1
                self.stats.containment_probes += 1
                if are_equivalent(minimized, entry.query):
                    self.stats.equivalence_hits += 1
                    return "equivalence", self._rename(entry.result, minimized)
        self.stats.misses += 1
        return "miss", None

    @staticmethod
    def _rename(result: Relation, probe: ConjunctiveQuery) -> Relation:
        """Rebuild a cached relation over the probe's head variable names
        (columns correspond positionally; equal canonical keys guarantee
        matching head shapes, so the renaming is always well-formed)."""
        names = tuple(v.name for v in probe.distinguished)
        if result.attributes == names:
            return result
        return Relation(names, result.tuples)

    # -- store / invalidate ---------------------------------------------------

    def store(self, minimized: ConjunctiveQuery, result: Relation) -> None:
        """Insert one minimized query's result (evicting FIFO at capacity)."""
        if minimized in self._entries:
            self._drop(minimized)
        key = canonical_key(minimized)
        prefix_keys: dict[int, str] = {}
        distinguished = minimized.distinguished
        for k in range(len(distinguished)):
            prefix = distinguished[:k]
            if len(set(prefix)) != len(prefix):
                continue  # repeated head variable: projection is ambiguous
            prefix_query = ConjunctiveQuery(
                minimized.head_name, prefix, minimized.body
            )
            pk = canonical_key(prefix_query)
            if pk is not None:
                prefix_keys[k] = pk
        entry = _Entry(
            minimized,
            key,
            result,
            frozenset(a.predicate for a in minimized.body),
            prefix_keys,
        )
        while len(self._entries) >= self.capacity:
            self._drop(next(iter(self._entries)))
            self.stats.evictions += 1
        self._entries[minimized] = entry
        if key is not None:
            self._by_key.setdefault(key, minimized)
        for k, pk in prefix_keys.items():
            self._by_prefix.setdefault((pk, k), minimized)
        for predicate in entry.predicates:
            self._by_predicate.setdefault(predicate, set()).add(minimized)
        self.stats.stores += 1

    def invalidate(self, dirty: Iterable[str]) -> int:
        """Drop every entry whose body mentions a dirty predicate; returns
        how many entries were dropped."""
        victims: set[ConjunctiveQuery] = set()
        for predicate in dirty:
            victims |= self._by_predicate.get(predicate, set())
        for query in victims:
            self._drop(query)
        self.stats.invalidations += len(victims)
        return len(victims)

    def clear(self) -> None:
        """Drop everything (counters are kept — they are lifetime totals)."""
        self._entries.clear()
        self._by_key.clear()
        self._by_prefix.clear()
        self._by_predicate.clear()

    def _drop(self, query: ConjunctiveQuery) -> None:
        entry = self._entries.pop(query, None)
        if entry is None:
            return
        if entry.key is not None and self._by_key.get(entry.key) == query:
            del self._by_key[entry.key]
        for k, pk in entry.prefix_keys.items():
            if self._by_prefix.get((pk, k)) == query:
                del self._by_prefix[(pk, k)]
        for predicate in entry.predicates:
            holders = self._by_predicate.get(predicate)
            if holders is not None:
                holders.discard(query)
                if not holders:
                    del self._by_predicate[predicate]
