"""CSP instances in the classical AI formulation of Section 2.

An instance is a triple ``(V, D, C)``: variables, values, and constraints,
each constraint a pair ``(t, R)`` of a scope tuple over ``V`` and a relation
``R`` over ``D`` of the same arity.  A solution assigns a value to each
variable so that every constraint's scope lands inside its relation.

The tutorial notes two lossless normalizations that we implement exactly:

* constraints sharing a scope may be consolidated by intersecting their
  relations, so every scope occurs at most once; and
* a repeated variable in a scope may be eliminated by selecting the rows of
  ``R`` that agree on the repeated positions and projecting one of them out.

:meth:`CSPInstance.normalize` applies both and is the entry point every
solver and converter uses.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from repro.errors import ArityError, DomainError

__all__ = ["Constraint", "CSPInstance"]


class Constraint:
    """A single constraint ``(t, R)``: a scope tuple and a same-arity relation.

    The scope may mention a variable more than once (the normalization in
    :meth:`CSPInstance.normalize` removes such repetitions).
    """

    __slots__ = ("_scope", "_relation")

    def __init__(self, scope: Sequence[Any], relation: Iterable[Sequence[Any]]):
        self._scope = tuple(scope)
        arity = len(self._scope)
        rows = set()
        for row in relation:
            t = tuple(row)
            if len(t) != arity:
                raise ArityError(
                    f"constraint tuple {t!r} has length {len(t)}, "
                    f"scope {self._scope!r} has arity {arity}"
                )
            rows.add(t)
        self._relation: frozenset[tuple[Any, ...]] = frozenset(rows)

    @property
    def scope(self) -> tuple[Any, ...]:
        return self._scope

    @property
    def relation(self) -> frozenset[tuple[Any, ...]]:
        return self._relation

    @property
    def arity(self) -> int:
        return len(self._scope)

    def variables(self) -> frozenset[Any]:
        """The set of variables mentioned in the scope."""
        return frozenset(self._scope)

    def satisfied_by(self, assignment: Mapping[Any, Any]) -> bool:
        """Whether a total-on-scope assignment satisfies this constraint.

        Raises ``KeyError`` if some scope variable is unassigned; use
        :meth:`consistent_with` for partial assignments.
        """
        return tuple(assignment[v] for v in self._scope) in self._relation

    def consistent_with(self, assignment: Mapping[Any, Any]) -> bool:
        """Whether a *partial* assignment can still be extended on this
        constraint: true unless the scope is fully assigned and violated.
        """
        try:
            image = tuple(assignment[v] for v in self._scope)
        except KeyError:
            return True
        return image in self._relation

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Constraint):
            return NotImplemented
        return self._scope == other._scope and self._relation == other._relation

    def __hash__(self) -> int:
        return hash((self._scope, self._relation))

    def __repr__(self) -> str:
        return f"Constraint(scope={self._scope!r}, |R|={len(self._relation)})"


class CSPInstance:
    """A constraint-satisfaction instance ``(V, D, C)``.

    Parameters
    ----------
    variables:
        The variables ``V``.  Order is preserved (it fixes the default
        variable order used by solvers), duplicates are rejected.
    domain:
        The common value domain ``D``.
    constraints:
        The constraints.  Scope variables must come from ``V`` and relation
        values from ``D``.
    """

    __slots__ = ("_variables", "_domain", "_constraints")

    def __init__(
        self,
        variables: Sequence[Any],
        domain: Iterable[Any],
        constraints: Iterable[Constraint],
    ):
        self._variables = tuple(variables)
        if len(set(self._variables)) != len(self._variables):
            raise DomainError(f"variables must be distinct: {self._variables!r}")
        self._domain = frozenset(domain)
        constraints = tuple(constraints)
        var_set = set(self._variables)
        for c in constraints:
            for v in c.scope:
                if v not in var_set:
                    raise DomainError(f"scope variable {v!r} not among the variables")
            for row in c.relation:
                for value in row:
                    if value not in self._domain:
                        raise DomainError(f"constraint value {value!r} not in the domain")
        self._constraints = constraints

    # -- accessors ---------------------------------------------------------

    @property
    def variables(self) -> tuple[Any, ...]:
        return self._variables

    @property
    def domain(self) -> frozenset[Any]:
        return self._domain

    @property
    def constraints(self) -> tuple[Constraint, ...]:
        return self._constraints

    def constraints_on(self, variable: Any) -> list[Constraint]:
        """All constraints whose scope mentions ``variable``."""
        return [c for c in self._constraints if variable in c.scope]

    def max_arity(self) -> int:
        """The largest constraint arity (0 if there are no constraints)."""
        return max((c.arity for c in self._constraints), default=0)

    def size(self) -> int:
        """``|V| + |D| + Σ|scope|·|R|`` — the input-size measure."""
        return (
            len(self._variables)
            + len(self._domain)
            + sum(c.arity * max(len(c.relation), 1) for c in self._constraints)
        )

    # -- semantics -----------------------------------------------------------

    def is_solution(self, assignment: Mapping[Any, Any]) -> bool:
        """Whether ``assignment`` (total on V, into D) satisfies all constraints."""
        if set(assignment) != set(self._variables):
            return False
        if not set(assignment.values()) <= self._domain:
            return False
        return all(c.satisfied_by(assignment) for c in self._constraints)

    def is_partial_solution(self, assignment: Mapping[Any, Any]) -> bool:
        """Whether a partial assignment violates no constraint whose scope it
        fully covers (the notion used for local consistency in Section 5)."""
        if not set(assignment) <= set(self._variables):
            return False
        if not set(assignment.values()) <= self._domain:
            return False
        assigned = set(assignment)
        for c in self._constraints:
            if set(c.scope) <= assigned and not c.satisfied_by(assignment):
                return False
        return True

    # -- normalization ---------------------------------------------------------

    def normalize(self) -> "CSPInstance":
        """The equivalent instance with distinct scope variables and at most
        one constraint per scope (Section 2's two lossless rewritings).

        Repeated variables in a scope are eliminated by keeping only rows of
        ``R`` that agree on the repeated positions and projecting out the
        duplicates; same-scope constraints are intersected.  The solution set
        is preserved exactly.
        """
        by_scope: dict[tuple[Any, ...], frozenset[tuple[Any, ...]]] = {}
        for c in self._constraints:
            scope, relation = _deduplicate_scope(c.scope, c.relation)
            if scope in by_scope:
                by_scope[scope] = by_scope[scope] & relation
            else:
                by_scope[scope] = relation
        constraints = [Constraint(s, r) for s, r in by_scope.items()]
        return CSPInstance(self._variables, self._domain, constraints)

    def is_normalized(self) -> bool:
        """Whether every scope has distinct variables and occurs at most once."""
        seen: set[tuple[Any, ...]] = set()
        for c in self._constraints:
            if len(set(c.scope)) != len(c.scope) or c.scope in seen:
                return False
            seen.add(c.scope)
        return True

    def __repr__(self) -> str:
        return (
            f"CSPInstance(|V|={len(self._variables)}, |D|={len(self._domain)}, "
            f"|C|={len(self._constraints)})"
        )


def _deduplicate_scope(
    scope: tuple[Any, ...], relation: frozenset[tuple[Any, ...]]
) -> tuple[tuple[Any, ...], frozenset[tuple[Any, ...]]]:
    """Remove repeated variables from a scope, filtering and projecting ``R``.

    Keeps the first occurrence of each variable; rows whose entries disagree
    across occurrences of the same variable are dropped.
    """
    keep: list[int] = []
    first_position: dict[Any, int] = {}
    for i, v in enumerate(scope):
        if v not in first_position:
            first_position[v] = i
            keep.append(i)
    if len(keep) == len(scope):
        return scope, relation
    rows = set()
    for t in relation:
        if all(t[i] == t[first_position[scope[i]]] for i in range(len(scope))):
            rows.add(tuple(t[i] for i in keep))
    return tuple(scope[i] for i in keep), frozenset(rows)
