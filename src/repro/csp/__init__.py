"""Constraint-satisfaction core: instances, conversions, and solvers."""

from repro.csp.convert import (
    csp_to_homomorphism,
    homomorphism_to_csp,
    solutions_are_homomorphisms,
)
from repro.csp.instance import Constraint, CSPInstance

__all__ = [
    "Constraint",
    "CSPInstance",
    "csp_to_homomorphism",
    "homomorphism_to_csp",
    "solutions_are_homomorphisms",
]
