"""Tree-decomposition dynamic programming — Theorem 6.2 made executable.

For instances whose constraint graph has treewidth ``k``, CSP is solvable in
polynomial time: obtain a tree decomposition, attach every constraint to a
bag containing its scope (condition 2 guarantees one exists), and run
message-passing — each bag's relation of locally consistent assignments is
semijoin-filtered bottom-up and a solution is assembled top-down without
backtracking.  With bags of size ≤ k+1 and domain ``d``, each bag relation
has at most ``d^{k+1}`` rows, giving the polynomial bound of the theorem
(the ∃FO^{k+1} evaluation of the proof corresponds exactly to this DP).

The module also decides acyclic instances via Yannakakis when asked, and
exposes :func:`solve` / :func:`is_solvable` with an optional pre-built
decomposition for callers that sweep many instances over one topology.
"""

from __future__ import annotations

from itertools import product
from typing import Any

from repro.csp.instance import CSPInstance
from repro.errors import DecompositionError
from repro.relational.algebra import natural_join, project, semijoin
from repro.relational.relation import Relation
from repro.width.treedecomp import TreeDecomposition, decomposition_of_instance

__all__ = ["solve", "is_solvable", "solve_with_decomposition", "count_solutions"]


def _bag_relation(
    instance: CSPInstance,
    bag: frozenset[Any],
    constraints: list,
    names: dict[Any, str],
) -> Relation:
    """All assignments to the bag's variables satisfying the attached
    constraints: the join of the constraint relations, completed by the
    unconstrained bag variables ranging over the domain."""
    attrs = tuple(sorted((names[v] for v in bag)))
    rel = Relation.unit()
    for c in constraints:
        rel = natural_join(rel, Relation(tuple(names[v] for v in c.scope), c.relation))
    missing = [a for a in attrs if not rel.has_attribute(a)]
    if missing:
        domain = sorted(instance.domain, key=repr)
        filler_rows = (tuple(vals) for vals in product(domain, repeat=len(missing)))
        rel = natural_join(rel, Relation(tuple(missing), filler_rows))
    return project(rel, attrs)


def solve_with_decomposition(
    instance: CSPInstance, decomposition: TreeDecomposition
) -> dict[Any, Any] | None:
    """Solve via DP over the given tree decomposition of the constraint graph.

    Raises :class:`DecompositionError` if some constraint scope is contained
    in no bag (i.e. the decomposition is not valid for the instance).
    """
    instance = instance.normalize()
    names = {v: f"v{i}" for i, v in enumerate(instance.variables)}
    bags = decomposition.bags

    # Attach each constraint to one bag containing its scope.
    attached: dict[Any, list] = {node: [] for node in bags}
    for c in instance.constraints:
        scope = set(c.scope)
        home = next(
            (node for node in sorted(bags, key=repr) if scope <= bags[node]), None
        )
        if home is None:
            raise DecompositionError(
                f"no bag contains the scope {tuple(c.scope)!r}; "
                "the decomposition is not valid for this instance"
            )
        attached[home].append(c)

    root, children = decomposition.rooted()
    order: list[Any] = []
    stack = [root]
    while stack:
        node = stack.pop()
        order.append(node)
        stack.extend(children[node])
    bottom_up = list(reversed(order))

    # Bottom-up: bag relation joined with child messages projected to the
    # separator (shared variables), i.e. a semijoin filter.
    tables: dict[Any, Relation] = {}
    for node in bottom_up:
        rel = _bag_relation(instance, bags[node], attached[node], names)
        for child in children[node]:
            shared = tuple(
                a for a in rel.attributes if tables[child].has_attribute(a)
            )
            message = project(tables[child], shared)
            rel = semijoin(rel, message)
        if not rel:
            return None
        tables[node] = rel

    # Top-down: assemble a solution greedily; the bottom-up filtering makes
    # every local choice extensible (backtrack-free).
    chosen: dict[str, Any] = {}
    for node in order:
        rel = tables[node]
        fixed = [a for a in rel.attributes if a in chosen]
        row = next(
            (
                t
                for t in sorted(rel.tuples, key=repr)
                if all(t[rel.index_of(a)] == chosen[a] for a in fixed)
            ),
            None,
        )
        if row is None:
            raise DecompositionError(
                "internal error: bottom-up filtering left an inextensible bag"
            )
        chosen.update(zip(rel.attributes, row))

    name_to_var = {n: v for v, n in names.items()}
    assignment = {name_to_var[a]: value for a, value in chosen.items()}
    domain = sorted(instance.domain, key=repr)
    for v in instance.variables:
        if v not in assignment:
            if not domain:
                return None
            assignment[v] = domain[0]
    return assignment


def count_solutions(
    instance: CSPInstance, decomposition: TreeDecomposition | None = None
) -> int:
    """Count all solutions by sum-product message passing over a tree
    decomposition — polynomial for bounded width, where brute-force counting
    is exponential.

    Each bag's table maps bag assignments to the number of extensions into
    its subtree; a parent multiplies, per row, the child counts aggregated
    on the separator.  Constraints are attached to exactly one bag, so no
    solution is double-counted; unconstrained variables multiply by the
    domain size.
    """
    instance = instance.normalize()
    if not instance.variables:
        return 1 if all(c.relation for c in instance.constraints) or not instance.constraints else 0
    if decomposition is None:
        decomposition = decomposition_of_instance(instance)

    names = {v: f"v{i}" for i, v in enumerate(instance.variables)}
    bags = decomposition.bags
    attached: dict[Any, list] = {node: [] for node in bags}
    for c in instance.constraints:
        scope = set(c.scope)
        home = next(
            (node for node in sorted(bags, key=repr) if scope <= bags[node]), None
        )
        if home is None:
            raise DecompositionError(
                f"no bag contains the scope {tuple(c.scope)!r}"
            )
        attached[home].append(c)

    root, children = decomposition.rooted()
    order: list[Any] = []
    stack = [root]
    while stack:
        node = stack.pop()
        order.append(node)
        stack.extend(children[node])

    # counts[node]: {bag-row (over sorted attrs): number of subtree extensions}
    counts: dict[Any, dict[tuple, int]] = {}
    attrs_of: dict[Any, tuple[str, ...]] = {}
    for node in reversed(order):
        rel = _bag_relation(instance, bags[node], attached[node], names)
        attrs = rel.attributes
        attrs_of[node] = attrs
        table = {t: 1 for t in rel.tuples}
        for child in children[node]:
            child_attrs = attrs_of[child]
            shared = [a for a in attrs if a in child_attrs]
            shared_idx_child = [child_attrs.index(a) for a in shared]
            shared_idx_parent = [attrs.index(a) for a in shared]
            # Aggregate child counts on the separator.
            agg: dict[tuple, int] = {}
            for row, count in counts[child].items():
                key = tuple(row[i] for i in shared_idx_child)
                agg[key] = agg.get(key, 0) + count
            table = {
                row: count * agg.get(tuple(row[i] for i in shared_idx_parent), 0)
                for row, count in table.items()
            }
        counts[node] = {row: c for row, c in table.items() if c}
        if not counts[node]:
            return 0

    total = sum(counts[root].values())
    covered = decomposition.vertices_covered()
    free = [v for v in instance.variables if v not in covered]
    return total * (len(instance.domain) ** len(free))


def solve(
    instance: CSPInstance, decomposition: TreeDecomposition | None = None
) -> dict[Any, Any] | None:
    """Solve by tree-decomposition DP (heuristic decomposition by default)."""
    instance = instance.normalize()
    if not instance.variables:
        return {} if all(c.relation for c in instance.constraints) or not instance.constraints else None
    if decomposition is None:
        decomposition = decomposition_of_instance(instance)
    return solve_with_decomposition(instance, decomposition)


def is_solvable(
    instance: CSPInstance, decomposition: TreeDecomposition | None = None
) -> bool:
    """Decide solvability by tree-decomposition DP."""
    return solve(instance, decomposition) is not None
