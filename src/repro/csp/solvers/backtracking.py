"""Backtracking search for CSP, with optional inference.

This is the classical AI solver family the tutorial's Section 1 alludes to
("researchers in artificial intelligence have pursued both heuristics ...").
Three inference levels are provided:

* ``Inference.NONE`` — chronological backtracking, checking only constraints
  whose scope has just become fully assigned;
* ``Inference.FORWARD_CHECKING`` — after each assignment, prune the candidate
  sets of neighbouring unassigned variables through binary and almost-
  instantiated constraints;
* ``Inference.MAC`` — maintain (generalized) arc consistency on the residual
  problem after each assignment (AC-3 over constraint/variable arcs).

Variable order is dynamic (minimum-remaining-values, ties by degree); value
order is deterministic.  The solver records search statistics so benchmarks
can report node counts alongside wall-clock time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.csp.instance import Constraint, CSPInstance

__all__ = ["Inference", "SearchStats", "solve", "is_solvable", "solve_with_stats"]


class Inference(enum.Enum):
    """How much constraint propagation to interleave with search."""

    NONE = "none"
    FORWARD_CHECKING = "forward-checking"
    MAC = "mac"


@dataclass
class SearchStats:
    """Counters accumulated during one search run."""

    nodes: int = 0
    backtracks: int = 0
    prunings: int = 0
    solution: dict[Any, Any] | None = field(default=None, repr=False)


def _revise(
    constraint: Constraint,
    variable: Any,
    domains: dict[Any, set[Any]],
    assignment: dict[Any, Any],
) -> tuple[bool, int]:
    """Shrink ``domains[variable]`` to values extendable on ``constraint``.

    A value survives iff some row of the constraint relation assigns it to
    ``variable`` while agreeing with the current assignment and staying
    inside the current domains of the other scope variables.

    Returns ``(changed, removed_count)``.
    """
    scope = constraint.scope
    positions = [i for i, v in enumerate(scope) if v == variable]
    supported: set[Any] = set()
    for row in constraint.relation:
        ok = True
        for i, v in enumerate(scope):
            if v in assignment:
                if row[i] != assignment[v]:
                    ok = False
                    break
            elif row[i] not in domains[v]:
                ok = False
                break
        if ok:
            for i in positions:
                supported.add(row[i])
    current = domains[variable]
    new = current & supported
    removed = len(current) - len(new)
    if removed:
        domains[variable] = new
        return True, removed
    return False, 0


def _ac3(
    instance: CSPInstance,
    domains: dict[Any, set[Any]],
    assignment: dict[Any, Any],
    stats: SearchStats,
    seeds: list[Any] | None = None,
) -> bool:
    """Generalized AC-3 on the residual problem.  Returns False on wipe-out.

    ``seeds``: variables whose change should initially trigger revisions; if
    ``None``, all constraint/variable arcs are enqueued.
    """
    constraints_on: dict[Any, list[Constraint]] = {v: [] for v in instance.variables}
    for c in instance.constraints:
        for v in c.variables():
            constraints_on[v].append(c)

    queue: list[tuple[Constraint, Any]] = []
    if seeds is None:
        queue = [
            (c, v)
            for c in instance.constraints
            for v in c.variables()
            if v not in assignment
        ]
    else:
        for s in seeds:
            for c in constraints_on[s]:
                for v in c.variables():
                    if v not in assignment and v != s:
                        queue.append((c, v))

    while queue:
        constraint, variable = queue.pop()
        changed, removed = _revise(constraint, variable, domains, assignment)
        if changed:
            stats.prunings += removed
            if not domains[variable]:
                return False
            for c in constraints_on[variable]:
                if c is not constraint:
                    for v in c.variables():
                        if v not in assignment and v != variable:
                            queue.append((c, v))
    return True


def _forward_check(
    instance: CSPInstance,
    variable: Any,
    domains: dict[Any, set[Any]],
    assignment: dict[Any, Any],
    stats: SearchStats,
) -> bool:
    """One-shot pruning of neighbours of the just-assigned ``variable``."""
    for c in instance.constraints:
        if variable not in c.scope:
            continue
        for v in c.variables():
            if v in assignment:
                continue
            _, removed = _revise(c, v, domains, assignment)
            stats.prunings += removed
            if not domains[v]:
                return False
    return True


def solve_with_stats(
    instance: CSPInstance,
    inference: Inference = Inference.MAC,
) -> SearchStats:
    """Run backtracking search, returning full :class:`SearchStats`.

    ``stats.solution`` is a solution dict or ``None`` if unsolvable.
    """
    instance = instance.normalize()
    stats = SearchStats()
    domains: dict[Any, set[Any]] = {v: set(instance.domain) for v in instance.variables}
    assignment: dict[Any, Any] = {}

    degree = {
        v: len(instance.constraints_on(v)) for v in instance.variables
    }

    # Unary constraints and empty relations are handled up front by a root
    # propagation pass (harmless for NONE since it only tightens domains).
    if inference is Inference.MAC:
        if not _ac3(instance, domains, assignment, stats, seeds=None):
            return stats
    else:
        for c in instance.constraints:
            if not c.relation:
                return stats
            if c.arity == 1:
                var = c.scope[0]
                domains[var] &= {row[0] for row in c.relation}
                if not domains[var]:
                    return stats

    def select_variable() -> Any:
        unassigned = [v for v in instance.variables if v not in assignment]
        return min(unassigned, key=lambda v: (len(domains[v]), -degree[v], repr(v)))

    def consistent(variable: Any) -> bool:
        for c in instance.constraints:
            if variable in c.scope and not c.consistent_with(assignment):
                return False
        return True

    def search() -> bool:
        if len(assignment) == len(instance.variables):
            return True
        variable = select_variable()
        for value in sorted(domains[variable], key=repr):
            stats.nodes += 1
            assignment[variable] = value
            if consistent(variable):
                saved = {v: set(d) for v, d in domains.items()}
                domains[variable] = {value}
                ok = True
                if inference is Inference.FORWARD_CHECKING:
                    ok = _forward_check(instance, variable, domains, assignment, stats)
                elif inference is Inference.MAC:
                    ok = _ac3(instance, domains, assignment, stats, seeds=[variable])
                if ok and search():
                    return True
                domains.clear()
                domains.update(saved)
            del assignment[variable]
            stats.backtracks += 1
        return False

    if search():
        stats.solution = dict(assignment)
    return stats


def solve(
    instance: CSPInstance, inference: Inference = Inference.MAC
) -> dict[Any, Any] | None:
    """Return one solution (or ``None``) using backtracking search."""
    return solve_with_stats(instance, inference).solution


def is_solvable(instance: CSPInstance, inference: Inference = Inference.MAC) -> bool:
    """Decide solvability using backtracking search."""
    return solve(instance, inference) is not None
