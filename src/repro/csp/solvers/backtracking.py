"""Backtracking search for CSP, with optional inference.

This is the classical AI solver family the tutorial's Section 1 alludes to
("researchers in artificial intelligence have pursued both heuristics ...").
Three inference levels are provided:

* ``Inference.NONE`` — chronological backtracking, checking only constraints
  whose scope has just become fully assigned;
* ``Inference.FORWARD_CHECKING`` — after each assignment, prune the candidate
  sets of neighbouring unassigned variables through binary and almost-
  instantiated constraints;
* ``Inference.MAC`` — maintain (generalized) arc consistency on the residual
  problem after each assignment (AC-3 over constraint/variable arcs).

MAC takes the same ``strategy`` knob as the §5 consistency engines:
``"residual"`` (default) maintains arc consistency through one shared
:class:`~repro.consistency.propagation.PropagationEngine`, so residual
supports and hash-index candidate lists persist across *all* nodes of the
search, and per-node undo is a trail rollback instead of a full domain
copy; ``"naive"`` is the seed AC-3, kept as the differential oracle;
``"interned"`` maintains arc consistency through one shared
:class:`~repro.consistency.propagation.InternedEngine` — domains are int
bitmasks, a node's pin is one mask swap, propagation is word operations,
and the trail holds ``(variable, removed_mask)`` pairs.  The search holds
codes in its assignment and decodes the solution at the boundary.
``"columnar"`` rides the same code space through one shared
:class:`~repro.consistency.propagation.ColumnarEngine`, whose revisions
sweep whole constraint columns as vectorized array operations when numpy
is available (and degrade to the interned bit loop when it is not).
Assigned variables carry singleton domains, so the engine's domains-only
revisions coincide with the assignment-aware ones.

Variable order is dynamic (minimum-remaining-values, ties by degree); value
order is deterministic: both the tie-break rank of the variables and the
canonical value order are precomputed once per solve, so no hot-loop
``repr`` sorting remains, and the interned engine enumerates codes in
ascending order — which is exactly the original values' ``repr`` order —
so every strategy explores the identical search tree and returns the
identical solution.  The solver records search statistics so benchmarks
can report node counts alongside wall-clock time; propagation counters
accumulate in ``SearchStats.propagation``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.consistency.propagation import (
    InternedEngine,
    PropagationEngine,
    PropagationStats,
    check_propagation_strategy,
    make_engine,
    publish,
)
from repro.csp.instance import Constraint, CSPInstance
from repro.telemetry.registry import counter_delta, snapshot
from repro.telemetry.spans import span

__all__ = [
    "Inference",
    "SearchStats",
    "SearchCancelled",
    "solve",
    "is_solvable",
    "solve_with_stats",
]


class Inference(enum.Enum):
    """How much constraint propagation to interleave with search."""

    NONE = "none"
    FORWARD_CHECKING = "forward-checking"
    MAC = "mac"


@dataclass
class SearchStats:
    """Counters accumulated during one search run.

    ``propagation`` aggregates the inference layer's
    :class:`~repro.consistency.propagation.PropagationStats` across the whole
    search (root pass plus every node), for both strategies.  ``tasks`` and
    ``steals`` count shard-parallel work (:mod:`repro.parallel.search`):
    subtree tasks executed by workers, and tasks a worker took off the
    shared work-stealing deque; both stay 0 for a serial solve.
    """

    nodes: int = 0
    backtracks: int = 0
    prunings: int = 0
    tasks: int = 0
    steals: int = 0
    propagation: PropagationStats = field(default_factory=PropagationStats)
    solution: dict[Any, Any] | None = field(default=None, repr=False)

    # Not mergeable counters: the telemetry registry must skip them when
    # snapshotting/diffing (the nested PropagationStats travels as its own
    # "propagation" metricset; the solution is a result, not a counter).
    _NON_COUNTER_FIELDS = ("propagation", "solution")

    def merge(self, other: "SearchStats") -> "SearchStats":
        """Fold ``other``'s counters into this object (in place); return it.

        Counters add and the nested propagation stats merge; the solution
        is kept if present, else adopted from ``other`` — so merging the
        stats of several runs reports total work plus *a* witness.
        """
        self.nodes += other.nodes
        self.backtracks += other.backtracks
        self.prunings += other.prunings
        self.tasks += other.tasks
        self.steals += other.steals
        self.propagation.merge(other.propagation)
        if self.solution is None:
            self.solution = other.solution
        return self

    def reset(self) -> None:
        """Zero every counter and drop the solution."""
        self.nodes = 0
        self.backtracks = 0
        self.prunings = 0
        self.tasks = 0
        self.steals = 0
        self.propagation.reset()
        self.solution = None

    def as_dict(self) -> dict:
        """A plain-dict snapshot (for ``--json`` output and the telemetry
        registry); the nested propagation counters appear under
        ``"propagation"``."""
        return {
            "nodes": self.nodes,
            "backtracks": self.backtracks,
            "prunings": self.prunings,
            "tasks": self.tasks,
            "steals": self.steals,
            "solved": self.solution is not None,
            "propagation": self.propagation.as_dict(),
        }


def _revise(
    constraint: Constraint,
    variable: Any,
    domains: dict[Any, set[Any]],
    assignment: dict[Any, Any],
    prop: PropagationStats,
) -> tuple[bool, int]:
    """Shrink ``domains[variable]`` to values extendable on ``constraint``.

    A value survives iff some row of the constraint relation assigns it to
    ``variable`` while agreeing with the current assignment and staying
    inside the current domains of the other scope variables.

    Returns ``(changed, removed_count)``.
    """
    scope = constraint.scope
    positions = [i for i, v in enumerate(scope) if v == variable]
    supported: set[Any] = set()
    prop.revisions += 1
    for row in constraint.relation:
        prop.support_checks += 1
        ok = True
        for i, v in enumerate(scope):
            if v in assignment:
                if row[i] != assignment[v]:
                    ok = False
                    break
            elif row[i] not in domains[v]:
                ok = False
                break
        if ok:
            for i in positions:
                supported.add(row[i])
    current = domains[variable]
    new = current & supported
    removed = len(current) - len(new)
    if removed:
        domains[variable] = new
        return True, removed
    return False, 0


def _ac3(
    instance: CSPInstance,
    domains: dict[Any, set[Any]],
    assignment: dict[Any, Any],
    stats: SearchStats,
    seeds: list[Any] | None = None,
) -> bool:
    """Generalized AC-3 on the residual problem.  Returns False on wipe-out.

    ``seeds``: variables whose change should initially trigger revisions; if
    ``None``, all constraint/variable arcs are enqueued.
    """
    constraints_on: dict[Any, list[Constraint]] = {v: [] for v in instance.variables}
    for c in instance.constraints:
        for v in c.variables():
            constraints_on[v].append(c)

    queue: list[tuple[Constraint, Any]] = []
    if seeds is None:
        queue = [
            (c, v)
            for c in instance.constraints
            for v in c.variables()
            if v not in assignment
        ]
    else:
        for s in seeds:
            for c in constraints_on[s]:
                for v in c.variables():
                    if v not in assignment and v != s:
                        queue.append((c, v))

    while queue:
        constraint, variable = queue.pop()
        changed, removed = _revise(
            constraint, variable, domains, assignment, stats.propagation
        )
        if changed:
            stats.prunings += removed
            if not domains[variable]:
                stats.propagation.wipeouts += 1
                return False
            for c in constraints_on[variable]:
                if c is not constraint:
                    for v in c.variables():
                        if v not in assignment and v != variable:
                            queue.append((c, v))
    return True


def _forward_check(
    instance: CSPInstance,
    variable: Any,
    domains: dict[Any, set[Any]],
    assignment: dict[Any, Any],
    stats: SearchStats,
) -> bool:
    """One-shot pruning of neighbours of the just-assigned ``variable``."""
    for c in instance.constraints:
        if variable not in c.scope:
            continue
        for v in c.variables():
            if v in assignment:
                continue
            _, removed = _revise(c, v, domains, assignment, stats.propagation)
            stats.prunings += removed
            if not domains[v]:
                stats.propagation.wipeouts += 1
                return False
    return True


#: Node-batch span granularity: under tracing, the search opens one
#: ``"search.batch"`` span per this many visited nodes, so a long search
#: profiles as a sequence of timed batches instead of one opaque span.
NODE_BATCH_SIZE = 128

#: How often (in visited nodes) a search polls its ``should_stop``
#: callback.  Cancellation checks may cross a process boundary (a shared
#: best-path value under :func:`repro.parallel.search.solve_parallel`), so
#: polling per node would dominate; every 64th node bounds the overshoot
#: of a cancelled subtree to one small batch.
STOP_CHECK_INTERVAL = 64


class SearchCancelled(Exception):
    """Raised internally when a search's ``should_stop`` callback fires;
    the search unwinds and returns its partial stats with no solution."""


def solve_with_stats(
    instance: CSPInstance,
    inference: Inference = Inference.MAC,
    strategy: str = "residual",
    *,
    should_stop: Any = None,
    workers: int | None = None,
) -> SearchStats:
    """Run backtracking search, returning full :class:`SearchStats`.

    ``stats.solution`` is a solution dict or ``None`` if unsolvable.
    ``strategy`` selects the MAC propagation engine (see module docstring);
    it does not affect which solutions exist, only how inference is run.
    ``should_stop`` (a zero-argument callable) is polled every
    :data:`STOP_CHECK_INTERVAL` nodes; returning true abandons the search
    — the first-solution cancellation hook of the parallel plane.
    ``workers`` > 1 (MAC only) routes the solve through
    :func:`repro.parallel.search.solve_parallel`: the tree is partitioned
    by top-level branching across a worker-process pool, and the returned
    stats are the merged per-worker counters with the identical solution.
    """
    check_propagation_strategy(strategy)
    if workers is not None and workers > 1 and inference is Inference.MAC:
        from repro.parallel.search import solve_parallel

        return solve_parallel(instance, strategy=strategy, workers=workers)
    with span("search", inference=inference.value, strategy=strategy) as sp:
        stats = _search_with_stats(instance, inference, strategy, sp, should_stop)
        if sp:
            # SearchStats is never the ContextVar-installed object, so the
            # span carries its counters explicitly.
            sp.add_counters("search", counter_delta(stats, snapshot(SearchStats())))
            sp.note(nodes=stats.nodes, solved=stats.solution is not None)
        return stats


def _search_with_stats(
    instance: CSPInstance,
    inference: Inference,
    strategy: str,
    search_span: Any,
    should_stop: Any = None,
) -> SearchStats:
    instance = instance.normalize()
    stats = SearchStats()
    prop = stats.propagation
    assignment: dict[Any, Any] = {}

    degree = {
        v: len(instance.constraints_on(v)) for v in instance.variables
    }
    # Hoisted tie-break rank: monotone with repr(v), so the MRV selection
    # below is identical to the historical per-node repr comparison.
    var_rank = {v: i for i, v in enumerate(sorted(instance.variables, key=repr))}

    engine: PropagationEngine | None = None
    if inference is Inference.MAC and strategy != "naive":
        engine = make_engine(instance, strategy)
        engine.charge_build(prop)

    if engine is not None:
        domains: dict[Any, Any] = engine.fresh_domains()
    else:
        domains = {v: set(instance.domain) for v in instance.variables}
        # Hoisted canonical value order: filtering it per node replaces the
        # historical per-node ``sorted(domain, key=repr)``.
        ordered_domain = sorted(instance.domain, key=repr)

    # In interned mode the assignment holds codes, so node-consistency checks
    # must run against the code-space constraint relations.
    search_constraints = (
        engine.encoded.constraints
        if isinstance(engine, InternedEngine)
        else instance.constraints
    )

    def trailed_prunings(trail: list[tuple[Any, Any]]) -> int:
        return sum(engine.count(removed) for _, removed in trail)

    # Under tracing, nodes are grouped into "search.batch" spans of
    # NODE_BATCH_SIZE, rotated at node-increment time — when the trace
    # stack's top is always the current batch span, so rotation never
    # violates the LIFO close discipline.  Each batch carries the
    # SearchStats delta charged inside it explicitly (the object is a
    # local, not the ContextVar-installed stats).
    traced = bool(search_span)
    batch: list[Any] = [None, None]  # [open batch span, stats snapshot]

    def open_batch() -> None:
        batch[0] = span("search.batch", first_node=stats.nodes)
        batch[1] = snapshot(stats)

    def close_batch() -> None:
        bsp = batch[0]
        batch[0] = None
        if not bsp:
            return
        bsp.add_counters("search", counter_delta(stats, batch[1]))
        bsp.note(nodes=stats.nodes - bsp.attributes["first_node"])
        bsp.close()

    def tick_node() -> None:
        stats.nodes += 1
        if (
            should_stop is not None
            and stats.nodes % STOP_CHECK_INTERVAL == 0
            and should_stop()
        ):
            raise SearchCancelled
        if traced and stats.nodes % NODE_BATCH_SIZE == 0:
            close_batch()
            open_batch()

    # Unary constraints and empty relations are handled up front by a root
    # propagation pass (harmless for NONE since it only tightens domains).
    try:
        if engine is not None:
            root_trail: list[tuple[Any, set[Any]]] = []
            ok = engine.propagate(
                domains, engine.full_worklist(), prop, trail=root_trail
            )
            stats.prunings += trailed_prunings(root_trail)
            if not ok:
                return stats
        elif inference is Inference.MAC:
            if not _ac3(instance, domains, assignment, stats, seeds=None):
                return stats
        else:
            for c in instance.constraints:
                if not c.relation:
                    return stats
                if c.arity == 1:
                    var = c.scope[0]
                    domains[var] &= {row[0] for row in c.relation}
                    if not domains[var]:
                        return stats

        if engine is not None:
            def dsize(v: Any) -> int:
                return engine.domain_size(domains, v)

            def value_order(variable: Any) -> list[Any]:
                return engine.domain_values(domains, variable)
        else:
            def dsize(v: Any) -> int:
                return len(domains[v])

            def value_order(variable: Any) -> list[Any]:
                current = domains[variable]
                return [x for x in ordered_domain if x in current]

        def select_variable() -> Any:
            unassigned = [v for v in instance.variables if v not in assignment]
            return min(unassigned, key=lambda v: (dsize(v), -degree[v], var_rank[v]))

        def consistent(variable: Any) -> bool:
            for c in search_constraints:
                if variable in c.scope and not c.consistent_with(assignment):
                    return False
            return True

        def search() -> bool:
            if len(assignment) == len(instance.variables):
                return True
            variable = select_variable()
            for value in value_order(variable):
                tick_node()
                assignment[variable] = value
                if consistent(variable):
                    if engine is not None:
                        # Trail-based undo: the assignment restriction is the
                        # first trail entry (not counted as a pruning), then
                        # the engine records every propagation deletion.
                        trail = [(variable, engine.pin(domains, variable, value))]
                        ok = engine.propagate(
                            domains,
                            engine.arcs_from([variable], skip=assignment),
                            prop,
                            trail=trail,
                            skip=assignment,
                        )
                        stats.prunings += trailed_prunings(trail[1:])
                        if ok and search():
                            return True
                        engine.restore(domains, trail, prop)
                    else:
                        saved = {v: set(d) for v, d in domains.items()}
                        domains[variable] = {value}
                        ok = True
                        if inference is Inference.FORWARD_CHECKING:
                            ok = _forward_check(
                                instance, variable, domains, assignment, stats
                            )
                        elif inference is Inference.MAC:
                            ok = _ac3(
                                instance, domains, assignment, stats, seeds=[variable]
                            )
                        if ok and search():
                            return True
                        domains.clear()
                        domains.update(saved)
                del assignment[variable]
                stats.backtracks += 1
            return False

        if traced:
            open_batch()
        try:
            solved = search()
        except SearchCancelled:
            # Cancelled mid-tree (first-solution cancellation from a
            # sibling worker): the partial counters are still honest work
            # done; the solution stays None.
            return stats
        if solved:
            stats.solution = (
                engine.decode_assignment(assignment)
                if engine is not None
                else dict(assignment)
            )
        return stats
    finally:
        close_batch()
        publish(prop)


def solve(
    instance: CSPInstance,
    inference: Inference = Inference.MAC,
    strategy: str = "residual",
    *,
    workers: int | None = None,
) -> dict[Any, Any] | None:
    """Return one solution (or ``None``) using backtracking search."""
    return solve_with_stats(
        instance, inference, strategy=strategy, workers=workers
    ).solution


def is_solvable(
    instance: CSPInstance,
    inference: Inference = Inference.MAC,
    strategy: str = "residual",
    *,
    workers: int | None = None,
) -> bool:
    """Decide solvability using backtracking search."""
    return solve(instance, inference, strategy=strategy, workers=workers) is not None
