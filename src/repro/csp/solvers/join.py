"""The join-evaluation solver — Proposition 2.1 made executable.

    A CSP instance ``(V, D, C)`` is solvable iff ``⋈_{(t,R)∈C} R`` is
    nonempty.                                           [Bibel; Gyssens et al.]

Each normalized constraint ``(t, R)`` is read as a relation over the scheme
``t`` (variables become attributes) and the instance is decided by evaluating
the natural join of all constraint relations.  Every row of the join extends
to a solution by assigning unconstrained variables arbitrarily.

The join order is chosen by the cost-guided planner in
:mod:`repro.relational.planner` (smallest estimated intermediate first);
pass ``strategy="textbook"`` to join the constraints in the order they were
written, or ``"smallest"`` for the simple cardinality sort.  Orthogonally,
the join *execution* defaults to the hash-indexed build/probe operators;
``strategy="scan"`` selects the nested-loop implementation (the
differential-testing oracle), and compound specs such as
``"textbook+scan"`` fix both — see
:func:`repro.relational.planner.parse_strategy`.
:mod:`repro.width.acyclic` offers the Yannakakis evaluation that is
worst-case-optimal for acyclic instances.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.csp.instance import CSPInstance
from repro.errors import UnsatisfiableError
from repro.relational.algebra import join_all
from repro.relational.relation import Relation

__all__ = [
    "constraint_relations",
    "join_of_constraints",
    "solve",
    "is_solvable",
    "all_solutions",
]


def constraint_relations(instance: CSPInstance) -> list[Relation]:
    """The constraints of the (normalized) instance as named-attribute
    relations, with each variable encoded as an attribute name.

    Variables may be arbitrary hashable values, so they are mapped to string
    attribute names via the instance's variable order; the inverse mapping is
    applied again by :func:`all_solutions`.
    """
    instance = instance.normalize()
    names = _attribute_names(instance)
    return [
        Relation(tuple(names[v] for v in c.scope), c.relation)
        for c in instance.constraints
    ]


def _attribute_names(instance: CSPInstance) -> dict[Any, str]:
    return {v: f"v{i}" for i, v in enumerate(instance.variables)}


def join_of_constraints(
    instance: CSPInstance, strategy: str | None = None
) -> Relation:
    """Evaluate ``⋈_{(t,R)∈C} R`` for the normalized instance.

    ``strategy`` selects the join order (``"greedy"``, ``"smallest"``,
    ``"textbook"``) and/or execution (``"indexed"``, ``"scan"``); every
    combination yields the same relation.
    """
    return join_all(constraint_relations(instance), strategy=strategy)


def is_solvable(instance: CSPInstance, strategy: str | None = None) -> bool:
    """Proposition 2.1: solvable iff the join of constraint relations is
    nonempty.  (An instance with no constraints is vacuously solvable when
    it has either no variables or a nonempty domain.)"""
    instance = instance.normalize()
    if not instance.constraints:
        return not instance.variables or bool(instance.domain)
    return bool(join_of_constraints(instance, strategy=strategy))


def all_solutions(instance: CSPInstance) -> Iterator[dict[Any, Any]]:
    """Enumerate all solutions from the join result.

    Each join row fixes the constrained variables; unconstrained variables
    range over the whole domain.
    """
    from itertools import product as iproduct

    instance = instance.normalize()
    names = _attribute_names(instance)
    joined = join_of_constraints(instance)
    constrained = set(joined.attributes)
    free = [v for v in instance.variables if names[v] not in constrained]
    domain = sorted(instance.domain, key=repr)
    if free and not domain:
        return

    name_to_var = {n: v for v, n in names.items()}
    if not instance.constraints:
        rows: Iterator[dict[Any, Any]] = iter([{}])
    else:
        if not joined:
            return
        rows = (
            {name_to_var[a]: val for a, val in zip(joined.attributes, t)}
            for t in sorted(joined.tuples, key=repr)
        )
    for base in rows:
        if not free:
            yield dict(base)
            continue
        for values in iproduct(domain, repeat=len(free)):
            full = dict(base)
            full.update(zip(free, values))
            yield full


def solve(instance: CSPInstance) -> dict[Any, Any] | None:
    """Return one solution obtained from the join, or ``None``."""
    for assignment in all_solutions(instance):
        return assignment
    return None


def require_solution(instance: CSPInstance) -> dict[Any, Any]:
    """Like :func:`solve` but raises :class:`UnsatisfiableError` when empty."""
    solution = solve(instance)
    if solution is None:
        raise UnsatisfiableError("the join of the constraint relations is empty")
    return solution
