"""The k-consistency solver — Theorems 4.6/4.7 and 5.7 made executable.

For a fixed ``k``, deciding whether the Duplicator wins the existential
k-pebble game on the homomorphism instance ``(A_P, B_P)`` runs in time
polynomial in the input (O(n^{2k}) shape, Theorem 4.7).  The verdict is:

* Spoiler wins  ⇒  **no homomorphism exists** — always sound, because a
  homomorphism would itself induce a winning Duplicator strategy;
* Duplicator wins  ⇒  *k-consistent*: a homomorphism exists **provided**
  ``¬CSP(B)`` is expressible in k-Datalog (Theorem 4.6) — e.g. 2-SAT,
  Horn-SAT (with k ≥ clause width), 2-colorability.  For general templates
  the verdict is only "not refuted at level k".

:func:`solve_decision` exposes the three-valued answer;
:func:`solve` composes the refutation step with backtracking search to stay
complete on arbitrary instances while enjoying the k-consistency shortcut.
"""

from __future__ import annotations

import enum
from typing import Any

from repro.csp.convert import csp_to_homomorphism
from repro.csp.instance import CSPInstance
from repro.games.pebble import solve_game
from repro.relational.structure import Structure

__all__ = ["Verdict", "solve_decision", "decide_homomorphism", "solve", "is_solvable"]


class Verdict(enum.Enum):
    """Three-valued outcome of the k-consistency test."""

    UNSATISFIABLE = "unsatisfiable"  # Spoiler wins: definitely no solution
    CONSISTENT = "consistent"  # Duplicator wins: solvable if ¬CSP(B) ∈ k-Datalog


def decide_homomorphism(
    a: Structure, b: Structure, k: int, strategy: str = "residual"
) -> Verdict:
    """Run the k-pebble game on ``(A, B)`` and report the verdict.

    ``strategy`` selects the game's pruning engine (``"residual"``,
    ``"naive"``, or ``"interned"``); all compute the same verdict.
    """
    game = solve_game(a, b, k, strategy=strategy)
    if game.spoiler_wins:
        return Verdict.UNSATISFIABLE
    return Verdict.CONSISTENT


def solve_decision(
    instance: CSPInstance, k: int, strategy: str = "residual"
) -> Verdict:
    """The k-consistency decision procedure on a CSP instance.

    ``UNSATISFIABLE`` is always correct.  ``CONSISTENT`` certifies a solution
    exists exactly when the template's complement is k-Datalog-expressible
    (Theorems 4.6, 5.7) — the regime benchmarked in E4/E11.
    """
    a, b = csp_to_homomorphism(instance)
    return decide_homomorphism(a, b, k, strategy=strategy)


def solve(
    instance: CSPInstance, k: int = 2, strategy: str = "residual"
) -> dict[Any, Any] | None:
    """A complete solver: k-consistency refutation first, then backtracking.

    On inputs the game refutes, this answers in the polynomial game time; on
    the rest it falls back to MAC backtracking (which also produces the
    witness assignment that the pure decision procedure does not).
    """
    if solve_decision(instance, k, strategy=strategy) is Verdict.UNSATISFIABLE:
        return None
    from repro.csp.solvers import backtracking

    return backtracking.solve(instance, strategy=strategy)


def is_solvable(instance: CSPInstance, k: int = 2, strategy: str = "residual") -> bool:
    """Complete solvability test with the k-consistency fast path."""
    return solve(instance, k, strategy=strategy) is not None
