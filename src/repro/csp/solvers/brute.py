"""Brute-force CSP solving by exhaustive assignment enumeration.

Exponential in ``|V|``; exists purely as the ground-truth oracle that every
other solver in the library is differentially tested against on small
instances.
"""

from __future__ import annotations

from itertools import product
from typing import Any, Iterator

from repro.csp.instance import CSPInstance

__all__ = ["solve", "is_solvable", "all_solutions", "count_solutions"]


def all_solutions(instance: CSPInstance) -> Iterator[dict[Any, Any]]:
    """Enumerate every solution by trying all ``|D|^|V|`` assignments."""
    variables = instance.variables
    domain = sorted(instance.domain, key=repr)
    for values in product(domain, repeat=len(variables)):
        assignment = dict(zip(variables, values))
        if all(c.satisfied_by(assignment) for c in instance.constraints):
            yield assignment


def solve(instance: CSPInstance) -> dict[Any, Any] | None:
    """Return one solution, or ``None`` if the instance is unsolvable."""
    for assignment in all_solutions(instance):
        return assignment
    return None


def is_solvable(instance: CSPInstance) -> bool:
    """Decide solvability by exhaustive search."""
    return solve(instance) is not None


def count_solutions(instance: CSPInstance) -> int:
    """The number of solutions (exhaustive)."""
    return sum(1 for _ in all_solutions(instance))
