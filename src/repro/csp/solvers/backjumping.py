"""Conflict-directed backjumping (CBJ) — a classical search refinement.

Section 1 of the tutorial points at the AI community's pursuit of better
search ("heuristics for constraint-satisfaction problems"); CBJ (Prosser) is
the canonical intelligent-backtracking representative: on a dead end the
search jumps back to the *deepest variable actually responsible* for the
conflict instead of the chronologically previous one, skipping irrelevant
subtrees.

This implementation uses a static connectivity-aware variable order (so
conflict sets are meaningful) and per-variable conflict sets over the
constraint scopes, and is differentially tested against the other complete
solvers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.csp.instance import Constraint, CSPInstance

__all__ = ["solve", "is_solvable", "solve_with_stats", "BackjumpStats"]


@dataclass
class BackjumpStats:
    """Search counters; ``jumps`` counts backjumps that skipped ≥ 1 level."""

    nodes: int = 0
    backtracks: int = 0
    jumps: int = 0
    solution: dict[Any, Any] | None = field(default=None, repr=False)


def _static_order(instance: CSPInstance) -> list[Any]:
    """Connectivity-aware static order: most-constrained first, then always
    a variable sharing a constraint with the prefix when one exists."""
    constraints_on: dict[Any, list[Constraint]] = {
        v: instance.constraints_on(v) for v in instance.variables
    }
    remaining = set(instance.variables)
    order: list[Any] = []
    placed: set[Any] = set()

    def weight(v: Any) -> tuple[int, int, str]:
        shared = sum(
            1 for c in constraints_on[v] if any(u in placed for u in c.scope if u != v)
        )
        return (shared, len(constraints_on[v]), repr(v))

    while remaining:
        v = max(remaining, key=weight)
        remaining.discard(v)
        placed.add(v)
        order.append(v)
    return order


def solve_with_stats(instance: CSPInstance) -> BackjumpStats:
    """Conflict-directed backjumping search."""
    instance = instance.normalize()
    stats = BackjumpStats()
    order = _static_order(instance)
    position = {v: i for i, v in enumerate(order)}
    domain = sorted(instance.domain, key=repr)
    n = len(order)

    # Constraints checkable at level i: those whose scope ⊆ order[:i+1]
    # and that mention order[i].
    checkable: list[list[Constraint]] = [[] for _ in range(n)]
    for c in instance.constraints:
        if not c.scope:
            if not c.relation:
                return stats  # nullary false constraint
            continue
        level = max(position[v] for v in c.scope)
        checkable[level].append(c)

    assignment: dict[Any, Any] = {}
    conflict_sets: list[set[int]] = [set() for _ in range(n)]

    def check(level: int) -> set[int] | None:
        """None if consistent; else the set of earlier levels involved in
        the first violated constraint."""
        for c in checkable[level]:
            if not c.satisfied_by(assignment):
                return {position[v] for v in c.scope if position[v] < level}
        return None

    def search(level: int) -> int | None:
        """Returns None on success, or the level to jump back to."""
        if level == n:
            return None
        variable = order[level]
        conflict_sets[level] = set()
        for value in domain:
            stats.nodes += 1
            assignment[variable] = value
            culprits = check(level)
            if culprits is None:
                result = search(level + 1)
                if result is None:
                    return None
                if result < level:
                    # Jumping over this level entirely.
                    del assignment[variable]
                    stats.jumps += 1
                    return result
                # result == level: try the next value.
            else:
                conflict_sets[level] |= culprits
            del assignment[variable]
            stats.backtracks += 1
        # All values failed: jump to the deepest conflicting level.
        if not conflict_sets[level]:
            return -1  # no culprits at all: unsatisfiable outright
        target = max(conflict_sets[level])
        conflict_sets[target] |= conflict_sets[level] - {target}
        return target

    if not n:
        stats.solution = {}
        return stats
    if not domain:
        return stats
    if search(0) is None:
        stats.solution = dict(assignment)
    return stats


def solve(instance: CSPInstance) -> dict[Any, Any] | None:
    """Return one solution found by conflict-directed backjumping."""
    return solve_with_stats(instance).solution


def is_solvable(instance: CSPInstance) -> bool:
    """Decide solvability by conflict-directed backjumping."""
    return solve(instance) is not None
