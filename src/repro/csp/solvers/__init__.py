"""The CSP solver suite.

Every solver decides the same problem; they differ in strategy and in the
tractable classes they witness:

* :mod:`~repro.csp.solvers.brute` — exhaustive oracle for tests;
* :mod:`~repro.csp.solvers.backtracking` — classical search (+FC/+MAC);
* :mod:`~repro.csp.solvers.backjumping` — conflict-directed backjumping;
* :mod:`~repro.csp.solvers.join` — Proposition 2.1's join evaluation;
* :mod:`~repro.csp.solvers.consistency` — k-consistency via pebble games
  (Theorems 4.6/4.7);
* :mod:`~repro.csp.solvers.decomposition` — bounded-treewidth DP
  (Theorem 6.2);
* :mod:`~repro.csp.solvers.portfolio` — structure-routing front door
  (`repro.solve`).
"""

from repro.csp.solvers import (
    backjumping,
    backtracking,
    brute,
    consistency,
    decomposition,
    join,
    portfolio,
)

__all__ = [
    "brute",
    "backtracking",
    "backjumping",
    "join",
    "consistency",
    "decomposition",
    "portfolio",
]
