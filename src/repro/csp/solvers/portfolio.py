"""The portfolio solver — structure analysis chooses the algorithm.

The tutorial's whole arc is that tractability comes from *recognizable
structure*: Schaefer templates (§3), Datalog-expressible templates (§4–5),
acyclicity and bounded width (§6).  This module is the operational summary:
:func:`solve` inspects the instance and routes it to the cheapest complete
method that its structure licenses, falling back to conflict-directed
search.

Routing order (first match wins):

1. empty/trivial instances — answered directly;
2. Boolean instances in a Schaefer class — the dedicated polynomial solver;
3. prime-field instances whose relations are all cosets — GF(p) elimination;
4. acyclic constraint hypergraphs — Yannakakis;
5. constraint graphs of small treewidth (heuristic width ≤ ``width_cutoff``)
   — tree-decomposition DP;
6. everything else — MAC backtracking.

:func:`explain` returns the route that would be taken, for observability.
"""

from __future__ import annotations

from typing import Any

from repro.csp.instance import CSPInstance

__all__ = ["solve", "is_solvable", "explain", "Route"]

BOOLEAN = frozenset({0, 1})

#: Maximum heuristic treewidth for which the DP route is preferred.
DEFAULT_WIDTH_CUTOFF = 3

_PRIMES = (2, 3, 5, 7, 11, 13)


class Route:
    """Route labels returned by :func:`explain`."""

    TRIVIAL = "trivial"
    SCHAEFER = "schaefer"
    COSET = "coset"
    ACYCLIC = "acyclic-yannakakis"
    TREEWIDTH = "treewidth-dp"
    SEARCH = "backtracking-mac"


def _domain_prime(instance: CSPInstance) -> int | None:
    """The smallest prime p with domain ⊆ {0..p−1}, if any."""
    values = instance.domain
    if not all(isinstance(v, int) and v >= 0 for v in values):
        return None
    for p in _PRIMES:
        if all(v < p for v in values):
            return p
    return None


def explain(instance: CSPInstance, width_cutoff: int = DEFAULT_WIDTH_CUTOFF) -> str:
    """The route :func:`solve` would take, without solving."""
    from repro.dichotomy.coset import is_coset_instance
    from repro.dichotomy.schaefer import classify_instance, is_tractable
    from repro.width.acyclic import is_acyclic
    from repro.width.gaifman import constraint_graph, instance_hypergraph
    from repro.width.treedecomp import treewidth_upper_bound

    instance = instance.normalize()
    if not instance.variables or not instance.constraints:
        return Route.TRIVIAL
    if instance.domain <= BOOLEAN and is_tractable(classify_instance(instance)):
        return Route.SCHAEFER
    p = _domain_prime(instance)
    if p is not None and p > 2 and is_coset_instance(instance, p):
        return Route.COSET
    if is_acyclic([e for e in instance_hypergraph(instance) if e]):
        return Route.ACYCLIC
    if treewidth_upper_bound(constraint_graph(instance)) <= width_cutoff:
        return Route.TREEWIDTH
    return Route.SEARCH


def solve(
    instance: CSPInstance, width_cutoff: int = DEFAULT_WIDTH_CUTOFF
) -> dict[Any, Any] | None:
    """Solve by the cheapest complete method the structure licenses."""
    from repro.csp.solvers import backtracking, decomposition
    from repro.dichotomy.boolean_solvers import solve_boolean
    from repro.dichotomy.coset import solve_coset_csp
    from repro.width.acyclic import yannakakis_solve

    instance = instance.normalize()
    route = explain(instance, width_cutoff)

    if route == Route.TRIVIAL:
        if not instance.variables:
            ok = all(c.relation for c in instance.constraints) or not instance.constraints
            return {} if ok else None
        if not instance.domain:
            return None
        value = sorted(instance.domain, key=repr)[0]
        return {v: value for v in instance.variables}
    if route == Route.SCHAEFER:
        return solve_boolean(instance)
    if route == Route.COSET:
        return solve_coset_csp(instance, _domain_prime(instance))
    if route == Route.ACYCLIC:
        return yannakakis_solve(instance)
    if route == Route.TREEWIDTH:
        return decomposition.solve(instance)
    return backtracking.solve(instance)


def is_solvable(
    instance: CSPInstance, width_cutoff: int = DEFAULT_WIDTH_CUTOFF
) -> bool:
    """Decide solvability through the portfolio."""
    return solve(instance, width_cutoff) is not None
