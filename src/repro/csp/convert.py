"""Conversions between the AI formulation and the homomorphism formulation.

Section 2 of the tutorial (following Feder–Vardi [21]) observes that a CSP
instance ``P = (V, D, C)`` and a homomorphism problem between two structures
are the same thing:

* ``csp_to_homomorphism`` builds the *homomorphism instance*
  ``(A_P, B_P)``: the domain of ``A_P`` is ``V``, the domain of ``B_P`` is
  ``D``, the relations of ``B_P`` are the distinct constraint relations, and
  ``R^A = {t : (t, R) ∈ C}``.
* ``homomorphism_to_csp`` is the inverse *breaking up*: each tuple
  ``t ∈ R^A`` becomes a constraint ``(t, R^B)``.

Both directions preserve the solution set: solutions of ``P`` are exactly
the homomorphisms ``A_P → B_P``.  The round-trip property is tested in
``tests/csp/test_convert.py``.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.csp.instance import Constraint, CSPInstance
from repro.relational.structure import Structure, Vocabulary

__all__ = [
    "csp_to_homomorphism",
    "homomorphism_to_csp",
    "solutions_are_homomorphisms",
]


def csp_to_homomorphism(instance: CSPInstance) -> tuple[Structure, Structure]:
    """Build the homomorphism instance ``(A_P, B_P)`` of a CSP instance.

    The instance is normalized first (Section 2's lossless rewritings), so
    scopes have distinct variables and occur once.  Distinct constraint
    relations are shared: two constraints with the same relation map to the
    same relation symbol, exactly as in the tutorial ("the relations of
    ``B_P`` are the distinct relations ``R`` occurring in ``C``").

    Returns ``(A, B)`` with ``dom(A) = V`` and ``dom(B) = D``; the mappings
    ``h: V → D`` that are homomorphisms ``A → B`` are precisely the solutions
    of the instance.
    """
    instance = instance.normalize()

    # Group constraints by their (arity, relation) so identical relations
    # share one symbol, as in the paper's construction.
    groups: dict[tuple[int, frozenset[tuple[Any, ...]]], list[tuple[Any, ...]]] = {}
    for c in instance.constraints:
        groups.setdefault((c.arity, c.relation), []).append(c.scope)

    arities: dict[str, int] = {}
    a_relations: dict[str, list[tuple[Any, ...]]] = {}
    b_relations: dict[str, frozenset[tuple[Any, ...]]] = {}
    for i, ((arity, relation), scopes) in enumerate(
        sorted(groups.items(), key=lambda kv: (kv[0][0], sorted(map(repr, kv[0][1]))))
    ):
        symbol = f"R{i}"
        arities[symbol] = arity
        a_relations[symbol] = scopes
        b_relations[symbol] = relation

    vocabulary = Vocabulary(arities)
    a = Structure(vocabulary, instance.variables, a_relations)
    b = Structure(vocabulary, instance.domain, b_relations)
    return a, b


def homomorphism_to_csp(a: Structure, b: Structure) -> CSPInstance:
    """Build the CSP instance ``CSP(A, B)`` of a homomorphism problem.

    Every tuple ``t ∈ R^A`` is "broken up" into the constraint
    ``(t, R^B)``.  Variables are the domain of ``A`` (in sorted order for
    determinism) and values are the domain of ``B``.
    """
    variables = sorted(a.domain, key=repr)
    constraints = [
        Constraint(t, b.relation(symbol))
        for symbol in a.vocabulary
        for t in sorted(a.relation(symbol), key=repr)
    ]
    return CSPInstance(variables, b.domain, constraints)


def solutions_are_homomorphisms(
    instance: CSPInstance, mapping: Mapping[Any, Any]
) -> bool:
    """Check the defining equivalence on one mapping: ``mapping`` solves the
    instance iff it is a homomorphism of the homomorphism instance.

    Returns ``True`` when the two sides agree (whether both hold or both
    fail) — used by the property-based tests.
    """
    from repro.relational.homomorphism import is_homomorphism

    a, b = csp_to_homomorphism(instance)
    return instance.normalize().is_solution(mapping) == is_homomorphism(mapping, a, b)
