"""Micro-benchmarks guarding the shard-parallel execution plane.

Two families, mirroring the two halves of the parallel subsystem:

* **E1-shaped chain join** — the Proposition 2.1 join-evaluation shape at
  database scale, run serial (``interned``/``columnar``) versus
  ``execution="parallel"`` (hash-partitioned shards fanned across the
  worker-process pool).  Parity is asserted unconditionally; the **≥2×
  wall-clock speedup at 4 workers** guard only makes sense with at least
  four actual cores, so it is gated on ``os.sched_getaffinity`` and skips
  honestly on smaller boxes (see EXPERIMENTS.md for the measured scaling
  curve, including the 1-core numbers where IPC overhead makes the
  parallel path *slower* — exactly what the fallback threshold exists
  for).

* **work-stealing parallel search** — MAC backtracking partitioned by
  top-level branching.  Parity (identical solution to serial) is the
  load-bearing claim; the speedup gate is shared with the join guard.

Shipping costs are part of what these benchmarks measure, so the pickled
payload-size regression test in ``tests/parallel/test_pickling.py`` is the
other half of this guard: shards must never drag memoized indexes across
the process boundary.
"""

import os
import random
import time
from functools import lru_cache

import pytest

from repro.csp.solvers.backtracking import Inference, solve_with_stats
from repro.generators.csp_random import random_binary_csp
from repro.parallel import parallel_config, shutdown_pool
from repro.relational.algebra import join_all
from repro.relational.relation import Relation

JOIN_N = 20_000
JOIN_DOM = 40_000

#: The speedup guard needs real cores to mean anything.
CORES = len(os.sched_getaffinity(0))
SPEEDUP_WORKERS = 4
SPEEDUP_FLOOR = 2.0


@lru_cache(maxsize=1)
def _join_workload() -> list[Relation]:
    rng = random.Random(0)

    def rel(attrs):
        return Relation(
            attrs,
            {
                (rng.randrange(JOIN_DOM), rng.randrange(JOIN_DOM))
                for _ in range(JOIN_N)
            },
        )

    return [rel(("a", "b")), rel(("b", "c")), rel(("c", "d"))]


@lru_cache(maxsize=1)
def _search_instance():
    return random_binary_csp(
        n_variables=14, domain_size=4, n_constraints=24, tightness=0.4, seed=11
    )


def _best_of(fn, rounds=5):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# -- parity (always runs, any core count) -------------------------------------


def test_parallel_join_matches_serial_at_scale():
    """The honesty floor under the speedup guard: the sharded fold returns
    the identical relation on the full-size workload."""
    rels = _join_workload()
    serial = join_all(rels)
    with parallel_config(workers=2, threshold=0):
        par = join_all(rels, execution="parallel")
    assert par == serial


def test_parallel_search_matches_serial_at_scale():
    inst = _search_instance()
    serial = solve_with_stats(inst, Inference.MAC, "residual")
    par = solve_with_stats(inst, Inference.MAC, "residual", workers=2)
    assert par.solution == serial.solution


# -- timing comparison (pytest-benchmark; honest on any box) ------------------


@pytest.mark.benchmark(group="micro parallel: E1 chain join")
@pytest.mark.parametrize("mode", ["serial", "parallel"])
def test_micro_parallel_chain_join(benchmark, mode):
    rels = _join_workload()
    if mode == "serial":
        result = benchmark(lambda: join_all(rels))
    else:
        with parallel_config(workers=min(SPEEDUP_WORKERS, CORES) or 1, threshold=0):
            join_all(rels, execution="parallel")  # warm the pool
            result = benchmark(
                lambda: join_all(rels, execution="parallel")
            )
    assert len(result) > 0


# -- the speedup guard (needs >= 4 cores to be meaningful) --------------------


def test_micro_parallel_join_speedup_at_four_workers():
    """ISSUE 9 acceptance: >= 2x wall-clock at 4 workers on the E1-shaped
    chain join.  Requires four actual cores: on fewer, the workers time-
    share one CPU and the "speedup" would only measure IPC overhead, so
    the guard skips with the honest reason."""
    if CORES < SPEEDUP_WORKERS:
        pytest.skip(
            f"speedup guard needs >= {SPEEDUP_WORKERS} cores, "
            f"os.sched_getaffinity reports {CORES}"
        )
    rels = _join_workload()
    serial = _best_of(lambda: join_all(rels, execution="columnar"))
    with parallel_config(workers=SPEEDUP_WORKERS, threshold=0):
        join_all(rels, execution="parallel")  # warm the pool
        parallel = _best_of(lambda: join_all(rels, execution="parallel"))
    assert serial / parallel >= SPEEDUP_FLOOR, (
        f"parallel join speedup {serial / parallel:.2f}x at "
        f"{SPEEDUP_WORKERS} workers, expected >= {SPEEDUP_FLOOR}x"
    )


def teardown_module(module):
    shutdown_pool()
