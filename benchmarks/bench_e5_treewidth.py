"""E5 — Theorem 6.2: CSP(A(k), F) is polynomial via tree-decomposition DP.

Workload: partial-k-tree constraint graphs (k = 1, 2, 3) with a size sweep —
the DP solver's time should grow polynomially with n at fixed k, while plain
backtracking's search-node count grows much faster on the unsatisfiable
instances.  The node-count comparison (structure-exploiting DP vs
structure-blind search) is asserted as the qualitative "who wins" of the
theorem.
"""

import pytest

from repro.csp.solvers import backtracking, decomposition
from repro.csp.solvers.backtracking import Inference
from repro.generators.csp_random import coloring_instance, csp_from_graph
from repro.generators.graphs import cycle_graph, partial_ktree
from repro.width.treedecomp import decomposition_of_instance


def bounded_width_instance(n, k, colors, seed):
    return coloring_instance(partial_ktree(n, k, 0.85, seed=seed), colors)


@pytest.mark.benchmark(group="E5 decomposition DP")
@pytest.mark.parametrize("n", [10, 16, 22])
@pytest.mark.parametrize("k", [1, 2])
def test_e5_dp_scaling(benchmark, n, k):
    inst = bounded_width_instance(n, k, 3, seed=n + k)
    td = decomposition_of_instance(inst)
    assert td.width <= k + 1  # heuristic may be slightly above k
    result = benchmark(lambda: decomposition.is_solvable(inst, td))
    assert result == backtracking.is_solvable(inst)


@pytest.mark.benchmark(group="E5 backtracking baseline")
@pytest.mark.parametrize("n", [10, 16, 22])
def test_e5_backtracking_scaling(benchmark, n):
    inst = bounded_width_instance(n, 2, 3, seed=n + 2)
    benchmark(lambda: backtracking.is_solvable(inst))


@pytest.mark.benchmark(group="E5 hard instances")
def test_e5_dp_beats_blind_search_on_structured_unsat(benchmark):
    """3-coloring a K4-free width-2 structure vs 2-coloring odd cycles:
    unsatisfiable bounded-width instances where blind (no-inference)
    search explodes but the DP stays linear in n."""
    instances = [coloring_instance(cycle_graph(n), 2) for n in (9, 11, 13)]
    verdicts = benchmark(
        lambda: [decomposition.is_solvable(inst) for inst in instances]
    )
    assert verdicts == [False, False, False]
    # Qualitative check: plain backtracking visits many nodes on these.
    stats = backtracking.solve_with_stats(instances[-1], Inference.NONE)
    assert stats.solution is None
    assert stats.nodes > 13  # blind search backtracks over the whole cycle
