"""E3 — Theorem 4.5: the existential k-pebble game is polynomial-time
decidable, and the canonical k-Datalog program ρ_B agrees with it.

Workload: symmetric cycles and random graphs vs the K2 template, k ∈ {2, 3},
with a size sweep exposing the O(n^{2k}) shape (time grows polynomially —
the n-sweep groups let the pytest-benchmark table show the growth curve).
"""

import pytest

from repro.datalog.canonical import canonical_program
from repro.games.pebble import solve_game, spoiler_wins
from repro.generators.graphs import cycle_graph, graph_as_digraph_structure
from repro.relational.structure import Structure

K2 = Structure({"E": 2}, [0, 1], {"E": [(0, 1), (1, 0)]})


@pytest.mark.benchmark(group="E3 game k=2")
@pytest.mark.parametrize("n", [6, 10, 14])
def test_e3_game_scaling_k2(benchmark, n):
    a = graph_as_digraph_structure(cycle_graph(n))
    result = benchmark(lambda: solve_game(a, K2, 2))
    assert result.duplicator_wins  # k=2 never refutes cycles


@pytest.mark.benchmark(group="E3 game k=3")
@pytest.mark.parametrize("n", [5, 7, 9])
def test_e3_game_scaling_k3(benchmark, n):
    a = graph_as_digraph_structure(cycle_graph(n))
    result = benchmark(lambda: solve_game(a, K2, 3))
    # Theorem 4.6 instantiated: 3 pebbles refute exactly the odd cycles.
    assert result.spoiler_wins == (n % 2 == 1)


@pytest.mark.benchmark(group="E3 canonical program")
@pytest.mark.parametrize("n", [5, 6, 7])
def test_e3_canonical_program_agrees(benchmark, n):
    cp = canonical_program(K2, 3)
    a = graph_as_digraph_structure(cycle_graph(n))
    datalog_verdict = benchmark(lambda: cp.spoiler_wins(a))
    assert datalog_verdict == spoiler_wins(a, K2, 3), "Theorem 4.5(3) violated"


@pytest.mark.benchmark(group="E3 canonical program")
def test_e3_program_construction(benchmark):
    cp = benchmark(lambda: canonical_program(K2, 3))
    assert cp.program.rules


@pytest.mark.parametrize("n", [9, 11])
def test_e3_residual_pruning_checks_fewer_groups(n):
    """On the odd-cycle refutations (deep delete cascades) the residual
    pruning inspects strictly fewer extension groups than the naive
    rescan-on-requeue loop, and the gap widens with n — measured 2.8× at
    n=9 and 5.4× at n=11.  Both reach the same (empty) strategy; counters
    are recorded in EXPERIMENTS.md."""
    from repro.consistency.propagation import collect_propagation

    a = graph_as_digraph_structure(cycle_graph(n))
    with collect_propagation() as naive:
        res_naive = solve_game(a, K2, 3, strategy="naive")
    with collect_propagation() as residual:
        res_residual = solve_game(a, K2, 3, strategy="residual")
    assert res_naive.strategy == res_residual.strategy
    assert res_naive.spoiler_wins
    assert residual.support_checks < naive.support_checks, (
        f"n={n}: residual {residual.support_checks} vs naive "
        f"{naive.support_checks} extension-group inspections"
    )


@pytest.mark.benchmark(group="E3 pruning strategies")
@pytest.mark.parametrize("strategy", ["residual", "naive", "interned"])
def test_e3_pruning_strategy_timing(benchmark, strategy):
    a = graph_as_digraph_structure(cycle_graph(9))
    result = benchmark(lambda: solve_game(a, K2, 3, strategy=strategy))
    assert result.spoiler_wins


@pytest.mark.parametrize("n", [7, 9])
def test_e3_interned_pruning_matches_residual(n):
    """The code-space pruning (small-int position pairs, numeric element
    order) reaches the *identical* greatest fixpoint as the residual
    strategy — the literal winning-strategy family, decoded back."""
    from repro.games.pebble import largest_winning_strategy

    a = graph_as_digraph_structure(cycle_graph(n))
    for k in (2, 3):
        assert largest_winning_strategy(a, K2, k, strategy="interned") == (
            largest_winning_strategy(a, K2, k, strategy="residual")
        ), f"n={n}, k={k}"
