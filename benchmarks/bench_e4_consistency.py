"""E4 — Theorems 5.6/5.7: establishing strong k-consistency, and
completeness of the k-consistency decision on Datalog-expressible templates.

Workload: Horn-SAT, 2-SAT, and 2-colorability families (their template
complements are k-Datalog-expressible, so the k-consistency verdict is not
merely sound but *complete* — asserted against ground truth on every
instance), plus the establishment procedure itself on homomorphism pairs.
"""

import pytest

from repro.consistency.arc import ac3, singleton_arc_consistency
from repro.consistency.establish import establish_strong_k_consistency
from repro.consistency.propagation import collect_propagation
from repro.csp.convert import csp_to_homomorphism
from repro.csp.solvers import brute
from repro.csp.solvers.consistency import Verdict, solve_decision
from repro.dichotomy.cnf import cnf_to_csp, dpll
from repro.generators.csp_random import coloring_instance
from repro.generators.graphs import cycle_graph, random_graph
from repro.generators.sat import random_2sat, random_horn


def _e4_instances(family: str):
    """The E4 CNF workloads as CSPs: same families as the completeness
    benchmarks above."""
    if family == "2sat":
        formulas = [random_2sat(n, 2 * n, seed=s) for n in (5, 7) for s in range(4)]
    else:
        formulas = [
            random_horn(n, 2 * n, seed=s, width=3) for n in (5, 7) for s in range(4)
        ]
    return [cnf_to_csp(f) for f in formulas]


def _support_checks(fn, instances, strategy):
    total = 0
    for inst in instances:
        with collect_propagation() as stats:
            fn(inst, strategy=strategy)
        total += stats.support_checks
    return total


@pytest.mark.benchmark(group="E4 2-SAT completeness")
@pytest.mark.parametrize("n", [5, 7])
def test_e4_2sat_k2_decides(benchmark, n):
    """2-SAT: ¬CSP(B) ∈ 3-Datalog; k=3 consistency is a decision procedure.

    (k=2 already suffices for refuting via unit-style propagation on many
    instances; k=3 is the guaranteed level for binary Boolean templates.)"""
    formulas = [random_2sat(n, 2 * n, seed=s) for s in range(4)]
    instances = [cnf_to_csp(f) for f in formulas]

    def run():
        return [solve_decision(inst, 3) for inst in instances]

    verdicts = benchmark(run)
    for formula, verdict in zip(formulas, verdicts):
        satisfiable = dpll(formula) is not None
        if verdict is Verdict.UNSATISFIABLE:
            assert not satisfiable
        else:
            assert satisfiable, "k-consistency failed to refute a 2-SAT instance"


@pytest.mark.benchmark(group="E4 Horn completeness")
@pytest.mark.parametrize("n", [5, 7])
def test_e4_horn_k3_decides(benchmark, n):
    formulas = [random_horn(n, 2 * n, seed=s, width=3) for s in range(4)]
    instances = [cnf_to_csp(f) for f in formulas]

    def run():
        return [solve_decision(inst, 3) for inst in instances]

    verdicts = benchmark(run)
    for formula, verdict in zip(formulas, verdicts):
        satisfiable = dpll(formula) is not None
        assert (verdict is Verdict.CONSISTENT) == satisfiable, (
            "strong 3-consistency must decide Horn instances of width ≤ 3"
        )


@pytest.mark.benchmark(group="E4 2-colorability completeness")
@pytest.mark.parametrize("n", [7, 9])
def test_e4_two_coloring_k3_decides(benchmark, n):
    graphs = [random_graph(n, 0.25, seed=s) for s in range(3)]
    instances = [coloring_instance(g, 2) for g in graphs]

    def run():
        return [solve_decision(inst, 3) for inst in instances]

    verdicts = benchmark(run)
    for graph, verdict in zip(graphs, verdicts):
        assert (verdict is Verdict.CONSISTENT) == graph.is_bipartite(), (
            "3-consistency must decide 2-colorability (¬2COL ∈ 4-Datalog)"
        )


@pytest.mark.parametrize("family", ["2sat", "horn"])
def test_e4_sac_residual_support_ratio(family):
    """The tentpole acceptance criterion: on the E4 2-SAT/Horn workloads the
    residual-support engine performs ≥5× fewer constraint-row support
    checks than the naive seed implementation for singleton arc
    consistency, per run, measured by PropagationStats.  (Measured ratios,
    recorded in EXPERIMENTS.md: 2-SAT 7.5×, Horn 20.0×.)"""
    instances = _e4_instances(family)
    naive = _support_checks(singleton_arc_consistency, instances, "naive")
    residual = _support_checks(singleton_arc_consistency, instances, "residual")
    assert residual > 0
    ratio = naive / residual
    assert ratio >= 5.0, (
        f"E4 {family} SAC: naive {naive} vs residual {residual} support "
        f"checks — ratio {ratio:.2f}× fell below the 5× floor"
    )


@pytest.mark.parametrize("family", ["2sat", "horn"])
def test_e4_ac_residual_fewer_checks(family):
    """Single-pass AC-3 also strictly saves row checks under the residual
    engine (hash-index candidate groups instead of full-relation rescans),
    though a lone pass has fewer repeat questions than SAC's probe storm —
    measured 1.9× (2-SAT) and 4.1× (Horn)."""
    instances = _e4_instances(family)
    naive = _support_checks(ac3, instances, "naive")
    residual = _support_checks(ac3, instances, "residual")
    assert residual > 0
    ratio = naive / residual
    assert ratio >= 1.5, (
        f"E4 {family} ac3: naive {naive} vs residual {residual} support "
        f"checks — ratio {ratio:.2f}× fell below the 1.5× floor"
    )


@pytest.mark.benchmark(group="E4 SAC strategies")
@pytest.mark.parametrize("strategy", ["residual", "naive", "interned"])
def test_e4_sac_strategy_timing(benchmark, strategy):
    """Wall-clock confirmation of the support-check savings on Horn-SAT."""
    instances = _e4_instances("horn")

    def run():
        return [
            singleton_arc_consistency(inst, strategy=strategy)
            for inst in instances
        ]

    results = benchmark(run)
    assert all(r.stats is not None for r in results)


@pytest.mark.parametrize("family", ["2sat", "horn"])
def test_e4_interned_sac_matches_residual(family):
    """The bitset engine computes the identical SAC fixpoint on the E4
    workloads, answering revisions with word operations (``mask_ops``)
    instead of per-row support checks.  (Measured, recorded in
    EXPERIMENTS.md: 1.3× fewer membership ops than residual on 2-SAT;
    0.7× on Horn, whose wide arity-3 rows favor stored supports — the
    bitset win is a dense-domain phenomenon, guarded at ≥3× in
    bench_micro_interning.py.)"""
    instances = _e4_instances(family)
    mask_ops = 0
    for inst in instances:
        res = singleton_arc_consistency(inst, strategy="residual")
        with collect_propagation() as stats:
            inter = singleton_arc_consistency(inst, strategy="interned")
        mask_ops += stats.mask_ops
        assert stats.intern_tables == 1
        assert res.consistent == inter.consistent
        assert res.domains == inter.domains
    assert mask_ops > 0


@pytest.mark.benchmark(group="E4 establishment")
@pytest.mark.parametrize("n", [4, 6])
def test_e4_establish_strong_k_consistency(benchmark, n):
    inst = coloring_instance(cycle_graph(n), 3)
    a, b = csp_to_homomorphism(inst)
    a_prime, b_prime = benchmark(lambda: establish_strong_k_consistency(a, b, 2))
    assert a_prime.domain == a.domain
    assert b_prime.domain == b.domain
