"""Micro-benchmarks guarding the columnar physical layer.

Two workload families carry the columnar execution's perf claims, each with
an in-run ratio assertion against the ``interned`` code-space plane (the
previous fastest execution — itself guarded against ``indexed`` by
``bench_micro_interning.py``):

* **E1-shaped joins** — a selective three-way chain join (the Proposition
  2.1 join-evaluation shape at database scale).  The columnar fold packs
  both sides' keys and resolves every probe with one ``searchsorted``
  sweep, where the interned fold walks a Python loop per probe row.  The
  guard asserts the columnar execution wins wall-clock on the warm
  (stores/indexes memoized) pipeline — measured ≈3× here.

* **dense-AC revisions (E4's dense regime)** — arc-consistency propagation
  on dense large-domain instances, engines prebuilt as MAC/SAC reuse them
  (one engine serves thousands of propagations in search, so construction
  amortizes away; ``bench_e4_consistency.py`` covers the cold path).  A
  bitset revision walks candidate values one at a time; the columnar
  constraint answers all of them with one packed byte-matrix sweep.  The
  guard asserts **≥5× wall-clock** over ``interned`` — measured ≈7–8× on
  this family — which is the ISSUE 8 acceptance ratio.

Both guards require numpy (the vectorized backend); without it the
columnar kernels run their stdlib fallbacks, which match results but not
wall-clock, so the ratio assertions skip and only the parity checks run.
"""

import random
import time
from functools import lru_cache

import pytest

from repro.consistency.propagation import PropagationStats, make_engine
from repro.generators.csp_random import random_binary_csp
from repro.relational.algebra import join_all
from repro.relational.columnar import numpy_backend
from repro.relational.relation import Relation
from repro.relational.stats import collect_stats

# -- E1-shaped join workload --------------------------------------------------
# A selective chain: |R ⋈ S ⋈ T| ≈ n³/dom² ≪ n, so the probe sweep (not the
# output materialization, which both executions pay identically) dominates.
JOIN_N = 20_000
JOIN_DOM = 40_000


def _chain_relations(seed: int = 0) -> list[Relation]:
    rng = random.Random(seed)

    def rel(attrs):
        return Relation(
            attrs,
            {
                (rng.randrange(JOIN_DOM), rng.randrange(JOIN_DOM))
                for _ in range(JOIN_N)
            },
        )

    return [rel(("a", "b")), rel(("b", "c")), rel(("c", "d"))]


@lru_cache(maxsize=1)
def _join_workload() -> list[Relation]:
    return _chain_relations()


# -- dense-AC workload (E4's dense regime) ------------------------------------
DENSE_INSTANCES_SPEC = [(384, 0), (768, 1)]


@lru_cache(maxsize=1)
def _dense_instances():
    return [
        random_binary_csp(
            n_variables=6, domain_size=d, n_constraints=10, tightness=0.5, seed=s
        )
        for d, s in DENSE_INSTANCES_SPEC
    ]


@lru_cache(maxsize=4)
def _dense_engines(strategy: str):
    return [make_engine(inst, strategy) for inst in _dense_instances()]


def _propagate(engine):
    domains = engine.fresh_domains()
    engine.propagate(domains, engine.full_worklist(), PropagationStats())
    return domains


def _best_of(fn, rounds=9):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# -- parity (always runs, numpy or not) ---------------------------------------


def test_columnar_matches_interned_on_both_workloads():
    """The honesty floor under every ratio below: identical join relations
    and identical AC fixpoints, with the columnar counters actually moving
    (so the ratios compare the kernels they claim to compare)."""
    rels = _join_workload()
    expected = join_all(rels, execution="interned")
    with collect_stats() as stats:
        got = join_all(rels, execution="columnar")
    assert got == expected
    if numpy_backend() is not None:
        assert stats.batch_probes > 0
        assert stats.operator_counts.get("columnar_decode") == 1
    for ei, ec in zip(_dense_engines("interned"), _dense_engines("columnar")):
        assert _propagate(ei) == _propagate(ec)


# -- E1-shaped join ratios -----------------------------------------------------


@pytest.mark.benchmark(group="micro columnar: E1 chain join")
@pytest.mark.parametrize("execution", ["interned", "columnar"])
def test_micro_e1_chain_join(benchmark, execution):
    rels = _join_workload()
    join_all(rels, execution=execution)  # warm stores/indexes
    result = benchmark(lambda: join_all(rels, execution=execution))
    assert len(result) > 0


def test_micro_columnar_join_beats_interned_on_e1_chain():
    """In-run guard: on the warm E1-shaped chain the columnar fold beats
    the interned fold wall-clock (measured ≈3×; asserted ≥1.5× to absorb
    scheduler noise)."""
    if numpy_backend() is None:
        pytest.skip("wall-clock ratio requires the numpy backend")
    rels = _join_workload()
    for execution in ("interned", "columnar"):
        join_all(rels, execution=execution)  # warm both pipelines
    interned = _best_of(lambda: join_all(rels, execution="interned"), rounds=5)
    columnar = _best_of(lambda: join_all(rels, execution="columnar"), rounds=5)
    assert columnar * 1.5 < interned, (
        f"columnar join ratio collapsed on the E1 chain: "
        f"{columnar * 1e3:.1f}ms vs interned {interned * 1e3:.1f}ms "
        f"({interned / columnar:.2f}x)"
    )


# -- dense-AC ratios (the ≥5× acceptance criterion) ----------------------------


@pytest.mark.benchmark(group="micro columnar: dense AC")
@pytest.mark.parametrize("strategy", ["interned", "columnar"])
def test_micro_dense_ac_propagation(benchmark, strategy):
    engines = _dense_engines(strategy)
    domains = benchmark(lambda: [_propagate(e) for e in engines])
    assert len(domains) == len(engines)


def test_micro_columnar_revise_beats_interned_5x_on_dense_ac():
    """ISSUE 8 acceptance criterion: ≥5× wall-clock over ``interned`` on a
    dense E4 workload.  Engines are prebuilt (the MAC/SAC steady state);
    the timed quantity is propagation to the AC fixpoint, which is pure
    revise-kernel work.  Measured ≈7–8× on this family."""
    if numpy_backend() is None:
        pytest.skip("wall-clock ratio requires the numpy backend")
    interned_engines = _dense_engines("interned")
    columnar_engines = _dense_engines("columnar")
    # Fixpoint identity first — a fast kernel computing the wrong closure
    # would make the ratio meaningless.
    for ei, ec in zip(interned_engines, columnar_engines):
        assert _propagate(ei) == _propagate(ec)
    interned = sum(
        _best_of(lambda e=e: _propagate(e)) for e in interned_engines
    )
    columnar = sum(
        _best_of(lambda e=e: _propagate(e)) for e in columnar_engines
    )
    assert columnar * 5.0 < interned, (
        f"columnar revise ratio fell under the 5x floor: "
        f"{columnar * 1e3:.2f}ms vs interned {interned * 1e3:.2f}ms "
        f"({interned / columnar:.2f}x)"
    )
