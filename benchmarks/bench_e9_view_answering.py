"""E9 — Theorems 7.1/7.5: view-based certain answering via the constraint
template, with a data-size sweep.

The template **B** depends only on Q and def(V) (expression complexity);
only the extension structure **A** grows with the data — so the bench
builds the template once per query and sweeps ext sizes, showing the
data-complexity shape.  Verdicts are cross-validated against the
brute-force witness enumeration on the smallest size.
"""

import pytest

from repro.generators.views_random import chain_extensions, random_extensions
from repro.relational.homomorphism import homomorphism_exists
from repro.views.certain import ViewSetup, certain_answer_bruteforce
from repro.views.template import (
    certain_answer_via_csp,
    constraint_template,
    extension_structure,
)

DEFS = {"V1": "a b", "V2": "c"}
QUERY = "a b c"


@pytest.mark.benchmark(group="E9 template construction")
def test_e9_template_once(benchmark):
    views = ViewSetup(dict(DEFS))
    b = benchmark(lambda: constraint_template(QUERY, views))
    assert "U_c" in b.vocabulary and "V1" in b.vocabulary


@pytest.mark.benchmark(group="E9 data sweep")
@pytest.mark.parametrize("length", [4, 8, 12])
def test_e9_certain_answer_scaling(benchmark, length):
    base = ViewSetup(dict(DEFS))
    views = chain_extensions(base, ["V1", "V2"], length)
    template = constraint_template(QUERY, views)

    def run():
        a = extension_structure(views, "o0", f"o{length}")
        return not homomorphism_exists(a, template)

    cert = benchmark(run)
    # A chain V1 V2 V1 V2 … from o0: (o0, o3) is certain for Q = a b c
    # exactly when the chain alternates V1 then V2 — for (o0, o_length) the
    # answer is certain iff the full chain spells (V1 V2)^*... validated
    # against brute force for the smallest size below.
    if length == 4:
        bf = certain_answer_bruteforce(QUERY, views, "o0", f"o{length}", 3)
        assert cert == bf


@pytest.mark.benchmark(group="E9 random extensions")
@pytest.mark.parametrize("n_objects", [4, 8])
def test_e9_random_extensions(benchmark, n_objects):
    base = ViewSetup(dict(DEFS))
    views = random_extensions(base, n_objects, pairs_per_view=n_objects, seed=7)
    objects = sorted(views.objects())

    def run():
        return [
            certain_answer_via_csp(QUERY, views, c, d)
            for c in objects[:2]
            for d in objects[:2]
        ]

    verdicts = benchmark(run)
    if n_objects == 4:
        expected = [
            certain_answer_bruteforce(QUERY, views, c, d, 3)
            for c in objects[:2]
            for d in objects[:2]
        ]
        assert verdicts == expected
