"""E9 — Theorems 7.1/7.5: view-based certain answering via the constraint
template, with a data-size sweep.

The template **B** depends only on Q and def(V) (expression complexity);
only the extension structure **A** grows with the data — so the bench
builds the template once per query and sweeps ext sizes, showing the
data-complexity shape.  Verdicts are cross-validated against the
brute-force witness enumeration on the smallest size.
"""

import pytest

from repro.csp.convert import homomorphism_to_csp
from repro.csp.solvers import join
from repro.generators.views_random import chain_extensions, random_extensions
from repro.relational.homomorphism import homomorphism_exists
from repro.relational.stats import collect_stats
from repro.views.certain import ViewSetup, certain_answer_bruteforce
from repro.views.template import (
    certain_answer_via_csp,
    constraint_template,
    extension_structure,
)

DEFS = {"V1": "a b", "V2": "c"}
QUERY = "a b c"


@pytest.mark.benchmark(group="E9 template construction")
def test_e9_template_once(benchmark):
    views = ViewSetup(dict(DEFS))
    b = benchmark(lambda: constraint_template(QUERY, views))
    assert "U_c" in b.vocabulary and "V1" in b.vocabulary


@pytest.mark.benchmark(group="E9 data sweep")
@pytest.mark.parametrize("length", [4, 8, 12])
def test_e9_certain_answer_scaling(benchmark, length):
    base = ViewSetup(dict(DEFS))
    views = chain_extensions(base, ["V1", "V2"], length)
    template = constraint_template(QUERY, views)

    def run():
        a = extension_structure(views, "o0", f"o{length}")
        return not homomorphism_exists(a, template)

    cert = benchmark(run)
    # A chain V1 V2 V1 V2 … from o0: (o0, o3) is certain for Q = a b c
    # exactly when the chain alternates V1 then V2 — for (o0, o_length) the
    # answer is certain iff the full chain spells (V1 V2)^*... validated
    # against brute force for the smallest size below.
    if length == 4:
        bf = certain_answer_bruteforce(QUERY, views, "o0", f"o{length}", 3)
        assert cert == bf


@pytest.mark.benchmark(group="E9 join strategies")
@pytest.mark.parametrize("strategy", ["greedy", "textbook"])
def test_e9_certain_answer_via_join(benchmark, strategy):
    """The Thm 7.5 test ``A → B?`` routed through the instrumented join
    solver (Prop 2.1 on CSP(A, B)) so EvalStats can report planned-vs-naive
    intermediate sizes for the view-answering workload.  The chain is kept
    short: the unplanned join of CSP(A, template) blows up combinatorially
    (length 4 already materializes ~900k rows in textbook order)."""
    length = 3
    base = ViewSetup(dict(DEFS))
    views = chain_extensions(base, ["V1", "V2"], length)
    template = constraint_template(QUERY, views)
    a = extension_structure(views, "o0", f"o{length}")
    csp = homomorphism_to_csp(a, template)

    cert = benchmark(lambda: not join.is_solvable(csp, strategy=strategy))
    assert cert == (not homomorphism_exists(a, template))


def test_e9_planner_intermediates_never_worse():
    """On the E9 chain family the greedy plan's largest intermediate is no
    bigger than the textbook order's (reported in EXPERIMENTS.md)."""
    base = ViewSetup(dict(DEFS))
    for length in (2, 3):
        views = chain_extensions(base, ["V1", "V2"], length)
        template = constraint_template(QUERY, views)
        a = extension_structure(views, "o0", f"o{length}")
        csp = homomorphism_to_csp(a, template)
        maxima = {}
        for strategy in ("greedy", "textbook"):
            with collect_stats() as stats:
                join.is_solvable(csp, strategy=strategy)
            maxima[strategy] = stats.max_intermediate
        assert maxima["greedy"] <= maxima["textbook"]


def test_e9_indexed_scans_fewer_tuples():
    """On the E9 chain family the hash-indexed execution reads strictly
    fewer tuples than the nested-loop scan at equal answers (reported in
    EXPERIMENTS.md)."""
    base = ViewSetup(dict(DEFS))
    for length in (2, 3):
        views = chain_extensions(base, ["V1", "V2"], length)
        template = constraint_template(QUERY, views)
        a = extension_structure(views, "o0", f"o{length}")
        csp = homomorphism_to_csp(a, template)
        runs = {}
        for execution in ("indexed", "scan"):
            with collect_stats() as stats:
                verdict = join.is_solvable(csp, strategy=execution)
            runs[execution] = (verdict, stats)
        assert runs["indexed"][0] == runs["scan"][0]
        assert (
            runs["indexed"][1].tuples_scanned < runs["scan"][1].tuples_scanned
        )


@pytest.mark.benchmark(group="E9 random extensions")
@pytest.mark.parametrize("n_objects", [4, 8])
def test_e9_random_extensions(benchmark, n_objects):
    base = ViewSetup(dict(DEFS))
    views = random_extensions(base, n_objects, pairs_per_view=n_objects, seed=7)
    objects = sorted(views.objects())

    def run():
        return [
            certain_answer_via_csp(QUERY, views, c, d)
            for c in objects[:2]
            for d in objects[:2]
        ]

    verdicts = benchmark(run)
    if n_objects == 4:
        expected = [
            certain_answer_bruteforce(QUERY, views, c, d, 3)
            for c in objects[:2]
            for d in objects[:2]
        ]
        assert verdicts == expected
