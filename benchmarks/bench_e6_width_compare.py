"""E6 — Section 6's width comparison: treewidth vs querywidth vs hypertree
width, and Yannakakis on acyclic instances.

Workloads reproduce the section's qualitative table:

* acyclic joins (paths, stars): all widths 1, Yannakakis linear;
* cycles: treewidth 2, hypertree width 2;
* cliques covered by one big constraint: treewidth n−1 but hypertree and
  querywidth 1 — hypertree width is "the most powerful" notion (the
  section's closing claim, asserted as hw ≤ qw ≤ incidence-tw bounds).
"""

import pytest

from repro.csp.instance import Constraint, CSPInstance
from repro.csp.solvers import join
from repro.generators.csp_random import coloring_instance
from repro.generators.graphs import cycle_graph, path_graph
from repro.width.acyclic import is_acyclic, yannakakis_is_solvable
from repro.width.gaifman import instance_hypergraph
from repro.width.hypertree import instance_hypertree_interval
from repro.width.querywidth import query_width_interval
from repro.width.treedecomp import treewidth_of_instance


def big_constraint_instance(n):
    rows = {tuple(range(n))}
    return CSPInstance(list(range(n)), list(range(n)), [Constraint(tuple(range(n)), rows)])


@pytest.mark.benchmark(group="E6 width computation")
@pytest.mark.parametrize(
    "name,builder,expected",
    [
        ("path", lambda: coloring_instance(path_graph(8), 2), dict(tw=1, hw=1, qw=1)),
        ("cycle", lambda: coloring_instance(cycle_graph(8), 2), dict(tw=2, hw=2, qw=2)),
        ("clique-one-edge", lambda: big_constraint_instance(6), dict(tw=5, hw=1, qw=1)),
    ],
)
def test_e6_width_table(benchmark, name, builder, expected):
    inst = builder()

    def run():
        return (
            treewidth_of_instance(inst),
            instance_hypertree_interval(inst),
            query_width_interval(inst),
        )

    tw, (hw_lo, hw_hi), (qw_lo, qw_hi) = benchmark(run)
    assert tw == expected["tw"]
    assert hw_lo == expected["hw"]
    assert hw_hi == expected["hw"] or hw_hi == expected["hw"] + 1
    assert qw_lo == expected["qw"]
    # The hierarchy: hypertree width ≤ querywidth (on these certificates).
    assert hw_lo <= qw_hi


@pytest.mark.benchmark(group="E6 Yannakakis vs join")
@pytest.mark.parametrize("n", [10, 20, 30])
def test_e6_yannakakis_scaling(benchmark, n):
    inst = coloring_instance(path_graph(n), 2)
    assert is_acyclic(instance_hypergraph(inst))
    result = benchmark(lambda: yannakakis_is_solvable(inst))
    assert result


@pytest.mark.benchmark(group="E6 Yannakakis vs join")
@pytest.mark.parametrize("n", [10, 20, 30])
def test_e6_plain_join_scaling(benchmark, n):
    """The unordered join baseline — same verdict, but intermediate results
    can blow up where Yannakakis' semijoins stay linear."""
    inst = coloring_instance(path_graph(n), 2)
    result = benchmark(lambda: join.is_solvable(inst))
    assert result
