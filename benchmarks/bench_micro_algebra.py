"""Micro-benchmarks guarding the algebra's per-row costs.

The ``select`` guard exists because of a fixed regression: the operator
used to allocate a full ``dict(zip(attrs, row))`` per row; it now hands the
predicate a zero-copy row view, so selecting on one column of a wide
relation does O(1) work per row beyond the predicate itself.  The paired
baseline benchmark measures the old allocation pattern so the gap stays
visible in ``--benchmark-only`` runs, and the width-scaling assertion fails
if per-row cost becomes proportional to arity again.
"""

import time

import pytest

from repro.relational.algebra import select
from repro.relational.relation import Relation

WIDE_ATTRS = tuple(f"c{i}" for i in range(12))
WIDE = Relation(
    WIDE_ATTRS, [tuple(i * 31 + j for j in range(12)) for i in range(2000)]
)
NARROW = Relation(("c0",), [(i * 31,) for i in range(2000)])


@pytest.mark.benchmark(group="micro select")
def test_select_wide_lazy_rows(benchmark):
    result = benchmark(lambda: select(WIDE, lambda row: row["c0"] % 2 == 0))
    assert len(result) == 1000


@pytest.mark.benchmark(group="micro select")
def test_select_wide_dict_baseline(benchmark):
    """What select used to do: materialize every row as a dict first."""
    attrs = WIDE.attributes

    def run():
        kept = (t for t in WIDE if dict(zip(attrs, t))["c0"] % 2 == 0)
        return Relation(attrs, kept)

    assert len(benchmark(run)) == 1000


def test_select_cost_does_not_scale_with_arity():
    """Guard: one-column predicates must not pay for the other 11 columns.

    With lazy rows, selecting on ``c0`` in a 12-column relation costs about
    the same as in a 1-column relation; the old dict-per-row implementation
    was ~4× slower on the wide scheme.  The 3× bound leaves headroom for
    timer noise while still catching a reintroduced per-row materialization.
    """
    predicate = lambda row: row["c0"] % 2 == 0

    def best_of(relation, repeats=5):
        times = []
        for _ in range(repeats):
            start = time.perf_counter()
            select(relation, predicate)
            times.append(time.perf_counter() - start)
        return min(times)

    select(WIDE, predicate)  # warm up
    wide, narrow = best_of(WIDE), best_of(NARROW)
    assert wide < narrow * 3, (
        f"select on 12 columns took {wide / narrow:.1f}× the 1-column time; "
        "per-row cost is scaling with arity again"
    )
