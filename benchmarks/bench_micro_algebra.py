"""Micro-benchmarks guarding the algebra's per-row costs.

The ``select`` guard exists because of a fixed regression: the operator
used to allocate a full ``dict(zip(attrs, row))`` per row; it now hands the
predicate a zero-copy row view, so selecting on one column of a wide
relation does O(1) work per row beyond the predicate itself.  The paired
baseline benchmark measures the old allocation pattern so the gap stays
visible in ``--benchmark-only`` runs, and the width-scaling assertion fails
if per-row cost becomes proportional to arity again.
"""

import time

import pytest

from repro.relational.algebra import select
from repro.relational.relation import Relation

WIDE_ATTRS = tuple(f"c{i}" for i in range(12))
WIDE = Relation(
    WIDE_ATTRS, [tuple(i * 31 + j for j in range(12)) for i in range(2000)]
)
NARROW = Relation(("c0",), [(i * 31,) for i in range(2000)])


@pytest.mark.benchmark(group="micro select")
def test_select_wide_lazy_rows(benchmark):
    result = benchmark(lambda: select(WIDE, lambda row: row["c0"] % 2 == 0))
    assert len(result) == 1000


@pytest.mark.benchmark(group="micro select")
def test_select_wide_dict_baseline(benchmark):
    """What select used to do: materialize every row as a dict first."""
    attrs = WIDE.attributes

    def run():
        kept = (t for t in WIDE if dict(zip(attrs, t))["c0"] % 2 == 0)
        return Relation(attrs, kept)

    assert len(benchmark(run)) == 1000


def test_select_cost_does_not_scale_with_arity():
    """Guard: one-column predicates must not pay for the other 11 columns.

    With lazy rows, selecting on ``c0`` in a 12-column relation costs about
    the same as in a 1-column relation; the old dict-per-row implementation
    was ~4× slower on the wide scheme.  The 3× bound leaves headroom for
    timer noise while still catching a reintroduced per-row materialization.
    """
    predicate = lambda row: row["c0"] % 2 == 0

    def best_of(relation, repeats=5):
        times = []
        for _ in range(repeats):
            start = time.perf_counter()
            select(relation, predicate)
            times.append(time.perf_counter() - start)
        return min(times)

    select(WIDE, predicate)  # warm up
    wide, narrow = best_of(WIDE), best_of(NARROW)
    assert wide < narrow * 3, (
        f"select on 12 columns took {wide / narrow:.1f}× the 1-column time; "
        "per-row cost is scaling with arity again"
    )


def test_tracing_off_overhead_stays_negligible():
    """Guard: with no trace installed, the span instrumentation in the join
    hot path must cost (far) under 5% — one ContextVar lookup and a shared
    no-op span per operator, nothing allocated, nothing recorded.

    The uninstrumented baseline is the private ``_natural_join`` the public
    wrapper delegates to, so the measured gap is exactly the wrapper's
    ``span()`` call.  Shared machines show heavy-tailed per-sample noise
    that swamps a sub-microsecond overhead in any min- or mean-based
    comparison, so the estimator is the *median of paired differences*:
    each round times both variants back to back (alternating order to
    cancel ordering bias) and the median per-call difference, relative to
    the median baseline, is held under the 5% acceptance bound.  The true
    overhead is orders of magnitude below it.
    """
    import statistics

    from repro.relational.algebra import _natural_join, natural_join
    from repro.telemetry import current_trace

    assert current_trace() is None
    left = Relation(("a", "b"), [(i, i % 97) for i in range(800)])
    right = Relation(("b", "c"), [(i % 97, i) for i in range(800)])

    def sample(fn):
        start = time.perf_counter()
        fn(left, right)
        return time.perf_counter() - start

    uninstrumented = lambda l, r: _natural_join(l, r, None)
    natural_join(left, right)  # warm up both paths (and any index caches)
    diffs, bases = [], []
    for i in range(61):
        if i % 2:
            base, traced = sample(uninstrumented), sample(natural_join)
        else:
            traced, base = sample(natural_join), sample(uninstrumented)
        diffs.append(traced - base)
        bases.append(base)
    overhead = statistics.median(diffs) / statistics.median(bases)
    assert overhead < 0.05, (
        f"tracing-off natural_join costs {overhead:.1%} over the "
        "uninstrumented baseline; the no-trace fast path regressed"
    )
