"""Shared helpers for the benchmark suite.

Each ``bench_eN_*`` module regenerates one experiment of EXPERIMENTS.md
(the paper is a tutorial without tables/figures; experiments are indexed by
the proposition/theorem they exercise — see DESIGN.md §4).  Timing comes
from pytest-benchmark; the qualitative claims (agreement, who-wins, scaling
shape) are asserted inside the benchmarks themselves.
"""

import pytest


def fmt_row(*cells) -> str:
    return " | ".join(str(c).ljust(12) for c in cells)
