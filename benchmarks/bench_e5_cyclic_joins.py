"""E5-cyclic — the AGM gap: worst-case optimal vs pairwise joins on cyclic
queries.

The tutorial's join-evaluation view of CSP (Proposition 2.1) inherits the
classical weakness of pairwise plans: on a *cyclic* body every binary join
order can materialize an intermediate polynomially larger than the output.
The Atserias–Grohe–Marx fractional-edge-cover bound caps the triangle
query's output at O(|E|^{3/2}), and Veldhuizen's leapfrog triejoin
(``execution="wcoj"``, :mod:`repro.relational.wcoj`) meets the bound by
joining variable-at-a-time.

Workload: the triangle query on the symmetric star graph with an embedded
triangle — the adversarial family of
``tests/relational/test_wcoj_adversarial.py``.  Any binary join of two
``E`` copies contains all Θ(n²) hub wedges, while the output is a constant
24 rows, so the materialized-intermediate ratio

    ratio(n) = interned.total_intermediate / wcoj.total_intermediate

must grow **super-linearly**: asserted in-run as strictly increasing with
``ratio(2n) ≥ 2.3 · ratio(n)`` across n ∈ (8, 16, 32, 64) (the exact
doubling factor tends to 4 — quadratic vs constant).  Each size also
asserts exact agreement with the nested-loop scan oracle.  A second group
times 4-clique enumeration on random graphs, wcoj vs the pairwise
executions, again oracle-checked.
"""

import pytest

from repro.relational.algebra import join_all
from repro.relational.relation import Relation
from repro.relational.stats import collect_stats
from repro.relational.wcoj import leapfrog_join

from benchmarks.conftest import fmt_row

SIZES = (8, 16, 32, 64)


def star_edges(n):
    """Symmetric star on hub 0 with leaves 1..n plus the triangle (1,2,3)."""
    edges = set()
    for i in range(1, n + 1):
        edges.add((0, i))
        edges.add((i, 0))
    for u, v in ((1, 2), (2, 3), (3, 1)):
        edges.add((u, v))
        edges.add((v, u))
    return edges


def triangle_relations(edges):
    return [
        Relation(("x", "y"), edges),
        Relation(("y", "z"), edges),
        Relation(("z", "x"), edges),
    ]


def _canon(rel):
    return {frozenset(zip(rel.attributes, t)) for t in rel.tuples}


def test_e5_cyclic_intermediate_ratio_grows_superlinearly():
    """The tentpole assertion: the pairwise/wcoj materialization ratio grows
    super-linearly in the star size — the AGM separation, measured."""
    ratios = []
    print()
    print(fmt_row("n", "|E|", "pairwise", "wcoj", "output", "ratio"))
    for n in SIZES:
        rels = triangle_relations(star_edges(n))
        oracle = join_all(rels, strategy="textbook+scan")
        with collect_stats() as pairwise:
            out_pairwise = join_all(rels, strategy="interned")
        with collect_stats() as wcoj:
            out_wcoj = leapfrog_join(rels)
        assert _canon(out_pairwise) == _canon(oracle), f"interned wrong at n={n}"
        assert _canon(out_wcoj) == _canon(oracle), f"wcoj wrong at n={n}"
        # wcoj never materializes anything but the output itself.
        assert wcoj.intermediate_sizes == [len(oracle)], f"n={n}"
        ratio = pairwise.total_intermediate / max(1, wcoj.total_intermediate)
        ratios.append(ratio)
        print(fmt_row(n, len(star_edges(n)), pairwise.total_intermediate,
                      wcoj.total_intermediate, len(oracle), f"{ratio:.1f}"))
    for small, big in zip(ratios, ratios[1:]):
        assert big > small, f"ratio not increasing: {ratios}"
        # Super-linear growth: doubling n multiplies the ratio by well over
        # a constant > 2 (the quadratic wedge set vs the constant output).
        assert big >= 2.3 * small, f"ratio growth sub-quadratic: {ratios}"


@pytest.mark.benchmark(group="E5-cyclic triangle")
@pytest.mark.parametrize("execution", ["wcoj", "interned", "indexed"])
def test_e5_triangle_timing(benchmark, execution):
    """Wall-clock on the n=32 star: the asymptotic gap in materialized rows
    shows up as time once the wedge set dominates."""
    rels = triangle_relations(star_edges(32))
    result = benchmark(lambda: join_all(rels, execution=execution))
    assert _canon(result) == _canon(join_all(rels, strategy="textbook+scan"))


@pytest.mark.benchmark(group="E5-cyclic 4-clique")
@pytest.mark.parametrize("execution", ["wcoj", "interned"])
def test_e5_four_clique_timing(benchmark, execution):
    """K4 enumeration on a random symmetric graph — a denser cyclic body
    (six atoms, binomial edge distribution) than the star family."""
    import random

    from itertools import combinations

    rng = random.Random(5)
    n = 13
    edges = set()
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < 0.5:
                edges.add((i, j))
                edges.add((j, i))
    names = ["a", "b", "c", "d"]
    rels = [
        Relation((names[i], names[j]), edges) for i, j in combinations(range(4), 2)
    ]
    result = benchmark(lambda: join_all(rels, execution=execution))
    assert _canon(result) == _canon(join_all(rels, strategy="textbook+scan"))
