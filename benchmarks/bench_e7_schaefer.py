"""E7 — Schaefer's dichotomy (Section 3): the six tractable classes run in
polynomial time through their dedicated solvers; outside them the generic
solver searches.

Workload: random Horn / 2-SAT / affine families (tractable side) vs
One-in-Three SAT (NP-complete side), n sweep.  Correctness of every verdict
is asserted against DPLL / brute force.
"""

import pytest

from repro.csp.solvers import brute
from repro.dichotomy.boolean_solvers import solve_affine, solve_boolean
from repro.dichotomy.cnf import cnf_to_csp, dpll, horn_sat, two_sat
from repro.generators.sat import (
    random_2sat,
    random_affine_instance,
    random_horn,
    random_one_in_three_instance,
)


@pytest.mark.benchmark(group="E7 Horn")
@pytest.mark.parametrize("n", [10, 20, 40])
def test_e7_horn_unit_propagation(benchmark, n):
    formulas = [random_horn(n, 2 * n, seed=s) for s in range(3)]
    models = benchmark(lambda: [horn_sat(f) for f in formulas])
    for f, m in zip(formulas, models):
        assert (m is not None) == (dpll(f) is not None)


@pytest.mark.benchmark(group="E7 2-SAT")
@pytest.mark.parametrize("n", [10, 20, 40])
def test_e7_twosat_scc(benchmark, n):
    formulas = [random_2sat(n, 2 * n, seed=s) for s in range(3)]
    models = benchmark(lambda: [two_sat(f) for f in formulas])
    for f, m in zip(formulas, models):
        assert (m is not None) == (dpll(f) is not None)


@pytest.mark.benchmark(group="E7 affine")
@pytest.mark.parametrize("n", [8, 16, 24])
def test_e7_affine_gauss(benchmark, n):
    instances = [random_affine_instance(n, n, seed=s) for s in range(3)]
    solutions = benchmark(lambda: [solve_affine(inst) for inst in instances])
    for inst, sol in zip(instances, solutions):
        if sol is not None:
            assert inst.is_solution(sol)
        elif len(inst.variables) <= 10:
            assert not brute.is_solvable(inst)


@pytest.mark.benchmark(group="E7 NP-complete side")
@pytest.mark.parametrize("n", [6, 9])
def test_e7_one_in_three_generic_search(benchmark, n):
    instances = [random_one_in_three_instance(n, n, seed=s) for s in range(3)]
    solutions = benchmark(lambda: [solve_boolean(inst) for inst in instances])
    for inst, sol in zip(instances, solutions):
        if sol is not None:
            assert inst.is_solution(sol)
        else:
            assert not brute.is_solvable(inst)


@pytest.mark.benchmark(group="E7 dispatcher")
@pytest.mark.parametrize("family,make", [
    ("horn", lambda s: cnf_to_csp(random_horn(8, 16, seed=s))),
    ("2sat", lambda s: cnf_to_csp(random_2sat(8, 16, seed=s))),
    ("affine", lambda s: random_affine_instance(8, 8, seed=s)),
])
def test_e7_dispatcher_routes_tractable_families(benchmark, family, make):
    instances = [make(s) for s in range(3)]
    solutions = benchmark(lambda: [solve_boolean(inst) for inst in instances])
    for inst, sol in zip(instances, solutions):
        assert (sol is not None) == brute.is_solvable(inst)
