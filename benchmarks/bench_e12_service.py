"""E12 — the view-maintenance service: incremental fixpoint upkeep plus
containment-keyed result caching, against recompute-from-scratch.

Two in-run claims back the service design (see docs/observability.md):

* **Maintenance plane** — on the hierarchy workload (a random recursive
  forest under reparenting updates, the classical view-maintenance steady
  state) delete-and-rederive with the persistent index pools keeps the
  transitive closure current at least **5x** faster per update batch than
  re-running the semi-naive fixpoint from scratch.
* **Cache plane** — on the multi-tenant equivalent-query stream (every
  tenant scrambles each template: fresh variable names, shuffled bodies,
  redundant implied atoms) the containment-keyed cache answers at least
  **60%** of queries without touching the data.

Both claims are asserted *inside* the benchmarks, so a regression fails
the suite rather than silently degrading a table.
"""

import time

import pytest

from repro.datalog.engine import evaluate_seminaive
from repro.datalog.incremental import IncrementalEvaluation
from repro.service.core import QueryService
from repro.service.stream import QueryEvent, UpdateEvent, service_stream


def hierarchy_workload(nodes, n_events=120, update_every=2, seed=0):
    """An update-heavy hierarchy stream: every other event reparents."""
    return service_stream(
        n_events,
        update_every=update_every,
        nodes=nodes,
        graph="hierarchy",
        seed=seed,
    )


@pytest.mark.benchmark(group="E12 service: incremental vs from-scratch")
@pytest.mark.parametrize("nodes", [1000, 2000])
def test_e12_incremental_beats_refixpoint(benchmark, nodes):
    """Steady-state update latency: DRed maintenance vs full refixpoint.

    The benchmark times the incremental replay of the update stream; the
    from-scratch cost is measured once over the identical stream and the
    5x floor is asserted on the means.  Both sides are checked for
    agreement on the final closure, so the speedup cannot come from
    skipped work.
    """
    workload = hierarchy_workload(nodes)
    updates = [e for e in workload.events if isinstance(e, UpdateEvent)]
    assert len(updates) >= 30

    # From-scratch baseline: re-run the semi-naive fixpoint per batch.
    edb = set(workload.database["E"])
    scratch_started = time.perf_counter()
    for event in updates:
        edb.difference_update(event.deletes["E"])
        edb.update(event.inserts["E"])
        scratch_values = evaluate_seminaive(workload.program, {"E": edb})
    scratch_seconds = time.perf_counter() - scratch_started

    state = {}

    def replay_incremental():
        engine = IncrementalEvaluation(workload.program, workload.database)
        started = time.perf_counter()
        for event in updates:
            engine.apply(inserts=event.inserts, deletes=event.deletes)
        state["seconds"] = time.perf_counter() - started
        state["engine"] = engine
        return engine

    benchmark(replay_incremental)
    incremental_seconds = state["seconds"]
    assert state["engine"].value("T") == scratch_values["T"]

    speedup = scratch_seconds / incremental_seconds
    print(
        f"\n  nodes={nodes}: incremental "
        f"{incremental_seconds / len(updates) * 1e3:.2f} ms/update, "
        f"from-scratch {scratch_seconds / len(updates) * 1e3:.2f} ms/update "
        f"-> {speedup:.1f}x"
    )
    assert speedup >= 5.0, (
        f"incremental maintenance must be >=5x faster than refixpoint "
        f"on the hierarchy stream, got {speedup:.2f}x"
    )


@pytest.mark.benchmark(group="E12 service: containment cache")
def test_e12_cache_hit_rate(benchmark):
    """The multi-tenant equivalent-query stream through the full service:
    the containment-keyed cache must absorb >=60% of query events."""
    workload = service_stream(400, templates=4, tenants=8, update_every=20)

    def replay():
        service = QueryService(workload.program, workload.database)
        for event in workload.events:
            if isinstance(event, QueryEvent):
                service.ask(event.query)
            else:
                service.update(event.inserts, event.deletes)
        return service

    service = benchmark(replay)
    stats = service.cache.stats
    print(
        f"\n  {stats.hits}/{stats.lookups} cache hits "
        f"({stats.hit_rate:.0%}): exact {stats.exact_hits}, "
        f"equivalence {stats.equivalence_hits}, "
        f"projection {stats.projection_hits}; "
        f"{stats.invalidations} invalidations"
    )
    assert stats.lookups >= 300
    assert stats.hit_rate >= 0.60, (
        f"containment cache must absorb >=60% of the equivalent-query "
        f"stream, got {stats.hit_rate:.0%}"
    )


@pytest.mark.benchmark(group="E12 service: end-to-end")
def test_e12_service_vs_uncached_baseline(benchmark):
    """Whole-stream wall clock: the service (incremental + cached) against
    the recompute-from-scratch, uncached baseline of ``repro
    bench-service`` — the headline number of EXPERIMENTS.md E12."""
    from argparse import Namespace

    from repro.service.cli import bench_service_report

    args = Namespace(
        events=300,
        seed=0,
        templates=4,
        tenants=8,
        update_every=15,
        graph="hierarchy",
        nodes=120,
        no_baseline=False,
    )
    report = benchmark(bench_service_report, args)
    assert report["service"]["cache"]["hit_rate"] >= 0.60
    assert report["update_speedup"] >= 1.0
    print(
        f"\n  whole-run speedup {report['throughput_speedup']:.1f}x, "
        f"update-latency speedup {report['update_speedup']:.1f}x, "
        f"hit rate {report['service']['cache']['hit_rate']:.0%}"
    )
