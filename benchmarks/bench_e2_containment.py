"""E2 — Propositions 2.2/2.3: containment ⟺ canonical-db evaluation ⟺
homomorphism.

Workload: chain, star, and cycle-pattern conjunctive queries of growing
size.  Both deciders are timed and asserted to agree; the
evaluation-based decider is expected to track the homomorphism-based one
closely (they do the same search in different clothes — Prop 2.2).
"""

import pytest

from repro.cq.containment import (
    are_equivalent,
    is_contained_in,
    is_contained_in_via_homomorphism,
    minimize,
)
from repro.cq.query import Atom, ConjunctiveQuery, Var


def chain_query(n):
    atoms = [Atom("E", (Var(f"X{i}"), Var(f"X{i+1}"))) for i in range(n)]
    return ConjunctiveQuery("Q", (Var("X0"),), atoms)


def star_query(n):
    atoms = [Atom("E", (Var("C"), Var(f"L{i}"))) for i in range(n)]
    return ConjunctiveQuery("Q", (Var("C"),), atoms)


def cycle_query(n):
    atoms = [Atom("E", (Var(f"X{i}"), Var(f"X{(i+1) % n}"))) for i in range(n)]
    return ConjunctiveQuery("Q", (), atoms)


PAIRS = {
    "chains": [(chain_query(a), chain_query(b)) for a, b in [(4, 3), (6, 4), (8, 5)]],
    "stars": [(star_query(a), star_query(b)) for a, b in [(3, 4), (5, 3), (6, 6)]],
    "cycles": [(cycle_query(a), cycle_query(b)) for a, b in [(4, 8), (6, 3), (5, 10)]],
}


@pytest.mark.benchmark(group="E2 containment")
@pytest.mark.parametrize("family", sorted(PAIRS))
def test_e2_containment_via_evaluation(benchmark, family):
    pairs = PAIRS[family]
    verdicts = benchmark(lambda: [is_contained_in(q1, q2) for q1, q2 in pairs])
    expected = [is_contained_in_via_homomorphism(q1, q2) for q1, q2 in pairs]
    assert verdicts == expected, "Proposition 2.2 violated"


@pytest.mark.benchmark(group="E2 containment")
@pytest.mark.parametrize("family", sorted(PAIRS))
def test_e2_containment_via_homomorphism(benchmark, family):
    pairs = PAIRS[family]
    benchmark(lambda: [is_contained_in_via_homomorphism(q1, q2) for q1, q2 in pairs])


def redundant_chain(n, copies):
    """A length-``n`` chain with ``copies`` fresh-variable detours hanging
    off each node — every detour folds onto the chain, so minimization must
    strip all of them.  The O(n²) drop loop makes this the workload where
    hoisting the fixed side's canonical database pays."""
    atoms = [Atom("E", (Var(f"X{i}"), Var(f"X{i+1}"))) for i in range(n)]
    for i in range(n):
        for j in range(copies):
            atoms.append(Atom("E", (Var(f"X{i}"), Var(f"Y{i}_{j}"))))
    return ConjunctiveQuery("Q", (Var("X0"),), atoms)


@pytest.mark.benchmark(group="E2 minimization")
@pytest.mark.parametrize("n,copies", [(3, 1), (4, 2)])
def test_e2_minimize_redundant_chain(benchmark, n, copies):
    """Minimization with the fixed side's canonical database hoisted out of
    the drop loop (the per-candidate databases still rebuild — they must)."""
    query = redundant_chain(n, copies)
    core = benchmark(lambda: minimize(query))
    # The detours fold onto the chain: the core is the bare chain.
    assert len(core.body) == n
    assert are_equivalent(core, query)


@pytest.mark.benchmark(group="E2 known-verdicts")
def test_e2_ground_truth(benchmark):
    def run():
        return (
            is_contained_in(chain_query(6), chain_query(4)),   # longer ⊆ shorter
            is_contained_in(chain_query(4), chain_query(6)),
            is_contained_in(cycle_query(6), cycle_query(3)),
            is_contained_in(cycle_query(3), cycle_query(6)),   # C6 wraps onto C3
        )

    verdicts = benchmark(run)
    assert verdicts == (True, False, False, True)
