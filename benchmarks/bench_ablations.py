"""Ablation benchmarks for the library's own design choices (DESIGN.md §3).

Not tied to a single paper claim; these quantify the engineering decisions:

* A1 — backtracking inference level: NONE vs forward checking vs MAC
  (node counts and wall-clock on refutation-heavy coloring workloads);
* A2 — Datalog evaluation: naive vs semi-naive fixpoints on transitive
  closure over growing chains;
* A3 — join ordering: the smallest-first heuristic in ``join_all`` vs a
  deliberately adversarial order;
* A4 — DFA minimization in the constraint template: minimized vs raw subset
  construction (template domain sizes differ exponentially).
"""

import pytest

from repro.csp.solvers import backtracking
from repro.csp.solvers.backtracking import Inference
from repro.datalog.engine import evaluate_naive, evaluate_seminaive
from repro.datalog.library import transitive_closure_program
from repro.generators.csp_random import coloring_instance
from repro.generators.graphs import cycle_graph
from repro.relational.algebra import natural_join
from repro.relational.relation import Relation
from repro.views.certain import ViewSetup
from repro.views.regex import regex_to_nfa


@pytest.mark.benchmark(group="A1 inference levels")
@pytest.mark.parametrize("inference", list(Inference), ids=lambda i: i.value)
def test_a1_backtracking_inference(benchmark, inference):
    instances = [coloring_instance(cycle_graph(n), 2) for n in (9, 11)]

    def run():
        return [backtracking.solve_with_stats(inst, inference) for inst in instances]

    stats = benchmark(run)
    assert all(s.solution is None for s in stats)
    # Report the search effort through the benchmark's extra info.
    benchmark.extra_info["nodes"] = sum(s.nodes for s in stats)


def test_a1_mac_searches_fewer_nodes_than_blind():
    inst = coloring_instance(cycle_graph(11), 2)
    blind = backtracking.solve_with_stats(inst, Inference.NONE)
    mac = backtracking.solve_with_stats(inst, Inference.MAC)
    assert mac.nodes < blind.nodes


@pytest.mark.benchmark(group="A2 datalog engines")
@pytest.mark.parametrize("engine", [evaluate_naive, evaluate_seminaive],
                         ids=["naive", "semi-naive"])
def test_a2_datalog_engines(benchmark, engine):
    program = transitive_closure_program()
    db = {"E": {(i, i + 1) for i in range(24)}}
    result = benchmark(lambda: engine(program, db))
    assert len(result["T"]) == 24 * 25 // 2


@pytest.mark.benchmark(group="A3 join order")
@pytest.mark.parametrize("order", ["smallest-first", "adversarial"])
def test_a3_join_order(benchmark, order):
    # A selective relation and two large ones: starting from the large pair
    # materializes a big intermediate; smallest-first avoids it.
    small = Relation(("a", "b"), [(0, 0)])
    big1 = Relation(("b", "c"), [(i % 2, i) for i in range(250)])
    big2 = Relation(("c", "d"), [(i, i) for i in range(250)])
    if order == "smallest-first":
        from repro.relational.algebra import join_all

        result = benchmark(lambda: join_all([big1, big2, small]))
    else:
        result = benchmark(
            lambda: natural_join(natural_join(big1, big2), small)
        )
    assert len(result) == 125


@pytest.mark.benchmark(group="A5 counting")
@pytest.mark.parametrize("method", ["dp", "brute"])
def test_a5_solution_counting(benchmark, method):
    """Sum-product DP over the tree decomposition vs exhaustive counting —
    polynomial vs exponential on a bounded-width instance."""
    from repro.csp.solvers import brute
    from repro.csp.solvers.decomposition import count_solutions

    inst = coloring_instance(cycle_graph(12), 2)
    expected = (2 - 1) ** 12 + (2 - 1)  # chromatic polynomial of C12 at q=2
    if method == "dp":
        count = benchmark(lambda: count_solutions(inst))
    else:
        count = benchmark(lambda: brute.count_solutions(inst))
    assert count == expected


@pytest.mark.benchmark(group="A7 game engines")
@pytest.mark.parametrize("engine", ["strategy-pruning", "lfp"])
def test_a7_game_engines(benchmark, engine):
    """The two implementations of Theorem 4.5: the greatest-fixpoint
    strategy pruning vs the least-fixpoint configuration induction.  Both
    must return the same winner; the strategy engine scales better (it never
    materializes all |A|^k × |B|^k configurations)."""
    from repro.games.lfp import duplicator_wins_via_lfp
    from repro.games.pebble import duplicator_wins
    from repro.generators.graphs import graph_as_digraph_structure
    from repro.relational.structure import Structure

    k2 = Structure({"E": 2}, [0, 1], {"E": [(0, 1), (1, 0)]})
    a = graph_as_digraph_structure(cycle_graph(6))
    if engine == "strategy-pruning":
        result = benchmark(lambda: duplicator_wins(a, k2, 2))
    else:
        result = benchmark(lambda: duplicator_wins_via_lfp(a, k2, 2))
    assert result is True


@pytest.mark.benchmark(group="A6 portfolio routing")
@pytest.mark.parametrize(
    "workload",
    ["schaefer", "acyclic", "treewidth", "search"],
)
def test_a6_portfolio_routes(benchmark, workload):
    """The structure-routing front door vs its fallback: routing overhead is
    small and each tractable class lands on its fast path."""
    from repro.csp.solvers import portfolio
    from repro.dichotomy.cnf import cnf_to_csp
    from repro.generators.graphs import complete_graph, partial_ktree, path_graph
    from repro.generators.sat import random_horn

    instances = {
        "schaefer": cnf_to_csp(random_horn(12, 24, seed=5)),
        "acyclic": coloring_instance(path_graph(14), 3),
        "treewidth": coloring_instance(partial_ktree(12, 2, 0.9, seed=5), 3),
        "search": coloring_instance(complete_graph(6), 3),
    }
    inst = instances[workload]
    expected_route = {
        "schaefer": portfolio.Route.SCHAEFER,
        "acyclic": portfolio.Route.ACYCLIC,
        "treewidth": portfolio.Route.TREEWIDTH,
        "search": portfolio.Route.SEARCH,
    }[workload]
    assert portfolio.explain(inst) == expected_route
    solution = benchmark(lambda: portfolio.solve(inst))
    if solution is not None:
        assert inst.normalize().is_solution(solution)


@pytest.mark.benchmark(group="A4 template automaton")
@pytest.mark.parametrize("minimize", [True, False], ids=["minimized", "raw"])
def test_a4_template_automaton_size(benchmark, minimize):
    views = ViewSetup({"V1": "a b", "V2": "c"})
    query = "(a | b) (a | b) c"
    alphabet = frozenset({"a", "b", "c"})

    def run():
        nfa = regex_to_nfa(query, alphabet).trimmed()
        dfa = nfa.to_dfa()
        if minimize:
            dfa = dfa.minimized()
        return len(dfa.states)

    states = benchmark(run)
    benchmark.extra_info["automaton_states"] = states
    benchmark.extra_info["template_domain"] = 2 ** states
    if minimize:
        assert states <= 5
