"""Micro-benchmarks guarding the interned code-space data plane.

Two kernel families carry the interning layer's perf claims, and both are
guarded here with deterministic counter assertions (the paired benchmark
groups additionally show the wall-clock gap in ``--benchmark-only`` runs):

* **bitset domain kernels** — on dense instances the SAC probe loop keeps
  invalidating residual supports, so the set-based engine re-scans hash
  groups value by value while the bitset engine answers each revision with
  a handful of word operations.  The guard asserts the interned engine
  performs at least 3× fewer per-value membership operations
  (``mask_ops``) than the residual engine's row checks
  (``support_checks``) — measured ≈4.1× on this family.

* **radix-packed join keys** — on E1's workload (the Proposition 2.1
  join-evaluation family) the interned execution folds the constraint
  relations through packed single-int probe keys and dense-list buckets,
  and the dense-int domains take the identity-codec fast path, so the
  whole pipeline must beat the plain hash-indexed execution wall-clock
  (measured ≈1.1–1.2×).
"""

import time

import pytest

from repro.consistency.arc import singleton_arc_consistency
from repro.consistency.propagation import collect_propagation
from repro.csp.solvers import join
from repro.generators.csp_random import random_binary_csp
from repro.relational.interning import reset_fold_codecs
from repro.relational.stats import collect_stats

# Dense domains + moderate tightness: SAC pins invalidate stored supports
# constantly, which is exactly the regime the bitset kernels target.
DENSE_INSTANCES = [
    random_binary_csp(
        n_variables=8, domain_size=24, n_constraints=16, tightness=0.45, seed=s
    )
    for s in range(4)
]

# E1's workload: the same model-B family bench_e1_join_evaluation.py times.
E1_INSTANCES = [
    random_binary_csp(
        n_variables=9, domain_size=3, n_constraints=12, tightness=t, seed=s
    )
    for t in (0.2, 0.4, 0.6)
    for s in range(3)
]


@pytest.mark.benchmark(group="micro interning: SAC")
@pytest.mark.parametrize("strategy", ["residual", "interned"])
def test_micro_sac_strategy(benchmark, strategy):
    def run():
        return [
            singleton_arc_consistency(inst, strategy=strategy)
            for inst in DENSE_INSTANCES
        ]

    results = benchmark(run)
    assert len(results) == len(DENSE_INSTANCES)


def test_micro_bitset_revise_beats_residual_by_3x():
    """Acceptance criterion: on dense instances the bitset AC-revise kernel
    performs ≥3× fewer per-value membership operations than the residual
    set-based path — counter-based, so deterministic for fixed seeds."""
    fixpoints = {}
    counters = {}
    for strategy in ("residual", "interned"):
        with collect_propagation() as stats:
            fixpoints[strategy] = [
                singleton_arc_consistency(inst, strategy=strategy)
                for inst in DENSE_INSTANCES
            ]
        counters[strategy] = stats
    residual, interned = counters["residual"], counters["interned"]
    # Same fixpoints first — a cheap kernel that computes the wrong
    # closure would make the ratio meaningless.
    for res, inter in zip(fixpoints["residual"], fixpoints["interned"]):
        assert res.consistent == inter.consistent
        assert res.domains == inter.domains
    assert interned.intern_tables == len(DENSE_INSTANCES)
    assert interned.bitset_words > 0
    assert residual.support_checks >= 3 * interned.mask_ops, (
        f"bitset kernel ratio collapsed: {residual.support_checks} residual "
        f"checks vs {interned.mask_ops} mask ops "
        f"({residual.support_checks / max(1, interned.mask_ops):.2f}x)"
    )


@pytest.mark.benchmark(group="micro interning: E1 join")
@pytest.mark.parametrize("execution", ["indexed", "interned"])
def test_micro_e1_join_execution(benchmark, execution):
    verdicts = benchmark(
        lambda: [
            join.is_solvable(inst, strategy=execution) for inst in E1_INSTANCES
        ]
    )
    assert len(verdicts) == len(E1_INSTANCES)


def _best_of(fn, rounds=9):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_micro_interned_join_beats_indexed_on_e1():
    """Acceptance criterion: interned join execution beats the plain
    hash-indexed execution wall-clock on E1's workload.  Best-of-N timing
    smooths scheduler noise; verdict equality keeps the comparison honest."""
    runs = {}
    for execution in ("indexed", "interned"):
        # The memoized fold codecs may be warm from earlier benchmarks over
        # the same instances; the counted run must build its own.
        reset_fold_codecs()
        with collect_stats() as stats:
            verdicts = [
                join.is_solvable(inst, strategy=execution)
                for inst in E1_INSTANCES
            ]
        runs[execution] = (verdicts, stats)
    assert runs["indexed"][0] == runs["interned"][0]
    # One shared codec per pipeline plus one CodeIndex per build side.
    assert runs["interned"][1].intern_tables >= len(E1_INSTANCES)
    assert runs["indexed"][1].intern_tables == 0

    indexed = _best_of(
        lambda: [join.is_solvable(i, strategy="indexed") for i in E1_INSTANCES]
    )
    interned = _best_of(
        lambda: [join.is_solvable(i, strategy="interned") for i in E1_INSTANCES]
    )
    assert interned < indexed, (
        f"interned join lost on E1's workload: {interned * 1e3:.2f}ms vs "
        f"indexed {indexed * 1e3:.2f}ms ({indexed / interned:.2f}x)"
    )
