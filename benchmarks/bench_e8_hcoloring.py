"""E8 — Hell–Nešetřil dichotomy (Section 3): H-coloring is polynomial for
bipartite targets and requires search for non-bipartite ones.

Workload: random input graphs against K2 / C4 / path (polynomial side) and
K3 / C5 (NP-complete side).  Verdicts are validated against the generic
homomorphism search.
"""

import pytest

from repro.dichotomy.hcoloring import (
    HColoringClass,
    classify_target,
    graph_to_structure,
    solve_hcoloring,
)
from repro.generators.graphs import complete_graph, cycle_graph, path_graph, random_graph
from repro.relational.homomorphism import homomorphism_exists

TARGETS = {
    "K2": complete_graph(2),
    "C4": cycle_graph(4),
    "P3": path_graph(3),
    "K3": complete_graph(3),
    "C5": cycle_graph(5),
}

EXPECTED_CLASS = {
    "K2": HColoringClass.POLYNOMIAL,
    "C4": HColoringClass.POLYNOMIAL,
    "P3": HColoringClass.POLYNOMIAL,
    "K3": HColoringClass.NP_COMPLETE,
    "C5": HColoringClass.NP_COMPLETE,
}


@pytest.mark.benchmark(group="E8 polynomial side")
@pytest.mark.parametrize("target", ["K2", "C4", "P3"])
@pytest.mark.parametrize("n", [12, 24])
def test_e8_bipartite_targets(benchmark, target, n):
    h = TARGETS[target]
    assert classify_target(h) is EXPECTED_CLASS[target]
    graphs = [random_graph(n, 0.15, seed=s) for s in range(3)]
    mappings = benchmark(lambda: [solve_hcoloring(g, h) for g in graphs])
    for g, mapping in zip(graphs, mappings):
        assert (mapping is not None) == g.is_bipartite()


@pytest.mark.benchmark(group="E8 np-complete side")
@pytest.mark.parametrize("target", ["K3", "C5"])
@pytest.mark.parametrize("n", [8, 10])
def test_e8_nonbipartite_targets(benchmark, target, n):
    h = TARGETS[target]
    assert classify_target(h) is EXPECTED_CLASS[target]
    graphs = [random_graph(n, 0.3, seed=s) for s in range(2)]
    mappings = benchmark(lambda: [solve_hcoloring(g, h) for g in graphs])
    for g, mapping in zip(graphs, mappings):
        expected = homomorphism_exists(graph_to_structure(g), graph_to_structure(h))
        assert (mapping is not None) == expected
