"""E1 — Proposition 2.1: CSP solvability ⟺ nonemptiness of the join.

Workload: model-B random binary CSPs across the tightness spectrum plus
colorability instances.  The experiment measures the join-evaluation solver
and asserts its verdict agrees with backtracking search on every instance —
the executable content of the proposition — and reports relative timings
(the join pays for materializing intermediate relations; search wins on
tight/unsatisfiable instances, the join is competitive on loose ones).
"""

import pytest

from repro.csp.solvers import backtracking, join
from repro.generators.csp_random import coloring_instance, random_binary_csp
from repro.generators.graphs import cycle_graph, path_graph
from repro.relational.stats import collect_stats


def _instances(tightness):
    return [
        random_binary_csp(
            n_variables=9, domain_size=3, n_constraints=12, tightness=tightness, seed=s
        )
        for s in range(3)
    ]


@pytest.mark.benchmark(group="E1 join-evaluation")
@pytest.mark.parametrize("tightness", [0.2, 0.4, 0.6])
def test_e1_join_solver(benchmark, tightness):
    instances = _instances(tightness)

    def run():
        return [join.is_solvable(inst) for inst in instances]

    verdicts = benchmark(run)
    expected = [backtracking.is_solvable(inst) for inst in instances]
    assert verdicts == expected, "Proposition 2.1 violated"


@pytest.mark.benchmark(group="E1 join-evaluation")
@pytest.mark.parametrize("tightness", [0.2, 0.4, 0.6])
def test_e1_backtracking_baseline(benchmark, tightness):
    instances = _instances(tightness)
    benchmark(lambda: [backtracking.is_solvable(inst) for inst in instances])


@pytest.mark.benchmark(group="E1 join strategies")
@pytest.mark.parametrize("strategy", ["greedy", "smallest", "textbook"])
def test_e1_join_strategy(benchmark, strategy):
    """The same workload under each join-order strategy — the planner's
    speedup comes entirely from smaller intermediate relations."""
    instances = _instances(0.4)
    verdicts = benchmark(
        lambda: [join.is_solvable(inst, strategy=strategy) for inst in instances]
    )
    assert verdicts == [backtracking.is_solvable(inst) for inst in instances]


@pytest.mark.parametrize("tightness", [0.2, 0.4, 0.6])
def test_e1_planner_intermediates_never_worse(tightness):
    """Acceptance criterion: on the E1 family the greedy plan's largest
    intermediate relation is no bigger than the textbook order's — the
    EvalStats counters are the evidence (reported in EXPERIMENTS.md)."""
    for inst in _instances(tightness):
        sizes = {}
        for strategy in ("greedy", "textbook"):
            with collect_stats() as stats:
                join.is_solvable(inst, strategy=strategy)
            sizes[strategy] = stats
        assert (
            sizes["greedy"].max_intermediate <= sizes["textbook"].max_intermediate
        ), f"planner made an intermediate bigger at tightness {tightness}"
        assert (
            sizes["greedy"].total_intermediate
            <= sizes["textbook"].total_intermediate
        )


@pytest.mark.parametrize("tightness", [0.2, 0.4, 0.6])
def test_e1_indexed_scans_fewer_tuples(tightness):
    """Acceptance criterion: on every E1 instance the hash-indexed
    execution reads strictly fewer tuples than the nested-loop scan while
    producing the same verdict and identical intermediates (reported in
    EXPERIMENTS.md)."""
    for inst in _instances(tightness):
        runs = {}
        for execution in ("indexed", "scan"):
            with collect_stats() as stats:
                verdict = join.is_solvable(inst, strategy=execution)
            runs[execution] = (verdict, stats)
        v_indexed, s_indexed = runs["indexed"]
        v_scan, s_scan = runs["scan"]
        assert v_indexed == v_scan
        assert s_indexed.intermediate_sizes == s_scan.intermediate_sizes
        assert s_indexed.tuples_scanned < s_scan.tuples_scanned, (
            f"indexed execution read no fewer tuples at tightness {tightness}"
        )
        assert s_scan.index_builds == s_scan.index_hits == 0


@pytest.mark.benchmark(group="E1 join executions")
@pytest.mark.parametrize("execution", ["indexed", "scan", "interned"])
def test_e1_join_execution(benchmark, execution):
    """The same workload under each join execution — the hash path's win
    is probe work proportional to matches, not to |L|·|R|; the interned
    path additionally packs probe keys into dense single ints (and E1's
    0..2 domains ride the identity-codec fast path)."""
    instances = _instances(0.4)
    verdicts = benchmark(
        lambda: [join.is_solvable(inst, strategy=execution) for inst in instances]
    )
    assert verdicts == [backtracking.is_solvable(inst) for inst in instances]


@pytest.mark.benchmark(group="E1 colorability")
@pytest.mark.parametrize("solver_name,decide", [
    ("join", join.is_solvable),
    ("backtracking", backtracking.is_solvable),
])
def test_e1_coloring_workload(benchmark, solver_name, decide):
    instances = [
        coloring_instance(cycle_graph(9), 3),
        coloring_instance(cycle_graph(9), 2),   # odd cycle: unsolvable
        coloring_instance(path_graph(12), 2),
    ]
    verdicts = benchmark(lambda: [decide(i) for i in instances])
    assert verdicts == [True, False, True]
