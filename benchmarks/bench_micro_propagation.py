"""Micro-benchmarks guarding the propagation core's per-revision costs.

The residual engine's contract is that a revision touches (a) the stored
residual support — one O(arity) row check when it still holds — and (b)
on a miss, only the hash-index group of rows carrying the value, never the
whole relation.  These guards keep both properties visible: the paired
benchmark shows the naive/residual gap in ``--benchmark-only`` runs, and
the counter assertions fail if a full-relation rescan sneaks back into
the residual path.
"""

import pytest

from repro.consistency.arc import ac3, singleton_arc_consistency
from repro.consistency.propagation import collect_propagation
from repro.dichotomy.cnf import cnf_to_csp
from repro.generators.sat import random_horn

INSTANCES = [
    cnf_to_csp(random_horn(7, 14, seed=s, width=3)) for s in range(4)
]


@pytest.mark.benchmark(group="micro propagation")
@pytest.mark.parametrize("strategy", ["residual", "naive"])
def test_micro_sac_strategy(benchmark, strategy):
    def run():
        return [
            singleton_arc_consistency(inst, strategy=strategy)
            for inst in INSTANCES
        ]

    results = benchmark(run)
    assert len(results) == len(INSTANCES)


def test_micro_residual_support_hits_nonzero():
    """SAC probes re-ask the same support questions; the residual engine
    must answer a healthy share of them from stored rows."""
    with collect_propagation() as stats:
        for inst in INSTANCES:
            singleton_arc_consistency(inst, strategy="residual")
    assert stats.support_hits > 0
    # Horn SAC probes wipe out fast, so repeat questions are a modest share
    # here (measured ≈8%); the floor catches a disabled cache, not noise.
    assert stats.hit_rate > 0.05, f"hit rate collapsed: {stats.hit_rate:.2%}"


def test_micro_residual_never_checks_more_than_naive():
    """Per instance — not just in aggregate — the residual engine performs
    no more row checks than the naive rescan, for both AC and SAC."""
    for inst in INSTANCES:
        for fn in (ac3, singleton_arc_consistency):
            with collect_propagation() as naive:
                fn(inst, strategy="naive")
            with collect_propagation() as residual:
                fn(inst, strategy="residual")
            assert residual.support_checks <= naive.support_checks, (
                f"{fn.__name__}: residual {residual.support_checks} > "
                f"naive {naive.support_checks}"
            )
