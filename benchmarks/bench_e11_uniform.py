"""E11 — Theorem 4.7: uniform tractability of the k-consistency decision,
with the O(n^{2k}) size sweep at fixed k.

Both input structures grow (uniform CSP: **A** and **B** are both inputs).
Workload: implicational templates (whose complements are Datalog-expressible,
so the decision is exact) at growing sizes; the benchmark table exposes the
polynomial growth curve at k = 2.
"""

import pytest

from repro.csp.convert import csp_to_homomorphism
from repro.csp.solvers import backtracking
from repro.csp.solvers.consistency import Verdict, decide_homomorphism
from repro.generators.csp_random import csp_from_graph
from repro.generators.graphs import cycle_graph, path_graph


def implication_instance(n, d):
    """Variables on a path, each edge constrained by the 'staircase' relation
    x ≤ y over a d-element chain — a width-2 implicational template whose
    complement is 2-Datalog-expressible."""
    relation = frozenset(
        (a, b) for a in range(d) for b in range(d) if a <= b
    )
    return csp_from_graph(path_graph(n), relation, list(range(d)))


def hard_chain_instance(n, d):
    """Same staircase on a cycle plus a forced decrease: unsolvable — the
    k-consistency engine must propagate around the cycle to refute."""
    less = frozenset((a, b) for a in range(d) for b in range(d) if a < b)
    from repro.csp.instance import Constraint, CSPInstance

    constraints = [
        Constraint((i, (i + 1) % n), less) for i in range(n)
    ]
    return CSPInstance(list(range(n)), list(range(d)), constraints)


@pytest.mark.benchmark(group="E11 uniform k=2 (solvable)")
@pytest.mark.parametrize("n", [4, 6, 8])
def test_e11_scaling_solvable(benchmark, n):
    inst = implication_instance(n, 3)
    a, b = csp_to_homomorphism(inst)
    verdict = benchmark(lambda: decide_homomorphism(a, b, 2))
    assert verdict is Verdict.CONSISTENT
    assert backtracking.is_solvable(inst)


@pytest.mark.benchmark(group="E11 uniform k=2 (refuted)")
@pytest.mark.parametrize("n", [4, 5, 6])
def test_e11_scaling_refuted(benchmark, n):
    inst = hard_chain_instance(n, 3)
    a, b = csp_to_homomorphism(inst)
    verdict = benchmark(lambda: decide_homomorphism(a, b, 2))
    # A strictly increasing cycle is impossible; 2-consistency propagation
    # refutes it (the template is implicational).
    assert verdict is Verdict.UNSATISFIABLE
    assert not backtracking.is_solvable(inst)


@pytest.mark.benchmark(group="E11 domain sweep")
@pytest.mark.parametrize("d", [2, 3, 4])
def test_e11_domain_size_sweep(benchmark, d):
    """Uniformity: B grows too (the point of Theorem 4.7 vs non-uniform
    statements — the algorithm stays polynomial in |A| + |B|)."""
    inst = implication_instance(5, d)
    a, b = csp_to_homomorphism(inst)
    verdict = benchmark(lambda: decide_homomorphism(a, b, 2))
    assert verdict is Verdict.CONSISTENT
