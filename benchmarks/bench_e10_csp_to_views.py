"""E10 — Theorem 7.3 / Corollary 7.4: CSP over digraphs reduces to
view-based query answering.

Workload: 2-colorability CSPs (directed cycles, random digraphs) pushed
through the reduction; the non-certain-answer verdict is asserted to match
homomorphism existence (the exact brute-force certain checker applies: all
view languages are finite with words of length ≤ 2).
"""

import pytest

from repro.generators.graphs import directed_cycle_structure, random_digraph
from repro.relational.homomorphism import homomorphism_exists
from repro.relational.structure import Structure
from repro.views.certain import certain_answer_bruteforce
from repro.views.reduction import csp_to_view_reduction

K2 = Structure({"E": 2}, [0, 1], {"E": [(0, 1), (1, 0)]})


@pytest.mark.benchmark(group="E10 reduction construction")
def test_e10_build_reduction(benchmark):
    red = benchmark(lambda: csp_to_view_reduction(K2))
    assert set(red.definitions) == {"Vloop", "Vedge", "Vs", "Vt"}


@pytest.mark.benchmark(group="E10 round trip")
@pytest.mark.parametrize("n", [2, 3, 4])
def test_e10_directed_cycles(benchmark, n):
    red = csp_to_view_reduction(K2)
    a = directed_cycle_structure(n)
    views, c, d = red.setup_for(a)

    def run():
        return certain_answer_bruteforce(red.query, views, c, d, max_word_length=2)

    cert = benchmark(run)
    assert (not cert) == homomorphism_exists(a, K2)
    assert (not cert) == (n % 2 == 0)


@pytest.mark.benchmark(group="E10 round trip")
@pytest.mark.parametrize("seed", [0, 1])
def test_e10_random_digraphs(benchmark, seed):
    red = csp_to_view_reduction(K2)
    a = random_digraph(3, 0.5, seed=seed)
    if not a.relation("E"):
        pytest.skip("degenerate input")
    views, c, d = red.setup_for(a)
    cert = benchmark(
        lambda: certain_answer_bruteforce(red.query, views, c, d, max_word_length=2)
    )
    assert (not cert) == homomorphism_exists(a, K2)
