"""Datalog as an analytics engine (Section 4's substrate, applied).

A miniature static-analysis scenario: a call graph with direct calls and
function-pointer assignments, analyzed with recursive Datalog — reachable
functions, mutual recursion, and dead code — using the library's semi-naive
engine and program introspection.

Run:  python examples/datalog_analytics.py
"""

from repro.datalog import evaluate, goal_relation, parse_program

CALLS = {
    ("main", "parse"), ("main", "eval"), ("parse", "lex"),
    ("eval", "eval_expr"), ("eval_expr", "eval"),          # mutual recursion
    ("eval_expr", "lookup"), ("zombie", "lex"),            # dead caller
    ("lookup", "hash"),
}
ENTRY = {("main",)}


ANALYSIS = """
% transitive call reachability
Reach(F, G) :- Calls(F, G).
Reach(F, G) :- Reach(F, H), Calls(H, G).

% functions live from the entry points
Live(F) :- Entry(F).
Live(G) :- Live(F), Calls(F, G).

% mutual recursion: F and G call each other transitively
Mutual(F, G) :- Reach(F, G), Reach(G, F).
"""


def main() -> None:
    program = parse_program(ANALYSIS, goal="Live")
    print("program:", program)
    print("  recursive:", program.is_recursive(), "| linear:", program.is_linear())
    print("  IDBs:", sorted(program.idb_predicates()), "EDBs:", sorted(program.edb_predicates()))

    db = {"Calls": CALLS, "Entry": ENTRY}
    results = evaluate(program, db)

    live = {f for (f,) in results["Live"]}
    all_functions = {f for edge in CALLS for f in edge}
    print("\nlive functions:   ", sorted(live))
    print("dead code:        ", sorted(all_functions - live))

    mutual = {(f, g) for f, g in results["Mutual"] if f < g}
    print("mutual recursion: ", sorted(mutual))

    reach = goal_relation(
        parse_program(ANALYSIS, goal="Reach"), db
    )
    print("\nmain transitively calls:",
          sorted(g for f, g in reach if f == "main"))

    # Sanity: the engine agrees with a hand-rolled closure.
    closure = set(CALLS)
    changed = True
    while changed:
        changed = False
        for f, h in list(closure):
            for h2, g in CALLS:
                if h == h2 and (f, g) not in closure:
                    closure.add((f, g))
                    changed = True
    assert frozenset(closure) == reach
    print("\n(verified against a hand-rolled transitive closure)")


if __name__ == "__main__":
    main()
