"""Meeting scheduling as bounded-treewidth CSP (Section 6).

Teams hold meetings in shared time slots; meetings conflict when they share
an attendee.  The conflict graph of a department hierarchy is tree-like
(low treewidth), so Theorem 6.2's tree-decomposition solver decides the
schedule in polynomial time — and the ∃FO^{k+1} formula behind the proof is
built and evaluated explicitly.

Run:  python examples/scheduling.py
"""

from repro.cq.bounded import count_variables, evaluate_formula, formula_from_tree_decomposition
from repro.csp.convert import csp_to_homomorphism
from repro.csp.instance import Constraint, CSPInstance
from repro.csp.solvers import decomposition
from repro.width.gaifman import constraint_graph, gaifman_graph
from repro.width.treedecomp import heuristic_decomposition, treewidth_exact

# Meetings and the attendees they share (conflict edges).
MEETINGS = [
    "all-hands", "eng-sync", "eng-standup", "infra-retro",
    "sales-sync", "sales-pipeline", "design-crit",
]
CONFLICTS = [
    ("all-hands", "eng-sync"), ("all-hands", "sales-sync"), ("all-hands", "design-crit"),
    ("eng-sync", "eng-standup"), ("eng-sync", "infra-retro"),
    ("eng-standup", "infra-retro"),
    ("sales-sync", "sales-pipeline"),
]
SLOTS = ["mon-am", "mon-pm", "tue-am"]


def build_instance() -> CSPInstance:
    different = {(a, b) for a in SLOTS for b in SLOTS if a != b}
    constraints = [Constraint(edge, different) for edge in CONFLICTS]
    # Business rule: the all-hands must be Monday morning.
    constraints.append(Constraint(("all-hands",), {("mon-am",)}))
    return CSPInstance(MEETINGS, SLOTS, constraints)


def main() -> None:
    instance = build_instance()
    graph = constraint_graph(instance)
    width = treewidth_exact(graph)
    print(f"conflict graph: {graph}, treewidth = {width}")

    schedule = decomposition.solve(instance)
    print("\nschedule found by tree-decomposition DP:")
    for meeting in MEETINGS:
        print(f"  {meeting:<16} {schedule[meeting]}")
    assert instance.is_solution(schedule)

    # The proof object of Theorem 6.2: a bounded-variable formula equivalent
    # to φ_A, evaluated against the value structure B.
    a, b = csp_to_homomorphism(instance)
    td = heuristic_decomposition(gaifman_graph(a))
    formula = formula_from_tree_decomposition(a, td)
    print(
        f"\n∃FO formula from the width-{td.width} decomposition uses "
        f"{count_variables(formula)} variable names (≤ width+1 = {td.width + 1})"
    )
    print("formula evaluates to:", evaluate_formula(formula, b))

    # Tighten the instance until it breaks: only two slots.
    tight = CSPInstance(
        instance.variables,
        SLOTS[:2],
        [
            Constraint(c.scope, {r for r in c.relation if set(r) <= set(SLOTS[:2])})
            for c in instance.constraints
        ],
    )
    print("\nwith only two slots the DP refutes:", decomposition.solve(tight))


if __name__ == "__main__":
    main()
