"""Quickstart: one CSP, three formulations, five solvers.

The tutorial's Section 2 shows that a constraint-satisfaction problem, a
homomorphism problem, a join-evaluation problem, and a Boolean conjunctive
query are the same object.  This script builds a small graph-coloring CSP
and walks it through every formulation and every solver in the library,
showing they all agree.

Run:  python examples/quickstart.py
"""

from repro.cq.canonical import canonical_query
from repro.cq.evaluate import evaluate_boolean
from repro.csp.convert import csp_to_homomorphism
from repro.csp.instance import Constraint, CSPInstance
from repro.csp.solvers import backtracking, brute, consistency, decomposition, join
from repro.games.pebble import solve_game
from repro.relational.homomorphism import find_homomorphism


def main() -> None:
    # --- 1. The AI formulation: variables, values, constraints -------------
    # Color the 5-cycle with 3 colors; adjacent vertices must differ.
    variables = ["v0", "v1", "v2", "v3", "v4"]
    colors = [0, 1, 2]
    different = {(a, b) for a in colors for b in colors if a != b}
    edges = [("v0", "v1"), ("v1", "v2"), ("v2", "v3"), ("v3", "v4"), ("v4", "v0")]
    instance = CSPInstance(variables, colors, [Constraint(e, different) for e in edges])
    print("CSP instance:", instance)

    # --- 2. Solve it five ways ------------------------------------------------
    print("\nSolver verdicts (all must agree):")
    print("  brute force:        ", brute.is_solvable(instance))
    print("  backtracking (MAC): ", backtracking.is_solvable(instance))
    print("  join evaluation:    ", join.is_solvable(instance), "   [Prop 2.1]")
    print("  k-consistency (k=2):", consistency.is_solvable(instance, 2), "   [Thm 4.7]")
    print("  tree-decomposition: ", decomposition.is_solvable(instance), "   [Thm 6.2]")

    solution = backtracking.solve(instance)
    print("\nOne solution:", solution)

    # --- 3. The homomorphism formulation (Feder–Vardi) -----------------------
    a, b = csp_to_homomorphism(instance)
    print("\nHomomorphism instance:")
    print("  A (variables):", a)
    print("  B (values):   ", b)
    h = find_homomorphism(a, b)
    print("  homomorphism A → B:", h)

    # --- 4. The conjunctive-query formulation (Prop 2.3) ---------------------
    phi_a = canonical_query(a)
    print("\nCanonical Boolean query φ_A has", len(phi_a.body), "atoms;")
    print("  φ_A true in B:", evaluate_boolean(phi_a, b))

    # --- 5. A glimpse of the game view (Section 4) ---------------------------
    game = solve_game(a, b, k=2)
    print("\nExistential 2-pebble game: Duplicator wins?", game.duplicator_wins)
    print(
        "  (The Duplicator winning means the instance is strongly 2-consistent;"
        " it does not by itself certify solvability — see Section 5.)"
    )


if __name__ == "__main__":
    main()
