"""Temporal reasoning as constraint satisfaction (Section 1's motivation).

The tutorial opens by listing temporal reasoning among the classic CSP
application areas.  This example models qualitative *point algebra*
reasoning — events constrained by before/after/equal relations over a
discretized timeline — and shows the library's pipeline end to end:

1. path consistency tightens the network (the classical PC algorithm of
   Section 5's lineage);
2. the k-consistency engine refutes an inconsistent scenario;
3. the tree-decomposition solver schedules the consistent one.

Run:  python examples/temporal_reasoning.py
"""

from repro.consistency.arc import path_consistency
from repro.csp.instance import Constraint, CSPInstance
from repro.csp.solvers import decomposition
from repro.csp.solvers.consistency import Verdict, solve_decision

TICKS = list(range(6))  # a discretized timeline


def rel(op):
    """The point-algebra relation {(s, t) : s op t} over the timeline."""
    return {(s, t) for s in TICKS for t in TICKS if op(s, t)}


BEFORE = rel(lambda s, t: s < t)
AFTER = rel(lambda s, t: s > t)
EQUAL = rel(lambda s, t: s == t)
NOT_AFTER = rel(lambda s, t: s <= t)


def consistent_scenario() -> CSPInstance:
    """A build pipeline: compile before test, test before deploy;
    docs finish no later than deploy; release equals deploy."""
    events = ["compile", "test", "deploy", "docs", "release"]
    constraints = [
        Constraint(("compile", "test"), BEFORE),
        Constraint(("test", "deploy"), BEFORE),
        Constraint(("docs", "deploy"), NOT_AFTER),
        Constraint(("release", "deploy"), EQUAL),
    ]
    return CSPInstance(events, TICKS, constraints)


def inconsistent_scenario() -> CSPInstance:
    """A cyclic precedence: a < b < c < a — unsatisfiable on any timeline."""
    return CSPInstance(
        ["a", "b", "c"],
        TICKS,
        [
            Constraint(("a", "b"), BEFORE),
            Constraint(("b", "c"), BEFORE),
            Constraint(("c", "a"), BEFORE),
        ],
    )


def main() -> None:
    # --- the consistent pipeline ------------------------------------------
    pipeline = consistent_scenario()
    tightened = path_consistency(pipeline)
    assert tightened is not None
    ab = next(
        c
        for c in tightened.constraints
        if set(c.scope) == {"compile", "deploy"} and c.arity == 2
    )
    print("path consistency derived compile-vs-deploy relation with",
          len(ab.relation), "allowed pairs (pure '<' would allow",
          len(BEFORE), "— PC composed the two '<' hops)")

    schedule = decomposition.solve(pipeline)
    print("\na consistent schedule:")
    for event in pipeline.variables:
        print(f"  {event:<8} t={schedule[event]}")

    # --- the cyclic precedence ----------------------------------------------
    cyclic = inconsistent_scenario()
    print("\ncyclic precedence a<b<c<a:")
    print("  path consistency refutes:", path_consistency(cyclic) is None)
    verdict = solve_decision(cyclic, 2)
    print("  strong 2-consistency verdict:", verdict.value)
    assert verdict is Verdict.UNSATISFIABLE


if __name__ == "__main__":
    main()
