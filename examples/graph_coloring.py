"""Graph coloring through the dichotomy lens (Section 3).

A register-allocation-style scenario: program variables interfere when
their live ranges overlap; registers are colors.  We classify the coloring
*templates* with Hell–Nešetřil (K2 is polynomial, K3 NP-complete), solve
both sides, and show k-consistency (Section 5) acting as the polynomial
refutation engine for the 2-register case.

Run:  python examples/graph_coloring.py
"""

from repro.csp.solvers import backtracking
from repro.csp.solvers.consistency import Verdict, solve_decision
from repro.dichotomy.hcoloring import classify_target, solve_hcoloring
from repro.generators.csp_random import coloring_instance
from repro.generators.graphs import complete_graph, cycle_graph
from repro.width.graph import Graph

# Live ranges of 8 program variables; an edge = simultaneous liveness.
INTERFERENCE = Graph(
    vertices=[f"t{i}" for i in range(8)],
    edges=[
        ("t0", "t1"), ("t1", "t2"), ("t2", "t3"), ("t3", "t4"),
        ("t4", "t0"),                      # a 5-cycle: not 2-colorable
        ("t5", "t6"), ("t6", "t7"),        # a separate path
        ("t0", "t5"),
    ],
)


def main() -> None:
    for k in (2, 3):
        target = complete_graph(k)
        klass = classify_target(target)
        print(f"\n=== {k} registers: CSP(K{k}) is {klass.value} ===")
        mapping = solve_hcoloring(INTERFERENCE, target)
        if mapping is None:
            print(f"  no {k}-register allocation exists")
        else:
            print(f"  allocation: {dict(sorted(mapping.items()))}")

    # The k-consistency view of the 2-register failure: the 5-cycle is
    # strongly 2-consistent but 3 pebbles expose the odd cycle (¬2COL is
    # 4-Datalog-expressible, Section 4's running example).
    print("\n=== k-consistency refutation of the 2-register case ===")
    instance = coloring_instance(INTERFERENCE, 2)
    for k in (2, 3):
        verdict = solve_decision(instance, k)
        print(f"  strong {k}-consistency verdict: {verdict.value}")
    assert solve_decision(instance, 3) is Verdict.UNSATISFIABLE

    # Spill one node (remove t4) and the 2-register allocation appears.
    print("\n=== after spilling t4 ===")
    spilled = INTERFERENCE.copy()
    spilled.remove_vertex("t4")
    mapping = solve_hcoloring(spilled, complete_graph(2))
    print(f"  2-register allocation: {dict(sorted(mapping.items()))}")

    # A search-based check of the same facts, with statistics.
    stats = backtracking.solve_with_stats(
        coloring_instance(cycle_graph(11), 2), backtracking.Inference.NONE
    )
    print(
        f"\nBlind search on an 11-cycle with 2 colors: "
        f"{stats.nodes} nodes, {stats.backtracks} backtracks, "
        f"solution={stats.solution}"
    )
    verdict = solve_decision(coloring_instance(cycle_graph(11), 2), 3)
    print(f"3-consistency answers the same instantly: {verdict.value}")


if __name__ == "__main__":
    main()
