"""View-based query processing over semistructured data (Section 7).

A tiny "web site" graph is accessible only through two materialized views
(regular-path queries over link labels).  We compute certain answers via
the paper's constraint-template reduction to CSP (Theorem 7.5), compare
with the maximal RPQ rewriting [8], and demonstrate the reverse reduction
from CSP (Theorem 7.3).

Run:  python examples/semistructured_views.py
"""

from repro.generators.graphs import directed_cycle_structure
from repro.relational.homomorphism import homomorphism_exists
from repro.relational.structure import Structure
from repro.views.certain import ViewSetup, certain_answer, certain_answer_bruteforce
from repro.views.reduction import csp_to_view_reduction
from repro.views.rewriting import evaluate_rewriting, maximal_rewriting
from repro.views.template import constraint_template


def main() -> None:
    # The site's schema: pages linked by `nav` (menus) and `ref` (citations).
    # Views the crawler materialized:
    #   V_menu  = nav nav      (two menu hops)
    #   V_cite  = ref          (one citation hop)
    views = ViewSetup(
        {"V_menu": "nav nav", "V_cite": "ref"},
        {
            "V_menu": {("home", "docs"), ("docs", "api")},
            "V_cite": {("api", "paper")},
        },
    )
    query = "nav nav nav nav ref"  # four menu hops then one citation

    print("view definitions:", {n: "nav nav" if n == "V_menu" else "ref" for n in views.definitions})
    print("view extensions: ", {n: sorted(p) for n, p in views.extensions.items()})

    # --- certain answers through the constraint template (Thm 7.5) -----------
    template = constraint_template(query, views)
    print(f"\nconstraint template B: {template}")
    for c, d in [("home", "paper"), ("home", "api"), ("docs", "paper")]:
        verdict = certain_answer(query, views, c, d)
        check = certain_answer_bruteforce(query, views, c, d, max_word_length=2)
        assert verdict == check
        print(f"  ({c}, {d}) ∈ cert(Q, V): {verdict}")

    # --- the maximal rewriting over the view alphabet -------------------------
    rewriting = maximal_rewriting(query, views)
    print("\nmaximal rewriting accepts V_menu V_menu V_cite:",
          rewriting.accepts(("V_menu", "V_menu", "V_cite")))
    answers = evaluate_rewriting(rewriting, views)
    print("rewriting answers over ext(V):", sorted(answers))
    for c, d in answers:
        assert certain_answer(query, views, c, d)  # always sound

    # --- Theorem 7.3: CSP reduces to view-based answering ---------------------
    print("\n=== CSP(A, K2) as a view-answering problem (Thm 7.3) ===")
    k2 = Structure({"E": 2}, [0, 1], {"E": [(0, 1), (1, 0)]})
    reduction = csp_to_view_reduction(k2)
    for n in (3, 4):
        a = directed_cycle_structure(n)
        setup, c, d = reduction.setup_for(a)
        cert = certain_answer_bruteforce(reduction.query, setup, c, d, max_word_length=2)
        solvable = homomorphism_exists(a, k2)
        print(
            f"  directed C{n}: CSP solvable={solvable}, "
            f"(c,d) ∉ cert = {not cert}  [must match]"
        )
        assert (not cert) == solvable


if __name__ == "__main__":
    main()
