"""Conjunctive-query processing: containment, minimization, acyclic joins.

A small data-integration scenario over a ``follows`` relation: we check a
rewritten query is equivalent to the original (Chandra–Merlin, Prop 2.2),
minimize a machine-generated query (core computation), and evaluate an
acyclic join with Yannakakis' algorithm (Section 6 via [45]).

Run:  python examples/query_optimization.py
"""

from repro.cq.containment import are_equivalent, is_contained_in, minimize
from repro.cq.evaluate import evaluate
from repro.cq.parser import parse_query
from repro.csp.instance import Constraint, CSPInstance
from repro.relational.structure import Structure
from repro.width.acyclic import yannakakis_solve
from repro.width.gaifman import instance_hypergraph
from repro.width.acyclic import is_acyclic


def main() -> None:
    # --- containment & equivalence checking ----------------------------------
    # "users two hops from X" as written by a human and by a rewriter that
    # duplicated a join; containment proves the rewrite is safe.
    original = parse_query("Q(X, Y) :- Follows(X, Z), Follows(Z, Y).")
    rewritten = parse_query(
        "Q(X, Y) :- Follows(X, Z), Follows(Z, Y), Follows(X, W), Follows(W, Y)."
    )
    print("original ⊆ rewritten:", is_contained_in(original, rewritten))
    print("rewritten ⊆ original:", is_contained_in(rewritten, original))
    print("equivalent:          ", are_equivalent(original, rewritten))

    # --- minimization (the core) ------------------------------------------------
    core = minimize(rewritten)
    print(f"\nminimized body: {len(rewritten.body)} atoms → {len(core.body)} atoms")
    print("core:", core)

    # --- evaluation on a small social graph -----------------------------------
    follows = [
        ("ana", "bo"), ("bo", "cy"), ("cy", "dee"), ("ana", "cy"), ("dee", "ana"),
    ]
    people = sorted({p for e in follows for p in e})
    db = Structure({"Follows": 2}, people, {"Follows": follows})
    answers = evaluate(original, db)
    print("\ntwo-hop pairs:", sorted(answers.tuples))

    # --- acyclic join evaluation via Yannakakis -------------------------------
    # A path-shaped join  R(a,b) ⋈ S(b,c) ⋈ T(c,d)  as a CSP; the constraint
    # hypergraph is acyclic, so the semijoin program decides it in linear
    # shape and constructs a row backtrack-freely.
    r = {("r1", "x"), ("r2", "y")}
    s = {("x", "m"), ("y", "n")}
    t = {("m", "end"), ("q", "end")}
    values = {v for rel in (r, s, t) for row in rel for v in row}
    instance = CSPInstance(
        ["a", "b", "c", "d"],
        values,
        [
            Constraint(("a", "b"), r),
            Constraint(("b", "c"), s),
            Constraint(("c", "d"), t),
        ],
    )
    print("\njoin hypergraph acyclic:", is_acyclic(instance_hypergraph(instance)))
    row = yannakakis_solve(instance)
    print("one joined row (a, b, c, d):", tuple(row[v] for v in "abcd"))


if __name__ == "__main__":
    main()
