#!/usr/bin/env python3
"""Standalone JSONL trace validator (no repro import).

Reads a trace event stream from stdin (or the files given as arguments)
and checks the schema that ``repro profile --jsonl`` / ``repro trace``
emit: known event types with required keys, spans opened before they emit
counters or close, properly nested (LIFO) closes, every span closed
exactly once.  Exits 0 on a well-formed stream, 1 otherwise, printing
each problem on stderr — the CI profile-smoke step pipes the CLI output
straight through this script.

Usage::

    python -m repro profile --workload join --jsonl | python tools/validate_trace.py
    python tools/validate_trace.py trace.jsonl
"""

from __future__ import annotations

import json
import sys
from typing import Any, Iterable

METRICSET_KINDS = ("eval", "propagation", "search")


def parse_lines(lines: Iterable[str]) -> tuple[list[dict[str, Any]], list[str]]:
    """Parse JSONL lines; return (events, problems)."""
    events: list[dict[str, Any]] = []
    problems: list[str] = []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"line {lineno}: not valid JSON ({exc})")
            continue
        if not isinstance(event, dict):
            problems.append(f"line {lineno}: event is not a JSON object")
            continue
        events.append(event)
    return events, problems


def validate(events: Iterable[dict[str, Any]]) -> list[str]:
    """Schema-check an event stream; return the list of problems."""
    problems: list[str] = []
    opened: dict[int, str] = {}
    closed: set[int] = set()
    stack: list[int] = []

    def bad(i: int, msg: str) -> None:
        problems.append(f"event {i}: {msg}")

    for i, event in enumerate(events):
        etype = event.get("type")
        if etype == "span_open":
            sid, parent = event.get("id"), event.get("parent")
            if not isinstance(sid, int):
                bad(i, "span_open without integer 'id'")
                continue
            if sid in opened:
                bad(i, f"span {sid} opened twice")
            if not isinstance(event.get("name"), str):
                bad(i, f"span {sid} has no string 'name'")
            if not isinstance(event.get("t"), (int, float)):
                bad(i, f"span {sid} has no numeric 't'")
            if not isinstance(event.get("attrs"), dict):
                bad(i, f"span {sid} has no 'attrs' object")
            if parent is not None and parent not in opened:
                bad(i, f"span {sid} has unknown parent {parent}")
            expected = stack[-1] if stack else None
            if parent != expected:
                bad(i, f"span {sid} parent {parent} != innermost open {expected}")
            opened[sid] = str(event.get("name"))
            stack.append(sid)
        elif etype == "counter":
            sid = event.get("id")
            if sid not in opened or sid in closed:
                bad(i, f"counter for span {sid} which is not open")
            if event.get("metricset") not in METRICSET_KINDS:
                bad(i, f"unknown metricset {event.get('metricset')!r}")
            if not isinstance(event.get("counters"), dict):
                bad(i, "counter event without 'counters' object")
        elif etype == "span_close":
            sid = event.get("id")
            if sid not in opened:
                bad(i, f"span_close for unopened span {sid}")
                continue
            if sid in closed:
                bad(i, f"span {sid} closed twice")
                continue
            if not stack or stack[-1] != sid:
                bad(i, f"span {sid} closed out of order")
                if sid in stack:
                    while stack and stack[-1] != sid:
                        stack.pop()
            if stack and stack[-1] == sid:
                stack.pop()
            if not isinstance(event.get("duration"), (int, float)):
                bad(i, f"span {sid} close without numeric 'duration'")
            closed.add(sid)
        else:
            bad(i, f"unknown event type {etype!r}")
    for sid in opened:
        if sid not in closed:
            problems.append(f"span {sid} ({opened[sid]!r}) never closed")
    return problems


def main(argv: list[str]) -> int:
    if argv:
        lines: list[str] = []
        for path in argv:
            with open(path, encoding="utf-8") as fp:
                lines.extend(fp)
    else:
        lines = list(sys.stdin)
    events, problems = parse_lines(lines)
    problems += validate(events)
    if problems:
        for problem in problems:
            print(f"validate_trace: {problem}", file=sys.stderr)
        return 1
    spans = sum(1 for e in events if e.get("type") == "span_open")
    counters = sum(1 for e in events if e.get("type") == "counter")
    print(f"validate_trace: OK — {spans} spans, {counters} counter events")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
