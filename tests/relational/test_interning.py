"""Tests for the interning layer: dense-int codecs and code-space encoding.

The codec contract the execution layer leans on:

* bijectivity — ``decode(encode(x)) == x`` for every domain value, on raw
  values, rows, structures, and CSP instances (hypothesis-checked on mixed
  ``str``/``int``/``tuple`` value universes);
* order preservation — codes ascend in the values' ``repr`` order, so
  iterating codes numerically visits values exactly as the plain engines'
  ``sorted(..., key=repr)`` loops do;
* strictness — unknown values/codes raise :class:`~repro.errors.DomainError`
  instead of silently corrupting code space.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.csp.instance import Constraint, CSPInstance
from repro.errors import DomainError
from repro.relational.interning import (
    Codec,
    bit_positions,
    decode_instance,
    decode_structure,
    encode_instance,
    encode_structure,
)
from repro.relational.structure import Structure

# Mixed-type universes: strings, ints, and tuples are all realistic CSP
# domain values (coloring labels, indices, composite keys).
VALUES = st.one_of(
    st.integers(min_value=-20, max_value=20),
    st.text(alphabet="abcxyz", min_size=0, max_size=3),
    st.tuples(st.integers(min_value=0, max_value=5), st.booleans()),
)


@settings(max_examples=120, deadline=None)
@given(st.lists(VALUES, min_size=0, max_size=12))
def test_codec_roundtrip_and_density(values):
    codec = Codec(values)
    universe = set(values)
    assert len(codec) == len(universe)
    for v in universe:
        code = codec.encode(v)
        assert 0 <= code < len(codec)
        assert codec.decode(code) == v
    # Codes are dense: every int below len(codec) decodes.
    assert {codec.encode(v) for v in universe} == set(range(len(codec)))


@settings(max_examples=120, deadline=None)
@given(st.lists(VALUES, min_size=0, max_size=12))
def test_codec_code_order_is_repr_order(values):
    """Ascending code order == repr order of the decoded values, on the full
    universe and on any subset (so bit-iteration replaces repr sorts)."""
    codec = Codec(values)
    decoded = [codec.decode(c) for c in range(len(codec))]
    assert decoded == sorted(set(values), key=repr)


@settings(max_examples=100, deadline=None)
@given(st.lists(VALUES, min_size=1, max_size=10), st.data())
def test_codec_mask_roundtrip(values, data):
    codec = Codec(values)
    subset = set(data.draw(st.lists(st.sampled_from(sorted(set(values), key=repr)))))
    mask = codec.mask_of(subset)
    assert codec.set_of(mask) == subset
    assert mask.bit_count() == len(subset)
    # bit_positions enumerates exactly the set bits, ascending.
    positions = list(bit_positions(mask))
    assert positions == sorted(positions)
    assert {codec.decode(p) for p in positions} == subset


def test_codec_rejects_unknown_values_and_codes():
    codec = Codec(["a", "b"])
    with pytest.raises(DomainError):
        codec.encode("c")
    with pytest.raises(DomainError):
        codec.decode(2)
    with pytest.raises(DomainError):
        codec.decode(-1)


def test_full_mask_covers_universe():
    codec = Codec([3, 1, 2])
    assert codec.full_mask == 0b111
    assert codec.set_of(codec.full_mask) == {1, 2, 3}
    assert Codec([]).full_mask == 0


@settings(max_examples=60, deadline=None)
@given(
    st.lists(VALUES, min_size=1, max_size=6),
    st.lists(st.integers(min_value=0, max_value=5), min_size=0, max_size=10),
)
def test_structure_roundtrip(domain_values, row_picks):
    domain = sorted(set(domain_values), key=repr)
    rows = [
        (domain[i % len(domain)], domain[(i + 1) % len(domain)]) for i in row_picks
    ]
    unary = [(domain[i % len(domain)],) for i in row_picks[:3]]
    structure = Structure({"E": 2, "U": 1}, domain, {"E": rows, "U": unary})
    encoded, codec = encode_structure(structure)
    # Same vocabulary, int domain, encoded rows.
    assert encoded.vocabulary == structure.vocabulary
    assert set(encoded.domain) == set(range(len(codec)))
    assert decode_structure(encoded, codec) == structure


@settings(max_examples=60, deadline=None)
@given(
    st.lists(VALUES, min_size=1, max_size=5),
    st.integers(min_value=1, max_value=4),
    st.data(),
)
def test_instance_roundtrip(domain_values, n_vars, data):
    domain = sorted(set(domain_values), key=repr)
    variables = [f"v{i}" for i in range(n_vars)]
    constraints = []
    for _ in range(data.draw(st.integers(min_value=0, max_value=3))):
        arity = data.draw(st.integers(min_value=1, max_value=min(2, n_vars)))
        scope = tuple(data.draw(st.permutations(variables))[:arity])
        rows = data.draw(
            st.lists(
                st.tuples(*[st.sampled_from(domain)] * arity), max_size=6
            )
        )
        constraints.append(Constraint(scope, rows))
    instance = CSPInstance(variables, domain, constraints)
    encoded, codec = encode_instance(instance)
    assert encoded.variables == instance.variables  # variables untouched
    assert set(encoded.domain) == set(range(len(codec)))
    restored = decode_instance(encoded, codec)
    assert restored.variables == instance.variables
    assert restored.domain == instance.domain
    assert set(restored.constraints) == set(instance.constraints)


def test_shared_codec_reuse():
    """Passing an explicit codec interns against the shared table — values
    outside it are rejected, and codes agree across encodings."""
    codec = Codec(["x", "y", "z"])
    s1 = Structure({"E": 2}, ["x", "y"], {"E": [("x", "y")]})
    s2 = Structure({"E": 2}, ["y", "z"], {"E": [("z", "y")]})
    e1, c1 = encode_structure(s1, codec)
    e2, c2 = encode_structure(s2, codec)
    assert c1 is codec and c2 is codec
    assert e1.relation("E") != e2.relation("E")
    bad = Structure({"E": 2}, ["w"], {"E": []})
    with pytest.raises(DomainError):
        encode_structure(bad, codec)


def test_bit_positions_empty_and_sparse():
    assert list(bit_positions(0)) == []
    assert list(bit_positions(0b1)) == [0]
    assert list(bit_positions((1 << 70) | 0b101)) == [0, 2, 70]


class TestFoldCodecCache:
    """The two-tier fold-codec cache: identity hits skip even hashing the
    relations; content hits survive rebuilt-but-equal relation objects;
    both are charged to ``EvalStats.codec_cache_hits`` honestly."""

    def setup_method(self):
        from repro.relational.interning import reset_fold_codecs

        reset_fold_codecs()

    @staticmethod
    def rels():
        from repro.relational.relation import Relation

        return [
            Relation(("A", "B"), [(1, 2), (2, 3)]),
            Relation(("B", "C"), [(2, 4), (3, 5)]),
        ]

    def test_identity_tier_returns_same_codec(self):
        from repro.relational.interning import fold_codec

        rels = self.rels()
        codec1, built1 = fold_codec(rels)
        codec2, built2 = fold_codec(rels)
        assert built1 and not built2
        assert codec2 is codec1

    def test_content_tier_survives_rebuilt_relations(self):
        from repro.relational.interning import fold_codec

        codec1, built1 = fold_codec(self.rels())
        codec2, built2 = fold_codec(self.rels())  # fresh objects, equal content
        assert built1 and not built2
        assert codec2 is codec1

    def test_order_insensitive_identity_key(self):
        from repro.relational.interning import fold_codec

        rels = self.rels()
        codec1, _ = fold_codec(rels)
        codec2, built2 = fold_codec(list(reversed(rels)))
        assert not built2 and codec2 is codec1

    def test_different_content_builds_a_new_codec(self):
        from repro.relational.relation import Relation
        from repro.relational.interning import fold_codec

        codec1, _ = fold_codec(self.rels())
        other = [Relation(("A", "B"), [(9, 9)])]
        codec2, built2 = fold_codec(other)
        assert built2 and codec2 is not codec1

    def test_cache_stays_bounded(self):
        from repro.relational import interning
        from repro.relational.relation import Relation

        for i in range(interning.FOLD_CODEC_CACHE_CAP + 10):
            interning.fold_codec([Relation(("A",), [(i,)])])
        assert len(interning._FOLD_CODECS) <= interning.FOLD_CODEC_CACHE_CAP
        assert len(interning._FOLD_CODECS_BY_ID) <= interning.FOLD_CODEC_CACHE_CAP

    def test_join_all_interned_charges_codec_cache_hits(self):
        from repro.relational.algebra import join_all
        from repro.relational.stats import collect_stats

        rels = self.rels()
        with collect_stats() as cold:
            first = join_all(rels, execution="interned")
        with collect_stats() as warm:
            second = join_all(rels, execution="interned")
        assert first == second
        assert cold.codec_cache_hits == 0
        assert warm.codec_cache_hits == 1

    def test_columnar_encode_charges_codec_cache_hits(self):
        from repro.relational.algebra import join_all
        from repro.relational.stats import collect_stats

        rels = self.rels()
        with collect_stats() as cold:
            join_all(rels, execution="columnar")
        with collect_stats() as warm:
            join_all(rels, execution="columnar")
        assert cold.codec_cache_hits == 0
        assert warm.codec_cache_hits >= 1
