"""The columnar layer's Hypothesis wall: every vectorized kernel against
its row-path oracle.

The laws pinned here:

* **round trip** — ``column_store(r).to_relation() == r`` and the store is
  memoized (same object on every later call);
* **mask-select == row-select** — :func:`mask_select` computes exactly
  ``algebra.select`` with the conjunction of the per-attribute predicates;
* **batched probe == per-row probe** — :func:`batched_natural_join` and
  :func:`batched_semijoin` match the ``indexed``/``interned`` row
  executions row for row, and :func:`join_all_columnar` matches
  ``join_all``;
* **column dedup == sorted distinct projection** — :func:`project_distinct`
  equals ``algebra.project``;
* **DENSE_KEY_SPACE_CAP boundary** — packed key spaces of cap−1/cap/cap+1
  flip the :class:`~repro.relational.relation.CodeIndex` between its dense
  bitmap and sparse dict regimes without changing any result;
* **honest accounting** — the first :func:`column_store` build charges
  ``column_builds`` and ``tuples_scanned`` to the active
  :class:`~repro.relational.stats.EvalStats` (mirroring ``warm_index``'s
  rule); memoized hits charge nothing.

Everything runs identically with or without numpy — the kernels are
backend-agnostic by contract, and ``tests/relational/test_columnar_adversarial``
masks numpy out to differentially pin the stdlib fallback.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.relational.algebra import join_all, natural_join, project, select, semijoin
from repro.relational.columnar import (
    ColumnarFallback,
    batched_natural_join,
    batched_semijoin,
    column_store,
    join_all_columnar,
    mask_select,
    numpy_backend,
    project_distinct,
    warm_columns,
)
from repro.relational.relation import DENSE_KEY_SPACE_CAP, Relation
from repro.relational.stats import collect_stats

# Mixed-type values, as in the interning wall: strings, ints, and tuples
# are all realistic domain values and exercise the codec's repr ordering.
VALUES = st.one_of(
    st.integers(min_value=-9, max_value=9),
    st.text(alphabet="abx", min_size=0, max_size=2),
    st.tuples(st.booleans()),
)

ATTR_POOL = ("a", "b", "c", "d")


@st.composite
def relations(draw, min_arity=0, max_arity=3):
    arity = draw(st.integers(min_value=min_arity, max_value=max_arity))
    attrs = draw(
        st.permutations(ATTR_POOL).map(lambda p: tuple(p[:arity]))
    )
    rows = draw(
        st.lists(
            st.tuples(*[VALUES] * arity) if arity else st.just(()),
            min_size=0,
            max_size=12,
        )
    )
    return Relation(attrs, rows)


@st.composite
def relation_pairs(draw):
    """Two relations over the shared attribute pool — schemes overlap often,
    sometimes fully, sometimes not at all (Cartesian product)."""
    return draw(relations()), draw(relations())


# -- round trip --------------------------------------------------------------


@settings(max_examples=120, deadline=None)
@given(relations())
def test_rows_columns_rows_round_trip(rel):
    store = column_store(rel)
    assert store.to_relation() == rel
    assert rel.has_column_store()
    # Memoized: every later call returns the same object and builds nothing.
    assert column_store(rel) is store
    # Columns are positionally aligned 'q' arrays over the store codec.
    assert len(store.columns) == rel.arity
    for j, col in enumerate(store.columns):
        assert len(col) == len(rel)
        view = store.column_view(j)
        assert view.format == "q" and len(view) == len(rel)
        decoded = [store.codec.decode(c) for c in col]
        assert decoded == [t[j] for t in store.rows]


@settings(max_examples=60, deadline=None)
@given(relations(min_arity=1))
def test_np_columns_are_zero_copy_views(rel):
    store = column_store(rel)
    np = numpy_backend()
    if np is None:
        assert store.np_columns() is None
        return
    cols = store.np_columns()
    assert store.np_columns() is cols  # cached
    for j, npcol in enumerate(cols):
        assert npcol.dtype == np.int64
        assert npcol.tolist() == list(store.columns[j])


# -- selection ---------------------------------------------------------------

PREDICATES = [
    ("is-int", lambda v: isinstance(v, int)),
    ("truthy", bool),
    ("short-repr", lambda v: len(repr(v)) <= 2),
]


@settings(max_examples=120, deadline=None)
@given(relations(min_arity=1), st.data())
def test_mask_select_matches_row_select(rel, data):
    chosen = data.draw(
        st.lists(
            st.sampled_from(range(len(PREDICATES))),
            min_size=1,
            max_size=rel.arity,
            unique=True,
        )
    )
    predicates = {
        attr: PREDICATES[k][1] for attr, k in zip(rel.attributes, chosen)
    }
    oracle = select(
        rel, lambda row: all(p(row[a]) for a, p in predicates.items())
    )
    assert mask_select(rel, predicates) == oracle


def test_mask_select_empty_predicates_is_identity():
    rel = Relation(("a", "b"), [(1, 2), (3, 4)])
    assert mask_select(rel, {}) == rel


# -- batched probing ---------------------------------------------------------


@settings(max_examples=150, deadline=None)
@given(relation_pairs())
def test_batched_natural_join_matches_row_oracles(pair):
    left, right = pair
    expected = natural_join(left, right, execution="indexed")
    assert natural_join(left, right, execution="interned") == expected
    assert batched_natural_join(left, right) == expected


@settings(max_examples=150, deadline=None)
@given(relation_pairs())
def test_batched_semijoin_matches_row_oracle(pair):
    left, right = pair
    assert batched_semijoin(left, right) == semijoin(left, right)


@settings(max_examples=80, deadline=None)
@given(st.lists(relations(), min_size=0, max_size=4))
def test_join_all_columnar_matches_join_all(rels):
    if numpy_backend() is None:
        pytest.skip("join_all_columnar requires the numpy backend")
    expected = join_all(rels)
    # The direct call folds in the given operand order while join_all folds
    # in planner order, so column order may legitimately differ — compare as
    # attribute→value mappings (the planner-differential convention).
    got = join_all_columnar(rels)
    assert set(got.attributes) == set(expected.attributes)
    canon = lambda rel: {
        frozenset(m.items()) for m in rel.rows_as_mappings()
    }
    assert canon(got) == canon(expected)
    # Through the strategy knob (planner order + fallback wrapping) the
    # agreement is exact, scheme included.
    assert join_all(rels, execution="columnar") == expected


# -- projection / dedup ------------------------------------------------------


@settings(max_examples=120, deadline=None)
@given(relations(), st.data())
def test_project_distinct_matches_project(rel, data):
    attrs = data.draw(
        st.lists(st.sampled_from(ATTR_POOL), unique=True).map(
            lambda picked: tuple(a for a in picked if a in rel.attributes)
        )
    )
    expected = project(rel, attrs)
    got = project_distinct(rel, attrs)
    assert got == expected
    # "Sorted distinct" spelled out: one row per distinct key, no dupes.
    assert len(set(got.tuples)) == len(got)


def test_project_distinct_empty_attributes():
    assert project_distinct(Relation(("a",), [(1,), (2,)]), ()) == Relation(
        (), [()]
    )
    assert project_distinct(Relation.empty(["a"]), ()) == Relation((), [])


# -- the DENSE_KEY_SPACE_CAP boundary ----------------------------------------


def _boundary_relations(n_distinct: int):
    """A build side whose 2-column key space is ``n_distinct ** 2`` and a
    probe side hitting every other key — sized to straddle the cap."""
    build = Relation(
        ("x", "y"), [(i, (i * 7 + 3) % n_distinct) for i in range(n_distinct)]
    )
    probe = Relation(
        ("x", "y", "z"),
        [(i, (i * 7 + 3) % n_distinct, i % 5) for i in range(0, n_distinct, 2)]
        + [(0, 1, 99), (n_distinct, 0, 7)],  # misses: wrong pair / unknown value
    )
    return build, probe


@pytest.mark.parametrize("n_distinct", [255, 256, 257])
def test_dense_key_space_cap_boundary(n_distinct):
    """255² = cap − 511 (dense), 256² = cap exactly (dense), 257² = cap + 513
    (sparse): the CodeIndex regime flips across the boundary while every
    batched kernel keeps matching the row oracle."""
    build, probe = _boundary_relations(n_distinct)
    index = build.code_index_on(("x", "y"))
    space = index.base ** 2
    assert index.dense is (space <= DENSE_KEY_SPACE_CAP)
    if n_distinct < 256:
        assert space < DENSE_KEY_SPACE_CAP
    elif n_distinct == 256:
        assert space == DENSE_KEY_SPACE_CAP
    else:
        assert space > DENSE_KEY_SPACE_CAP

    assert batched_semijoin(probe, build) == semijoin(probe, build)
    expected = natural_join(probe, build, execution="indexed")
    assert batched_natural_join(probe, build) == expected
    assert natural_join(probe, build, execution="columnar") == expected


# -- honest accounting -------------------------------------------------------


class TestHonestAccounting:
    def test_first_build_is_charged_to_the_building_query(self):
        rel = Relation(("a", "b"), [(i, i % 3) for i in range(10)])
        with collect_stats() as stats:
            column_store(rel)
        assert stats.column_builds == 1
        assert stats.tuples_scanned == 10
        assert stats.intern_tables == 1
        assert stats.operator_counts.get("column_build") == 1

    def test_memoized_hit_charges_nothing(self):
        rel = Relation(("a", "b"), [(i, i % 3) for i in range(10)])
        column_store(rel)
        with collect_stats() as stats:
            column_store(rel)
        assert stats.column_builds == 0
        assert stats.tuples_scanned == 0
        assert stats.operator_counts == {}

    def test_lazy_build_inside_a_join_is_charged_once(self):
        left = Relation(("a", "b"), [(i, i % 4) for i in range(12)])
        right = Relation(("b", "c"), [(i % 4, i) for i in range(8)])
        with collect_stats() as first:
            batched_natural_join(left, right)
        assert first.column_builds == 1  # the probe side columnized lazily
        assert first.batch_probes > 0
        with collect_stats() as second:
            batched_natural_join(left, right)
        assert second.column_builds == 0  # store and index both memoized
        assert second.index_builds == 0
        assert second.batch_probes == first.batch_probes  # probing still counted

    def test_warm_columns_mirrors_warm_index(self):
        rel = Relation(("a", "b"), [(i, i % 3) for i in range(7)])
        with collect_stats() as stats:
            assert warm_columns(rel, ("b",)) is True
        assert stats.column_builds == 1
        assert stats.index_builds == 1
        assert stats.tuples_scanned == 14  # once for the store, once for the index
        with collect_stats() as again:
            assert warm_columns(rel, ("b",)) is False
        assert again.column_builds == 0
        assert again.index_builds == 0

    def test_mask_ops_counted_per_row_per_column(self):
        rel = Relation(("a", "b"), [(i, i % 3) for i in range(9)])
        with collect_stats() as stats:
            mask_select(rel, {"a": lambda v: v % 2 == 0, "b": bool})
        assert stats.mask_ops == 18  # 9 rows × 2 masked columns


# -- fallback plumbing -------------------------------------------------------


def test_packed_key_space_cap_triggers_fallback(monkeypatch):
    """When a fold step's packed key space exceeds the 64-bit lane the
    multi-way fold refuses (ColumnarFallback) and the strategy knob reruns
    with the binary columnar operators — same rows either way."""
    import repro.relational.columnar as columnar

    if numpy_backend() is None:
        pytest.skip("the cap only guards the numpy packed fold")
    left = Relation(("a", "b"), [(i, i % 5) for i in range(20)])
    right = Relation(("a", "b", "c"), [(i, i % 5, i % 3) for i in range(20)])
    expected = join_all([left, right])
    monkeypatch.setattr(columnar, "PACKED_KEY_SPACE_CAP", 10)
    with pytest.raises(ColumnarFallback):
        join_all_columnar([left, right])
    assert join_all([left, right], execution="columnar") == expected
