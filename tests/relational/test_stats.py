"""EvalStats behaviour: zero on empty, monotone under composition, no
cross-query leakage, and the lazy select row view."""

import pytest

from repro.relational.algebra import (
    join_all,
    natural_join,
    project,
    select,
    semijoin,
    warm_index,
)
from repro.relational.relation import Relation
from repro.relational.stats import EvalStats, collect_stats, current_stats


def small(name_pair, rows):
    return Relation(name_pair, rows)


R = small(("x", "y"), [(1, 2), (2, 3), (3, 4)])
S = small(("y", "z"), [(2, 10), (3, 11)])


class TestZeroAndEmpty:
    def test_fresh_stats_all_zero(self):
        stats = EvalStats()
        assert stats.tuples_scanned == 0
        assert stats.hash_probes == 0
        assert stats.tuples_emitted == 0
        assert stats.intermediate_sizes == []
        assert stats.max_intermediate == 0
        assert stats.total_intermediate == 0
        assert stats.joins == 0
        assert stats.wall_seconds == 0.0

    def test_empty_inputs_scan_nothing(self):
        empty_r = Relation.empty(("x", "y"))
        empty_s = Relation.empty(("y", "z"))
        with collect_stats() as stats:
            result = natural_join(empty_r, empty_s)
        assert not result
        assert stats.tuples_scanned == 0
        assert stats.hash_probes == 0
        assert stats.tuples_emitted == 0
        assert stats.max_intermediate == 0

    def test_no_collection_outside_context(self):
        assert current_stats() is None
        natural_join(R, S)  # must not blow up nor record anywhere
        assert current_stats() is None


class TestCounting:
    def test_join_counters(self):
        # Fresh relations: memoized indexes built by other tests must not
        # change this test's build accounting.
        r = small(("x", "y"), [(1, 2), (2, 3), (3, 4)])
        s = small(("y", "z"), [(2, 10), (3, 11)])
        with collect_stats() as stats:
            result = natural_join(r, s)
        assert stats.joins == 1
        # First join pays the build side (s, smaller) plus the probe side.
        assert stats.tuples_scanned == len(r) + len(s)
        assert stats.hash_probes == len(r)
        assert stats.index_builds == 1
        assert stats.index_hits == 2
        assert stats.probe_misses == 1
        assert stats.tuples_emitted == len(result) == 2
        assert stats.intermediate_sizes == [2]
        assert stats.wall_seconds > 0.0

    def test_select_project_semijoin_counters(self):
        r = small(("x", "y"), [(1, 2), (2, 3), (3, 4)])
        s = small(("y", "z"), [(2, 10), (3, 11)])
        with collect_stats() as stats:
            select(r, lambda row: row["x"] > 1)
            project(r, ("x",))
            semijoin(r, s)
        assert stats.operator_counts == {"select": 1, "project": 1, "semijoin": 1}
        assert stats.tuples_scanned == len(r) + len(r) + (len(r) + len(s))
        assert stats.index_builds == 1

    def test_join_all_records_every_intermediate(self):
        with collect_stats() as stats:
            join_all([R, S])
        # One join against the unit seed plus one real join.
        assert stats.joins == 2
        assert len(stats.intermediate_sizes) == 2


class TestIndexCounters:
    def test_memoized_index_is_not_rebuilt(self):
        r = small(("x", "y"), [(1, 2), (2, 3), (3, 4)])
        s = small(("y", "z"), [(2, 10), (3, 11)])
        with collect_stats() as first:
            natural_join(r, s)
        with collect_stats() as second:
            natural_join(r, s)
        assert first.index_builds == 1
        assert second.index_builds == 0
        # The repeat probe pays only for the probe side, not the build.
        assert second.tuples_scanned == len(r)
        assert second.tuples_emitted == first.tuples_emitted

    def test_semijoin_reuses_join_index(self):
        r = small(("x", "y"), [(1, 2), (2, 3), (3, 4)])
        s = small(("y", "z"), [(2, 10), (3, 11)])
        semijoin(r, s)  # builds s's index on ("y",)
        with collect_stats() as stats:
            semijoin(r, s)
        assert stats.index_builds == 0
        assert stats.tuples_scanned == len(r)
        assert stats.index_hits == 2
        assert stats.probe_misses == 1

    def test_scan_execution_records_no_index_traffic(self):
        r = small(("x", "y"), [(1, 2), (2, 3), (3, 4)])
        s = small(("y", "z"), [(2, 10), (3, 11)])
        with collect_stats() as stats:
            natural_join(r, s, execution="scan")
        assert stats.index_builds == 0
        assert stats.index_hits == 0
        assert stats.probe_misses == 0
        assert stats.hash_probes == 0
        # Nested loops read the whole right side once per left row.
        assert stats.tuples_scanned == len(r) + len(r) * len(s)

    def test_warm_index_charges_build_once(self):
        r = small(("x", "y"), [(1, 2), (2, 3), (3, 4)])
        s = small(("y", "z"), [(2, 10), (3, 11)])
        with collect_stats() as stats:
            assert warm_index(r, {"y"}) is True
            assert warm_index(r, ("y",)) is False  # memoized: free
        assert stats.index_builds == 1
        assert stats.tuples_scanned == len(r)
        assert stats.operator_counts == {"index_build": 1}
        # The warmed side now wins the build even though it is larger.
        with collect_stats() as stats:
            natural_join(r, s)
        assert stats.index_builds == 0
        assert stats.tuples_scanned == len(s)
        assert stats.hash_probes == len(s)

    def test_indexed_scans_fewer_tuples_than_scan(self):
        r = small(("x", "y"), [(i, i + 1) for i in range(8)])
        s = small(("y", "z"), [(i, 2 * i) for i in range(8)])
        runs = {}
        for execution in ("indexed", "scan"):
            fresh_r = small(r.attributes, r.tuples)
            fresh_s = small(s.attributes, s.tuples)
            with collect_stats() as stats:
                natural_join(fresh_r, fresh_s, execution=execution)
            runs[execution] = stats.tuples_scanned
        assert runs["indexed"] < runs["scan"]


class TestComposition:
    def test_merge_is_monotone_addition(self):
        # Warm the memoized hash indexes so all three runs probe the same
        # pre-built index and the counters compose exactly.
        natural_join(R, S)
        natural_join(S, R)
        with collect_stats() as first:
            natural_join(R, S)
        with collect_stats() as second:
            natural_join(S, R)
        with collect_stats() as combined:
            natural_join(R, S)
            natural_join(S, R)
        merged = EvalStats().merge(first).merge(second)
        assert merged.tuples_scanned == combined.tuples_scanned
        assert merged.hash_probes == combined.hash_probes
        assert merged.tuples_emitted == combined.tuples_emitted
        assert merged.intermediate_sizes == combined.intermediate_sizes
        assert merged.operator_counts == combined.operator_counts

    def test_counters_never_decrease_during_a_run(self):
        with collect_stats() as stats:
            before = (stats.tuples_scanned, stats.hash_probes, stats.joins)
            natural_join(R, S)
            mid = (stats.tuples_scanned, stats.hash_probes, stats.joins)
            natural_join(R, S)
            after = (stats.tuples_scanned, stats.hash_probes, stats.joins)
        assert before <= mid <= after
        assert mid < after


class TestIsolation:
    def test_reset_restores_fresh_state(self):
        with collect_stats() as stats:
            natural_join(R, S)
        stats.reset()
        assert stats.as_dict() == EvalStats().as_dict()

    def test_two_runs_identical_counts(self):
        """No leakage across runs: the same query twice gives equal stats."""
        def run():
            with collect_stats() as stats:
                join_all([R, S], strategy="greedy")
            return stats
        a, b = run(), run()
        assert a.tuples_scanned == b.tuples_scanned
        assert a.intermediate_sizes == b.intermediate_sizes
        assert a.operator_counts == b.operator_counts

    def test_nested_contexts_shadow_not_leak(self):
        with collect_stats() as outer:
            natural_join(R, S)
            with collect_stats() as inner:
                natural_join(R, S)
            after_inner = outer.joins
        assert inner.joins == 1
        assert after_inner == 1  # inner work not charged to outer
        assert current_stats() is None

    def test_explicit_stats_object_reusable(self):
        stats = EvalStats()
        with collect_stats(stats) as s:
            assert s is stats
            natural_join(R, S)
        first = stats.joins
        with collect_stats(stats):
            natural_join(R, S)
        assert stats.joins == first + 1  # accumulates when reused on purpose


class TestLazySelectRow:
    def test_predicate_receives_mapping_not_dict(self):
        seen = []

        def predicate(row):
            seen.append(row)
            return True

        select(R, predicate)
        assert seen and not any(isinstance(row, dict) for row in seen)
        row = seen[0]
        assert set(row) == {"x", "y"}
        assert len(row) == 2
        assert dict(row) in [dict(zip(R.attributes, t)) for t in R]

    def test_partial_access_works(self):
        result = select(R, lambda row: row["x"] >= 2)
        assert result.tuples == {(2, 3), (3, 4)}

    def test_missing_attribute_raises_keyerror(self):
        with pytest.raises(KeyError):
            select(R, lambda row: row["nope"])
