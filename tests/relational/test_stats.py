"""EvalStats behaviour: zero on empty, monotone under composition, no
cross-query leakage, and the lazy select row view."""

import pytest

from repro.relational.algebra import (
    join_all,
    natural_join,
    project,
    select,
    semijoin,
)
from repro.relational.relation import Relation
from repro.relational.stats import EvalStats, collect_stats, current_stats


def small(name_pair, rows):
    return Relation(name_pair, rows)


R = small(("x", "y"), [(1, 2), (2, 3), (3, 4)])
S = small(("y", "z"), [(2, 10), (3, 11)])


class TestZeroAndEmpty:
    def test_fresh_stats_all_zero(self):
        stats = EvalStats()
        assert stats.tuples_scanned == 0
        assert stats.hash_probes == 0
        assert stats.tuples_emitted == 0
        assert stats.intermediate_sizes == []
        assert stats.max_intermediate == 0
        assert stats.total_intermediate == 0
        assert stats.joins == 0
        assert stats.wall_seconds == 0.0

    def test_empty_inputs_scan_nothing(self):
        empty_r = Relation.empty(("x", "y"))
        empty_s = Relation.empty(("y", "z"))
        with collect_stats() as stats:
            result = natural_join(empty_r, empty_s)
        assert not result
        assert stats.tuples_scanned == 0
        assert stats.hash_probes == 0
        assert stats.tuples_emitted == 0
        assert stats.max_intermediate == 0

    def test_no_collection_outside_context(self):
        assert current_stats() is None
        natural_join(R, S)  # must not blow up nor record anywhere
        assert current_stats() is None


class TestCounting:
    def test_join_counters(self):
        with collect_stats() as stats:
            result = natural_join(R, S)
        assert stats.joins == 1
        assert stats.tuples_scanned == len(R) + len(S)
        assert stats.hash_probes == len(R)
        assert stats.tuples_emitted == len(result) == 2
        assert stats.intermediate_sizes == [2]
        assert stats.wall_seconds > 0.0

    def test_select_project_semijoin_counters(self):
        with collect_stats() as stats:
            select(R, lambda row: row["x"] > 1)
            project(R, ("x",))
            semijoin(R, S)
        assert stats.operator_counts == {"select": 1, "project": 1, "semijoin": 1}
        assert stats.tuples_scanned == len(R) + len(R) + (len(R) + len(S))

    def test_join_all_records_every_intermediate(self):
        with collect_stats() as stats:
            join_all([R, S])
        # One join against the unit seed plus one real join.
        assert stats.joins == 2
        assert len(stats.intermediate_sizes) == 2


class TestComposition:
    def test_merge_is_monotone_addition(self):
        with collect_stats() as first:
            natural_join(R, S)
        with collect_stats() as second:
            natural_join(S, R)
        with collect_stats() as combined:
            natural_join(R, S)
            natural_join(S, R)
        merged = EvalStats().merge(first).merge(second)
        assert merged.tuples_scanned == combined.tuples_scanned
        assert merged.hash_probes == combined.hash_probes
        assert merged.tuples_emitted == combined.tuples_emitted
        assert merged.intermediate_sizes == combined.intermediate_sizes
        assert merged.operator_counts == combined.operator_counts

    def test_counters_never_decrease_during_a_run(self):
        with collect_stats() as stats:
            before = (stats.tuples_scanned, stats.hash_probes, stats.joins)
            natural_join(R, S)
            mid = (stats.tuples_scanned, stats.hash_probes, stats.joins)
            natural_join(R, S)
            after = (stats.tuples_scanned, stats.hash_probes, stats.joins)
        assert before <= mid <= after
        assert mid < after


class TestIsolation:
    def test_reset_restores_fresh_state(self):
        with collect_stats() as stats:
            natural_join(R, S)
        stats.reset()
        assert stats.as_dict() == EvalStats().as_dict()

    def test_two_runs_identical_counts(self):
        """No leakage across runs: the same query twice gives equal stats."""
        def run():
            with collect_stats() as stats:
                join_all([R, S], strategy="greedy")
            return stats
        a, b = run(), run()
        assert a.tuples_scanned == b.tuples_scanned
        assert a.intermediate_sizes == b.intermediate_sizes
        assert a.operator_counts == b.operator_counts

    def test_nested_contexts_shadow_not_leak(self):
        with collect_stats() as outer:
            natural_join(R, S)
            with collect_stats() as inner:
                natural_join(R, S)
            after_inner = outer.joins
        assert inner.joins == 1
        assert after_inner == 1  # inner work not charged to outer
        assert current_stats() is None

    def test_explicit_stats_object_reusable(self):
        stats = EvalStats()
        with collect_stats(stats) as s:
            assert s is stats
            natural_join(R, S)
        first = stats.joins
        with collect_stats(stats):
            natural_join(R, S)
        assert stats.joins == first + 1  # accumulates when reused on purpose


class TestLazySelectRow:
    def test_predicate_receives_mapping_not_dict(self):
        seen = []

        def predicate(row):
            seen.append(row)
            return True

        select(R, predicate)
        assert seen and not any(isinstance(row, dict) for row in seen)
        row = seen[0]
        assert set(row) == {"x", "y"}
        assert len(row) == 2
        assert dict(row) in [dict(zip(R.attributes, t)) for t in R]

    def test_partial_access_works(self):
        result = select(R, lambda row: row["x"] >= 2)
        assert result.tuples == {(2, 3), (3, 4)}

    def test_missing_attribute_raises_keyerror(self):
        with pytest.raises(KeyError):
            select(R, lambda row: row["nope"])
