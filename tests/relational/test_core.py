"""Cores of structures."""

import pytest

from repro.generators.graphs import (
    complete_graph,
    cycle_graph,
    graph_as_digraph_structure,
    path_graph,
    random_graph,
)
from repro.relational.core import (
    core,
    homomorphically_equivalent,
    is_core,
)
from repro.relational.homomorphism import homomorphism_exists
from repro.relational.structure import Structure


def sym(graph):
    return graph_as_digraph_structure(graph)


class TestIsCore:
    def test_cliques_are_cores(self):
        for k in (1, 2, 3):
            assert is_core(sym(complete_graph(k)))

    def test_odd_cycles_are_cores(self):
        assert is_core(sym(cycle_graph(5)))
        assert is_core(sym(cycle_graph(7)))

    def test_even_cycles_are_not_cores(self):
        assert not is_core(sym(cycle_graph(4)))
        assert not is_core(sym(cycle_graph(6)))

    def test_paths_are_not_cores(self):
        assert not is_core(sym(path_graph(3)))

    def test_loop_is_core(self):
        loop = Structure({"E": 2}, [0], {"E": [(0, 0)]})
        assert is_core(loop)

    def test_directed_cycles_are_cores(self):
        c4 = Structure({"E": 2}, range(4), {"E": [(i, (i + 1) % 4) for i in range(4)]})
        assert is_core(c4)


class TestCore:
    def test_even_cycle_core_is_edge(self):
        result = core(sym(cycle_graph(6)))
        assert len(result.domain) == 2
        assert is_core(result)

    def test_path_core_is_edge(self):
        result = core(sym(path_graph(5)))
        assert len(result.domain) == 2

    def test_core_is_idempotent(self):
        result = core(sym(cycle_graph(6)))
        assert core(result) == result

    def test_core_is_equivalent_to_original(self):
        original = sym(cycle_graph(6))
        reduced = core(original)
        assert homomorphically_equivalent(original, reduced)

    def test_core_of_core_structure_unchanged(self):
        k3 = sym(complete_graph(3))
        assert core(k3) == k3

    def test_disjoint_union_collapses(self):
        # Two disjoint symmetric edges: the core is a single edge.
        s = Structure(
            {"E": 2},
            range(4),
            {"E": [(0, 1), (1, 0), (2, 3), (3, 2)]},
        )
        result = core(s)
        assert len(result.domain) == 2

    @pytest.mark.parametrize("seed", range(6))
    def test_random_graphs_core_properties(self, seed):
        s = sym(random_graph(5, 0.35, seed=seed))
        reduced = core(s)
        assert is_core(reduced)
        assert homomorphically_equivalent(s, reduced)
        # CSP behavior is preserved: same verdict against sample targets.
        for target in (sym(complete_graph(2)), sym(complete_graph(3))):
            assert homomorphism_exists(s, target) == homomorphism_exists(
                reduced, target
            )


class TestEquivalence:
    def test_even_cycles_all_equivalent(self):
        assert homomorphically_equivalent(sym(cycle_graph(4)), sym(cycle_graph(6)))

    def test_odd_cycles_not_equivalent_to_k2(self):
        assert not homomorphically_equivalent(sym(cycle_graph(5)), sym(complete_graph(2)))

    def test_equivalence_via_cores(self):
        a = sym(path_graph(4))
        b = sym(cycle_graph(8))
        assert homomorphically_equivalent(a, b)
        assert len(core(a).domain) == len(core(b).domain) == 2
