"""Property-based tests for the leapfrog triejoin (:mod:`repro.relational.wcoj`).

Four contracts pin the engine to its specification:

* **Leapfrog intersection is set intersection** — on any collection of
  sorted arrays, :func:`leapfrog_intersect` emits exactly the elements
  common to all of them, in ascending order.
* **The seek contract** — ``seek(target)`` positions a cursor on the
  *least* element ≥ ``target`` (or ``at_end``), for both the unary
  :class:`ArrayCursor` and an open :class:`TrieCursor` level.
* **Trie navigation round-trips** — depth-first ``open``/``next``/``up``
  over a :class:`TrieRelation` enumerates exactly the relation's distinct
  projected rows in lexicographic order, and ``up()`` restores the parent
  position.
* **Variable-order invariance** — :func:`leapfrog_join` computes the same
  relation under *every* global variable order; only the work differs.

Plus the differential that matters most: ``leapfrog_join`` equals the
nested-loop ``join_all`` oracle on random relation collections.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SchemaError, VocabularyError
from repro.relational.algebra import join_all, semijoin
from repro.relational.relation import Relation
from repro.relational.wcoj import (
    ArrayCursor,
    Leapfrog,
    TrieCursor,
    TrieRelation,
    leapfrog_intersect,
    leapfrog_join,
    trie_semijoin,
    variable_order,
)

sorted_arrays = st.lists(
    st.lists(st.integers(min_value=0, max_value=40), max_size=25).map(
        lambda xs: sorted(set(xs))
    ),
    min_size=1,
    max_size=4,
)


# ---------------------------------------------------------------------------
# leapfrog intersection == set intersection
# ---------------------------------------------------------------------------


@settings(max_examples=150, deadline=None)
@given(sorted_arrays)
def test_leapfrog_intersect_is_set_intersection(arrays):
    expected = sorted(set.intersection(*(set(a) for a in arrays)))
    assert leapfrog_intersect(arrays) == expected


def test_leapfrog_intersect_edge_cases():
    assert leapfrog_intersect([[1, 2, 3]]) == [1, 2, 3]
    assert leapfrog_intersect([[1, 2], []]) == []
    assert leapfrog_intersect([[], []]) == []
    assert leapfrog_intersect([[1, 3, 5], [2, 4, 6]]) == []
    assert leapfrog_intersect([[1, 2, 3], [2, 3, 4], [3, 4, 5]]) == [3]


# ---------------------------------------------------------------------------
# the seek contract: least element >= target
# ---------------------------------------------------------------------------


@settings(max_examples=150, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=20).map(
        lambda xs: sorted(set(xs))
    ),
    st.integers(min_value=0, max_value=31),
)
def test_array_cursor_seek_contract(values, target):
    cursor = ArrayCursor(values)
    cursor.seek(target)
    geq = [v for v in values if v >= target]
    if geq:
        assert not cursor.at_end
        assert cursor.key() == geq[0]
    else:
        assert cursor.at_end


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=20).map(
        lambda xs: sorted(set(xs))
    ),
    st.lists(st.integers(min_value=0, max_value=31), min_size=1, max_size=6),
)
def test_array_cursor_monotone_seek_chain(values, targets):
    """A forward chain of seeks (the only way leapfrog calls them) always
    lands on the least element >= the running maximum target."""
    cursor = ArrayCursor(values)
    running = 0
    for t in targets:
        running = max(running, t)
        if cursor.at_end:
            break
        running = max(running, cursor.key())
        cursor.seek(running)
        geq = [v for v in values if v >= running]
        if geq:
            assert cursor.key() == geq[0]
        else:
            assert cursor.at_end


rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=0, max_value=4),
    ),
    max_size=30,
)


@settings(max_examples=100, deadline=None)
@given(rows_strategy, st.integers(min_value=0, max_value=5))
def test_trie_cursor_seek_contract_at_depth_two(rows, target):
    """After descending one level, seek at the second level sees exactly the
    distinct second-column values under the current first-column prefix."""
    trie = TrieRelation(("a", "b", "c"), rows, ("a", "b", "c"))
    cursor = trie.cursor()
    cursor.open()
    if cursor.at_end:
        assert not rows
        return
    prefix = cursor.key()
    cursor.open()
    children = sorted({r[1] for r in rows if r[0] == prefix})
    assert cursor.key() == children[0]
    cursor.seek(target)
    geq = [v for v in children if v >= target]
    if geq:
        assert cursor.key() == geq[0]
    else:
        assert cursor.at_end


# ---------------------------------------------------------------------------
# trie open/next/up round-trips
# ---------------------------------------------------------------------------


def _walk(trie):
    """Depth-first enumeration through the cursor API only."""
    cursor = trie.cursor()
    out = []
    prefix = []

    def descend():
        cursor.open()
        while not cursor.at_end:
            prefix.append(cursor.key())
            if cursor.depth == len(trie.levels):
                out.append(tuple(prefix))
            else:
                descend()
            prefix.pop()
            cursor.next()
        cursor.up()

    descend()
    return out


@settings(max_examples=100, deadline=None)
@given(rows_strategy)
def test_trie_walk_enumerates_sorted_distinct_rows(rows):
    trie = TrieRelation(("a", "b", "c"), rows, ("a", "b", "c"))
    assert _walk(trie) == sorted(set(rows))


@settings(max_examples=100, deadline=None)
@given(rows_strategy)
def test_trie_walk_of_projection(rows):
    """Levels restricted to a scheme subset enumerate the projection."""
    trie = TrieRelation(("a", "b", "c"), rows, ("c", "a"))
    assert _walk(trie) == sorted({(r[2], r[0]) for r in rows})


def test_trie_up_restores_parent_key():
    rows = [(0, 1), (0, 2), (3, 4)]
    trie = TrieRelation(("a", "b"), rows, ("a", "b"))
    cursor = trie.cursor()
    cursor.open()
    assert cursor.key() == 0
    cursor.open()
    assert cursor.key() == 1
    cursor.next()
    assert cursor.key() == 2
    cursor.next()
    assert cursor.at_end
    cursor.up()
    assert not cursor.at_end
    assert cursor.key() == 0  # the parent position is untouched
    cursor.next()
    assert cursor.key() == 3


def test_trie_unknown_level_attribute_raises_vocabulary_error():
    with pytest.raises(VocabularyError) as excinfo:
        TrieRelation(("a", "b"), [(0, 1)], ("a", "z"))
    # The PR-2 convention: the message names the attribute and the scheme.
    assert "'z'" in str(excinfo.value)
    assert "('a', 'b')" in str(excinfo.value)


# ---------------------------------------------------------------------------
# Leapfrog multi-cursor stepping
# ---------------------------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(sorted_arrays)
def test_leapfrog_class_enumerates_intersection(arrays):
    lf = Leapfrog([ArrayCursor(a) for a in arrays])
    out = []
    while not lf.at_end:
        out.append(lf.key())
        lf.next()
    assert out == sorted(set.intersection(*(set(a) for a in arrays)))


def test_leapfrog_single_cursor_degenerates_to_iteration():
    lf = Leapfrog([ArrayCursor([2, 5, 9])])
    seen = []
    while not lf.at_end:
        seen.append(lf.key())
        lf.next()
    assert seen == [2, 5, 9]


# ---------------------------------------------------------------------------
# leapfrog_join: differential vs the scan oracle, order invariance
# ---------------------------------------------------------------------------


def _canon(rel):
    return {frozenset(zip(rel.attributes, t)) for t in rel.tuples}


relation_lists = st.lists(
    st.tuples(
        st.lists(
            st.sampled_from(["w", "x", "y", "z"]), min_size=1, max_size=3, unique=True
        ),
        st.integers(min_value=0, max_value=60),
    ),
    min_size=1,
    max_size=4,
).map(
    lambda specs: [
        Relation(
            tuple(attrs),
            {
                tuple((seed * 31 + i * 7 + j * 13) % 4 for j in range(len(attrs)))
                for i in range(seed % 9)
            },
        )
        for attrs, seed in specs
    ]
)


@settings(max_examples=150, deadline=None)
@given(relation_lists)
def test_leapfrog_join_matches_scan_oracle(relations):
    expected = join_all(relations, strategy="textbook+scan")
    got = leapfrog_join(relations)
    assert _canon(got) == _canon(expected)


@settings(max_examples=80, deadline=None)
@given(relation_lists, st.randoms(use_true_random=False))
def test_leapfrog_join_is_variable_order_invariant(relations, rng):
    default = leapfrog_join(relations)
    attrs = list(default.attributes)
    for _ in range(3):
        rng.shuffle(attrs)
        permuted = leapfrog_join(relations, order=tuple(attrs))
        assert _canon(permuted) == _canon(default)


@settings(max_examples=100, deadline=None)
@given(relation_lists)
def test_trie_semijoin_matches_scan_oracle(relations):
    left = relations[0]
    right = relations[-1]
    expected = semijoin(left, right, execution="scan")
    assert trie_semijoin(left, right).tuples == expected.tuples


def test_leapfrog_join_edge_cases():
    # No relations: the unit.
    assert leapfrog_join([]) == Relation.unit()
    # Any empty operand: empty result over the union scheme.
    r = Relation(("x", "y"), [(1, 2)])
    empty = Relation(("y", "z"), [])
    assert len(leapfrog_join([r, empty])) == 0
    assert set(leapfrog_join([r, empty]).attributes) == {"x", "y", "z"}
    # Nullary nonempty operands are join identities.
    assert leapfrog_join([r, Relation.unit()]).tuples == {(1, 2)}
    assert leapfrog_join([Relation.unit(), Relation.unit()]) == Relation.unit()
    # Single-tuple relations chain.
    s = Relation(("y", "z"), [(2, 3)])
    assert _canon(leapfrog_join([r, s])) == _canon(join_all([r, s], strategy="scan"))


def test_leapfrog_join_limit_stops_enumeration():
    r = Relation(("x",), [(i,) for i in range(10)])
    assert len(leapfrog_join([r], limit=1)) == 1
    assert len(leapfrog_join([r], limit=4)) == 4
    assert len(leapfrog_join([r], limit=None)) == 10


def test_leapfrog_join_rejects_bad_order_and_scheme():
    r = Relation(("x", "y"), [(1, 2)])
    with pytest.raises(SchemaError):
        leapfrog_join([r], order=("x",))
    with pytest.raises(SchemaError):
        leapfrog_join([r], order=("x", "y", "q"))
    with pytest.raises(SchemaError):
        leapfrog_join([r], out_attributes=("x",))


def test_leapfrog_join_mixed_value_types():
    """Heterogeneous universes intern into one comparable code space."""
    r = Relation(("x", "y"), [("a", 1), ("b", 2), (("t",), 1)])
    s = Relation(("y", "z"), [(1, "u"), (2, ("v",))])
    expected = join_all([r, s], strategy="scan")
    assert _canon(leapfrog_join([r, s])) == _canon(expected)


def test_trie_semijoin_records_probe_counters():
    from repro.relational.stats import collect_stats

    left = Relation(("x", "y"), [(1, 2), (3, 4), (5, 6)])
    right = Relation(("y", "z"), [(2, 0), (4, 0)])
    with collect_stats() as stats:
        out = trie_semijoin(left, right)
    assert out.tuples == {(1, 2), (3, 4)}
    assert stats.hash_probes == 3
    assert stats.index_hits == 2
    assert stats.probe_misses == 1
    assert stats.trie_builds == 1
    assert stats.intern_tables == 1
    assert stats.seeks > 0
    # A semijoin materializes no join intermediate.
    assert stats.intermediate_sizes == []


def test_leapfrog_natural_join_keeps_binary_scheme_order():
    from repro.relational.wcoj import leapfrog_natural_join

    left = Relation(("b", "a"), [(1, 2), (3, 4)])
    right = Relation(("a", "c"), [(2, 9), (4, 7)])
    out = leapfrog_natural_join(left, right)
    # The binary operators' contract: left scheme, then right's private.
    assert out.attributes == ("b", "a", "c")
    assert out.tuples == {(1, 2, 9), (3, 4, 7)}


def test_variable_order_covers_all_attributes_and_is_deterministic():
    rels = [
        Relation(("x", "y"), [(0, 0)]),
        Relation(("y", "z"), [(0, 0)]),
        Relation(("z", "x"), [(0, 0)]),
    ]
    order = variable_order(rels)
    assert sorted(order) == ["x", "y", "z"]
    assert variable_order(rels) == order
